// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks and ablations for the design
// choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Figure-level benchmarks run the corresponding experiment driver and
// report the headline quantities via b.ReportMetric; the full tables
// are printed by cmd/tssbench and recorded in EXPERIMENTS.md.
package tss_test

import (
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"tss"
	"tss/internal/abstraction"
	"tss/internal/acl"
	"tss/internal/adapter"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/chirp/proto"
	"tss/internal/experiments"
	"tss/internal/netsim"
	"tss/internal/nfsbase"
	"tss/internal/sim"
	"tss/internal/vfs"
	"tss/internal/workload"
)

// ---- Figure-level benchmarks (one per table/figure) ----

// metricName makes a label safe for b.ReportMetric (no whitespace).
func metricName(parts ...string) string {
	joined := strings.Join(parts, "-")
	return strings.ReplaceAll(joined, " ", "")
}

// BenchmarkFig3SyscallLatency regenerates Figure 3: adapter
// interposition overhead on individual calls.
func BenchmarkFig3SyscallLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(500)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Slowdown, metricName(row.Call, "slowdown"))
		}
	}
}

// BenchmarkFig4IOCallLatency regenerates Figure 4: per-call latency of
// CFS vs NFS vs DSFS over simulated gigabit Ethernet.
func BenchmarkFig4IOCallLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(150)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.CFS.Microseconds()), metricName(row.Call, "cfs-µs"))
			b.ReportMetric(float64(row.NFS.Microseconds()), metricName(row.Call, "nfs-µs"))
			b.ReportMetric(float64(row.DSFS.Microseconds()), metricName(row.Call, "dsfs-µs"))
		}
	}
}

// BenchmarkFig5Bandwidth regenerates Figure 5: single-client bandwidth
// by block size for Unix, Parrot, Parrot+CFS, and Unix+NFS.
func BenchmarkFig5Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5([]int{4 << 10, 64 << 10, 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.UnixMBps, "unix-MBps")
		b.ReportMetric(last.ParrotMBps, "parrot-MBps")
		b.ReportMetric(last.CFSMBps, "cfs-MBps")
		b.ReportMetric(last.NFSMBps, "nfs-MBps")
	}
}

func benchScale(b *testing.B, fig string) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScale(fig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ThroughputMBps, "1-server-MBps")
		b.ReportMetric(res.Rows[2].ThroughputMBps, "3-servers-MBps")
		b.ReportMetric(res.Rows[7].ThroughputMBps, "8-servers-MBps")
	}
}

// BenchmarkFig6NetBound regenerates Figure 6: DSFS scalability with a
// fully cached 128 MB dataset.
func BenchmarkFig6NetBound(b *testing.B) { benchScale(b, "fig6") }

// BenchmarkFig7MixedBound regenerates Figure 7: the disk/backplane
// crossover with a 1280 MB dataset.
func BenchmarkFig7MixedBound(b *testing.B) { benchScale(b, "fig7") }

// BenchmarkFig8DiskBound regenerates Figure 8: linear disk-bound
// scaling with a 12800 MB dataset.
func BenchmarkFig8DiskBound(b *testing.B) { benchScale(b, "fig8") }

// BenchmarkSP5Table regenerates the §8 table: SP5 in the four
// deployment configurations. WAN latency is reduced to keep the
// benchmark suite fast; cmd/tssbench runs the full profile.
func BenchmarkSP5Table(b *testing.B) {
	cfg := workload.DefaultSP5()
	cfg.Libraries, cfg.ConfigFiles, cfg.Events = 40, 20, 8
	links := experiments.SP5Links{WAN: experiments.QuickWAN}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSP5Table(cfg, links)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Result.InitTime.Seconds(), metricName(row.Config, "init-s"))
		}
	}
}

// BenchmarkFig9Preservation regenerates Figure 9: GEMS replication to
// a budget with induced failures and repair.
func BenchmarkFig9Preservation(b *testing.B) {
	cfg := experiments.DefaultFig9()
	cfg.RecordSize = 256 << 10
	cfg.Budget = int64(cfg.Records) * int64(cfg.RecordSize) * 20 / 7
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllReadable {
			b.Fatal("data lost")
		}
		b.ReportMetric(float64(len(res.Points)), "timeline-points")
	}
}

// ---- Microbenchmarks on the real stack (unshaped in-process links) ----

type benchStack struct {
	client *chirp.Client
	server *chirp.Server
	close  func()
}

func newBenchStack(b *testing.B) *benchStack {
	b.Helper()
	dir, err := os.MkdirTemp("", "tss-bench-")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := chirp.NewServer(dir, chirp.ServerConfig{
		Name:      "bench.sim",
		Owner:     "hostname:bench-host",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	})
	if err != nil {
		b.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("bench.sim")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	cli, err := chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom("bench-host", "bench.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		b.Fatal(err)
	}
	st := &benchStack{client: cli, server: srv, close: func() {
		cli.Close()
		l.Close()
		os.RemoveAll(dir)
	}}
	b.Cleanup(st.close)
	return st
}

// BenchmarkChirpStat measures one whole-path stat RPC.
func BenchmarkChirpStat(b *testing.B) {
	st := newBenchStack(b)
	if err := vfs.WriteFile(st.client, "/f", make([]byte, 100), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.client.Stat("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChirpOpenClose measures the open(+stat)/close RPC pair.
func BenchmarkChirpOpenClose(b *testing.B) {
	st := newBenchStack(b)
	if err := vfs.WriteFile(st.client, "/f", make([]byte, 100), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := st.client.Open("/f", vfs.O_RDONLY, 0)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkChirpRead8K measures one 8 KB pread RPC.
func BenchmarkChirpRead8K(b *testing.B) {
	st := newBenchStack(b)
	if err := vfs.WriteFile(st.client, "/f", make([]byte, 8192), 0o644); err != nil {
		b.Fatal(err)
	}
	f, err := st.client.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8192)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Pread(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChirpWrite8K measures one 8 KB pwrite RPC.
func BenchmarkChirpWrite8K(b *testing.B) {
	st := newBenchStack(b)
	f, err := st.client.Open("/f", vfs.O_RDWR|vfs.O_CREAT, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8192)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Pwrite(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChirpGetfile1M measures the streaming whole-file RPC.
func BenchmarkChirpGetfile1M(b *testing.B) {
	st := newBenchStack(b)
	if err := vfs.WriteFile(st.client, "/big", make([]byte, 1<<20), 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.client.GetFile("/big", discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkNFSStatDeep measures the per-component lookup cost of the
// baseline on a three-deep path (ablation: whole-path vs per-component
// name resolution).
func BenchmarkNFSStatDeep(b *testing.B) {
	dir, err := os.MkdirTemp("", "tss-bench-nfs-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := nfsbase.NewServer(dir)
	if err != nil {
		b.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("nfs.sim")
	defer l.Close()
	go srv.Serve(l)
	cli, err := nfsbase.Dial(nfsbase.ClientConfig{
		Dial: func() (net.Conn, error) { return nw.Dial("nfs.sim", netsim.Loopback) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	if err := vfs.MkdirAll(cli, "/a/b", 0o755); err != nil {
		b.Fatal(err)
	}
	if err := vfs.WriteFile(cli, "/a/b/f", make([]byte, 10), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Stat("/a/b/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSFSCreateDelete measures the §5 crash-safe create ordering
// (stub then data, both exclusive) plus deletion (data then stub).
func BenchmarkDSFSCreateDelete(b *testing.B) {
	st := newBenchStack(b)
	d, err := abstraction.NewDSFS(st.client, "/meta", []abstraction.DataServer{
		{Name: "bench.sim", FS: st.client, Dir: "/data"},
	}, abstraction.Options{ClientID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("/f%d", i)
		f, err := d.Open(name, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
		if err := d.Unlink(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSFSStat measures the stub+data double hop.
func BenchmarkDSFSStat(b *testing.B) {
	st := newBenchStack(b)
	d, err := abstraction.NewDSFS(st.client, "/meta", []abstraction.DataServer{
		{Name: "bench.sim", FS: st.client, Dir: "/data"},
	}, abstraction.Options{ClientID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	if err := vfs.WriteFile(d, "/f", make([]byte, 100), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Stat("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----

// newLatencyStack is newBenchStack over a link with real round-trip
// latency, so RPC-count differences are visible.
func newLatencyStack(b *testing.B) *benchStack {
	b.Helper()
	dir, err := os.MkdirTemp("", "tss-bench-lat-")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := chirp.NewServer(dir, chirp.ServerConfig{
		Name:      "lat.sim",
		Owner:     "hostname:bench-host",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	})
	if err != nil {
		b.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("lat.sim")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	cli, err := chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom("bench-host", "lat.sim", netsim.GigE)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		b.Fatal(err)
	}
	st := &benchStack{client: cli, server: srv, close: func() {
		cli.Close()
		l.Close()
		os.RemoveAll(dir)
	}}
	b.Cleanup(st.close)
	return st
}

// BenchmarkStubReadFastPath measures DSFS stub resolution with the
// getfile single-round-trip fast path (the shipped design), over a
// gigabit-latency link.
func BenchmarkStubReadFastPath(b *testing.B) {
	st := newLatencyStack(b)
	benchStubRead(b, st, st.client)
}

// BenchmarkStubReadGeneric measures the same stub resolution without
// the fast path (open/pread/close, three round trips) — the ablation
// justifying vfs.FileGetter.
func BenchmarkStubReadGeneric(b *testing.B) {
	st := newLatencyStack(b)
	benchStubRead(b, st, hideGetFile{st.client})
}

// hideGetFile masks the FileGetter fast path of a filesystem.
type hideGetFile struct{ vfs.FileSystem }

func benchStubRead(b *testing.B, st *benchStack, meta vfs.FileSystem) {
	b.Helper()
	d, err := abstraction.NewDSFS(meta, "/meta", []abstraction.DataServer{
		{Name: st.server.Name(), FS: st.client, Dir: "/data"},
	}, abstraction.Options{ClientID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	if err := vfs.WriteFile(d, "/f", make([]byte, 100), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadStub("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrapEmulator measures the per-call interposition charge.
func BenchmarkTrapEmulator(b *testing.B) {
	tr := adapter.NewTrapEmulator()
	defer tr.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Trap(8192)
	}
}

// BenchmarkAdapterResolve measures mount-table resolution (longest
// prefix over the logical namespace).
func BenchmarkAdapterResolve(b *testing.B) {
	a := adapter.New(adapter.Config{})
	dir, _ := os.MkdirTemp("", "tss-bench-ad-")
	defer os.RemoveAll(dir)
	local, _ := vfs.NewLocalFS(dir)
	for i := 0; i < 16; i++ {
		a.MountFS(fmt.Sprintf("/mnt/vol%02d", i), local)
	}
	if err := vfs.WriteFile(a, "/mnt/vol07/f", nil, 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Stat("/mnt/vol07/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACLCheck measures one access control decision with wildcard
// subjects, the per-request cost on every server operation.
func BenchmarkACLCheck(b *testing.B) {
	list, err := acl.Parse([]byte(
		"hostname:*.cse.nd.edu rwl\nglobus:/O=Notre_Dame/* v(rwla)\nunix:admin rwlda\n"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !list.Allows("hostname:laptop.cse.nd.edu", acl.R|acl.W) {
			b.Fatal("unexpected deny")
		}
	}
}

// BenchmarkProtoParseRequest measures wire request parsing.
func BenchmarkProtoParseRequest(b *testing.B) {
	line := "open /some/deep/path/with%20spaces 577 644"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.ParseRequest(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinRebalance measures one max-min fair rate
// recomputation with 64 flows over 16 resources — the inner loop of
// the cluster model.
func BenchmarkMaxMinRebalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		net := sim.NewFlowNet(s)
		var resources []*sim.Resource
		for j := 0; j < 16; j++ {
			resources = append(resources, sim.NewResource("r", 100<<20))
		}
		for j := 0; j < 64; j++ {
			net.Start(1<<20, resources[j%16], resources[(j+5)%16])
		}
		s.Run()
		s.Shutdown()
	}
}

// BenchmarkClusterRun measures a full Figure-6-style simulation run.
func BenchmarkClusterRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScale("fig6")
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkSP5InitLocal measures the metadata storm against a local
// filesystem (the §8 table's baseline phase).
func BenchmarkSP5InitLocal(b *testing.B) {
	dir, err := os.MkdirTemp("", "tss-bench-sp5-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	local, err := vfs.NewLocalFS(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultSP5()
	cfg.Events = 0
	if err := workload.SetupSP5(local, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.RunSP5(local, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeRoundTrip exercises the public API end to end:
// deploy, dial, write, read, through the adapter.
func BenchmarkFacadeRoundTrip(b *testing.B) {
	dir, err := os.MkdirTemp("", "tss-bench-facade-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "fs.sim", dir, tss.FileServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	cli, err := tss.DialSim(nw, "fs.sim", "fs.sim")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	a := tss.NewAdapter(tss.AdapterOptions{})
	a.MountFS("/srv", cli)
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tss.WriteFile(a, "/srv/f", payload, 0o644); err != nil {
			b.Fatal(err)
		}
		if _, err := tss.ReadFile(a, "/srv/f"); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = time.Second

// newShapedServers starts n Chirp servers each behind its own
// gigabit-shaped link, for aggregate-bandwidth ablations.
func newShapedServers(b *testing.B, n int) []abstraction.DataServer {
	b.Helper()
	nw := netsim.NewNetwork()
	var servers []abstraction.DataServer
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shaped%d.sim", i)
		dir, err := os.MkdirTemp("", "tss-bench-stripe-")
		if err != nil {
			b.Fatal(err)
		}
		srv, err := chirp.NewServer(dir, chirp.ServerConfig{
			Name:      name,
			Owner:     "hostname:bench-host",
			Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		})
		if err != nil {
			b.Fatal(err)
		}
		l, err := nw.Listen(name)
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		cli, err := chirp.Dial(chirp.ClientConfig{
			Dial: func() (net.Conn, error) {
				return nw.DialFrom("bench-host", name, netsim.GigE)
			},
			Credentials: []auth.Credential{auth.HostnameCredential{}},
		})
		if err != nil {
			b.Fatal(err)
		}
		dirCopy := dir
		b.Cleanup(func() { cli.Close(); l.Close(); os.RemoveAll(dirCopy) })
		servers = append(servers, abstraction.DataServer{Name: name, FS: cli, Dir: "/vol"})
	}
	return servers
}

// benchStripedRead measures reading one 8 MB file striped over width
// servers, each behind its own ~125 MB/s link. Aggregate bandwidth
// should scale with width — the §10 striping extension quantified.
func benchStripedRead(b *testing.B, width int) {
	servers := newShapedServers(b, width)
	metaDir, err := os.MkdirTemp("", "tss-bench-stripe-meta-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(metaDir)
	meta, err := vfs.NewLocalFS(metaDir)
	if err != nil {
		b.Fatal(err)
	}
	s, err := abstraction.NewStriped(meta, servers, abstraction.StripeOptions{StripeSize: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	const fileSize = 8 << 20
	if err := vfs.WriteFile(s, "/big", make([]byte, fileSize), 0o644); err != nil {
		b.Fatal(err)
	}
	f, err := s.Open("/big", vfs.O_RDONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, fileSize)
	b.SetBytes(fileSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := f.Pread(buf, 0)
		if err != nil || n != fileSize {
			b.Fatalf("pread = %d, %v", n, err)
		}
	}
}

// BenchmarkStripedRead1 is the single-server baseline.
func BenchmarkStripedRead1(b *testing.B) { benchStripedRead(b, 1) }

// BenchmarkStripedRead4 stripes the same file over four servers.
func BenchmarkStripedRead4(b *testing.B) { benchStripedRead(b, 4) }

// BenchmarkCacheSweep is the buffer-cache ablation behind Figure 7's
// crossover: throughput at 3 servers as cache size sweeps past the
// per-server dataset share.
func BenchmarkCacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunCacheSweep(3, []int64{64, 480, 2048})
		b.ReportMetric(res.Rows[0].Result.ThroughputMBps, "64MB-MBps")
		b.ReportMetric(res.Rows[1].Result.ThroughputMBps, "480MB-MBps")
		b.ReportMetric(res.Rows[2].Result.ThroughputMBps, "2048MB-MBps")
	}
}
