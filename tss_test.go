package tss_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"tss"
)

func tempDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "tss-facade-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

func TestFacadeDeployDialReadWrite(t *testing.T) {
	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "fs.sim", tempDir(t), tss.FileServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	cli, err := tss.DialSim(nw, "fs.sim", "fs.sim") // the owner
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := tss.WriteFile(cli, "/hello", []byte("facade"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := tss.ReadFile(cli, "/hello")
	if err != nil || string(data) != "facade" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// stop is idempotent.
	stop()
	stop()
}

func TestFacadeRootACLAndReserve(t *testing.T) {
	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "fs.sim", tempDir(t), tss.FileServerOptions{
		RootACL: map[string]string{"hostname:*.campus": "v(rwl)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	visitor, err := tss.DialSim(nw, "fs.sim", "lab1.campus")
	if err != nil {
		t.Fatal(err)
	}
	defer visitor.Close()
	if err := visitor.Mkdir("/mine", 0o755); err != nil {
		t.Fatalf("reserve mkdir through facade: %v", err)
	}
	if err := tss.WriteFile(visitor, "/mine/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tss.WriteFile(visitor, "/toplevel", []byte("x"), 0o644); tss.AsErrno(err) != tss.EACCES {
		t.Errorf("top-level write with only V = %v", err)
	}
}

func TestFacadeTCPServer(t *testing.T) {
	stop, addr, err := tss.StartFileServerTCP("127.0.0.1:0", tempDir(t), tss.FileServerOptions{
		Owner: "hostname:localhost",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cli, err := tss.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := tss.WriteFile(cli, "/t", []byte("over tcp"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := cli.Stat("/t")
	if err != nil || fi.Size != 8 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
}

func TestFacadeDSFSAndAdapter(t *testing.T) {
	nw := tss.NewSimNetwork()
	var servers []tss.DataServer
	var meta *tss.Client
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("n%d.sim", i)
		stop, err := tss.StartFileServerOn(nw, name, tempDir(t), tss.FileServerOptions{
			RootACL: map[string]string{"hostname:*": "rwlda"},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		cli, err := tss.DialSim(nw, name, "user.sim")
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if meta == nil {
			meta = cli
		}
		servers = append(servers, tss.DataServer{Name: name, FS: cli, Dir: "/data"})
	}
	dsfs, err := tss.NewDSFS(meta, "/tree", servers, "user.sim")
	if err != nil {
		t.Fatal(err)
	}
	a := tss.NewAdapter(tss.AdapterOptions{})
	if err := a.MountFS("/dsfs/vol", dsfs); err != nil {
		t.Fatal(err)
	}
	if err := tss.MkdirAll(a, "/dsfs/vol/out", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tss.WriteFile(a, "/dsfs/vol/out/r1", []byte("result"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := tss.ReadFile(a, "/dsfs/vol/out/r1")
	if err != nil || string(data) != "result" {
		t.Fatalf("dsfs through adapter: %q, %v", data, err)
	}
}

func TestFacadeDPFSAggregatesCapacity(t *testing.T) {
	local, err := tss.NewLocalFS(tempDir(t))
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := tss.NewLocalFS(tempDir(t))
	s2, _ := tss.NewLocalFS(tempDir(t))
	dpfs, err := tss.NewDPFS(local, []tss.DataServer{
		{Name: "a", FS: s1, Dir: "/d"},
		{Name: "b", FS: s2, Dir: "/d"},
	}, "me")
	if err != nil {
		t.Fatal(err)
	}
	if err := tss.WriteFile(dpfs, "/f", []byte("spread"), 0o644); err != nil {
		t.Fatal(err)
	}
	one, _ := s1.StatFS()
	all, err := dpfs.StatFS()
	if err != nil || all.TotalBytes < one.TotalBytes {
		t.Fatalf("aggregate statfs = %+v, %v", all, err)
	}
}

func TestFacadeCatalogDiscovery(t *testing.T) {
	nw := tss.NewSimNetwork()
	cat := tss.NewCatalog(time.Minute)
	stop, err := tss.StartFileServerOn(nw, "adv.sim", tempDir(t), tss.FileServerOptions{
		Catalogs:        []*tss.Catalog{cat},
		CatalogInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(3 * time.Second)
	for {
		if _, ok := cat.Lookup("adv.sim"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("server never appeared in the catalog")
		case <-time.After(5 * time.Millisecond):
		}
	}
	rep, _ := cat.Lookup("adv.sim")
	if rep.Owner != "hostname:adv.sim" || rep.TotalBytes <= 0 {
		t.Errorf("catalog report = %+v", rep)
	}
}

func TestFacadeGEMS(t *testing.T) {
	s1, _ := tss.NewLocalFS(tempDir(t))
	s2, _ := tss.NewLocalFS(tempDir(t))
	s3, _ := tss.NewLocalFS(tempDir(t))
	db, err := tss.NewDSDB([]tss.DataServer{
		{Name: "a", FS: s1}, {Name: "b", FS: s2}, {Name: "c", FS: s3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("r1", map[string]string{"k": "v"}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	repl := &tss.Replicator{DB: db, BudgetBytes: 1 << 20}
	if _, err := repl.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := db.Query(map[string]string{"k": "v"})
	if err != nil || len(recs) != 1 || len(recs[0].Replicas) != 3 {
		t.Fatalf("query = %+v, %v", recs, err)
	}
	aud := &tss.Auditor{DB: db, VerifyContent: true}
	rep, err := aud.Audit()
	if err != nil || rep.Missing != 0 {
		t.Fatalf("audit = %+v, %v", rep, err)
	}
}

func TestFacadeMirrorAndSync(t *testing.T) {
	a, _ := tss.NewLocalFS(tempDir(t))
	b, _ := tss.NewLocalFS(tempDir(t))
	m, err := tss.NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := tss.WriteFile(m, "/f", []byte("mirrored"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, r := range []tss.FileSystem{a, b} {
		data, err := tss.ReadFile(r, "/f")
		if err != nil || string(data) != "mirrored" {
			t.Errorf("replica %d: %q, %v", i, data, err)
		}
	}
	c, _ := tss.NewLocalFS(tempDir(t))
	if err := tss.SyncReplica(c, a, "/"); err != nil {
		t.Fatal(err)
	}
	if data, _ := tss.ReadFile(c, "/f"); string(data) != "mirrored" {
		t.Error("SyncReplica did not copy")
	}
}

func TestFacadeStriped(t *testing.T) {
	meta, _ := tss.NewLocalFS(tempDir(t))
	s1, _ := tss.NewLocalFS(tempDir(t))
	s2, _ := tss.NewLocalFS(tempDir(t))
	striped, err := tss.NewStriped(meta, []tss.DataServer{
		{Name: "a", FS: s1, Dir: "/d"},
		{Name: "b", FS: s2, Dir: "/d"},
	}, 1024, "me")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := tss.WriteFile(striped, "/big", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := tss.ReadFile(striped, "/big")
	if err != nil || len(got) != len(payload) {
		t.Fatalf("striped read: %d bytes, %v", len(got), err)
	}
}

func TestFacadeFsck(t *testing.T) {
	meta, _ := tss.NewLocalFS(tempDir(t))
	data, _ := tss.NewLocalFS(tempDir(t))
	dpfs, err := tss.NewDPFS(meta, []tss.DataServer{{Name: "x", FS: data, Dir: "/d"}}, "me")
	if err != nil {
		t.Fatal(err)
	}
	if err := tss.WriteFile(dpfs, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Damage: delete the data file behind the stub.
	ents, _ := data.ReadDir("/d")
	for _, e := range ents {
		data.Unlink("/d/" + e.Name)
	}
	report, err := tss.Fsck(dpfs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DanglingStubs) != 1 {
		t.Fatalf("dangling = %v", report.DanglingStubs)
	}
	if _, err := tss.Fsck(dpfs, true); err != nil {
		t.Fatal(err)
	}
	after, _ := tss.Fsck(dpfs, false)
	if !after.Clean() {
		t.Errorf("after repair: %s", after)
	}
	// Fsck on a non-Dist filesystem is rejected.
	if _, err := tss.Fsck(meta, false); err == nil {
		t.Error("fsck of plain fs accepted")
	}
}

func TestFacadeRecoverIndex(t *testing.T) {
	s1, _ := tss.NewLocalFS(tempDir(t))
	s2, _ := tss.NewLocalFS(tempDir(t))
	servers := []tss.DataServer{{Name: "a", FS: s1}, {Name: "b", FS: s2}}
	db, err := tss.NewDSDB(servers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put("rec1", nil, []byte("survive")); err != nil {
		t.Fatal(err)
	}
	idx, err := tss.RecoverIndex(servers)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := tss.NewDSDBWithIndex(idx, servers)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := db2.Index().List()
	if len(recs) != 1 {
		t.Fatalf("recovered %d records", len(recs))
	}
	data, err := db2.Read(recs[0])
	if err != nil || string(data) != "survive" {
		t.Fatalf("recovered read: %q, %v", data, err)
	}
}

func TestFacadeCatalogAdapter(t *testing.T) {
	nw := tss.NewSimNetwork()
	cat := tss.NewCatalog(time.Minute)
	stop, err := tss.StartFileServerOn(nw, "disc.sim", tempDir(t), tss.FileServerOptions{
		RootACL:         map[string]string{"hostname:*": "rwlda"},
		Catalogs:        []*tss.Catalog{cat},
		CatalogInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(3 * time.Second)
	for {
		if _, ok := cat.Lookup("disc.sim"); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("never cataloged")
		case <-time.After(5 * time.Millisecond):
		}
	}
	a := tss.NewCatalogAdapter(tss.AdapterOptions{}, cat, nw, "roamer.sim")
	// No explicit mounts: the default namespace resolves via catalog.
	if err := tss.WriteFile(a, "/chirp/disc.sim/found", []byte("via catalog"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := tss.ReadFile(a, "/chirp/disc.sim/found")
	if err != nil || string(data) != "via catalog" {
		t.Fatalf("catalog-resolved read: %q, %v", data, err)
	}
	if _, err := a.Stat("/chirp/unknown.sim/x"); tss.AsErrno(err) != tss.ENOENT {
		t.Errorf("unknown host = %v", err)
	}
}

func TestFacadeTicketAuth(t *testing.T) {
	issuer, err := tss.NewTicketIssuer()
	if err != nil {
		t.Fatal(err)
	}
	nw := tss.NewSimNetwork()
	stop, err := tss.StartFileServerOn(nw, "tik.sim", tempDir(t), tss.FileServerOptions{
		RootACL:       map[string]string{"ticket:collab-*": "rwl"},
		TicketIssuers: []*tss.TicketIssuer{issuer},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	ticket, key, err := issuer.Issue("collab-7", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := tss.DialSimWithTicket(nw, "tik.sim", ticket, key)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	who, _ := cli.Whoami()
	if who != "ticket:collab-7" {
		t.Errorf("whoami = %q", who)
	}
	if err := tss.WriteFile(cli, "/shared", []byte("by ticket"), 0o644); err != nil {
		t.Fatalf("ticket holder denied: %v", err)
	}
	// A ticket from a different issuer is rejected at authentication.
	rogue, _ := tss.NewTicketIssuer()
	badTicket, badKey, _ := rogue.Issue("collab-9", time.Hour)
	if _, err := tss.DialSimWithTicket(nw, "tik.sim", badTicket, badKey); err == nil {
		t.Error("rogue ticket authenticated")
	}
}
