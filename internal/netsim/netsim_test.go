package netsim

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeByteTransfer(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	msg := []byte("hello over the sim link")
	go func() {
		a.Write(msg)
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
}

func TestPipeLatency(t *testing.T) {
	prof := LinkProfile{Latency: 30 * time.Millisecond}
	a, b := Pipe(prof)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~30ms", d)
	}
}

func TestPipeBandwidth(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms.
	prof := LinkProfile{Bandwidth: 10 << 20}
	a, b := Pipe(prof)
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() {
		for off := 0; off < len(payload); off += 64 << 10 {
			a.Write(payload[off : off+64<<10])
		}
	}()
	buf := make([]byte, 64<<10)
	total := 0
	for total < len(payload) {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	d := time.Since(start)
	if d < 70*time.Millisecond || d > 400*time.Millisecond {
		t.Errorf("1MB at 10MB/s took %v, want ~100ms", d)
	}
}

func TestPipeCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pipe(Loopback)
	a.Write([]byte("tail"))
	a.Close()
	data, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "tail" {
		t.Errorf("drained %q", data)
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write on closed conn succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err := b.Read(buf)
	if err == nil {
		t.Fatal("read returned without data or deadline")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline ignored")
	}
	// Clearing the deadline allows a subsequent read.
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("y"))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestNetworkDialListen(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("server.sim")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		io.Copy(c, c) // echo
	}()
	c, err := n.DialFrom("laptop.cse.nd.edu", "server.sim", Loopback)
	if err != nil {
		t.Fatal(err)
	}
	if c.RemoteAddr().String() != "server.sim" {
		t.Errorf("remote addr = %v", c.RemoteAddr())
	}
	if c.LocalAddr().String() != "laptop.cse.nd.edu" {
		t.Errorf("local addr = %v", c.LocalAddr())
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("echo = %q", buf)
	}
	c.Close()
	wg.Wait()
}

func TestNetworkDialUnknown(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere", Loopback); err == nil {
		t.Error("dialing unknown address succeeded")
	}
}

func TestNetworkDuplicateListen(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Error("duplicate listen succeeded")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("accept returned conn after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("accept did not unblock")
	}
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
}

func TestRTTAmplification(t *testing.T) {
	// A request/response over a 5 ms one-way link should take >= 10 ms;
	// this is the mechanism behind the NFS-vs-Chirp latency figures.
	prof := LinkProfile{Latency: 5 * time.Millisecond}
	a, b := Pipe(prof)
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 1)
		io.ReadFull(b, buf)
		b.Write(buf)
	}()
	start := time.Now()
	a.Write([]byte("q"))
	buf := make([]byte, 1)
	io.ReadFull(a, buf)
	if d := time.Since(start); d < 9*time.Millisecond {
		t.Errorf("RTT = %v, want >= 10ms", d)
	}
}
