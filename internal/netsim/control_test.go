package netsim

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestResetUnblocksParkedReader is the regression test for the
// partition-mid-RPC hang: a reader parked inside shapedQueue.read with
// nothing buffered must surface an error promptly when the link is
// severed, not wait forever for bytes that will never arrive.
func TestResetUnblocksParkedReader(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park in read()
	b.Reset()
	select {
	case err := <-done:
		if !errors.Is(err, ErrReset) {
			t.Errorf("read after reset = %v, want ErrReset", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after reset")
	}
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Errorf("peer read after reset = %v, want ErrReset", err)
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Errorf("write after reset = %v, want ErrReset", err)
	}
}

// TestResetDropsShapedBacklog covers the in-flight shaped-wait case: a
// reader is blocked on a chunk whose delivery time is far in the
// future (WAN latency), and a partition severs the link before the
// chunk becomes ready. The reader must get ErrReset immediately — not
// after the latency elapses, and never the dropped bytes.
func TestResetDropsShapedBacklog(t *testing.T) {
	a, b := Pipe(LinkProfile{Latency: 10 * time.Second})
	defer a.Close()
	defer b.Close()
	if _, err := a.Write([]byte("never delivered")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	b.Reset()
	select {
	case err := <-done:
		if !errors.Is(err, ErrReset) {
			t.Errorf("read = %v, want ErrReset", err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Errorf("reset took %v to surface", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader waited out the shaped backlog instead of failing")
	}
}

// TestCloseUnblocksParkedReader: an orderly close during an in-flight
// read wait surfaces EOF promptly (the FIN path, kept distinct from
// reset).
func TestCloseUnblocksParkedReader(t *testing.T) {
	a, b := Pipe(Loopback)
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Errorf("read after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after close")
	}
}

func TestPartitionSeversLiveConnAndRefusesDials(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	c, err := n.DialFrom("alice", "server", Loopback)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	n.Partition("alice", "server")
	if !n.Partitioned("alice", "server") {
		t.Error("Partitioned() = false after Partition")
	}
	if _, err := c.Write([]byte("ping")); !errors.Is(err, ErrReset) {
		t.Errorf("write across partition = %v, want ErrReset", err)
	}
	if _, err := n.DialFrom("alice", "server", Loopback); err == nil ||
		!strings.Contains(err.Error(), "partition") {
		t.Errorf("dial across partition = %v, want partition refusal", err)
	}
	// An unrelated host still connects.
	if c2, err := n.DialFrom("bob", "server", Loopback); err != nil {
		t.Errorf("unrelated dial during partition: %v", err)
	} else {
		c2.Close()
	}

	n.Heal("alice", "server")
	c3, err := n.DialFrom("alice", "server", Loopback)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c3.Write([]byte("pong"))
	if _, err := io.ReadFull(c3, buf); err != nil {
		t.Errorf("echo after heal: %v", err)
	}
	c3.Close()
}

func TestSetLinkProfileReshapesLiveLink(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	c, err := n.DialFrom("alice", "server", Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Baseline round trip is effectively instant.
	buf := make([]byte, 1)
	c.Write([]byte("a"))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	// Slow only the server→client direction of the live link.
	n.SetLinkProfileOneWay("server", "alice", LinkProfile{Latency: 40 * time.Millisecond})
	start := time.Now()
	c.Write([]byte("b"))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("asymmetric slow echo took %v, want >= ~40ms", d)
	}
	// A fresh dial inherits the override without asking for it.
	c2, err := n.DialFrom("alice", "server", Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	start = time.Now()
	c2.Write([]byte("c"))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("override not inherited by new dial: echo took %v", d)
	}
	// Clearing overrides restores dial-time shaping for new links.
	n.ClearLinkProfiles()
	c3, err := n.DialFrom("alice", "server", Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	start = time.Now()
	c3.Write([]byte("d"))
	if _, err := io.ReadFull(c3, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("echo after ClearLinkProfiles took %v, want fast", d)
	}
}
