// Package netsim provides in-process network links with configurable
// latency and bandwidth, and a registry that lets servers listen and
// clients dial by symbolic host name.
//
// The paper's evaluation runs over real 100 Mb/s and 1 Gb/s Ethernet
// and a transatlantic WAN. This package substitutes shaped in-memory
// pipes so the same experiments run on one machine: each direction of a
// link delays bytes by a one-way latency and meters them through a
// serialization-rate model (store-and-forward), which reproduces the
// round-trip amplification and bandwidth ceilings that drive Figures
// 4-5 and the SP5 table.
package netsim

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// LinkProfile describes one direction of a link.
type LinkProfile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the serialization rate in bytes per second;
	// zero means unlimited.
	Bandwidth int64
}

// Common profiles, matching the hardware in the paper.
var (
	// Loopback is an unshaped in-memory link.
	Loopback = LinkProfile{}
	// GigE approximates commodity gigabit Ethernet (Figures 4-6):
	// 125 MB/s serialization, 50 µs one-way latency.
	GigE = LinkProfile{Latency: 50 * time.Microsecond, Bandwidth: 125 << 20}
	// Fast100 approximates 100 Mb/s Ethernet (§8, LAN runs).
	Fast100 = LinkProfile{Latency: 100 * time.Microsecond, Bandwidth: 12_500_000}
	// WAN100 approximates the paper's ~100 Mb/s wide-area link with
	// transatlantic latency (§8, WAN/TSS run).
	WAN100 = LinkProfile{Latency: 55 * time.Millisecond, Bandwidth: 12_500_000}
)

// Addr is a symbolic network address on a simulated network.
type Addr string

// Network returns "sim".
func (Addr) Network() string { return "sim" }

// String returns the symbolic address.
func (a Addr) String() string { return string(a) }

type chunk struct {
	data  []byte
	ready time.Time
}

// shapedQueue is one direction of a link: a byte queue whose chunks
// become visible to the reader only after latency plus serialization
// delay has elapsed.
type shapedQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	prof     LinkProfile
	chunks   []chunk
	pos      int // read offset within chunks[0]
	nextFree time.Time
	closed   bool
	deadline time.Time
}

func newShapedQueue(prof LinkProfile) *shapedQueue {
	q := &shapedQueue{prof: prof}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shapedQueue) write(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, io.ErrClosedPipe
	}
	now := time.Now()
	start := now
	if q.nextFree.After(now) {
		start = q.nextFree
	}
	var tx time.Duration
	if q.prof.Bandwidth > 0 {
		tx = time.Duration(float64(len(p)) / float64(q.prof.Bandwidth) * float64(time.Second))
	}
	q.nextFree = start.Add(tx)
	ready := q.nextFree.Add(q.prof.Latency)
	buf := make([]byte, len(p))
	copy(buf, p)
	q.chunks = append(q.chunks, chunk{data: buf, ready: ready})
	q.cond.Broadcast()
	return len(p), nil
}

// spinThreshold is the horizon below which the reader busy-yields
// instead of arming a timer: OS timer granularity (about a millisecond
// on many hosts and containers) would otherwise quantize simulated
// sub-millisecond latencies and corrupt every latency figure.
const spinThreshold = 2 * time.Millisecond

func (q *shapedQueue) read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		var nearest time.Time
		if len(q.chunks) > 0 {
			head := q.chunks[0]
			now := time.Now()
			if !head.ready.After(now) {
				n := copy(p, head.data[q.pos:])
				q.pos += n
				if q.pos == len(head.data) {
					q.chunks = q.chunks[1:]
					q.pos = 0
				}
				return n, nil
			}
			nearest = head.ready
		} else if q.closed {
			return 0, io.EOF
		}
		if !q.deadline.IsZero() {
			if !time.Now().Before(q.deadline) {
				return 0, os.ErrDeadlineExceeded
			}
			if nearest.IsZero() || q.deadline.Before(nearest) {
				nearest = q.deadline
			}
		}
		if !nearest.IsZero() && time.Until(nearest) < spinThreshold {
			// Busy-yield until the due time: precise where timers are
			// not. New writes are observed on the next loop iteration.
			q.mu.Unlock()
			runtime.Gosched()
			q.mu.Lock()
			continue
		}
		if !nearest.IsZero() {
			q.wakeAt(nearest)
		}
		q.cond.Wait()
	}
}

// wakeAt arranges a broadcast at time t. Caller holds q.mu.
func (q *shapedQueue) wakeAt(t time.Time) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, q.cond.Broadcast)
}

func (q *shapedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *shapedQueue) setDeadline(t time.Time) {
	q.mu.Lock()
	q.deadline = t
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Conn is one endpoint of a simulated link. It implements net.Conn.
type Conn struct {
	recv, send *shapedQueue
	local      Addr
	remote     Addr
	closeOnce  sync.Once
}

var _ net.Conn = (*Conn)(nil)

// Read reads bytes that have arrived at this endpoint.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write queues bytes toward the peer, subject to the link profile.
func (c *Conn) Write(p []byte) (int, error) { return c.send.write(p) }

// Close closes both directions of the connection. The peer drains any
// delivered data and then reads EOF, like a TCP FIN.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.send.close()
		c.recv.close()
	})
	return nil
}

// LocalAddr returns the symbolic local address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the symbolic remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetWriteDeadline is accepted and ignored: writes never block.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Pipe returns the two ends of a symmetric link with the given profile
// in each direction.
func Pipe(prof LinkProfile) (client, server *Conn) {
	return PipeNamed(prof, "client", "server")
}

// PipeNamed is Pipe with explicit endpoint names, which appear as the
// connection addresses (and hence in hostname authentication).
func PipeNamed(prof LinkProfile, clientName, serverName string) (client, server *Conn) {
	cToS := newShapedQueue(prof)
	sToC := newShapedQueue(prof)
	client = &Conn{recv: sToC, send: cToS, local: Addr(clientName), remote: Addr(serverName)}
	server = &Conn{recv: cToS, send: sToC, local: Addr(serverName), remote: Addr(clientName)}
	return client, server
}

// Network is a registry of simulated hosts: servers listen on symbolic
// addresses and clients dial them, receiving shaped connections.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	nextID    int
}

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// Listener accepts simulated connections. It implements net.Listener.
type Listener struct {
	net    *Network
	addr   Addr
	accept chan *Conn
	done   chan struct{}
	once   sync.Once
}

var _ net.Listener = (*Listener)(nil)

// Listen registers a listener on the symbolic address addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %q already in use", addr)
	}
	l := &Listener{
		net:    n,
		addr:   Addr(addr),
		accept: make(chan *Conn, 16),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, string(l.addr))
		l.net.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's symbolic address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial connects to addr with the given link profile, using an
// auto-generated client host name.
func (n *Network) Dial(addr string, prof LinkProfile) (net.Conn, error) {
	n.mu.Lock()
	n.nextID++
	name := fmt.Sprintf("client%d.sim", n.nextID)
	n.mu.Unlock()
	return n.DialFrom(name, addr, prof)
}

// DialFrom connects to addr, presenting the given client host name
// (visible to hostname authentication on the server).
func (n *Network) DialFrom(clientName, addr string, prof LinkProfile) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused: no listener on %q", addr)
	}
	client, server := PipeNamed(prof, clientName, addr)
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("netsim: connection refused: listener on %q closed", addr)
	}
}
