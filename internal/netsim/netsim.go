// Package netsim provides in-process network links with configurable
// latency and bandwidth, and a registry that lets servers listen and
// clients dial by symbolic host name.
//
// The paper's evaluation runs over real 100 Mb/s and 1 Gb/s Ethernet
// and a transatlantic WAN. This package substitutes shaped in-memory
// pipes so the same experiments run on one machine: each direction of a
// link delays bytes by a one-way latency and meters them through a
// serialization-rate model (store-and-forward), which reproduces the
// round-trip amplification and bandwidth ceilings that drive Figures
// 4-5 and the SP5 table.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// ErrReset is the error surfaced by reads and writes on a connection
// severed by a simulated partition (Network.Partition, Conn.Reset): the
// in-memory analogue of ECONNRESET. Unlike an orderly Close — which
// lets the peer drain delivered data and then read EOF, like a TCP FIN
// — a reset drops everything in flight, so an RPC caught mid-partition
// fails immediately instead of waiting on bytes that will never arrive.
var ErrReset = errors.New("netsim: connection reset by partition")

// LinkProfile describes one direction of a link.
type LinkProfile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the serialization rate in bytes per second;
	// zero means unlimited.
	Bandwidth int64
}

// Common profiles, matching the hardware in the paper.
var (
	// Loopback is an unshaped in-memory link.
	Loopback = LinkProfile{}
	// GigE approximates commodity gigabit Ethernet (Figures 4-6):
	// 125 MB/s serialization, 50 µs one-way latency.
	GigE = LinkProfile{Latency: 50 * time.Microsecond, Bandwidth: 125 << 20}
	// Fast100 approximates 100 Mb/s Ethernet (§8, LAN runs).
	Fast100 = LinkProfile{Latency: 100 * time.Microsecond, Bandwidth: 12_500_000}
	// WAN100 approximates the paper's ~100 Mb/s wide-area link with
	// transatlantic latency (§8, WAN/TSS run).
	WAN100 = LinkProfile{Latency: 55 * time.Millisecond, Bandwidth: 12_500_000}
)

// Addr is a symbolic network address on a simulated network.
type Addr string

// Network returns "sim".
func (Addr) Network() string { return "sim" }

// String returns the symbolic address.
func (a Addr) String() string { return string(a) }

type chunk struct {
	data  []byte
	ready time.Time
}

// shapedQueue is one direction of a link: a byte queue whose chunks
// become visible to the reader only after latency plus serialization
// delay has elapsed.
type shapedQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	prof     LinkProfile
	chunks   []chunk
	pos      int // read offset within chunks[0]
	nextFree time.Time
	closed   bool
	failErr  error // non-nil after reset: reads and writes fail with it
	deadline time.Time
}

func newShapedQueue(prof LinkProfile) *shapedQueue {
	q := &shapedQueue{prof: prof}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shapedQueue) write(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failErr != nil {
		return 0, q.failErr
	}
	if q.closed {
		return 0, io.ErrClosedPipe
	}
	now := time.Now()
	start := now
	if q.nextFree.After(now) {
		start = q.nextFree
	}
	var tx time.Duration
	if q.prof.Bandwidth > 0 {
		tx = time.Duration(float64(len(p)) / float64(q.prof.Bandwidth) * float64(time.Second))
	}
	q.nextFree = start.Add(tx)
	ready := q.nextFree.Add(q.prof.Latency)
	buf := make([]byte, len(p))
	copy(buf, p)
	q.chunks = append(q.chunks, chunk{data: buf, ready: ready})
	q.cond.Broadcast()
	return len(p), nil
}

// spinThreshold is the horizon below which the reader busy-yields
// instead of arming a timer: OS timer granularity (about a millisecond
// on many hosts and containers) would otherwise quantize simulated
// sub-millisecond latencies and corrupt every latency figure.
const spinThreshold = 2 * time.Millisecond

func (q *shapedQueue) read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.failErr != nil {
			// Reset severs the stream with loss: queued data was dropped
			// and a reader parked in this wait — even one that blocked
			// before the reset — fails immediately rather than hanging
			// on bytes that will never become ready.
			return 0, q.failErr
		}
		var nearest time.Time
		if len(q.chunks) > 0 {
			head := q.chunks[0]
			now := time.Now()
			if !head.ready.After(now) {
				n := copy(p, head.data[q.pos:])
				q.pos += n
				if q.pos == len(head.data) {
					q.chunks = q.chunks[1:]
					q.pos = 0
				}
				return n, nil
			}
			nearest = head.ready
		} else if q.closed {
			return 0, io.EOF
		}
		if !q.deadline.IsZero() {
			if !time.Now().Before(q.deadline) {
				return 0, os.ErrDeadlineExceeded
			}
			if nearest.IsZero() || q.deadline.Before(nearest) {
				nearest = q.deadline
			}
		}
		if !nearest.IsZero() && time.Until(nearest) < spinThreshold {
			// Busy-yield until the due time: precise where timers are
			// not. New writes are observed on the next loop iteration.
			q.mu.Unlock()
			runtime.Gosched()
			q.mu.Lock()
			continue
		}
		if !nearest.IsZero() {
			q.wakeAt(nearest)
		}
		q.cond.Wait()
	}
}

// wakeAt arranges a broadcast at time t. Caller holds q.mu. The timer
// callback re-acquires the mutex before broadcasting: a bare Broadcast
// could fire in the window between the caller computing the wake time
// and parking in cond.Wait, and a wakeup lost there would strand the
// reader past the chunk's ready time with nothing left to wake it.
func (q *shapedQueue) wakeAt(t time.Time) {
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	time.AfterFunc(d, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
}

func (q *shapedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// reset severs the queue with loss: pending chunks are dropped and
// every current and future read or write fails with err. Used by
// partitions, where an orderly FIN would be a lie.
func (q *shapedQueue) reset(err error) {
	q.mu.Lock()
	if q.failErr == nil {
		q.failErr = err
		q.chunks = nil
		q.pos = 0
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// setProfile swaps the link shaping at runtime; bytes already queued
// keep the delivery times computed under the old profile, bytes written
// afterwards are shaped by the new one.
func (q *shapedQueue) setProfile(prof LinkProfile) {
	q.mu.Lock()
	q.prof = prof
	q.mu.Unlock()
}

func (q *shapedQueue) setDeadline(t time.Time) {
	q.mu.Lock()
	q.deadline = t
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Conn is one endpoint of a simulated link. It implements net.Conn.
type Conn struct {
	recv, send *shapedQueue
	local      Addr
	remote     Addr
	closeOnce  sync.Once
	// link is the registry entry for network-created connections, so
	// Close can unregister; nil for bare Pipe/PipeNamed links.
	link *link
}

var _ net.Conn = (*Conn)(nil)

// Read reads bytes that have arrived at this endpoint.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write queues bytes toward the peer, subject to the link profile.
func (c *Conn) Write(p []byte) (int, error) { return c.send.write(p) }

// Close closes both directions of the connection. The peer drains any
// delivered data and then reads EOF, like a TCP FIN.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.send.close()
		c.recv.close()
		if c.link != nil {
			c.link.net.unregister(c.link)
		}
	})
	return nil
}

// Reset severs both directions with loss: queued bytes vanish and every
// blocked or future Read/Write on either endpoint fails with ErrReset.
// This is what a partition does to a live connection.
func (c *Conn) Reset() {
	c.send.reset(ErrReset)
	c.recv.reset(ErrReset)
	if c.link != nil {
		c.link.net.unregister(c.link)
	}
}

// SetProfile reshapes this endpoint's outbound direction at runtime.
// Bytes already in flight keep their old delivery schedule.
func (c *Conn) SetProfile(prof LinkProfile) {
	c.send.setProfile(prof)
}

// LocalAddr returns the symbolic local address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the symbolic remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetWriteDeadline is accepted and ignored: writes never block.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// Pipe returns the two ends of a symmetric link with the given profile
// in each direction.
func Pipe(prof LinkProfile) (client, server *Conn) {
	return PipeNamed(prof, "client", "server")
}

// PipeNamed is Pipe with explicit endpoint names, which appear as the
// connection addresses (and hence in hostname authentication).
func PipeNamed(prof LinkProfile, clientName, serverName string) (client, server *Conn) {
	cToS := newShapedQueue(prof)
	sToC := newShapedQueue(prof)
	client = &Conn{recv: sToC, send: cToS, local: Addr(clientName), remote: Addr(serverName)}
	server = &Conn{recv: cToS, send: sToC, local: Addr(serverName), remote: Addr(clientName)}
	return client, server
}

// Network is a registry of simulated hosts: servers listen on symbolic
// addresses and clients dial them, receiving shaped connections. Beyond
// static shaping at dial time, a Network supports runtime link control —
// partitioning host pairs, healing them, and reshaping live links — so
// fault schedules can be applied to a running stack, not just baked in
// at connection setup.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	nextID    int
	links     map[*link]struct{}
	// blocked holds partitioned unordered host pairs: dials between them
	// are refused until healed.
	blocked map[pairKey]struct{}
	// profiles holds directional shaping overrides, keyed [from, to],
	// applied on top of the profile passed to Dial/DialFrom.
	profiles map[pairKey]LinkProfile
}

// link is one live connection in the registry, with both endpoints and
// both directed queues, so partitions and reshaping can find it by host
// pair.
type link struct {
	net            *Network
	client, server string
	cToS, sToC     *shapedQueue
	c1, c2         *Conn
}

// pairKey names a host pair; order matters for profile overrides
// (directional) and is normalized by the callers for partitions
// (symmetric).
type pairKey struct{ a, b string }

func orderedPair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		links:     make(map[*link]struct{}),
		blocked:   make(map[pairKey]struct{}),
		profiles:  make(map[pairKey]LinkProfile),
	}
}

func (n *Network) unregister(l *link) {
	n.mu.Lock()
	delete(n.links, l)
	n.mu.Unlock()
}

// Partition cuts host a from host b: every live connection between them
// is reset (blocked reads and writes fail with ErrReset immediately —
// an RPC caught mid-flight does not hang) and new dials between them
// are refused until Heal. Partitions are symmetric.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	n.blocked[orderedPair(a, b)] = struct{}{}
	victims := n.linksBetween(a, b)
	n.mu.Unlock()
	for _, l := range victims {
		l.c1.Reset()
		l.c2.Reset()
	}
}

// Heal removes the partition between a and b. Connections reset by the
// partition stay dead — like real TCP, recovery means redialing — but
// new dials succeed again.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	delete(n.blocked, orderedPair(a, b))
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.blocked = make(map[pairKey]struct{})
	n.mu.Unlock()
}

// Partitioned reports whether hosts a and b are currently partitioned.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.blocked[orderedPair(a, b)]
	return ok
}

// SetLinkProfile reshapes traffic between a and b in both directions:
// live links switch immediately, future dials between the pair inherit
// the override regardless of the profile passed to Dial.
func (n *Network) SetLinkProfile(a, b string, prof LinkProfile) {
	n.SetLinkProfileOneWay(a, b, prof)
	n.SetLinkProfileOneWay(b, a, prof)
}

// SetLinkProfileOneWay reshapes only the from→to direction — the
// asymmetric slowness of a congested uplink. The reverse direction
// keeps its current shaping.
func (n *Network) SetLinkProfileOneWay(from, to string, prof LinkProfile) {
	n.mu.Lock()
	n.profiles[pairKey{from, to}] = prof
	victims := n.linksBetween(from, to)
	n.mu.Unlock()
	for _, l := range victims {
		if l.client == from {
			l.cToS.setProfile(prof)
		} else {
			l.sToC.setProfile(prof)
		}
	}
}

// ClearLinkProfiles drops every shaping override; live links keep their
// current profiles, future dials shape by the dial-time profile again.
func (n *Network) ClearLinkProfiles() {
	n.mu.Lock()
	n.profiles = make(map[pairKey]LinkProfile)
	n.mu.Unlock()
}

// linksBetween returns the live links whose endpoints are exactly the
// hosts a and b (in either orientation). Caller holds n.mu.
func (n *Network) linksBetween(a, b string) []*link {
	var out []*link
	for l := range n.links {
		if (l.client == a && l.server == b) || (l.client == b && l.server == a) {
			out = append(out, l)
		}
	}
	return out
}

// Listener accepts simulated connections. It implements net.Listener.
type Listener struct {
	net    *Network
	addr   Addr
	accept chan *Conn
	done   chan struct{}
	once   sync.Once
}

var _ net.Listener = (*Listener)(nil)

// Listen registers a listener on the symbolic address addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %q already in use", addr)
	}
	l := &Listener{
		net:    n,
		addr:   Addr(addr),
		accept: make(chan *Conn, 16),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unregisters the listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, string(l.addr))
		l.net.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's symbolic address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial connects to addr with the given link profile, using an
// auto-generated client host name.
func (n *Network) Dial(addr string, prof LinkProfile) (net.Conn, error) {
	n.mu.Lock()
	n.nextID++
	name := fmt.Sprintf("client%d.sim", n.nextID)
	n.mu.Unlock()
	return n.DialFrom(name, addr, prof)
}

// DialFrom connects to addr, presenting the given client host name
// (visible to hostname authentication on the server). Dials across a
// partitioned host pair are refused, and directional profile overrides
// installed with SetLinkProfile apply on top of prof.
func (n *Network) DialFrom(clientName, addr string, prof LinkProfile) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	if _, cut := n.blocked[orderedPair(clientName, addr)]; cut {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: no route from %q to %q: partitioned", clientName, addr)
	}
	toProf, hasTo := n.profiles[pairKey{clientName, addr}]
	fromProf, hasFrom := n.profiles[pairKey{addr, clientName}]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: connection refused: no listener on %q", addr)
	}
	client, server := PipeNamed(prof, clientName, addr)
	if hasTo {
		client.send.setProfile(toProf)
	}
	if hasFrom {
		server.send.setProfile(fromProf)
	}
	lk := &link{
		net:    n,
		client: clientName,
		server: addr,
		cToS:   client.send,
		sToC:   server.send,
		c1:     client,
		c2:     server,
	}
	client.link, server.link = lk, lk
	n.mu.Lock()
	n.links[lk] = struct{}{}
	n.mu.Unlock()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		n.unregister(lk)
		return nil, fmt.Errorf("netsim: connection refused: listener on %q closed", addr)
	}
}
