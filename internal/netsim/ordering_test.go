package netsim

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

// Property: whatever the chunking on the sender side and the link
// profile, the receiver observes exactly the sent byte stream, in
// order — the TCP property every layer above relies on.
func TestByteStreamIntegrityProperty(t *testing.T) {
	profiles := []LinkProfile{
		Loopback,
		{Latency: 200 * time.Microsecond},
		{Bandwidth: 4 << 20},
		{Latency: 100 * time.Microsecond, Bandwidth: 8 << 20},
	}
	for pi, prof := range profiles {
		rng := rand.New(rand.NewSource(int64(pi) + 3))
		payload := make([]byte, 64<<10)
		rng.Read(payload)
		a, b := Pipe(prof)
		go func() {
			defer a.Close()
			rest := payload
			for len(rest) > 0 {
				n := rng.Intn(4096) + 1
				if n > len(rest) {
					n = len(rest)
				}
				if _, err := a.Write(rest[:n]); err != nil {
					return
				}
				rest = rest[n:]
			}
		}()
		got, err := io.ReadAll(b)
		b.Close()
		if err != nil {
			t.Fatalf("profile %d: %v", pi, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("profile %d: stream corrupted (%d vs %d bytes)", pi, len(got), len(payload))
		}
	}
}

// Bandwidth shaping is cumulative across writes: many small writes
// take as long as one large one.
func TestShapingIsCumulative(t *testing.T) {
	prof := LinkProfile{Bandwidth: 5 << 20} // 5 MB/s
	const total = 1 << 20                   // 1 MB -> ~200 ms
	measure := func(chunk int) time.Duration {
		a, b := Pipe(prof)
		defer a.Close()
		defer b.Close()
		go func() {
			buf := make([]byte, chunk)
			for sent := 0; sent < total; sent += chunk {
				a.Write(buf)
			}
		}()
		start := time.Now()
		got := 0
		buf := make([]byte, 64<<10)
		for got < total {
			n, err := b.Read(buf)
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
		return time.Since(start)
	}
	small := measure(1 << 10)
	large := measure(256 << 10)
	for name, d := range map[string]time.Duration{"small": small, "large": large} {
		if d < 150*time.Millisecond || d > 600*time.Millisecond {
			t.Errorf("%s chunks: 1MB at 5MB/s took %v, want ~200ms", name, d)
		}
	}
}
