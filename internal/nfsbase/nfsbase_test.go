package nfsbase

import (
	"bytes"
	"testing"
	"time"

	"net"

	"tss/internal/netsim"
	"tss/internal/vfs"
)

func startPair(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("nfs.sim")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	c, err := Dial(ClientConfig{
		Dial:    func() (net.Conn, error) { return nw.Dial("nfs.sim", netsim.Loopback) },
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

func TestBasicCycle(t *testing.T) {
	c, _ := startPair(t)
	if err := c.Mkdir("/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/dir/file", []byte("nfs payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(c, "/dir/file")
	if err != nil || string(data) != "nfs payload" {
		t.Fatalf("read = %q, %v", data, err)
	}
	fi, err := c.Stat("/dir/file")
	if err != nil || fi.Size != 11 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	ents, err := c.ReadDir("/dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "file" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	if err := c.Rename("/dir/file", "/dir/file2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/dir/file2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/dir"); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	c, _ := startPair(t)
	if _, err := c.Stat("/missing"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("stat missing = %v", err)
	}
	if _, err := c.Stat("/a/b/c"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("deep missing = %v", err)
	}
	if err := vfs.WriteFile(c, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/f", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("O_EXCL on existing = %v", err)
	}
	if _, err := c.ReadDir("/f"); vfs.AsErrno(err) != vfs.ENOTDIR {
		t.Errorf("readdir of file = %v", err)
	}
}

func TestLargeIOSplitsInto4KPackets(t *testing.T) {
	c, _ := startPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 3*MaxRPCData+17)
	if err := vfs.WriteFile(c, "/big", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(c, "/big")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("large io corrupted: %d vs %d bytes, %v", len(got), len(payload), err)
	}
}

func TestTruncateThroughHandle(t *testing.T) {
	c, _ := startPair(t)
	if err := vfs.WriteFile(c, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate("/f", 3); err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(c, "/f")
	if string(data) != "012" {
		t.Errorf("after truncate: %q", data)
	}
	f, err := c.Open("/f", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Ftruncate(1); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Fstat()
	if err != nil || fi.Size != 1 {
		t.Errorf("fstat after ftruncate = %+v, %v", fi, err)
	}
}

func TestStatelessHandleSurvivesNewConnection(t *testing.T) {
	// NFS semantics: handles carry no server state, so a fresh
	// connection can use a handle obtained earlier.
	c, srv := startPair(t)
	if err := vfs.WriteFile(c, "/f", []byte("stateless"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := f.(*nfsFile).h
	_ = srv
	// New client, same handle: must still work.
	nw := netsim.NewNetwork()
	_ = nw
	c2 := &nfsFile{c: c, h: h, name: "f"}
	buf := make([]byte, 9)
	n, err := c2.Pread(buf, 0)
	if err != nil || string(buf[:n]) != "stateless" {
		t.Fatalf("handle reuse = %q, %v", buf[:n], err)
	}
}

func TestStatFS(t *testing.T) {
	c, _ := startPair(t)
	info, err := c.StatFS()
	if err != nil || info.TotalBytes <= 0 {
		t.Fatalf("statfs = %+v, %v", info, err)
	}
}

// The defining behaviour: path resolution costs one RPC per component.
// Over a high-latency link, stat of a deep path must cost proportional
// round trips, unlike Chirp's single round trip.
func TestPerComponentLookupCost(t *testing.T) {
	srv, err := NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("nfs.sim")
	defer l.Close()
	go srv.Serve(l)
	lat := 3 * time.Millisecond
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.Dial("nfs.sim", netsim.LinkProfile{Latency: lat})
		},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/a/b/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Stat("/a/b/f"); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	// Three components -> three lookup RPCs -> at least 3 RTTs = 18 ms.
	if d < 3*2*lat {
		t.Errorf("deep stat took %v, want >= %v (3 RTTs)", d, 3*2*lat)
	}
}
