// Package nfsbase implements the NFS baseline the paper compares
// against in §7 (Figures 4 and 5).
//
// It is a simplified NFSv2-style protocol that reproduces, faithfully,
// the two properties the paper attributes to NFS performance:
//
//   - pathname resolution by per-component LOOKUP RPCs (one round trip
//     per path element), which makes stat and open slower than Chirp's
//     whole-path operations;
//   - fixed-size data RPCs (4 KB read/write packets in strict
//     request/response alternation), which caps bandwidth at
//     packet-size / round-trip-time regardless of link speed — the
//     10 MB/s ceiling of Figure 5.
//
// As in the paper's apples-to-apples configuration, there is no client
// caching and writes are asynchronous on the server.
//
// The wire protocol reuses the line+payload framing conventions of the
// Chirp codec for simplicity; the *semantics* (stateless handles,
// component lookups, fixed-size transfers) are what make it NFS-like.
package nfsbase

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"tss/internal/chirp/proto"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// MaxRPCData is the fixed maximum payload of one READ or WRITE RPC:
// the 4 KB packets of Figure 5.
const MaxRPCData = 4096

// Handle is an opaque, stateless file handle: the server can decode it
// without per-client state, as NFS demands. (It encodes the confined
// path; real NFS encodes a device/inode pair. Statelessness, not the
// encoding, is the property under test.)
type Handle string

// handleFor builds a handle for a normalized path.
func handleFor(path string) Handle {
	return Handle(hex.EncodeToString([]byte(path)))
}

// path decodes the handle back to a normalized path.
func (h Handle) path() (string, error) {
	b, err := hex.DecodeString(string(h))
	if err != nil {
		return "", vfs.EBADF
	}
	n, err := pathutil.Norm(string(b))
	if err != nil {
		return "", vfs.EBADF
	}
	return n, nil
}

// Server serves the NFS-like protocol over one exported directory.
type Server struct {
	fs *vfs.LocalFS
}

// NewServer exports the host directory root.
func NewServer(root string) (*Server, error) {
	fs, err := vfs.NewLocalFS(root)
	if err != nil {
		return nil, err
	}
	return &Server{fs: fs}, nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		line, err := proto.ReadLine(br)
		if err != nil {
			return
		}
		if err := s.dispatch(line, br, bw); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func reply(bw *bufio.Writer, v int64) error {
	_, err := fmt.Fprintf(bw, "%d\n", v)
	return err
}

func replyErr(bw *bufio.Writer, err error) error {
	return reply(bw, int64(vfs.Code(err)))
}

// dispatch handles one RPC. The protocol is strictly request/response:
// every RPC is one line (plus at most MaxRPCData payload bytes) each
// way, which is exactly the behaviour that throttles NFS in Figure 5.
func (s *Server) dispatch(line string, br *bufio.Reader, bw *bufio.Writer) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return replyErr(bw, vfs.EINVAL)
	}
	verb, args := fields[0], fields[1:]
	switch verb {
	case "lookup": // lookup <dirhandle> <name> -> 0, handle line, stat line
		if len(args) != 2 {
			return replyErr(bw, vfs.EINVAL)
		}
		dir, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		name, err := proto.Unescape(args[1])
		if err != nil || strings.ContainsRune(name, '/') {
			return replyErr(bw, vfs.EINVAL)
		}
		p := pathutil.Join(dir, name)
		fi, err := s.fs.Stat(p)
		if err != nil {
			return replyErr(bw, err)
		}
		if err := reply(bw, 0); err != nil {
			return err
		}
		fmt.Fprintf(bw, "%s\n", handleFor(p))
		_, err = fmt.Fprintf(bw, "%s\n", proto.MarshalStat(fi))
		return err

	case "getattr": // getattr <handle> -> 0, stat line
		if len(args) != 1 {
			return replyErr(bw, vfs.EINVAL)
		}
		p, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		fi, err := s.fs.Stat(p)
		if err != nil {
			return replyErr(bw, err)
		}
		if err := reply(bw, 0); err != nil {
			return err
		}
		_, err = fmt.Fprintf(bw, "%s\n", proto.MarshalStat(fi))
		return err

	case "read": // read <handle> <offset> <count> -> n, n bytes
		if len(args) != 3 {
			return replyErr(bw, vfs.EINVAL)
		}
		p, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		var off, count int64
		if _, err := fmt.Sscanf(args[1]+" "+args[2], "%d %d", &off, &count); err != nil || count < 0 || count > MaxRPCData || off < 0 {
			return replyErr(bw, vfs.EINVAL)
		}
		f, err := s.fs.Open(p, vfs.O_RDONLY, 0)
		if err != nil {
			return replyErr(bw, err)
		}
		buf := make([]byte, count)
		n, err := f.Pread(buf, off)
		f.Close()
		if err != nil {
			return replyErr(bw, err)
		}
		if err := reply(bw, int64(n)); err != nil {
			return err
		}
		_, err = bw.Write(buf[:n])
		return err

	case "write": // write <handle> <offset> <count> + count bytes -> n
		if len(args) != 3 {
			return replyErr(bw, vfs.EINVAL)
		}
		var off, count int64
		if _, err := fmt.Sscanf(args[1]+" "+args[2], "%d %d", &off, &count); err != nil || count < 0 || count > MaxRPCData || off < 0 {
			replyErr(bw, vfs.EINVAL)
			return fmt.Errorf("nfsbase: bad write header")
		}
		buf := make([]byte, count)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		p, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		f, err := s.fs.Open(p, vfs.O_WRONLY, 0)
		if err != nil {
			return replyErr(bw, err)
		}
		n, err := f.Pwrite(buf, off)
		f.Close()
		if err != nil {
			return replyErr(bw, err)
		}
		return reply(bw, int64(n))

	case "create": // create <dirhandle> <name> <mode> -> 0, handle line
		if len(args) != 3 {
			return replyErr(bw, vfs.EINVAL)
		}
		dir, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		name, err := proto.Unescape(args[1])
		if err != nil || strings.ContainsRune(name, '/') {
			return replyErr(bw, vfs.EINVAL)
		}
		var mode uint32
		fmt.Sscanf(args[2], "%o", &mode)
		p := pathutil.Join(dir, name)
		f, err := s.fs.Open(p, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, mode)
		if err != nil {
			return replyErr(bw, err)
		}
		f.Close()
		if err := reply(bw, 0); err != nil {
			return err
		}
		_, err = fmt.Fprintf(bw, "%s\n", handleFor(p))
		return err

	case "remove", "rmdir": // remove <dirhandle> <name> -> 0
		if len(args) != 2 {
			return replyErr(bw, vfs.EINVAL)
		}
		dir, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		name, err := proto.Unescape(args[1])
		if err != nil {
			return replyErr(bw, vfs.EINVAL)
		}
		p := pathutil.Join(dir, name)
		if verb == "remove" {
			return replyErr(bw, s.fs.Unlink(p))
		}
		return replyErr(bw, s.fs.Rmdir(p))

	case "mkdir": // mkdir <dirhandle> <name> <mode> -> 0
		if len(args) != 3 {
			return replyErr(bw, vfs.EINVAL)
		}
		dir, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		name, err := proto.Unescape(args[1])
		if err != nil {
			return replyErr(bw, vfs.EINVAL)
		}
		var mode uint32
		fmt.Sscanf(args[2], "%o", &mode)
		return replyErr(bw, s.fs.Mkdir(pathutil.Join(dir, name), mode))

	case "rename": // rename <dh1> <name1> <dh2> <name2> -> 0
		if len(args) != 4 {
			return replyErr(bw, vfs.EINVAL)
		}
		d1, err1 := Handle(args[0]).path()
		n1, err2 := proto.Unescape(args[1])
		d2, err3 := Handle(args[2]).path()
		n2, err4 := proto.Unescape(args[3])
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return replyErr(bw, vfs.EINVAL)
			}
		}
		return replyErr(bw, s.fs.Rename(pathutil.Join(d1, n1), pathutil.Join(d2, n2)))

	case "readdir": // readdir <handle> -> count, entry lines
		if len(args) != 1 {
			return replyErr(bw, vfs.EINVAL)
		}
		p, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		ents, err := s.fs.ReadDir(p)
		if err != nil {
			return replyErr(bw, err)
		}
		if err := reply(bw, int64(len(ents))); err != nil {
			return err
		}
		for _, e := range ents {
			if _, err := fmt.Fprintf(bw, "%s\n", proto.MarshalDirEntry(e)); err != nil {
				return err
			}
		}
		return nil

	case "truncate": // truncate <handle> <size> -> 0
		if len(args) != 2 {
			return replyErr(bw, vfs.EINVAL)
		}
		p, err := Handle(args[0]).path()
		if err != nil {
			return replyErr(bw, err)
		}
		var size int64
		if _, err := fmt.Sscanf(args[1], "%d", &size); err != nil || size < 0 {
			return replyErr(bw, vfs.EINVAL)
		}
		return replyErr(bw, s.fs.Truncate(p, size))

	case "statfs": // statfs -> 0, "total free"
		info, err := s.fs.StatFS()
		if err != nil {
			return replyErr(bw, err)
		}
		if err := reply(bw, 0); err != nil {
			return err
		}
		_, err = fmt.Fprintf(bw, "%d %d\n", info.TotalBytes, info.FreeBytes)
		return err
	}
	return replyErr(bw, vfs.EINVAL)
}

// Client implements vfs.FileSystem over the NFS-like protocol,
// resolving every pathname one component at a time — the defining
// latency cost of the baseline.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	cfg  ClientConfig
}

// ClientConfig configures an NFS baseline client.
type ClientConfig struct {
	Dial    func() (net.Conn, error)
	Timeout time.Duration
}

var _ vfs.FileSystem = (*Client)(nil)

// Dial connects a new client.
func Dial(cfg ClientConfig) (*Client, error) {
	conn, err := cfg.Dial()
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		cfg:  cfg,
	}, nil
}

// Close tears down the transport.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// rpc performs one request/response exchange.
func (c *Client) rpc(line string, payload []byte, body func(code int64, br *bufio.Reader) error) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, vfs.ENOTCONN
	}
	if c.cfg.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	if _, err := c.bw.WriteString(line + "\n"); err != nil {
		return 0, vfs.ENOTCONN
	}
	if payload != nil {
		if _, err := c.bw.Write(payload); err != nil {
			return 0, vfs.ENOTCONN
		}
	}
	//lint:ignore lockheld the NFS baseline mimics a stateless RPC client: one serialized exchange per connection, owned by c.mu
	if err := c.bw.Flush(); err != nil {
		return 0, vfs.ENOTCONN
	}
	//lint:ignore lockheld the response must be read under the same critical section that wrote the request
	code, err := proto.ReadCode(c.br)
	if err != nil {
		return 0, vfs.ENOTCONN
	}
	if body != nil {
		if err := body(code, c.br); err != nil {
			return 0, vfs.ENOTCONN
		}
	}
	if code < 0 {
		return 0, vfs.FromCode(int(code))
	}
	return code, nil
}

// rootHandle is the well-known handle of the export root.
func rootHandle() Handle { return handleFor("/") }

// walk resolves a path with one lookup RPC per component, like the NFS
// client in the kernel. It returns the handle of the final component.
func (c *Client) walk(path string) (Handle, vfs.FileInfo, error) {
	n, err := pathutil.Norm(path)
	if err != nil {
		return "", vfs.FileInfo{}, vfs.EINVAL
	}
	h := rootHandle()
	var fi vfs.FileInfo
	if n == "/" {
		fi, err := c.getattr(h)
		return h, fi, err
	}
	for _, comp := range pathutil.Split(n) {
		var nh Handle
		nh, fi, err = c.lookup(h, comp)
		if err != nil {
			return "", vfs.FileInfo{}, err
		}
		h = nh
	}
	return h, fi, nil
}

// walkParent resolves the parent directory of path and returns its
// handle plus the final name component.
func (c *Client) walkParent(path string) (Handle, string, error) {
	n, err := pathutil.Norm(path)
	if err != nil {
		return "", "", vfs.EINVAL
	}
	if n == "/" {
		return "", "", vfs.EINVAL
	}
	h, _, err := c.walk(pathutil.Dir(n))
	if err != nil {
		return "", "", err
	}
	return h, pathutil.Base(n), nil
}

func (c *Client) lookup(dir Handle, name string) (Handle, vfs.FileInfo, error) {
	var h Handle
	var fi vfs.FileInfo
	_, err := c.rpc(fmt.Sprintf("lookup %s %s", dir, proto.Escape(name)), nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			hl, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			h = Handle(hl)
			sl, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			fi, err = proto.UnmarshalStat(sl)
			return err
		})
	return h, fi, err
}

func (c *Client) getattr(h Handle) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	_, err := c.rpc(fmt.Sprintf("getattr %s", h), nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		sl, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		fi, err = proto.UnmarshalStat(sl)
		return err
	})
	return fi, err
}

// Open resolves the path (per-component lookups) and returns a file
// whose reads and writes are split into MaxRPCData packets.
func (c *Client) Open(path string, flags int, mode uint32) (vfs.File, error) {
	h, fi, err := c.walk(path)
	if vfs.AsErrno(err) == vfs.ENOENT && flags&vfs.O_CREAT != 0 {
		dh, name, perr := c.walkParent(path)
		if perr != nil {
			return nil, perr
		}
		var nh Handle
		_, cerr := c.rpc(fmt.Sprintf("create %s %s %o", dh, proto.Escape(name), mode), nil,
			func(code int64, br *bufio.Reader) error {
				if code < 0 {
					return nil
				}
				hl, err := proto.ReadLine(br)
				nh = Handle(hl)
				return err
			})
		if cerr != nil {
			return nil, cerr
		}
		return &nfsFile{c: c, h: nh, name: pathutil.Base(path)}, nil
	}
	if err != nil {
		return nil, err
	}
	if fi.IsDir {
		return nil, vfs.EISDIR
	}
	if flags&vfs.O_EXCL != 0 && flags&vfs.O_CREAT != 0 {
		return nil, vfs.EEXIST
	}
	if flags&vfs.O_TRUNC != 0 {
		if _, err := c.rpc(fmt.Sprintf("truncate %s 0", h), nil, nil); err != nil {
			return nil, err
		}
	}
	return &nfsFile{c: c, h: h, name: pathutil.Base(path)}, nil
}

// Stat performs the full component walk — the reason NFS stat latency
// exceeds Chirp's in Figure 4.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	_, fi, err := c.walk(path)
	return fi, err
}

// Unlink removes a file.
func (c *Client) Unlink(path string) error {
	dh, name, err := c.walkParent(path)
	if err != nil {
		return err
	}
	_, err = c.rpc(fmt.Sprintf("remove %s %s", dh, proto.Escape(name)), nil, nil)
	return err
}

// Rename renames a file or directory.
func (c *Client) Rename(oldPath, newPath string) error {
	d1, n1, err := c.walkParent(oldPath)
	if err != nil {
		return err
	}
	d2, n2, err := c.walkParent(newPath)
	if err != nil {
		return err
	}
	_, err = c.rpc(fmt.Sprintf("rename %s %s %s %s", d1, proto.Escape(n1), d2, proto.Escape(n2)), nil, nil)
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode uint32) error {
	dh, name, err := c.walkParent(path)
	if err != nil {
		return err
	}
	_, err = c.rpc(fmt.Sprintf("mkdir %s %s %o", dh, proto.Escape(name), mode), nil, nil)
	return err
}

// Rmdir removes a directory.
func (c *Client) Rmdir(path string) error {
	dh, name, err := c.walkParent(path)
	if err != nil {
		return err
	}
	_, err = c.rpc(fmt.Sprintf("rmdir %s %s", dh, proto.Escape(name)), nil, nil)
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	h, fi, err := c.walk(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir {
		return nil, vfs.ENOTDIR
	}
	var ents []vfs.DirEntry
	_, err = c.rpc(fmt.Sprintf("readdir %s", h), nil, func(code int64, br *bufio.Reader) error {
		for i := int64(0); i < code; i++ {
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			e, err := proto.UnmarshalDirEntry(line)
			if err != nil {
				return err
			}
			ents = append(ents, e)
		}
		return nil
	})
	return ents, err
}

// Truncate changes a file's length.
func (c *Client) Truncate(path string, size int64) error {
	h, _, err := c.walk(path)
	if err != nil {
		return err
	}
	_, err = c.rpc(fmt.Sprintf("truncate %s %d", h, size), nil, nil)
	return err
}

// Chmod is accepted and ignored (the baseline does not model modes).
func (c *Client) Chmod(path string, mode uint32) error {
	_, _, err := c.walk(path)
	return err
}

// StatFS reports server capacity.
func (c *Client) StatFS() (vfs.FSInfo, error) {
	var info vfs.FSInfo
	_, err := c.rpc("statfs", nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		_, err = fmt.Sscanf(line, "%d %d", &info.TotalBytes, &info.FreeBytes)
		return err
	})
	return info, err
}

// nfsFile performs I/O in fixed 4 KB request/response RPCs.
type nfsFile struct {
	c    *Client
	h    Handle
	name string
}

func (f *nfsFile) Pread(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > MaxRPCData {
			chunk = MaxRPCData
		}
		var got int64
		_, err := f.c.rpc(fmt.Sprintf("read %s %d %d", f.h, off+int64(total), chunk), nil,
			func(code int64, br *bufio.Reader) error {
				if code < 0 {
					return nil
				}
				got = code
				_, err := io.ReadFull(br, p[total:total+int(code)])
				return err
			})
		if err != nil {
			return total, err
		}
		if got == 0 {
			break
		}
		total += int(got)
		if got < int64(chunk) {
			break
		}
	}
	return total, nil
}

func (f *nfsFile) Pwrite(p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > MaxRPCData {
			chunk = MaxRPCData
		}
		n, err := f.c.rpc(fmt.Sprintf("write %s %d %d", f.h, off+int64(total), chunk), p[total:total+chunk], nil)
		if err != nil {
			return total, err
		}
		total += int(n)
		if int(n) < chunk {
			break
		}
	}
	return total, nil
}

func (f *nfsFile) Fstat() (vfs.FileInfo, error) {
	fi, err := f.c.getattr(f.h)
	if err != nil {
		return fi, err
	}
	fi.Name = f.name
	return fi, nil
}

func (f *nfsFile) Ftruncate(size int64) error {
	_, err := f.c.rpc(fmt.Sprintf("truncate %s %d", f.h, size), nil, nil)
	return err
}

// Sync is a no-op: the baseline runs in asynchronous mode, like the
// paper's NFS configuration.
func (f *nfsFile) Sync() error { return nil }

// Close releases nothing: the protocol is stateless.
func (f *nfsFile) Close() error { return nil }
