package gems

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"

	"tss/internal/abstraction"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// RecoverIndex rebuilds a lost database by rescanning the data on the
// file servers — the §5/§9 claim made executable: "In the DSDB, the
// database could even be recovered automatically by rescanning the
// existing file data."
//
// Replica files are named <flattened-id>.rep<N>, so the record ID and
// replica set are recoverable from the namespace alone; sizes and
// checksums are recomputed from content, and replicas of the same ID
// whose contents disagree are resolved by majority (ties favor the
// lowest-numbered replica). Free-form attributes are not stored beside
// the data and cannot be recovered; they return empty.
var replicaNameRE = regexp.MustCompile(`^(.+)\.rep(\d+)$`)

// RecoverIndex scans the servers' storage directories and returns a
// fresh index describing everything found.
func RecoverIndex(servers []abstraction.DataServer) (*MemIndex, error) {
	type found struct {
		rep      Replica
		n        int
		checksum string
		size     int64
	}
	byID := make(map[string][]found)
	var order []string

	for i := range servers {
		srv := &servers[i]
		dir := srv.Dir
		if dir == "" {
			dir = "/gems"
		}
		ents, err := srv.FS.ReadDir(dir)
		if err != nil {
			if vfs.AsErrno(err) == vfs.ENOENT {
				continue // server never held data for this abstraction
			}
			return nil, fmt.Errorf("gems: recover: scanning %s: %w", srv.Name, err)
		}
		for _, e := range ents {
			if e.IsDir {
				continue
			}
			m := replicaNameRE.FindStringSubmatch(e.Name)
			if m == nil {
				continue // foreign file in the directory
			}
			id := m[1]
			n, _ := strconv.Atoi(m[2])
			path := pathutil.Join(dir, e.Name)
			data, err := vfs.ReadFile(srv.FS, path)
			if err != nil {
				continue // unreadable replica: skip
			}
			sum, size, _ := Checksum(bytes.NewReader(data))
			if _, seen := byID[id]; !seen {
				order = append(order, id)
			}
			byID[id] = append(byID[id], found{
				rep:      Replica{Server: srv.Name, Path: path},
				n:        n,
				checksum: sum,
				size:     size,
			})
		}
	}

	idx := NewMemIndex()
	for _, id := range order {
		reps := byID[id]
		// Majority vote on content; ties go to the lowest replica
		// number (the original copy).
		votes := make(map[string]int)
		for _, f := range reps {
			votes[f.checksum]++
		}
		best := ""
		bestVotes := -1
		bestN := 1 << 30
		for _, f := range reps {
			v := votes[f.checksum]
			if v > bestVotes || (v == bestVotes && f.n < bestN) {
				best = f.checksum
				bestVotes = v
				bestN = f.n
			}
		}
		rec := Record{ID: id, Attrs: map[string]string{}}
		for _, f := range reps {
			if f.checksum != best {
				continue // corrupt or divergent: leave for the auditor
			}
			rec.Checksum = f.checksum
			rec.Size = f.size
			rec.Replicas = append(rec.Replicas, f.rep)
		}
		if len(rec.Replicas) > 0 {
			if err := idx.Insert(rec); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}
