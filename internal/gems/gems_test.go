package gems

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"tss/internal/abstraction"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

func localFS(t *testing.T) *vfs.LocalFS {
	t.Helper()
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newDSDB(t *testing.T, n int) *DSDB {
	t.Helper()
	var servers []abstraction.DataServer
	for i := 0; i < n; i++ {
		servers = append(servers, abstraction.DataServer{
			Name: fmt.Sprintf("disk%d", i),
			FS:   localFS(t),
			Dir:  "/gems",
		})
	}
	d, err := NewDSDB(NewMemIndex(), servers)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMemIndexCRUD(t *testing.T) {
	idx := NewMemIndex()
	r := Record{ID: "sim001", Attrs: map[string]string{"protein": "ww", "temp": "300"}, Size: 10}
	if err := idx.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(r); err == nil {
		t.Error("duplicate insert accepted")
	}
	got, found, err := idx.Get("sim001")
	if err != nil || !found || got.Attrs["protein"] != "ww" {
		t.Fatalf("get = %+v, %v, %v", got, found, err)
	}
	r.Size = 20
	if err := idx.Update(r); err != nil {
		t.Fatal(err)
	}
	got, _, _ = idx.Get("sim001")
	if got.Size != 20 {
		t.Error("update lost")
	}
	if err := idx.Update(Record{ID: "nope"}); err == nil {
		t.Error("update of missing record accepted")
	}
	if err := idx.Delete("sim001"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := idx.Get("sim001"); found {
		t.Error("delete did not remove")
	}
}

func TestMemIndexQuery(t *testing.T) {
	idx := NewMemIndex()
	for i := 0; i < 10; i++ {
		temp := "300"
		if i%2 == 0 {
			temp = "310"
		}
		idx.Insert(Record{ID: fmt.Sprintf("r%02d", i), Attrs: map[string]string{"temp": temp, "protein": "ww"}})
	}
	hot, err := idx.Query(map[string]string{"temp": "310"})
	if err != nil || len(hot) != 5 {
		t.Fatalf("query = %d records, %v", len(hot), err)
	}
	both, _ := idx.Query(map[string]string{"temp": "310", "protein": "ww"})
	if len(both) != 5 {
		t.Errorf("conjunctive query = %d", len(both))
	}
	none, _ := idx.Query(map[string]string{"temp": "999"})
	if len(none) != 0 {
		t.Errorf("empty query = %d", len(none))
	}
	all, _ := idx.List()
	if len(all) != 10 || all[0].ID != "r00" {
		t.Errorf("list = %d records, first %s (want sorted)", len(all), all[0].ID)
	}
	// Records are isolated copies.
	all[0].Attrs["temp"] = "mutated"
	fresh, _, _ := idx.Get("r00")
	if fresh.Attrs["temp"] == "mutated" {
		t.Error("index returned aliased record")
	}
}

func TestDSDBPutQueryRead(t *testing.T) {
	d := newDSDB(t, 3)
	payload := bytes.Repeat([]byte("trajectory"), 1000)
	rec, err := d.Put("sim001", map[string]string{"protein": "villin"}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) != 1 || rec.Size != int64(len(payload)) {
		t.Fatalf("record = %+v", rec)
	}
	got, err := d.Query(map[string]string{"protein": "villin"})
	if err != nil || len(got) != 1 {
		t.Fatalf("query = %v, %v", got, err)
	}
	data, err := d.Read(got[0])
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("read = %d bytes, %v", len(data), err)
	}
	f, err := d.Open(got[0])
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestDSDBDeleteRemovesData(t *testing.T) {
	d := newDSDB(t, 2)
	rec, err := d.Put("x", nil, []byte("bits"))
	if err != nil {
		t.Fatal(err)
	}
	srv := d.server(rec.Replicas[0].Server)
	if err := d.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if vfs.Exists(srv.FS, rec.Replicas[0].Path) {
		t.Error("data file survived delete")
	}
	if err := d.Delete("x"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("double delete = %v", err)
	}
}

func TestAddReplicaRoundTrip(t *testing.T) {
	d := newDSDB(t, 3)
	rec, err := d.Put("r", nil, []byte("replicate me"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err = d.AddReplica(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = d.AddReplica(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Replicas) != 3 {
		t.Fatalf("replicas = %d", len(rec.Replicas))
	}
	// All servers hold a copy; further replication reports io.EOF.
	if _, err := d.AddReplica(rec); err == nil {
		t.Error("over-replication accepted")
	}
	// Each replica is independently readable.
	for _, rep := range rec.Replicas {
		data, err := vfs.ReadFile(d.server(rep.Server).FS, rep.Path)
		if err != nil || string(data) != "replicate me" {
			t.Errorf("replica on %s: %q, %v", rep.Server, data, err)
		}
	}
}

func TestAuditorDetectsMissingAndCorrupt(t *testing.T) {
	d := newDSDB(t, 3)
	rec, _ := d.Put("a", nil, []byte("aaaa"))
	rec, _ = d.AddReplica(rec)
	recB, _ := d.Put("b", nil, []byte("bbbb"))

	// Damage: delete one replica of a, corrupt b's only replica.
	d.server(rec.Replicas[0].Server).FS.Unlink(rec.Replicas[0].Path)
	vfs.WriteFile(d.server(recB.Replicas[0].Server).FS, recB.Replicas[0].Path, []byte("XXXX"), 0o644)

	a := &Auditor{DB: d, VerifyContent: true}
	report, err := a.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.Missing != 1 {
		t.Errorf("missing = %d, want 1", report.Missing)
	}
	if report.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", report.Corrupt)
	}
	// The damaged replicas are dropped from the records.
	got, _, _ := d.idx.Get("a")
	if len(got.Replicas) != 1 {
		t.Errorf("a replicas = %d, want 1", len(got.Replicas))
	}
	got, _, _ = d.idx.Get("b")
	if len(got.Replicas) != 0 {
		t.Errorf("b replicas = %d, want 0 (corrupt dropped)", len(got.Replicas))
	}
}

func TestAuditorSizeCheckWithoutContent(t *testing.T) {
	d := newDSDB(t, 1)
	rec, _ := d.Put("a", nil, []byte("12345678"))
	// Same size, different content: only content verification sees it.
	vfs.WriteFile(d.server(rec.Replicas[0].Server).FS, rec.Replicas[0].Path, []byte("87654321"), 0o644)
	rep, _ := (&Auditor{DB: d}).Audit()
	if rep.Corrupt != 0 {
		t.Errorf("size-only audit flagged same-size corruption")
	}
	rep, _ = (&Auditor{DB: d, VerifyContent: true}).Audit()
	if rep.Corrupt != 1 {
		t.Errorf("content audit missed corruption: %+v", rep)
	}
}

// The Figure 9 life cycle in miniature: ingest, replicate to budget,
// induce failures, audit, repair.
func TestPreservationCycle(t *testing.T) {
	const nServers = 8
	const nRecords = 7
	const recSize = 1000
	d := newDSDB(t, nServers)
	for i := 0; i < nRecords; i++ {
		if _, err := d.Put(fmt.Sprintf("rec%d", i), nil, bytes.Repeat([]byte{byte(i)}, recSize)); err != nil {
			t.Fatal(err)
		}
	}
	budget := int64(3 * nRecords * recSize) // room for 3 copies of everything
	repl := &Replicator{DB: d, BudgetBytes: budget}
	if _, err := repl.Run(); err != nil {
		t.Fatal(err)
	}
	stored, _ := d.StoredBytes()
	if stored != budget {
		t.Fatalf("stored %d, want full budget %d", stored, budget)
	}
	recs, _ := d.idx.List()
	for _, r := range recs {
		if len(r.Replicas) != 3 {
			t.Errorf("record %s has %d replicas, want 3 (even fill)", r.ID, len(r.Replicas))
		}
	}

	// Induce a failure: wipe two servers' data.
	for _, victim := range []string{"disk0", "disk1"} {
		srv := d.server(victim)
		ents, _ := srv.FS.ReadDir("/gems")
		for _, e := range ents {
			srv.FS.Unlink("/gems/" + e.Name)
		}
	}
	aud := &Auditor{DB: d, VerifyContent: true}
	report, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if report.Missing == 0 {
		t.Fatal("audit found no damage after wiping two servers")
	}
	// Repair.
	if _, err := repl.Run(); err != nil {
		t.Fatal(err)
	}
	stored, _ = d.StoredBytes()
	if stored != budget {
		t.Errorf("after repair stored %d, want %d", stored, budget)
	}
	// All data still intact.
	recs, _ = d.idx.List()
	for _, r := range recs {
		if _, err := d.Read(r); err != nil {
			t.Errorf("record %s unreadable after repair: %v", r.ID, err)
		}
	}
}

func TestReplicatorPrefersFewestReplicas(t *testing.T) {
	d := newDSDB(t, 4)
	rich, _ := d.Put("rich", nil, []byte("xx"))
	rich, _ = d.AddReplica(rich)
	d.Put("poor", nil, []byte("yy"))
	repl := &Replicator{DB: d, BudgetBytes: 1 << 20}
	if _, err := repl.Step(); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.idx.Get("poor")
	if len(got.Replicas) != 2 {
		t.Errorf("replicator did not prioritize the most vulnerable record")
	}
}

func TestReplicatorRespectsBudget(t *testing.T) {
	d := newDSDB(t, 4)
	d.Put("a", nil, bytes.Repeat([]byte("x"), 100))
	repl := &Replicator{DB: d, BudgetBytes: 250} // room for 2 copies, not 3
	repl.Run()
	stored, _ := d.StoredBytes()
	if stored != 200 {
		t.Errorf("stored %d, want 200 (budget respected)", stored)
	}
}

func TestReplicatorMaxReplicasCap(t *testing.T) {
	d := newDSDB(t, 5)
	d.Put("a", nil, []byte("z"))
	repl := &Replicator{DB: d, BudgetBytes: 1 << 20, MaxReplicasPerRecord: 2}
	repl.Run()
	got, _, _ := d.idx.Get("a")
	if len(got.Replicas) != 2 {
		t.Errorf("replicas = %d, want capped at 2", len(got.Replicas))
	}
}

func TestDBServerClient(t *testing.T) {
	idx := NewMemIndex()
	srv := NewDBServer(idx)
	nw := netsim.NewNetwork()
	l, err := nw.Listen("db.sim")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	cli, err := DialDB(func() (net.Conn, error) { return nw.Dial("db.sim", netsim.Loopback) }, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rec := Record{ID: "net1", Attrs: map[string]string{"k": "v"}, Size: 5, Checksum: "c",
		Replicas: []Replica{{Server: "s1", Path: "/gems/net1.rep0"}}}
	if err := cli.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := cli.Insert(rec); err == nil {
		t.Error("duplicate insert over network accepted")
	}
	got, found, err := cli.Get("net1")
	if err != nil || !found || got.Replicas[0].Server != "s1" {
		t.Fatalf("get = %+v, %v, %v", got, found, err)
	}
	rec.Size = 6
	if err := cli.Update(rec); err != nil {
		t.Fatal(err)
	}
	rs, err := cli.Query(map[string]string{"k": "v"})
	if err != nil || len(rs) != 1 || rs[0].Size != 6 {
		t.Fatalf("query = %+v, %v", rs, err)
	}
	all, err := cli.List()
	if err != nil || len(all) != 1 {
		t.Fatalf("list = %+v, %v", all, err)
	}
	if err := cli.Delete("net1"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cli.Get("net1"); found {
		t.Error("delete over network did not remove")
	}
}

// The DSDB works identically with a remote index — the database server
// is just another recursive abstraction.
func TestDSDBWithRemoteIndex(t *testing.T) {
	srv := NewDBServer(NewMemIndex())
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("db.sim")
	defer l.Close()
	go srv.Serve(l)
	cli, err := DialDB(func() (net.Conn, error) { return nw.Dial("db.sim", netsim.Loopback) }, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var servers []abstraction.DataServer
	for i := 0; i < 2; i++ {
		servers = append(servers, abstraction.DataServer{Name: fmt.Sprintf("s%d", i), FS: localFS(t), Dir: "/gems"})
	}
	d, err := NewDSDB(cli, servers)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := d.Put("remote1", map[string]string{"a": "1"}, []byte("over the wire"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddReplica(rec); err != nil {
		t.Fatal(err)
	}
	rs, err := d.Query(map[string]string{"a": "1"})
	if err != nil || len(rs) != 1 || len(rs[0].Replicas) != 2 {
		t.Fatalf("query = %+v, %v", rs, err)
	}
	data, err := d.Read(rs[0])
	if err != nil || string(data) != "over the wire" {
		t.Fatalf("read = %q, %v", data, err)
	}
}
