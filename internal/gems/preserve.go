package gems

import (
	"bytes"
	"time"

	"tss/internal/vfs"
)

// The two active components of GEMS preservation (§9): the auditor
// verifies the location and integrity of data on file servers and
// notes problems; the replicator repairs them and fills the user's
// storage budget with additional copies.

// AuditReport summarizes one audit pass.
type AuditReport struct {
	Records         int // records examined
	ReplicasChecked int
	Missing         int // replicas whose data file is gone
	Corrupt         int // replicas whose content fails the checksum
	Unreachable     int // replicas on servers that did not answer
}

// Auditor periodically scans the database and verifies every replica.
type Auditor struct {
	DB *DSDB
	// VerifyContent enables full checksum verification; without it the
	// auditor only confirms existence and size (cheaper, as a real
	// deployment would do most of the time).
	VerifyContent bool
}

// Audit runs one pass. Replicas found missing or corrupt are removed
// from their records ("it makes note of these problems"); the
// replicator then re-replicates from the remaining copies. Replicas on
// unreachable servers are left alone: the server may only be
// temporarily offline, and dropping its entries would turn a transient
// failure into data loss.
func (a *Auditor) Audit() (AuditReport, error) {
	var rep AuditReport
	recs, err := a.DB.idx.List()
	if err != nil {
		return rep, err
	}
	rep.Records = len(recs)
	for _, rec := range recs {
		good := rec.Replicas[:0]
		changed := false
		for _, r := range rec.Replicas {
			rep.ReplicasChecked++
			srv := a.DB.server(r.Server)
			if srv == nil {
				rep.Unreachable++
				good = append(good, r)
				continue
			}
			fi, err := srv.FS.Stat(r.Path)
			switch {
			case vfs.AsErrno(err) == vfs.ENOENT:
				rep.Missing++
				changed = true
				continue
			case err != nil:
				rep.Unreachable++
				good = append(good, r)
				continue
			case fi.Size != rec.Size:
				rep.Corrupt++
				changed = true
				continue
			}
			if a.VerifyContent {
				data, err := vfs.ReadFile(srv.FS, r.Path)
				if err != nil {
					rep.Unreachable++
					good = append(good, r)
					continue
				}
				sum, _, _ := Checksum(bytes.NewReader(data))
				if sum != rec.Checksum {
					rep.Corrupt++
					changed = true
					continue
				}
			}
			good = append(good, r)
		}
		if changed {
			rec.Replicas = append([]Replica(nil), good...)
			if err := a.DB.idx.Update(rec); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// Replicator fills the storage budget with copies. The user specifies
// the budget; the replicator works toward it, most-damaged records
// first (records with the fewest replicas are the closest to loss).
type Replicator struct {
	DB *DSDB
	// BudgetBytes is the total storage the dataset may consume across
	// all replicas (the 40 GB of Figure 9).
	BudgetBytes int64
	// MaxReplicasPerRecord optionally caps copies per record
	// (0 = bounded only by the number of servers).
	MaxReplicasPerRecord int
}

// Step performs at most one replication and reports whether it did
// any work. Driving the loop one step at a time is what lets the
// Figure 9 experiment sample the stored-bytes curve as it climbs.
func (r *Replicator) Step() (bool, error) {
	recs, err := r.DB.idx.List()
	if err != nil {
		return false, err
	}
	stored, err := r.DB.StoredBytes()
	if err != nil {
		return false, err
	}
	// Fewest replicas first.
	var best *Record
	for i := range recs {
		rec := &recs[i]
		if len(rec.Replicas) == 0 {
			continue // unrecoverable: no source copy remains
		}
		if r.MaxReplicasPerRecord > 0 && len(rec.Replicas) >= r.MaxReplicasPerRecord {
			continue
		}
		if len(rec.Replicas) >= len(r.DB.servers) {
			continue
		}
		if stored+rec.Size > r.BudgetBytes {
			continue
		}
		if best == nil || len(rec.Replicas) < len(best.Replicas) {
			best = rec
		}
	}
	if best == nil {
		return false, nil
	}
	if _, err := r.DB.AddReplica(*best); err != nil {
		return false, err
	}
	return true, nil
}

// Run replicates until no further work fits the budget.
func (r *Replicator) Run() (steps int, err error) {
	for {
		did, err := r.Step()
		if err != nil {
			return steps, err
		}
		if !did {
			return steps, nil
		}
		steps++
	}
}

// Preserver ties auditor and replicator into the periodic maintenance
// loop a deployment runs.
type Preserver struct {
	Auditor    *Auditor
	Replicator *Replicator
	Interval   time.Duration
}

// RunLoop audits and replicates at each interval until stop closes.
func (p *Preserver) RunLoop(stop <-chan struct{}) {
	interval := p.Interval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.Auditor.Audit()
			p.Replicator.Run()
		case <-stop:
			return
		}
	}
}
