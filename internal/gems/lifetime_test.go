package gems

import (
	"sync/atomic"
	"testing"

	"tss/internal/vfs"
)

// countFS wraps a FileSystem and counts descriptor opens and closes,
// pinning the journal's handle lifetime dynamically — the same
// invariant the reslifetime checker proves per-path statically.
type countFS struct {
	vfs.FileSystem
	opens  atomic.Int64
	closes atomic.Int64
}

func (c *countFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	f, err := c.FileSystem.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	c.opens.Add(1)
	return &countFile{File: f, fs: c}, nil
}

func (c *countFS) live() int64 { return c.opens.Load() - c.closes.Load() }

type countFile struct {
	vfs.File
	fs *countFS
}

func (f *countFile) Close() error {
	f.fs.closes.Add(1)
	return f.File.Close()
}

// TestCompactSwapsJournalHandle pins the descriptor bookkeeping of
// Compact's handle swap: the snapshot file and the old live handle
// are both closed, the reopened journal is the single survivor, and
// the index keeps appending through it. A daemon that compacts
// periodically must not bleed one fd per compaction.
func TestCompactSwapsJournalHandle(t *testing.T) {
	fs := &countFS{FileSystem: localFS(t)}
	j, err := OpenJournalIndex(fs, "/gems.journal")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Insert(Record{ID: "a", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if n := fs.live(); n != 1 {
		t.Fatalf("live descriptors before compact = %d, want 1", n)
	}
	for i := 0; i < 3; i++ {
		if err := j.Compact(); err != nil {
			t.Fatal(err)
		}
		if n := fs.live(); n != 1 {
			t.Fatalf("live descriptors after compact %d = %d, want 1", i+1, n)
		}
	}
	// The swapped-in handle must still carry appends.
	if err := j.Insert(Record{ID: "b", Size: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if n := fs.live(); n != 0 {
		t.Errorf("%d descriptor(s) leaked after close", n)
	}
	// Reopen and verify both records survived the compactions.
	j2, err := OpenJournalIndex(fs, "/gems.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for _, id := range []string{"a", "b"} {
		if _, ok, err := j2.Get(id); err != nil || !ok {
			t.Errorf("record %q lost across compact/reopen: ok=%v err=%v", id, ok, err)
		}
	}
}
