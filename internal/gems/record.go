// Package gems implements the distributed shared database abstraction
// (DSDB, §5) and the GEMS preservation system built on it (§9):
// Grid-Enabled Molecular Simulations.
//
// A DSDB stores file data on ordinary file servers and indexes it in a
// database of records — attributes, size, checksum, and the list of
// replicas. Users query the database for matching records and then
// access the data directly on the file servers.
//
// GEMS adds preservation: an *auditor* periodically verifies the
// location and integrity of every replica, and a *replicator* repairs
// damage and fills the user's storage budget with additional copies
// (Figure 9).
package gems

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Replica is one stored copy of a record's data.
type Replica struct {
	Server string `json:"server"`
	Path   string `json:"path"`
}

// Record is one indexed dataset entry.
type Record struct {
	ID       string            `json:"id"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Size     int64             `json:"size"`
	Checksum string            `json:"checksum"` // hex SHA-256 of the content
	Replicas []Replica         `json:"replicas"`
}

// Clone deep-copies a record.
func (r Record) Clone() Record {
	c := r
	c.Attrs = make(map[string]string, len(r.Attrs))
	for k, v := range r.Attrs {
		c.Attrs[k] = v
	}
	c.Replicas = append([]Replica(nil), r.Replicas...)
	return c
}

// Matches reports whether the record has every attribute in query with
// the exact value.
func (r Record) Matches(query map[string]string) bool {
	for k, v := range query {
		if r.Attrs[k] != v {
			return false
		}
	}
	return true
}

// Checksum computes the hex SHA-256 of everything in r.
func Checksum(r io.Reader) (string, int64, error) {
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return "", n, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// Index is the database interface of the DSDB. Implementations must be
// safe for concurrent use.
type Index interface {
	Insert(r Record) error
	Update(r Record) error
	Delete(id string) error
	Get(id string) (Record, bool, error)
	Query(attrs map[string]string) ([]Record, error)
	List() ([]Record, error)
}

// MemIndex is the in-memory reference implementation of Index.
type MemIndex struct {
	mu      sync.Mutex
	records map[string]Record
}

var _ Index = (*MemIndex)(nil)

// NewMemIndex returns an empty index.
func NewMemIndex() *MemIndex {
	return &MemIndex{records: make(map[string]Record)}
}

// Insert adds a new record; the ID must be unused.
func (m *MemIndex) Insert(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.records[r.ID]; exists {
		return fmt.Errorf("gems: record %q already exists", r.ID)
	}
	m.records[r.ID] = r.Clone()
	return nil
}

// Update replaces an existing record.
func (m *MemIndex) Update(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.records[r.ID]; !exists {
		return fmt.Errorf("gems: record %q does not exist", r.ID)
	}
	m.records[r.ID] = r.Clone()
	return nil
}

// Delete removes a record; deleting a missing record is a no-op.
func (m *MemIndex) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.records, id)
	return nil
}

// Get fetches one record by ID.
func (m *MemIndex) Get(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[id]
	if !ok {
		return Record{}, false, nil
	}
	return r.Clone(), true, nil
}

// Query returns records matching every given attribute, sorted by ID.
func (m *MemIndex) Query(attrs map[string]string) ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	for _, r := range m.records {
		if r.Matches(attrs) {
			out = append(out, r.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// List returns all records sorted by ID.
func (m *MemIndex) List() ([]Record, error) {
	return m.Query(nil)
}
