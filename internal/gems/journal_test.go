package gems

import (
	"fmt"
	"testing"

	"tss/internal/abstraction"
	"tss/internal/vfs"
)

func openJournal(t *testing.T, fs vfs.FileSystem) *JournalIndex {
	t.Helper()
	j, err := OpenJournalIndex(fs, "/gems.journal")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalPersistsAcrossReopen(t *testing.T) {
	fs := localFS(t)
	j := openJournal(t, fs)
	if err := j.Insert(Record{ID: "a", Size: 1, Attrs: map[string]string{"k": "v"},
		Replicas: []Replica{{Server: "s", Path: "/p"}}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Insert(Record{ID: "b", Size: 2}); err != nil {
		t.Fatal(err)
	}
	rec, _, _ := j.Get("a")
	rec.Size = 99
	if err := j.Update(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Delete("b"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Reopen: replay restores exactly the final state.
	j2 := openJournal(t, fs)
	recs, err := j2.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("replayed %d records, %v", len(recs), err)
	}
	if recs[0].ID != "a" || recs[0].Size != 99 || recs[0].Attrs["k"] != "v" {
		t.Errorf("replayed record = %+v", recs[0])
	}
	// And accepts further writes.
	if err := j2.Insert(Record{ID: "c"}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalValidation(t *testing.T) {
	j := openJournal(t, localFS(t))
	if err := j.Insert(Record{ID: "dup"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Insert(Record{ID: "dup"}); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := j.Update(Record{ID: "ghost"}); err == nil {
		t.Error("update of missing record accepted")
	}
	// Failed operations are not journaled: replay must succeed.
	fsj := j.fs
	j.Close()
	if _, err := OpenJournalIndex(fsj, "/gems.journal"); err != nil {
		t.Fatalf("replay after rejected ops: %v", err)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	fs := localFS(t)
	j := openJournal(t, fs)
	j.Insert(Record{ID: "whole"})
	j.Close()
	// Simulate a torn final write: garbage with no newline... then a
	// valid-looking prefix of an entry.
	f, err := fs.Open("/gems.journal", vfs.O_WRONLY|vfs.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Pwrite([]byte(`{"op":"insert","record":{"id":"to`), 0)
	f.Close()
	j2, err := OpenJournalIndex(fs, "/gems.journal")
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer j2.Close()
	recs, _ := j2.List()
	if len(recs) != 1 || recs[0].ID != "whole" {
		t.Errorf("after torn tail: %+v", recs)
	}
}

func TestJournalCompact(t *testing.T) {
	fs := localFS(t)
	j := openJournal(t, fs)
	for i := 0; i < 20; i++ {
		if err := j.Insert(Record{ID: fmt.Sprintf("r%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		if err := j.Delete(fmt.Sprintf("r%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := fs.Stat("/gems.journal")
	if j.Mutations() != 35 {
		t.Errorf("mutations = %d", j.Mutations())
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := fs.Stat("/gems.journal")
	if after.Size >= before.Size {
		t.Errorf("compaction did not shrink journal: %d -> %d", before.Size, after.Size)
	}
	if j.Mutations() != 0 {
		t.Errorf("mutations after compact = %d", j.Mutations())
	}
	// Post-compaction state is intact, durable, and writable.
	if err := j.Insert(Record{ID: "post"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openJournal(t, fs)
	recs, _ := j2.List()
	if len(recs) != 6 { // r15..r19 + post
		t.Errorf("after compact+reopen: %d records", len(recs))
	}
}

// The journaled index plugs into a DSDB like any other: durability is
// one more recursive layer.
func TestDSDBOnJournalIndex(t *testing.T) {
	metaFS := localFS(t)
	j := openJournal(t, metaFS)
	var servers []abstraction.DataServer
	for i := 0; i < 2; i++ {
		servers = append(servers, abstraction.DataServer{
			Name: fmt.Sprintf("jd%d", i), FS: localFS(t), Dir: "/gems",
		})
	}
	d, err := NewDSDB(j, servers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put("x", map[string]string{"a": "1"}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Restart: reopen journal, rebuild DSDB, read the data back.
	j2 := openJournal(t, metaFS)
	d2, err := NewDSDB(j2, d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := d2.Query(map[string]string{"a": "1"})
	if len(recs) != 1 {
		t.Fatalf("after restart: %d records", len(recs))
	}
	data, err := d2.Read(recs[0])
	if err != nil || string(data) != "payload" {
		t.Fatalf("after restart read: %q, %v", data, err)
	}
}
