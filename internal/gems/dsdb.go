package gems

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"tss/internal/abstraction"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// DSDB is the distributed shared database abstraction of §5: file data
// on file servers, indexed by a database of records; clients query the
// database and then access the data directly with the adapter.
type DSDB struct {
	idx     Index
	servers []abstraction.DataServer
	byName  map[string]*abstraction.DataServer

	mu   sync.Mutex
	next int // round-robin placement cursor
}

// NewDSDB assembles a DSDB from an index (local or remote) and data
// servers, preparing each server's storage directory.
func NewDSDB(idx Index, servers []abstraction.DataServer) (*DSDB, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("gems: need at least one data server")
	}
	d := &DSDB{idx: idx, servers: servers, byName: make(map[string]*abstraction.DataServer)}
	for i := range servers {
		s := &d.servers[i]
		if s.Dir == "" {
			s.Dir = "/gems"
		}
		n, err := pathutil.Norm(s.Dir)
		if err != nil {
			return nil, vfs.EINVAL
		}
		s.Dir = n
		if _, dup := d.byName[s.Name]; dup {
			return nil, fmt.Errorf("gems: duplicate server name %q", s.Name)
		}
		d.byName[s.Name] = s
		if err := vfs.MkdirAll(s.FS, s.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("gems: preparing %s:%s: %w", s.Name, s.Dir, err)
		}
	}
	return d, nil
}

// Index exposes the database.
func (d *DSDB) Index() Index { return d.idx }

// Servers lists the participating data servers.
func (d *DSDB) Servers() []abstraction.DataServer { return d.servers }

func (d *DSDB) server(name string) *abstraction.DataServer { return d.byName[name] }

func (d *DSDB) pickServer() *abstraction.DataServer {
	d.mu.Lock()
	s := &d.servers[d.next%len(d.servers)]
	d.next++
	d.mu.Unlock()
	return s
}

// replicaPath names the data file for one replica of a record. Record
// IDs are free-form and may contain slashes; they are flattened so
// every replica lives directly in the abstraction's distinguishable
// directory (which is what makes manual recovery possible, §5).
func replicaPath(dir, id string, n int) string {
	flat := strings.NewReplacer("/", "_", "%", "%%").Replace(id)
	return pathutil.Join(dir, fmt.Sprintf("%s.rep%d", flat, n))
}

// Put stores data under a fresh record with the given attributes,
// placing the first replica on the next server, and indexes it.
func (d *DSDB) Put(id string, attrs map[string]string, data []byte) (Record, error) {
	sum, _, err := Checksum(bytes.NewReader(data))
	if err != nil {
		return Record{}, err
	}
	srv := d.pickServer()
	path := replicaPath(srv.Dir, id, 0)
	// Stored through the copy engine with verification: the data file is
	// digest-checked end to end before the record is indexed.
	if err := vfs.PutBytes(context.Background(), vfs.Loc{FS: srv.FS, Path: path},
		0o644, data, vfs.CopyOptions{Verify: true}); err != nil {
		return Record{}, fmt.Errorf("gems: storing %s on %s: %w", id, srv.Name, err)
	}
	rec := Record{
		ID:       id,
		Attrs:    attrs,
		Size:     int64(len(data)),
		Checksum: sum,
		Replicas: []Replica{{Server: srv.Name, Path: path}},
	}
	if err := d.idx.Insert(rec); err != nil {
		srv.FS.Unlink(path) // undo the orphan
		return Record{}, err
	}
	return rec, nil
}

// Open returns the data of the first reachable, intact replica. Broken
// replicas are skipped — this is the failure coherence of the DSDB.
func (d *DSDB) Open(rec Record) (vfs.File, error) {
	var lastErr error = vfs.ENOENT
	for _, rep := range rec.Replicas {
		srv := d.server(rep.Server)
		if srv == nil {
			continue
		}
		f, err := srv.FS.Open(rep.Path, vfs.O_RDONLY, 0)
		if err != nil {
			lastErr = err
			continue
		}
		return f, nil
	}
	return nil, lastErr
}

// Read fetches the full content of a record from any good replica,
// verifying the checksum.
func (d *DSDB) Read(rec Record) ([]byte, error) {
	var lastErr error = vfs.ENOENT
	for _, rep := range rec.Replicas {
		srv := d.server(rep.Server)
		if srv == nil {
			continue
		}
		data, err := vfs.ReadFile(srv.FS, rep.Path)
		if err != nil {
			lastErr = err
			continue
		}
		sum, _, _ := Checksum(bytes.NewReader(data))
		if sum != rec.Checksum {
			lastErr = vfs.EIO
			continue
		}
		return data, nil
	}
	return nil, lastErr
}

// Query returns records matching all attributes.
func (d *DSDB) Query(attrs map[string]string) ([]Record, error) {
	return d.idx.Query(attrs)
}

// Delete removes every replica and the record itself. Data is removed
// before metadata, mirroring the DSFS deletion order.
func (d *DSDB) Delete(id string) error {
	rec, found, err := d.idx.Get(id)
	if err != nil {
		return err
	}
	if !found {
		return vfs.ENOENT
	}
	for _, rep := range rec.Replicas {
		if srv := d.server(rep.Server); srv != nil {
			if err := srv.FS.Unlink(rep.Path); err != nil && vfs.AsErrno(err) != vfs.ENOENT {
				return err
			}
		}
	}
	return d.idx.Delete(id)
}

// AddReplica copies a record's data to a server not already holding a
// replica and updates the index. Placement spreads replicas: among the
// free servers, the one with the greatest minimum circular distance to
// the servers already holding copies is chosen, so that a failure
// wiping a batch of adjacent servers (Figure 9 forcibly deletes data
// from 1, 5, then 10 disks) cannot take out every copy of a record.
// io.EOF is returned when every server already holds a replica.
func (d *DSDB) AddReplica(rec Record) (Record, error) {
	n := len(d.servers)
	pos := make(map[string]int, n)
	for i := range d.servers {
		pos[d.servers[i].Name] = i
	}
	var holding []int
	held := make(map[int]bool, len(rec.Replicas))
	for _, rep := range rec.Replicas {
		if i, ok := pos[rep.Server]; ok {
			holding = append(holding, i)
			held[i] = true
		}
	}
	circDist := func(a, b int) int {
		dd := a - b
		if dd < 0 {
			dd = -dd
		}
		if n-dd < dd {
			dd = n - dd
		}
		return dd
	}
	var target *abstraction.DataServer
	bestDist := -1
	for i := range d.servers {
		if held[i] {
			continue
		}
		minDist := n + 1
		for _, h := range holding {
			if dd := circDist(i, h); dd < minDist {
				minDist = dd
			}
		}
		if minDist > bestDist {
			bestDist = minDist
			target = &d.servers[i]
		}
	}
	if target == nil {
		return rec, io.EOF
	}
	data, err := d.Read(rec)
	if err != nil {
		return rec, fmt.Errorf("gems: no good source replica for %s: %w", rec.ID, err)
	}
	path := replicaPath(target.Dir, rec.ID, len(rec.Replicas))
	// Replication reuses the verified store: the new copy is digested in
	// flight, so a replica born corrupt is impossible (the GEMS auditor
	// then only has to catch rot, not bad transfers).
	if err := vfs.PutBytes(context.Background(), vfs.Loc{FS: target.FS, Path: path},
		0o644, data, vfs.CopyOptions{Verify: true}); err != nil {
		return rec, fmt.Errorf("gems: replicating %s to %s: %w", rec.ID, target.Name, err)
	}
	rec.Replicas = append(rec.Replicas, Replica{Server: target.Name, Path: path})
	if err := d.idx.Update(rec); err != nil {
		target.FS.Unlink(path)
		return rec, err
	}
	return rec, nil
}

// StoredBytes returns the total bytes of all indexed replicas — the
// quantity plotted in Figure 9.
func (d *DSDB) StoredBytes() (int64, error) {
	recs, err := d.idx.List()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, r := range recs {
		total += r.Size * int64(len(r.Replicas))
	}
	return total, nil
}
