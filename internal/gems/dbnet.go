package gems

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The DSDB's database server: the paper's abstraction keeps metadata
// in a database service that clients query before accessing file
// servers directly. The wire protocol is one JSON object per line in
// each direction.

// dbRequest is one client request.
type dbRequest struct {
	Op     string            `json:"op"` // insert, update, delete, get, query, list
	Record *Record           `json:"record,omitempty"`
	ID     string            `json:"id,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// dbResponse is one server reply.
type dbResponse struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Record  *Record  `json:"record,omitempty"`
	Found   bool     `json:"found,omitempty"`
	Records []Record `json:"records,omitempty"`
}

// DBServer exposes an Index over the network.
type DBServer struct {
	idx Index
}

// NewDBServer wraps idx.
func NewDBServer(idx Index) *DBServer { return &DBServer{idx: idx} }

// Serve accepts connections until the listener closes.
func (s *DBServer) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

func (s *DBServer) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	for {
		var req dbRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *DBServer) handle(req *dbRequest) dbResponse {
	fail := func(err error) dbResponse { return dbResponse{Error: err.Error()} }
	switch req.Op {
	case "insert":
		if req.Record == nil {
			return fail(fmt.Errorf("insert: missing record"))
		}
		if err := s.idx.Insert(*req.Record); err != nil {
			return fail(err)
		}
		return dbResponse{OK: true}
	case "update":
		if req.Record == nil {
			return fail(fmt.Errorf("update: missing record"))
		}
		if err := s.idx.Update(*req.Record); err != nil {
			return fail(err)
		}
		return dbResponse{OK: true}
	case "delete":
		if err := s.idx.Delete(req.ID); err != nil {
			return fail(err)
		}
		return dbResponse{OK: true}
	case "get":
		r, found, err := s.idx.Get(req.ID)
		if err != nil {
			return fail(err)
		}
		return dbResponse{OK: true, Found: found, Record: &r}
	case "query":
		rs, err := s.idx.Query(req.Attrs)
		if err != nil {
			return fail(err)
		}
		return dbResponse{OK: true, Records: rs}
	case "list":
		rs, err := s.idx.List()
		if err != nil {
			return fail(err)
		}
		return dbResponse{OK: true, Records: rs}
	}
	return fail(fmt.Errorf("unknown op %q", req.Op))
}

// DBClient speaks to a DBServer and implements Index, so local and
// remote databases are interchangeable in the DSDB — one more instance
// of recursive abstraction.
type DBClient struct {
	mu      sync.Mutex
	conn    net.Conn
	dec     *json.Decoder
	bw      *bufio.Writer
	enc     *json.Encoder
	timeout time.Duration
}

var _ Index = (*DBClient)(nil)

// DialDB connects to a database server.
func DialDB(dial func() (net.Conn, error), timeout time.Duration) (*DBClient, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	return &DBClient{
		conn:    conn,
		dec:     json.NewDecoder(bufio.NewReader(conn)),
		bw:      bw,
		enc:     json.NewEncoder(bw),
		timeout: timeout,
	}, nil
}

// Close tears down the connection.
func (c *DBClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *DBClient) rpc(req dbRequest) (dbResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return dbResponse{}, fmt.Errorf("gems: db client closed")
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return dbResponse{}, err
	}
	//lint:ignore lockheld the DB protocol serializes request/response pairs on one connection; c.mu is the connection owner
	if err := c.bw.Flush(); err != nil {
		return dbResponse{}, err
	}
	var resp dbResponse
	if err := c.dec.Decode(&resp); err != nil {
		return dbResponse{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("gems: %s", resp.Error)
	}
	return resp, nil
}

// Insert adds a record remotely.
func (c *DBClient) Insert(r Record) error {
	_, err := c.rpc(dbRequest{Op: "insert", Record: &r})
	return err
}

// Update replaces a record remotely.
func (c *DBClient) Update(r Record) error {
	_, err := c.rpc(dbRequest{Op: "update", Record: &r})
	return err
}

// Delete removes a record remotely.
func (c *DBClient) Delete(id string) error {
	_, err := c.rpc(dbRequest{Op: "delete", ID: id})
	return err
}

// Get fetches one record remotely.
func (c *DBClient) Get(id string) (Record, bool, error) {
	resp, err := c.rpc(dbRequest{Op: "get", ID: id})
	if err != nil {
		return Record{}, false, err
	}
	if !resp.Found || resp.Record == nil {
		return Record{}, false, nil
	}
	return *resp.Record, true, nil
}

// Query runs an attribute query remotely.
func (c *DBClient) Query(attrs map[string]string) ([]Record, error) {
	resp, err := c.rpc(dbRequest{Op: "query", Attrs: attrs})
	return resp.Records, err
}

// List returns all records remotely.
func (c *DBClient) List() ([]Record, error) {
	resp, err := c.rpc(dbRequest{Op: "list"})
	return resp.Records, err
}
