package gems

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"tss/internal/vfs"
)

// JournalIndex is a durable Index: every mutation is appended to a
// journal file on a filesystem (any vfs.FileSystem — a local disk or,
// recursively, a Chirp server) before it is applied in memory, and the
// full state is recovered by replaying the journal at open. Combined
// with RecoverIndex (rebuild from data) this covers both halves of the
// §9 durability story: the database survives restarts, and even a lost
// database is recoverable from the storage pool.
type JournalIndex struct {
	mu   sync.Mutex
	mem  *MemIndex
	fs   vfs.FileSystem
	path string
	file vfs.File
	off  int64
	muts int // mutations since last compaction
}

var _ Index = (*JournalIndex)(nil)

// journalEntry is one logged mutation.
type journalEntry struct {
	Op     string  `json:"op"` // insert, update, delete
	Record *Record `json:"record,omitempty"`
	ID     string  `json:"id,omitempty"`
}

// OpenJournalIndex opens (or creates) a journal at path and replays it.
func OpenJournalIndex(fs vfs.FileSystem, path string) (*JournalIndex, error) {
	j := &JournalIndex{mem: NewMemIndex(), fs: fs, path: path}
	if err := j.replay(); err != nil {
		return nil, err
	}
	f, err := fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Fstat()
	if err != nil {
		f.Close()
		return nil, err
	}
	j.file = f
	j.off = fi.Size
	return j, nil
}

// replay loads existing journal contents into memory. Unparseable
// trailing lines (a torn final write) are tolerated; anything torn in
// the middle aborts, because later entries may depend on it.
func (j *JournalIndex) replay() error {
	data, err := vfs.ReadFile(j.fs, j.path)
	if vfs.AsErrno(err) == vfs.ENOENT {
		return nil
	}
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	var torn bool
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if torn {
			return fmt.Errorf("gems: journal %s: entry after torn line %d", j.path, lineNo-1)
		}
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			torn = true // acceptable only if it is the final line
			continue
		}
		if err := j.applyMem(&e); err != nil {
			return fmt.Errorf("gems: journal %s line %d: %w", j.path, lineNo, err)
		}
	}
	return sc.Err()
}

func (j *JournalIndex) applyMem(e *journalEntry) error {
	switch e.Op {
	case "insert":
		if e.Record == nil {
			return fmt.Errorf("insert without record")
		}
		return j.mem.Insert(*e.Record)
	case "update":
		if e.Record == nil {
			return fmt.Errorf("update without record")
		}
		return j.mem.Update(*e.Record)
	case "delete":
		return j.mem.Delete(e.ID)
	}
	return fmt.Errorf("unknown journal op %q", e.Op)
}

// log appends one entry durably. Caller holds j.mu.
func (j *JournalIndex) log(e *journalEntry) error {
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if err := vfs.WriteAll(j.file, body, j.off); err != nil {
		return err
	}
	if err := j.file.Sync(); err != nil {
		return err
	}
	j.off += int64(len(body))
	j.muts++
	return nil
}

// Insert logs then applies.
func (j *JournalIndex) Insert(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Validate first so the journal never records a failing op.
	if _, exists, _ := j.mem.Get(r.ID); exists {
		return fmt.Errorf("gems: record %q already exists", r.ID)
	}
	if err := j.log(&journalEntry{Op: "insert", Record: &r}); err != nil {
		return err
	}
	return j.mem.Insert(r)
}

// Update logs then applies.
func (j *JournalIndex) Update(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, exists, _ := j.mem.Get(r.ID); !exists {
		return fmt.Errorf("gems: record %q does not exist", r.ID)
	}
	if err := j.log(&journalEntry{Op: "update", Record: &r}); err != nil {
		return err
	}
	return j.mem.Update(r)
}

// Delete logs then applies.
func (j *JournalIndex) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log(&journalEntry{Op: "delete", ID: id}); err != nil {
		return err
	}
	return j.mem.Delete(id)
}

// Get reads from memory.
func (j *JournalIndex) Get(id string) (Record, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mem.Get(id)
}

// Query reads from memory.
func (j *JournalIndex) Query(attrs map[string]string) ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mem.Query(attrs)
}

// List reads from memory.
func (j *JournalIndex) List() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.mem.List()
}

// Mutations reports the number of journaled mutations since open or
// the last compaction (a compaction-policy input).
func (j *JournalIndex) Mutations() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.muts
}

// Compact rewrites the journal as a snapshot of the current state:
// one insert per live record. The snapshot is written beside the
// journal and renamed over it, so a crash leaves either the old or
// the new journal, never a mix.
func (j *JournalIndex) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	recs, err := j.mem.List()
	if err != nil {
		return err
	}
	tmp := j.path + ".compact"
	f, err := j.fs.Open(tmp, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var off int64
	for i := range recs {
		body, err := json.Marshal(&journalEntry{Op: "insert", Record: &recs[i]})
		if err != nil {
			f.Close()
			return err
		}
		body = append(body, '\n')
		if err := vfs.WriteAll(f, body, off); err != nil {
			f.Close()
			return err
		}
		off += int64(len(body))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		return err
	}
	// Reopen the live handle on the new journal.
	j.file.Close()
	nf, err := j.fs.Open(j.path, vfs.O_WRONLY, 0)
	if err != nil {
		return err
	}
	j.file = nf
	j.off = off
	j.muts = 0
	return nil
}

// Close releases the journal file handle.
func (j *JournalIndex) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	err := j.file.Close()
	j.file = nil
	return err
}
