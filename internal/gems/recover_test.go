package gems

import (
	"bytes"
	"fmt"
	"testing"

	"tss/internal/vfs"
)

func TestRecoverIndexRebuildsFromData(t *testing.T) {
	d := newDSDB(t, 4)
	payloads := map[string][]byte{}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("run%d", i)
		payload := bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
		payloads[id] = payload
		rec, err := d.Put(id, map[string]string{"i": fmt.Sprint(i)}, payload)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := d.AddReplica(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The database burns down.
	recovered, err := RecoverIndex(d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := recovered.List()
	if err != nil || len(recs) != 5 {
		t.Fatalf("recovered %d records, %v", len(recs), err)
	}
	// Rebuild the DSDB on the recovered index and verify every record
	// is readable with the right content and replica count.
	d2, err := NewDSDB(recovered, d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		data, err := d2.Read(rec)
		if err != nil {
			t.Fatalf("recovered %s unreadable: %v", rec.ID, err)
		}
		if !bytes.Equal(data, payloads[rec.ID]) {
			t.Errorf("recovered %s has wrong content", rec.ID)
		}
	}
	even, _, _ := recovered.Get("run0")
	if len(even.Replicas) != 2 {
		t.Errorf("run0 replicas = %d, want 2", len(even.Replicas))
	}
	odd, _, _ := recovered.Get("run1")
	if len(odd.Replicas) != 1 {
		t.Errorf("run1 replicas = %d, want 1", len(odd.Replicas))
	}
}

func TestRecoverIndexMajorityVote(t *testing.T) {
	d := newDSDB(t, 3)
	rec, err := d.Put("contested", nil, []byte("truth"))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = d.AddReplica(rec)
	rec, _ = d.AddReplica(rec)
	// Corrupt one replica.
	bad := rec.Replicas[1]
	if err := vfs.WriteFile(d.server(bad.Server).FS, bad.Path, []byte("liess"), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverIndex(d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	got, found, _ := recovered.Get("contested")
	if !found {
		t.Fatal("record not recovered")
	}
	if len(got.Replicas) != 2 {
		t.Errorf("recovered replicas = %d, want 2 (corrupt one excluded)", len(got.Replicas))
	}
	d2, _ := NewDSDB(recovered, d.Servers())
	data, err := d2.Read(got)
	if err != nil || string(data) != "truth" {
		t.Fatalf("recovered content = %q, %v", data, err)
	}
}

func TestRecoverIndexIgnoresForeignFiles(t *testing.T) {
	d := newDSDB(t, 2)
	if _, err := d.Put("real", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Foreign files in the storage directory are not replicas.
	vfs.WriteFile(d.Servers()[0].FS, "/gems/README", []byte("hi"), 0o644)
	recovered, err := RecoverIndex(d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := recovered.List()
	if len(recs) != 1 || recs[0].ID != "real" {
		t.Errorf("recovered = %+v", recs)
	}
}

func TestRecoverIndexEmptyServers(t *testing.T) {
	d := newDSDB(t, 2)
	recovered, err := RecoverIndex(d.Servers())
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := recovered.List()
	if len(recs) != 0 {
		t.Errorf("recovered %d records from empty servers", len(recs))
	}
}
