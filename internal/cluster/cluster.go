// Package cluster models the hardware of the paper's evaluation
// cluster (§7, Figures 6-8) on the deterministic simulation kernel:
// nodes with one SATA disk (~10 MB/s sustained), 512 MB of RAM for
// buffer cache, and a full-duplex gigabit port (~100 MB/s practical)
// into a commodity switch whose backplane saturates near 300 MB/s.
//
// A DSFS workload runs on the model: files are spread round-robin over
// the servers, and client processes repeatedly pick a file at random
// and read it end to end. A cache hit streams from memory — the flow
// crosses the server port, the backplane, and the client port. A miss
// adds the server's disk to the flow's resource set (the pipelined
// disk-to-network read), then installs the file in that server's LRU
// cache. Aggregate client goodput over a measurement window is the
// figure of merit, exactly as in the paper.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"tss/internal/cache"
	"tss/internal/sim"
)

// MB is one binary megabyte in bytes.
const MB = 1 << 20

// Config describes one DSFS scalability experiment.
type Config struct {
	Servers   int
	Clients   int
	FileCount int
	FileSize  int64 // bytes

	// Hardware, defaulted to the paper's cluster by DefaultHardware.
	ServerPortBW float64 // bytes/s per server NIC (egress)
	ClientPortBW float64 // bytes/s per client NIC (ingress)
	BackplaneBW  float64 // bytes/s shared switch backplane
	DiskBW       float64 // bytes/s per server disk
	CacheBytes   int64   // usable buffer cache per server

	// MetadataDelay is charged per open: the stub lookup plus open
	// round trips of the DSFS (§5).
	MetadataDelay time.Duration

	// Warmup is excluded from measurement; Measure is the window over
	// which goodput is averaged.
	Warmup  time.Duration
	Measure time.Duration

	// Prewarm loads each server's cache with its own files (up to
	// capacity) before the clock starts, so the measurement sees the
	// steady state rather than the cold fill — the paper's runs
	// likewise measure established systems.
	Prewarm bool

	Seed int64
}

// DefaultHardware fills zero fields with the paper's cluster numbers.
func (c *Config) DefaultHardware() {
	if c.ServerPortBW == 0 {
		c.ServerPortBW = 100 * MB // "just over 100 MB/s, the practical limit of TCP on a 1Gb port"
	}
	if c.ClientPortBW == 0 {
		c.ClientPortBW = 100 * MB
	}
	if c.BackplaneBW == 0 {
		c.BackplaneBW = 300 * MB // "saturate the switch backplane at 300 MB/s"
	}
	if c.DiskBW == 0 {
		c.DiskBW = 10 * MB // "10 MB/s, the raw disk throughput"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 480 * MB // 512 MB RAM minus the OS footprint
	}
	if c.Clients == 0 {
		c.Clients = 16
	}
	if c.MetadataDelay == 0 {
		c.MetadataDelay = 400 * time.Microsecond
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * time.Second
	}
	if c.Measure == 0 {
		c.Measure = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one experiment run.
type Result struct {
	Servers        int
	ThroughputMBps float64 // aggregate client goodput
	HitRate        float64 // cache hit fraction during measurement
	Reads          int     // completed file reads during measurement
}

// String renders one result row.
func (r Result) String() string {
	return fmt.Sprintf("servers=%d throughput=%.1f MB/s hitrate=%.2f reads=%d",
		r.Servers, r.ThroughputMBps, r.HitRate, r.Reads)
}

// server's buffer cache is modeled at whole-file granularity: the
// paper's workloads read whole large files, so per-block modeling
// would add state without changing outcomes.
type server struct {
	port  *sim.Resource
	disk  *sim.Resource
	cache *cache.LRU[int, struct{}]
}

// Run executes one DSFS scalability experiment on the model.
func Run(cfg Config) Result {
	cfg.DefaultHardware()
	s := sim.New()
	defer s.Shutdown()
	net := sim.NewFlowNet(s)

	backplane := sim.NewResource("backplane", cfg.BackplaneBW)
	servers := make([]*server, cfg.Servers)
	for i := range servers {
		servers[i] = &server{
			port:  sim.NewResource(fmt.Sprintf("port%d", i), cfg.ServerPortBW),
			disk:  sim.NewResource(fmt.Sprintf("disk%d", i), cfg.DiskBW),
			cache: cache.NewLRU[int, struct{}](cfg.CacheBytes),
		}
	}

	// Files are spread round-robin, as the DSFS places them.
	fileServer := func(fileID int) *server { return servers[fileID%cfg.Servers] }

	if cfg.Prewarm {
		for id := 0; id < cfg.FileCount; id++ {
			srv := fileServer(id)
			if srv.cache.Used()+cfg.FileSize <= cfg.CacheBytes {
				srv.cache.Put(id, struct{}{}, cfg.FileSize)
			}
		}
	}

	var bytesDelivered float64
	var hits, reads int
	measuring := false

	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
		clientPort := sim.NewResource(fmt.Sprintf("client%d", c), cfg.ClientPortBW)
		s.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for {
				fileID := rng.Intn(cfg.FileCount)
				srv := fileServer(fileID)
				p.Wait(cfg.MetadataDelay)
				hit := srv.cache.Touch(fileID)
				if hit {
					net.Transfer(p, float64(cfg.FileSize), srv.port, backplane, clientPort)
				} else {
					// Pipelined disk read: the flow is bottlenecked by
					// the slowest of disk and network shares.
					net.Transfer(p, float64(cfg.FileSize), srv.disk, srv.port, backplane, clientPort)
					srv.cache.Put(fileID, struct{}{}, cfg.FileSize)
				}
				if measuring {
					bytesDelivered += float64(cfg.FileSize)
					reads++
					if hit {
						hits++
					}
				}
			}
		})
	}

	s.RunUntil(cfg.Warmup)
	measuring = true
	s.RunUntil(cfg.Warmup + cfg.Measure)

	res := Result{
		Servers:        cfg.Servers,
		ThroughputMBps: bytesDelivered / cfg.Measure.Seconds() / MB,
		Reads:          reads,
	}
	if reads > 0 {
		res.HitRate = float64(hits) / float64(reads)
	}
	return res
}

// Sweep runs the experiment for each server count, as Figures 6-8 do
// for 1-8 servers.
func Sweep(base Config, serverCounts []int) []Result {
	out := make([]Result, 0, len(serverCounts))
	for _, n := range serverCounts {
		cfg := base
		cfg.Servers = n
		out = append(out, Run(cfg))
	}
	return out
}
