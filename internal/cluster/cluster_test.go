package cluster

import (
	"testing"
	"time"
)

// The LRU tests moved with the cache itself to internal/cache (the
// simulator now shares cache.LRU with the client caching tier).

func shortCfg() Config {
	return Config{
		Clients: 16,
		Warmup:  5 * time.Second,
		Measure: 20 * time.Second,
		Prewarm: true,
		Seed:    42,
	}
}

// Figure 6 shape: all data cached; 1 server ~ port speed (100 MB/s);
// many servers saturate the backplane (~300 MB/s).
func TestNetBoundShape(t *testing.T) {
	cfg := shortCfg()
	cfg.FileCount = 128
	cfg.FileSize = 1 * MB

	cfg.Servers = 1
	one := Run(cfg)
	if one.ThroughputMBps < 85 || one.ThroughputMBps > 110 {
		t.Errorf("1 server = %.1f MB/s, want ~100 (port bound)", one.ThroughputMBps)
	}
	cfg.Servers = 8
	eight := Run(cfg)
	if eight.ThroughputMBps < 260 || eight.ThroughputMBps > 310 {
		t.Errorf("8 servers = %.1f MB/s, want ~300 (backplane bound)", eight.ThroughputMBps)
	}
	if one.HitRate < 0.95 || eight.HitRate < 0.95 {
		t.Errorf("net-bound case should be all cache hits: %.2f / %.2f", one.HitRate, eight.HitRate)
	}
}

// Figure 8 shape: dataset far exceeds cache; throughput ~ disk rate
// times server count, scaling linearly.
func TestDiskBoundShape(t *testing.T) {
	cfg := shortCfg()
	cfg.FileCount = 1280
	cfg.FileSize = 10 * MB
	cfg.Clients = 48
	cfg.Warmup = 30 * time.Second
	cfg.Measure = 120 * time.Second

	results := Sweep(cfg, []int{1, 4, 8})
	one, four, eight := results[0], results[1], results[2]
	if one.ThroughputMBps < 7 || one.ThroughputMBps > 16 {
		t.Errorf("1 server = %.1f MB/s, want ~10 (disk bound)", one.ThroughputMBps)
	}
	// Roughly linear scaling ("throughput increases roughly linearly
	// with the number of servers" — Figure 8).
	if ratio := four.ThroughputMBps / one.ThroughputMBps; ratio < 2.5 || ratio > 6 {
		t.Errorf("4/1 scaling = %.2f, want ~4", ratio)
	}
	if ratio := eight.ThroughputMBps / one.ThroughputMBps; ratio < 5 || ratio > 12 {
		t.Errorf("8/1 scaling = %.2f, want ~8", ratio)
	}
	if !(one.ThroughputMBps < four.ThroughputMBps && four.ThroughputMBps < eight.ThroughputMBps) {
		t.Error("scaling is not monotonic")
	}
	if one.HitRate > 0.3 {
		t.Errorf("disk-bound hit rate = %.2f, want low", one.HitRate)
	}
}

// Figure 7 shape: the crossover — few servers disk-influenced, three
// or more all-in-memory and backplane bound.
func TestMixedBoundCrossover(t *testing.T) {
	cfg := shortCfg()
	cfg.FileCount = 1280
	cfg.FileSize = 1 * MB
	cfg.Warmup = 30 * time.Second

	one := Run(withServers(cfg, 1))
	three := Run(withServers(cfg, 3))
	eight := Run(withServers(cfg, 8))

	// 1 server: 1280MB dataset vs 480MB cache: many misses, throughput
	// far below port speed.
	if one.ThroughputMBps > 60 {
		t.Errorf("1 server mixed = %.1f MB/s, want disk-limited (<60)", one.ThroughputMBps)
	}
	if one.HitRate > 0.6 {
		t.Errorf("1 server mixed hit rate = %.2f, want < 0.6", one.HitRate)
	}
	// 3+ servers: per-server share fits in cache; backplane bound.
	if three.ThroughputMBps < 200 {
		t.Errorf("3 servers mixed = %.1f MB/s, want near backplane", three.ThroughputMBps)
	}
	if three.HitRate < 0.9 {
		t.Errorf("3 servers mixed hit rate = %.2f, want ~1", three.HitRate)
	}
	if eight.ThroughputMBps < three.ThroughputMBps-30 {
		t.Errorf("8 servers (%.1f) should hold the backplane plateau vs 3 (%.1f)",
			eight.ThroughputMBps, three.ThroughputMBps)
	}
}

func withServers(c Config, n int) Config {
	c.Servers = n
	return c
}

// Determinism: identical config and seed must give identical results.
func TestRunIsDeterministic(t *testing.T) {
	cfg := shortCfg()
	cfg.FileCount = 128
	cfg.FileSize = MB
	cfg.Servers = 3
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
	cfg.Seed = 43
	c := Run(cfg)
	if c.Reads == a.Reads && c.ThroughputMBps == a.ThroughputMBps {
		t.Log("different seed gave identical result (possible but suspicious)")
	}
}
