package cluster

// lruCache models a server's buffer cache at whole-file granularity:
// the paper's workloads read whole large files, so per-block modeling
// would add state without changing outcomes.
type lruCache struct {
	capacity int64
	used     int64
	entries  map[int]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	id         int
	size       int64
	prev, next *lruNode
}

func newLRU(capacity int64) *lruCache {
	return &lruCache{capacity: capacity, entries: make(map[int]*lruNode)}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch reports whether file id is cached, marking it most recently
// used if so.
func (c *lruCache) touch(id int) bool {
	n, ok := c.entries[id]
	if !ok {
		return false
	}
	c.unlink(n)
	c.pushFront(n)
	return true
}

// insert adds file id, evicting least recently used files as needed.
// Files larger than the whole cache are not cached at all.
func (c *lruCache) insert(id int, size int64) {
	if size > c.capacity {
		return
	}
	if n, ok := c.entries[id]; ok {
		c.unlink(n)
		c.pushFront(n)
		return
	}
	for c.used+size > c.capacity && c.tail != nil {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.id)
		c.used -= evict.size
	}
	n := &lruNode{id: id, size: size}
	c.entries[n.id] = n
	c.pushFront(n)
	c.used += size
}

// Used returns the bytes currently cached.
func (c *lruCache) Used() int64 { return c.used }

// Len returns the number of cached files.
func (c *lruCache) Len() int { return len(c.entries) }
