package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder builds the repository-wide lock-acquisition graph and
// reports cycles. Nodes are named mutex classes — a field of a named
// struct type ("(chirp.Server).connMu") or a package-level mutex
// ("catalog.mu") — and an edge A→B is recorded whenever some function
// acquires B while holding A, either directly or through a statically
// resolvable call chain (each function's transitively acquired classes
// are summarized first, then a CFG held-set analysis attributes them
// to the locks held at each call site). A cycle means two goroutines
// can each hold one lock of the cycle and wait forever for the next —
// the textbook AB/BA deadlock — and is reported with the witness path
// for every edge, so both halves of the inversion are visible in the
// diagnostic.
//
// Classes deliberately ignore instance identity: two different
// instances of the same struct never form an edge (self-edges are
// dropped), since hierarchical same-type locking is a different
// discipline with its own ordering rules and flagging it here would
// drown the real inversions.
type LockOrder struct{}

// NewLockOrder returns the checker.
func NewLockOrder() *LockOrder { return &LockOrder{} }

// Name implements Checker.
func (c *LockOrder) Name() string { return "lockorder" }

// Doc implements Checker.
func (c *LockOrder) Doc() string {
	return "the repo-wide lock-acquisition graph over named mutexes is cycle-free"
}

// Check implements Checker for single-package runs (fixtures).
func (c *LockOrder) Check(pkg *Package) []Diagnostic {
	return c.CheckRepo([]*Package{pkg})
}

// lockEdge is one A-before-B observation with its first witness.
type lockEdge struct {
	from, to string
	pos      token.Pos
	witness  string
}

// CheckRepo implements RepoChecker.
func (c *LockOrder) CheckRepo(pkgs []*Package) []Diagnostic {
	// Phase 1: per-function summaries — every mutex class a function
	// may acquire, directly or through nested literals — plus its
	// statically resolvable callees.
	type summary struct {
		direct map[string]token.Pos
		calls  map[*types.Func]bool
	}
	sums := make(map[*types.Func]*summary)
	decls := make(map[*types.Func]*indexedFunc)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := &summary{direct: make(map[string]token.Pos), calls: make(map[*types.Func]bool)}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if cls, op := mutexClass(pkg, call); cls != "" && acquires(op) {
						if _, seen := sum.direct[cls]; !seen {
							sum.direct[cls] = call.Pos()
						}
						return true
					}
					if callee := staticCallee(pkg, call); callee != nil {
						sum.calls[callee] = true
					}
					return true
				})
				sums[fn] = sum
				decls[fn] = &indexedFunc{pkg: pkg, decl: fd}
			}
		}
	}

	// Phase 2: transitive closure of acquired classes over the call
	// graph, to fixpoint.
	closure := make(map[*types.Func]map[string]token.Pos)
	for fn, sum := range sums {
		m := make(map[string]token.Pos, len(sum.direct))
		for cls, pos := range sum.direct {
			m[cls] = pos
		}
		closure[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range sums {
			into := closure[fn]
			for callee := range sum.calls {
				for cls, pos := range closure[callee] {
					if _, ok := into[cls]; !ok {
						into[cls] = pos
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: CFG held-set analysis per function attributes acquired
	// classes to the locks held when they happen, emitting edges.
	edges := make(map[[2]string]*lockEdge)
	addEdge := func(from, to string, pos token.Pos, witness string) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if _, ok := edges[key]; !ok {
			edges[key] = &lockEdge{from: from, to: to, pos: pos, witness: witness}
		}
	}
	var fns []*types.Func
	for fn := range sums {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		f := decls[fn]
		pkg := f.pkg
		fname := shortFuncName(fn)
		g := BuildCFG(pkg, f.decl.Body)
		transfer := func(n any, s factSet[string]) factSet[string] {
			node := n.(ast.Node)
			if d, ok := node.(*ast.DeferStmt); ok {
				if _, op := mutexClass(pkg, d.Call); op == "Unlock" || op == "RUnlock" {
					return s // deferred unlock holds to exit
				}
			}
			ast.Inspect(node, func(n2 ast.Node) bool {
				if _, ok := n2.(*ast.FuncLit); ok {
					return false // independent body, own lock state
				}
				call, ok := n2.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cls, op := mutexClass(pkg, call); cls != "" {
					switch {
					case acquires(op):
						for held := range s {
							addEdge(held, cls, call.Pos(), fmt.Sprintf(
								"%s locks %s at %s while holding %s", fname, cls, shortPos(pkg.Fset, call.Pos()), held))
						}
						s[cls] = struct{}{}
					case op == "Unlock" || op == "RUnlock":
						delete(s, cls)
					}
					return true
				}
				if callee := staticCallee(pkg, call); callee != nil && len(s) > 0 {
					// The loader shares one FileSet, so callee lock
					// positions render through pkg.Fset too.
					for cls, lockPos := range closure[callee] {
						for held := range s {
							addEdge(held, cls, call.Pos(), fmt.Sprintf(
								"%s holds %s and calls %s at %s, which locks %s at %s",
								fname, held, shortFuncName(callee), shortPos(pkg.Fset, call.Pos()),
								cls, shortPos(pkg.Fset, lockPos)))
						}
					}
				}
				return true
			})
			return s
		}
		p := &flowProblem[string]{transfer: transfer}
		in := p.solve(g)
		// One reporting replay so edges observed under fixpoint held
		// sets are recorded (solve itself already records them, but
		// only on the iterations it happens to run; replay guarantees
		// the final state).
		for _, b := range g.Blocks {
			s := in[b].clone()
			for _, n := range b.Nodes {
				s = transfer(n, s)
			}
		}
	}

	// Phase 4: cycle detection over the class graph.
	return c.reportCycles(pkgs, edges)
}

// reportCycles finds cycles in the edge graph and renders one
// diagnostic per cycle with every witness path.
func (c *LockOrder) reportCycles(pkgs []*Package, edges map[[2]string]*lockEdge) []Diagnostic {
	adj := make(map[string][]string)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for _, next := range adj {
		sort.Strings(next)
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	seen := make(map[string]bool) // canonical cycle strings
	var diags []Diagnostic
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	// Bounded DFS: enumerate simple cycles up to a modest length.
	const maxCycle = 4
	var path []string
	onPath := make(map[string]bool)
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		for _, next := range adj[cur] {
			if next == start && len(path) >= 2 {
				cyc := append([]string(nil), path...)
				canon := canonicalCycle(cyc)
				if seen[canon] {
					continue
				}
				seen[canon] = true
				var wits []string
				for i := range cyc {
					e := edges[[2]string{cyc[i], cyc[(i+1)%len(cyc)]}]
					wits = append(wits, e.witness)
				}
				first := edges[[2]string{cyc[0], cyc[1]}]
				diags = append(diags, Diagnostic{
					Pos:   fset.Position(first.pos),
					Check: c.Name(),
					Message: fmt.Sprintf("lock-order cycle %s → %s: %s",
						strings.Join(cyc, " → "), cyc[0], strings.Join(wits, "; ")),
				})
				continue
			}
			if onPath[next] || len(path) >= maxCycle {
				continue
			}
			if next < start {
				continue // canonical start: smallest node opens the cycle
			}
			path = append(path, next)
			onPath[next] = true
			dfs(start, next)
			path = path[:len(path)-1]
			onPath[next] = false
		}
	}
	for _, n := range nodes {
		path = path[:0]
		path = append(path, n)
		onPath = map[string]bool{n: true}
		dfs(n, n)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	return diags
}

// canonicalCycle rotates the cycle so its smallest class comes first,
// giving a stable dedup key.
func canonicalCycle(cyc []string) string {
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cyc[min:]...), cyc[:min]...)
	return strings.Join(rot, "→")
}

// acquires reports whether the mutex op takes the lock.
func acquires(op string) bool {
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// mutexClass classifies a call as a lock operation on a named mutex,
// returning the mutex class and the operation name ("" when the call
// is not a mutex op or the mutex has no stable name). Classes:
//
//	(pkg.Type).field   — a sync.Mutex/RWMutex field of a named struct
//	(pkg.Type).Mutex   — an embedded mutex locked through the struct
//	pkg.var            — a package-level mutex variable
//
// Local mutex variables have function scope and cannot participate in
// cross-function ordering; they return "".
func mutexClass(pkg *Package, call *ast.CallExpr) (class, op string) {
	name := calleeName(pkg.Info, call)
	switch name {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).Unlock", "(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock",
		"(*sync.RWMutex).TryLock", "(*sync.RWMutex).TryRLock":
	default:
		return "", ""
	}
	op = name[strings.LastIndexByte(name, '.')+1:]
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", op
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): class from the field selection.
		if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if owner := namedOf(s.Recv()); owner != "" {
				return "(" + owner + ")." + x.Sel.Name, op
			}
		}
		// pkg-level mutex referenced as otherpkg.mu.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
			return v.Pkg().Name() + "." + v.Name(), op
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			if isPkgLevel(v) {
				return v.Pkg().Name() + "." + v.Name(), op
			}
			// Embedded mutex: t.Lock() where t's type embeds
			// sync.Mutex.
			if owner := namedOf(v.Type()); owner != "" && owner != "sync.Mutex" && owner != "sync.RWMutex" {
				return "(" + owner + ").Mutex", op
			}
		}
	}
	return "", op
}

// namedOf renders the named type behind t (unwrapping pointers) as
// pkg.Name, or "".
func namedOf(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// staticCallee resolves a call to a function or concrete method with a
// known declaration; interface methods and function values return nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// shortFuncName renders a function for witnesses: pkg.Func or
// (pkg.Type).Method.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if fn.Pkg() != nil {
		full = strings.ReplaceAll(full, fn.Pkg().Path(), fn.Pkg().Name())
	}
	return full
}

// shortPos renders file:line with the file's basename, keeping
// witness strings stable across checkouts.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
