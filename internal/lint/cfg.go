package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG is the intraprocedural control-flow graph of one function body.
// Blocks hold statements and the expressions that drive branching, in
// evaluation order; edges carry the branch condition they encode (with
// its polarity) so dataflow analyses can refine facts along them — the
// `if err != nil` edge is what lets reslifetime know a failed
// acquisition left nothing to close.
//
// The graph models the control constructs the checkers care about:
// if/for/range/switch/select with break/continue/goto/fallthrough,
// return edges into a single synthetic Exit block, and panic edges —
// explicit panic(...) plus the process-terminating calls (os.Exit,
// log.Fatal*) — which also reach Exit but are marked so analyses can
// treat crash paths differently from returns. Deferred calls are
// recorded in registration order; their bodies run at every Exit edge.
type CFG struct {
	// Entry is the block control enters with the function's parameters
	// bound.
	Entry *Block
	// Exit is the single synthetic exit block: every return, panic and
	// fall-off-the-end edge targets it. It holds no nodes.
	Exit *Block
	// Blocks lists every block, Entry first, Exit second. Blocks made
	// unreachable by return/panic/goto remain in the list with no
	// incoming edges.
	Blocks []*Block
	// Defers are the function's defer statements in registration
	// order. Their calls execute on every path into Exit.
	Defers []*ast.DeferStmt
	// Recovers reports whether any deferred call tree contains a
	// recover() call, i.e. panic edges may resume rather than kill the
	// goroutine.
	Recovers bool
}

// Block is a straight-line sequence of AST nodes with no internal
// control transfer. Nodes are statements plus the condition/tag
// expressions evaluated in the block (an *ast.Expr node appears where
// an if/for condition or switch tag is evaluated).
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the block's statements and driving expressions in
	// evaluation order.
	Nodes []ast.Node
	// Succs and Preds are the block's outgoing and incoming edges.
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control transfer.
type Edge struct {
	From, To *Block
	// Cond is the branch condition this edge encodes, nil for an
	// unconditional transfer. The edge is taken when Cond evaluates to
	// !Negated.
	Cond ast.Expr
	// Negated marks the false arm of Cond.
	Negated bool
	// Panic marks an edge into Exit produced by panic(...) or a
	// process-terminating call rather than a return.
	Panic bool
	// Tag is the dispatch expression for an edge leaving a value
	// switch's condition block, nil elsewhere. Cases are the clause's
	// case expressions — the edge is taken when Tag equals one of them.
	// NotCases are case expressions known NOT to match on this edge;
	// they are set on the default-clause and no-clause-matched edges,
	// where Cases is empty. Refinements use these the way they use
	// Cond: `switch vfs.AsErrno(err)` tells reslifetime which arms
	// carry a failed (nil) acquisition.
	Tag      ast.Expr
	Cases    []ast.Expr
	NotCases []ast.Expr
}

// Returns yields the return statements (if any) that end the edge's
// source block; a fall-off or panic edge has none.
func (e *Edge) Returns() *ast.ReturnStmt {
	if len(e.From.Nodes) == 0 {
		return nil
	}
	r, _ := e.From.Nodes[len(e.From.Nodes)-1].(*ast.ReturnStmt)
	return r
}

// terminators are the fully qualified callees that never return:
// control flowing into them exits the function (and the process), so
// they produce panic edges. Test-only terminators (testing.T.Fatal)
// never appear because the loader skips test files.
var terminators = map[string]bool{
	"os.Exit":        true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
	"runtime.Goexit": true,
}

// BuildCFG constructs the control-flow graph of one function body.
// The package supplies type information for resolving terminating
// callees; body is the *ast.BlockStmt of a FuncDecl or FuncLit.
func BuildCFG(pkg *Package, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		pkg:    pkg,
		g:      &CFG{},
		labels: make(map[string]*labelTarget),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit, nil, false, false)
	b.resolveGotos()
	return b.g
}

// labelTarget is the break/continue destination pair registered for a
// labeled loop, switch or select.
type labelTarget struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select labels
	start      *Block // the labeled statement's first block (goto target)
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

type cfgBuilder struct {
	pkg *Package
	g   *CFG
	cur *Block

	// Innermost-first stacks of break/continue targets.
	breaks    []*Block
	continues []*Block

	// pendingLabel is set while building the statement a label names,
	// so the loop/switch registers its targets under that label.
	pendingLabel string
	labels       map[string]*labelTarget
	gotos        []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, negated, panics bool) {
	e := &Edge{From: from, To: to, Cond: cond, Negated: negated, Panic: panics}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// unreachable parks the builder on a fresh block with no predecessors:
// the statements after a return/break/goto still get blocks (and are
// analyzed with empty entry state), they just cannot be reached.
func (b *cfgBuilder) unreachable() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that claims
// it, returning "" when the construct is unlabeled.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		start := b.newBlock()
		b.edge(b.cur, start, nil, false, false)
		b.cur = start
		b.labels[st.Label.Name] = &labelTarget{start: start}
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.takeLabel()
		b.stmt(st.Init)
		b.add(st.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then, st.Cond, false, false)
		if st.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, st.Cond, true, false)
			b.cur = els
			b.stmt(st.Else)
			b.edge(b.cur, join, nil, false, false)
		} else {
			b.edge(cond, join, st.Cond, true, false)
		}
		b.cur = then
		b.stmt(st.Body)
		b.edge(b.cur, join, nil, false, false)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(st.Init)
		head := b.newBlock()
		b.edge(b.cur, head, nil, false, false)
		b.cur = head
		join := b.newBlock()
		body := b.newBlock()
		if st.Cond != nil {
			b.add(st.Cond)
			b.edge(head, body, st.Cond, false, false)
			b.edge(head, join, st.Cond, true, false)
		} else {
			// `for {}`: the only way past join is break/return.
			b.edge(head, body, nil, false, false)
		}
		contTo := head
		var post *Block
		if st.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		b.pushLoop(label, join, contTo)
		b.cur = body
		b.stmt(st.Body)
		b.popLoop()
		if post != nil {
			b.edge(b.cur, post, nil, false, false)
			b.cur = post
			b.stmt(st.Post)
		}
		b.edge(b.cur, head, nil, false, false)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head, nil, false, false)
		b.cur = head
		b.add(st.X)
		if st.Key != nil {
			b.add(st.Key)
		}
		if st.Value != nil {
			b.add(st.Value)
		}
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body, nil, false, false)
		b.edge(head, join, nil, false, false)
		b.pushLoop(label, join, head)
		b.cur = body
		b.stmt(st.Body)
		b.popLoop()
		b.edge(b.cur, head, nil, false, false)
		b.cur = join

	case *ast.SwitchStmt:
		b.switchStmt(st.Init, st.Tag, nil, st.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(st.Init, nil, st.Assign, st.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		join := b.newBlock()
		b.pushBreakable(label, join)
		any := false
		for _, cl := range st.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(sel, blk, nil, false, false)
			b.cur = blk
			b.stmt(comm.Comm)
			b.stmtList(comm.Body)
			b.edge(b.cur, join, nil, false, false)
			any = true
		}
		b.popBreakable()
		if !any {
			// `select {}` blocks forever: no successor at all.
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.Exit, nil, false, false)
		b.unreachable()

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.DeferStmt:
		b.add(st)
		b.g.Defers = append(b.g.Defers, st)
		if callTreeRecovers(st.Call) {
			b.g.Recovers = true
		}

	case *ast.ExprStmt:
		b.add(st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && b.terminates(call) {
			b.edge(b.cur, b.g.Exit, nil, false, true)
			b.unreachable()
		}

	default:
		// Assignments, declarations, go/send/incdec: straight-line.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: the tag evaluates in
// the current block, every case clause gets its own block, fallthrough
// chains into the next clause, and a missing default adds a direct
// tag→join edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	cond := b.cur
	join := b.newBlock()
	b.pushBreakable(label, join)
	clauses := make([]*Block, len(body.List))
	hasDefault := false
	var allCases []ast.Expr
	for i, cl := range body.List {
		clauses[i] = b.newBlock()
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		allCases = append(allCases, cc.List...)
	}
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		blk := clauses[i]
		b.edge(cond, blk, nil, false, false)
		if tag != nil {
			e := cond.Succs[len(cond.Succs)-1]
			e.Tag = tag
			if cc.List != nil {
				e.Cases = cc.List
			} else {
				e.NotCases = allCases
			}
		}
		b.cur = blk
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for j, s2 := range cc.Body {
			if br, ok := s2.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(cc.Body)-1 {
				falls = true
				break
			}
			b.stmt(s2)
		}
		if falls && i+1 < len(clauses) {
			b.edge(b.cur, clauses[i+1], nil, false, false)
		} else {
			b.edge(b.cur, join, nil, false, false)
		}
	}
	b.popBreakable()
	if !hasDefault {
		b.edge(cond, join, nil, false, false)
		if tag != nil {
			e := cond.Succs[len(cond.Succs)-1]
			e.Tag = tag
			e.NotCases = allCases
		}
	}
	b.cur = join
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	switch st.Tok {
	case token.BREAK:
		var to *Block
		if st.Label != nil {
			if t := b.labels[st.Label.Name]; t != nil {
				to = t.breakTo
			}
		} else if len(b.breaks) > 0 {
			to = b.breaks[len(b.breaks)-1]
		}
		if to != nil {
			b.edge(b.cur, to, nil, false, false)
		}
		b.unreachable()
	case token.CONTINUE:
		var to *Block
		if st.Label != nil {
			if t := b.labels[st.Label.Name]; t != nil {
				to = t.continueTo
			}
		} else if len(b.continues) > 0 {
			to = b.continues[len(b.continues)-1]
		}
		if to != nil {
			b.edge(b.cur, to, nil, false, false)
		}
		b.unreachable()
	case token.GOTO:
		if st.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name, pos: st.Pos()})
		}
		b.unreachable()
	case token.FALLTHROUGH:
		// Reached only for malformed positions; switchStmt handles the
		// legal final-statement form.
	}
}

func (b *cfgBuilder) pushLoop(label string, breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	b.continues = append(b.continues, continueTo)
	if label != "" {
		t := b.labels[label]
		t.breakTo, t.continueTo = breakTo, continueTo
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreakable(label string, breakTo *Block) {
	b.breaks = append(b.breaks, breakTo)
	// continue skips switch/select: keep the enclosing loop target by
	// pushing a sentinel copy.
	cont := (*Block)(nil)
	if len(b.continues) > 0 {
		cont = b.continues[len(b.continues)-1]
	}
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labels[label].breakTo = breakTo
	}
}

func (b *cfgBuilder) popBreakable() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil && t.start != nil {
			b.edge(g.from, t.start, nil, false, false)
		}
	}
}

// terminates reports whether the call never returns: the panic builtin
// or a process-terminating callee.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := b.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	return terminators[calleeName(b.pkg.Info, call)]
}

// callTreeRecovers reports whether the deferred call's function
// literal (or argument tree) contains a recover() call.
func callTreeRecovers(call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		for _, e := range blk.Succs {
			if !seen[e.To] {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// ExitReachable reports whether any non-panic edge into Exit leaves a
// block reachable from Entry — i.e. the function has a provable normal
// termination path. A body whose only route out is panic (or that
// loops forever) reports false.
func (g *CFG) ExitReachable() bool {
	reach := g.Reachable()
	for _, e := range g.Exit.Preds {
		if !e.Panic && reach[e.From] {
			return true
		}
	}
	return false
}

// funcBodies yields every function-like body in the file: declarations
// and function literals, each analyzed as an independent function.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body, d)
			}
		case *ast.FuncLit:
			fn(d.Body, nil)
		}
		return true
	})
}
