package lint

import (
	"go/token"
	"strconv"
	"strings"
)

// A suppression is declared in source as
//
//	//lint:ignore <check> <reason>
//
// either on the line immediately above the offending line or as a
// trailing comment on the offending line itself. The reason is
// mandatory: a suppression documents *why* the invariant does not
// apply at this site, and the driver rejects bare ignores. The check
// name must be one the driver registers — a typo'd name would silently
// match nothing, so unknown names are errors, and suppressions that
// match no diagnostic at all are listed by the driver's unused-
// suppression mode.
type suppressSet map[suppressKey]token.Position

type suppressKey struct {
	file  string
	line  int
	check string
}

// match returns the suppression key covering d, if any: a matching
// //lint:ignore on the diagnostic's own line or the line above it.
func (s suppressSet) match(d Diagnostic) (suppressKey, bool) {
	if k := (suppressKey{d.Pos.Filename, d.Pos.Line, d.Check}); s.has(k) {
		return k, true
	}
	if k := (suppressKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}); s.has(k) {
		return k, true
	}
	return suppressKey{}, false
}

func (s suppressSet) has(k suppressKey) bool { _, ok := s[k]; return ok }

// suppressions scans the package's comments for //lint:ignore
// directives. Malformed directives — a missing reason, or a check name
// the driver does not know — are themselves diagnostics: a suppression
// that silently matched nothing would hide regressions.
func suppressions(pkg *Package, known map[string]bool) (suppressSet, []Diagnostic) {
	set := make(suppressSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: "malformed suppression: want //lint:ignore <check> <reason>",
					})
					continue
				}
				check := fields[0]
				if !known[check] {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Check:   "lint",
						Message: "suppression names unknown check " + strconv.Quote(check),
					})
					continue
				}
				set[suppressKey{pos.Filename, pos.Line, check}] = pos
			}
		}
	}
	return set, bad
}
