package lint

import (
	"go/ast"
)

// CapProbe enforces the capability-probe contract introduced with
// vfs.Capabilities: outside package vfs itself, no code may reach an
// optional vfs interface (Reconnector, OpenStater, FileGetter,
// FilePutter, Checksummer, Closer, Capabler) by direct type assertion
// or type
// switch. Ad-hoc assertions see only the outermost layer of a stacked
// filesystem and silently drop the fast paths of the layers it wraps —
// the exact bug class vfs.Capabilities was built to end (DESIGN.md §8).
type CapProbe struct {
	// VFSPath is the import path of the vfs package.
	VFSPath string
	// Interfaces are the optional-capability interface names that must
	// be reached through the probe.
	Interfaces map[string]bool
}

// NewCapProbe returns the checker configured for this repository.
func NewCapProbe() *CapProbe {
	return &CapProbe{
		VFSPath: "tss/internal/vfs",
		Interfaces: map[string]bool{
			"Reconnector": true,
			"OpenStater":  true,
			"FileGetter":  true,
			"FilePutter":  true,
			"PartGetter":  true,
			"PartPutter":  true,
			"Checksummer": true,
			"Closer":      true,
			"Capabler":    true,
		},
	}
}

// Name implements Checker.
func (c *CapProbe) Name() string { return "capprobe" }

// Doc implements Checker.
func (c *CapProbe) Doc() string {
	return "optional vfs interfaces must be reached via vfs.Capabilities, not type assertion"
}

// Check implements Checker.
func (c *CapProbe) Check(pkg *Package) []Diagnostic {
	if pkg.Path == c.VFSPath {
		// The probe itself is the one sanctioned place for the
		// assertions.
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var typeExprs []ast.Expr
			switch x := n.(type) {
			case *ast.TypeAssertExpr:
				if x.Type != nil { // x.(type) switches are handled below
					typeExprs = append(typeExprs, x.Type)
				}
			case *ast.TypeSwitchStmt:
				for _, cl := range x.Body.List {
					typeExprs = append(typeExprs, cl.(*ast.CaseClause).List...)
				}
			default:
				return true
			}
			for _, te := range typeExprs {
				tv, ok := pkg.Info.Types[te]
				if !ok {
					continue
				}
				name, ok := namedFrom(tv.Type, c.VFSPath)
				if !ok || !c.Interfaces[name] {
					continue
				}
				pos := pkg.Fset.Position(te.Pos())
				if isTestFile(pos) {
					continue
				}
				diags = append(diags, pkg.diag(c.Name(), te.Pos(),
					"type assertion to vfs.%s bypasses the capability probe; use vfs.Capabilities(fs).%s",
					name, name))
			}
			return true
		})
	}
	return diags
}
