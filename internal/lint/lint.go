// Package lint is a dependency-free static-analysis framework for the
// tactical storage system. The paper's central claim — one Unix
// filesystem interface serving as both the resource interface and the
// abstraction interface (§3) — only holds while every layer of the
// recursive stack obeys the same contracts. The checkers in this
// package turn those contracts (capability probing, injectable sleep
// seams, errno discipline, lock hygiene, context plumbing) into
// machine-checked invariants that run on every `make verify`.
//
// The framework is built directly on go/parser and go/types so that
// go.mod stays empty: the analyzer is as self-hosted as the storage
// system it checks.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package presented to checkers.
type Package struct {
	// Path is the import path ("tss/internal/vfs").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the canonical file:line:col form the
// driver prints and the golden tests assert against.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Checker is one repo-invariant analysis. Checkers are pure functions
// of a type-checked package; the framework owns suppression handling,
// ordering and output.
type Checker interface {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore comments.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check analyzes one package.
	Check(pkg *Package) []Diagnostic
}

// RepoChecker is a whole-repository analysis: it sees every loaded
// package at once, so it can follow call chains and lock acquisitions
// across package boundaries (lockorder's acquisition graph, goroleak's
// cross-package body resolution). The framework calls CheckRepo once
// instead of Check per package.
type RepoChecker interface {
	Checker
	CheckRepo(pkgs []*Package) []Diagnostic
}

// Checkers returns the full table of repo invariants, in the order
// they are documented in DESIGN.md §9.
func Checkers() []Checker {
	return []Checker{
		NewCapProbe(),
		NewLockHeld(),
		NewSleepSeam(),
		NewErrnoWrap(),
		NewCtxLeak(),
		NewCopyAPI(),
		NewResLifetime(),
		NewLockOrder(),
		NewGoroLeak(),
	}
}

// Run applies every checker to every package, drops diagnostics that
// are suppressed by a well-formed //lint:ignore comment, reports
// malformed suppressions, and returns the remainder sorted by
// position.
func Run(pkgs []*Package, checkers []Checker) []Diagnostic {
	diags, _ := RunAll(pkgs, checkers)
	return diags
}

// RunAll is Run plus bookkeeping: the second result lists suppressions
// that matched no diagnostic — dead //lint:ignore comments that would
// silently swallow a future regression at their line. Packages are
// checked concurrently; repo-wide checkers run once over the full set.
func RunAll(pkgs []*Package, checkers []Checker) (diags, unused []Diagnostic) {
	known := make(map[string]bool, len(checkers))
	for _, c := range checkers {
		known[c.Name()] = true
	}
	sup := make(suppressSet)
	for _, pkg := range pkgs {
		s, bad := suppressions(pkg, known)
		for k, pos := range s {
			sup[k] = pos
		}
		diags = append(diags, bad...)
	}

	// Fan the per-package checkers out; repo checkers get the whole
	// set once. Every (checker, package) cell is independent.
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		raw []Diagnostic
	)
	collect := func(ds []Diagnostic) {
		mu.Lock()
		raw = append(raw, ds...)
		mu.Unlock()
	}
	for _, c := range checkers {
		if rc, ok := c.(RepoChecker); ok {
			wg.Add(1)
			go func() {
				defer wg.Done()
				collect(rc.CheckRepo(pkgs))
			}()
			continue
		}
		for _, pkg := range pkgs {
			wg.Add(1)
			go func(c Checker, pkg *Package) {
				defer wg.Done()
				collect(c.Check(pkg))
			}(c, pkg)
		}
	}
	wg.Wait()

	used := make(map[suppressKey]bool)
	for _, d := range raw {
		if key, ok := sup.match(d); ok {
			used[key] = true
			continue
		}
		diags = append(diags, d)
	}
	for key, pos := range sup {
		if !used[key] {
			unused = append(unused, Diagnostic{
				Pos:     pos,
				Check:   "lint",
				Message: fmt.Sprintf("unused suppression: no %s diagnostic on this or the next line", key.check),
			})
		}
	}
	sortDiags(diags)
	sortDiags(unused)
	return diags, unused
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// diag builds a Diagnostic at the given node.
func (p *Package) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// calleeName resolves a call expression to the fully qualified name of
// the called function or method, e.g. "time.Sleep",
// "(*sync.Mutex).Lock", "(net.Conn).Read". Calls through function
// values, conversions and builtins resolve to "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// namedFrom reports whether t (after unwrapping pointers and aliases)
// is the named type pkgPath.name, returning the resolved name.
func namedFrom(t types.Type, pkgPath string) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return obj.Name(), true
}

// exprString renders a (small) expression for diagnostics, e.g. the
// receiver of a mutex: "c.mu".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "expr"
}

// isTestFile reports whether the position is in a _test.go file. The
// loader never parses test files, but checkers guard anyway so they
// stay correct if fed a richer file set.
func isTestFile(pos token.Position) bool {
	return strings.HasSuffix(pos.Filename, "_test.go")
}
