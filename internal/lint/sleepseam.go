package lint

import (
	"go/ast"
)

// SleepSeam forbids direct calls to time.Sleep in non-test code. PR 1
// introduced injectable sleep seams (resilient.Policy.Sleep,
// adapter.Config.Sleep, faultfs latency knobs) precisely so that
// backoff and settling delays are (a) testable without wall-clock
// waits and (b) visible in one place per layer. A bare time.Sleep
// call re-opens the hole: it cannot be faked, cannot be observed, and
// usually papers over a missing synchronization primitive.
//
// Referencing time.Sleep as a *value* — wiring it in as the default
// for a seam field, `sleep = time.Sleep` — is allowed everywhere; only
// direct calls are flagged.
type SleepSeam struct{}

// NewSleepSeam returns the checker.
func NewSleepSeam() *SleepSeam { return &SleepSeam{} }

// Name implements Checker.
func (c *SleepSeam) Name() string { return "sleepseam" }

// Doc implements Checker.
func (c *SleepSeam) Doc() string {
	return "no bare time.Sleep in non-test code; use the layer's injectable sleep seam"
}

// Check implements Checker.
func (c *SleepSeam) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeName(pkg.Info, call) != "time.Sleep" {
				return true
			}
			pos := pkg.Fset.Position(call.Pos())
			if isTestFile(pos) {
				return true
			}
			diags = append(diags, pkg.diag(c.Name(), call.Pos(),
				"bare time.Sleep call; route the delay through an injectable sleep seam or an event (channel, Ticker, catalog WaitFor)"))
			return true
		})
	}
	return diags
}
