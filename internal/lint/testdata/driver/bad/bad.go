// Package bad is the driver test's synthetic violating package.
package bad

import "time"

// Wait violates the sleepseam invariant.
func Wait() {
	time.Sleep(time.Second)
}
