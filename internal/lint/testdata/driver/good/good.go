// Package good is the driver test's synthetic clean package.
package good

// Answer is exemplary code.
func Answer() int {
	return 42
}
