// Package good keeps blocking calls outside critical sections.
package good

import (
	"net"
	"sync"
)

// Pool is a connection pool with one lock.
type Pool struct {
	mu    sync.Mutex
	conns []net.Conn
}

// Refill dials before taking the lock; the critical section only
// touches memory.
func (p *Pool) Refill(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
	return nil
}

// Async dials from a goroutine that does not hold the lock — the
// spawned body is its own function with its own (empty) lock state.
func (p *Pool) Async(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		net.Dial("tcp", addr)
	}()
}
