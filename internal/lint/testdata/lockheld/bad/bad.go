// Package bad blocks on the network and the clock while holding a
// mutex, convoying every other goroutine behind a peer's latency.
package bad

import (
	"net"
	"sync"
	"time"
)

// Pool is a connection pool with one lock.
type Pool struct {
	mu    sync.Mutex
	conns []net.Conn
}

// Refill dials while holding the pool lock.
func (p *Pool) Refill(addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	p.conns = append(p.conns, c)
	return nil
}

// Throttle sleeps inside the critical section, then (legally) after it.
func (p *Pool) Throttle() {
	p.mu.Lock()
	time.Sleep(time.Millisecond)
	p.mu.Unlock()
	time.Sleep(time.Millisecond)
}
