// Package bad exercises the suppression grammar: one justified
// ignore, one missing its reason, one naming an unknown check.
package bad

import "time"

// Settle is noisy but justified: the suppression carries a reason.
func Settle() {
	//lint:ignore sleepseam fixture demonstrating a justified wait
	time.Sleep(time.Millisecond)
}

// Unjustified lacks a reason, so the suppression is rejected and the
// underlying diagnostic still fires.
func Unjustified() {
	//lint:ignore sleepseam
	time.Sleep(time.Millisecond)
}

// Unknown names a check that does not exist.
func Unknown() {
	//lint:ignore nosuchcheck the checker name is wrong
	time.Sleep(time.Millisecond)
}
