// Package good reaches optional vfs interfaces through the probe and
// asserts freely to its own interfaces.
package good

import "tss/internal/vfs"

// Reconnect goes through the sanctioned probe.
func Reconnect(fs vfs.FileSystem) error {
	if rc := vfs.Capabilities(fs).Reconnector; rc != nil {
		return rc.Reconnect()
	}
	return nil
}

// sizer is a local interface; asserting to it is fine.
type sizer interface{ Size() int64 }

// Sniff asserts to a non-vfs interface.
func Sniff(v any) bool {
	_, ok := v.(sizer)
	return ok
}
