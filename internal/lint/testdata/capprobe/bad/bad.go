// Package bad reaches optional vfs interfaces by direct assertion,
// which sees only the outermost layer of a stacked filesystem.
package bad

import "tss/internal/vfs"

// Reconnect sniffs the capability the forbidden way.
func Reconnect(fs vfs.FileSystem) error {
	if rc, ok := fs.(vfs.Reconnector); ok {
		return rc.Reconnect()
	}
	return nil
}

// Fetch switches on optional interfaces.
func Fetch(fs vfs.FileSystem) bool {
	switch fs.(type) {
	case vfs.FileGetter:
		return true
	case vfs.FilePutter:
		return true
	}
	return false
}
