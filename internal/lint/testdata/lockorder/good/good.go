// Package good acquires its two lock classes in one global order —
// Accounts before Ledger, everywhere — so the acquisition graph has a
// single edge and no cycle.
package good

import "sync"

// Accounts is one lock class.
type Accounts struct {
	mu sync.Mutex
	n  int
}

// Ledger is the other.
type Ledger struct {
	mu sync.Mutex
	n  int
}

// TransferAB locks Accounts before Ledger.
func TransferAB(a *Accounts, l *Ledger) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	a.n--
	l.n++
}

// Audit follows the same order through a call.
func Audit(a *Accounts, l *Ledger) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return tally(l) + a.n
}

// tally locks Ledger on behalf of its caller.
func tally(l *Ledger) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Refresh releases Accounts before touching Ledger: sequential
// acquisition is not nesting.
func Refresh(a *Accounts, l *Ledger) {
	l.mu.Lock()
	l.n = 0
	l.mu.Unlock()
	a.mu.Lock()
	a.n = 0
	a.mu.Unlock()
}
