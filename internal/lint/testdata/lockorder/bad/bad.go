// Package bad acquires two named mutexes in opposite orders: one
// goroutine in TransferAB holding (bad.Accounts).mu and one in
// TransferBA holding (bad.Ledger).mu deadlock waiting for each other.
// The second half of the inversion hides behind a call (grab), which
// the repo-wide summary pass follows.
package bad

import "sync"

// Accounts is one lock class.
type Accounts struct {
	mu sync.Mutex
	n  int
}

// Ledger is the other.
type Ledger struct {
	mu sync.Mutex
	n  int
}

// TransferAB locks Accounts before Ledger.
func TransferAB(a *Accounts, l *Ledger) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	a.n--
	l.n++
}

// TransferBA locks Ledger, then locks Accounts through grab: the
// inversion.
func TransferBA(a *Accounts, l *Ledger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	grab(a)
	l.n--
}

// grab locks Accounts on behalf of its caller.
func grab(a *Accounts) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
