// Package bad moves file bodies with the deprecated whole-file
// helpers, losing multipart, verification and retry.
package bad

import (
	"bytes"

	"tss/internal/vfs"
)

// Upload stores a payload the pre-engine way.
func Upload(fs vfs.FileSystem, path string, data []byte) error {
	return vfs.PutReader(fs, path, 0o644, int64(len(data)), bytes.NewReader(data))
}

// Download fetches a body the pre-engine way.
func Download(fs vfs.FileSystem, path string) ([]byte, error) {
	return vfs.GetWholeFile(fs, path)
}
