// Package good moves file bodies through the copy engine and reads
// small metadata with ReadFile, which the checker does not restrict.
package good

import (
	"context"

	"tss/internal/vfs"
)

// Upload stores a payload through the engine, with verification.
func Upload(fs vfs.FileSystem, path string, data []byte) error {
	return vfs.PutBytes(context.Background(), vfs.Loc{FS: fs, Path: path},
		0o644, data, vfs.CopyOptions{Verify: true})
}

// Transfer copies between endpoints through the engine.
func Transfer(ctx context.Context, dst, src vfs.Loc) (int64, error) {
	return vfs.Copy(ctx, dst, src, vfs.CopyOptions{})
}

// Stub reads a small metadata file; ReadFile is not a transfer.
func Stub(fs vfs.FileSystem, path string) ([]byte, error) {
	return vfs.ReadFile(fs, path)
}
