// Package bad settles with a wall-clock sleep that no test can fake.
package bad

import "time"

// Settle waits the lazy way.
func Settle() {
	time.Sleep(10 * time.Millisecond)
}
