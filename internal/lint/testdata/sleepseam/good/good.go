// Package good routes every delay through an injectable seam. Wiring
// time.Sleep in as the seam's default value is the sanctioned pattern.
package good

import "time"

// Config carries the injectable sleep seam.
type Config struct {
	// Sleep replaces time.Sleep (tests). Nil means time.Sleep.
	Sleep func(time.Duration)
}

// New wires the default; referencing time.Sleep as a value is allowed.
func New() Config {
	return Config{Sleep: time.Sleep}
}

// Backoff delays through the seam.
func (c Config) Backoff(d time.Duration) {
	c.Sleep(d)
}
