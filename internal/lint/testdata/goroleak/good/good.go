// Package good launches goroutines with provable exits: a done-channel
// select case that returns, a bounded loop joined through a WaitGroup,
// and a buffered result slot that completes even when the receiver
// gives up.
package good

import "sync"

// Daemon drains work until the done channel fires; the return inside
// the select case is its exit path.
func Daemon(work func(), done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// Parallel joins bounded workers through a WaitGroup.
func Parallel(tasks []func()) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	wg.Wait()
}

// Fetch buffers the result slot: if the timeout wins, the sender still
// completes and the channel is collected.
func Fetch(compute func() int, timeout <-chan struct{}) int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-timeout:
		return -1
	}
}

// Pump forwards a bounded slice and exits when done.
func Pump(xs []int, out chan<- int) {
	go func() {
		for _, x := range xs {
			out <- x
		}
	}()
}
