// Package bad launches goroutines that can never exit: an unbounded
// daemon loop with no done case, the same loop hidden behind a named
// function, and a result sender its receiver can abandon.
package bad

// Daemon spins forever with no way out: no return, no break, no done
// channel.
func Daemon(work func()) {
	go func() {
		for {
			work()
		}
	}()
}

// spin is Daemon's loop as a named function.
func spin(step func()) {
	for {
		step()
	}
}

// Background launches spin, which has no reachable exit.
func Background(step func()) {
	go spin(step)
}

// Fetch can strand its sender forever: when the timeout case wins,
// nobody ever receives from ch and the unbuffered send blocks.
func Fetch(compute func() int, timeout <-chan struct{}) int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-timeout:
		return -1
	}
}
