// Package cfg exercises the control-flow constructs BuildCFG models:
// branches, loops with defers, panic edges, recover, goto and select.
// The shapes are asserted structurally by cfg_test.go.
package cfg

import "os"

// Branch has a diamond: cond, two arms, a join.
func Branch(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}

// DeferInLoop registers one defer per iteration; all run at exit.
func DeferInLoop(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}

// PanicPath panics on bad input and returns otherwise.
func PanicPath(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// FatalPath exits the process on bad input: a terminator edge, not a
// return.
func FatalPath(x int) int {
	if x < 0 {
		os.Exit(1)
	}
	return x
}

// RecoverGuard converts panics into an error result.
func RecoverGuard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	fn()
	return nil
}

// Forever never terminates: its exit block is unreachable.
func Forever(work func()) {
	for {
		work()
	}
}

// SelectLoop spins until the done channel fires: exit is reachable
// through the select case's return.
func SelectLoop(done chan struct{}, work func()) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}

// GotoRetry loops through a label.
func GotoRetry(try func() bool) {
	attempts := 0
retry:
	attempts++
	if !try() && attempts < 3 {
		goto retry
	}
}

// SwitchFall chains two cases with fallthrough.
func SwitchFall(x int) int {
	switch x {
	case 0:
		x++
		fallthrough
	case 1:
		x++
	default:
		x--
	}
	return x
}

// BreakLabel breaks out of both loops through a label.
func BreakLabel(grid [][]int) int {
	total := 0
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}
