// Package good forwards received contexts; only context-free roots
// mint their own.
package good

import "context"

func lookup(ctx context.Context, name string) error {
	return ctx.Err()
}

// Resolve forwards its context, possibly derived.
func Resolve(ctx context.Context, name string) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return lookup(ctx, name)
}

// Root has no incoming context and may legitimately mint one.
func Root(name string) error {
	return lookup(context.Background(), name)
}
