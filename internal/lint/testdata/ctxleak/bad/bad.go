// Package bad receives contexts and then severs the cancellation
// chain by minting fresh ones.
package bad

import "context"

func lookup(ctx context.Context, name string) error {
	return ctx.Err()
}

// Resolve receives a context but forwards a minted one.
func Resolve(ctx context.Context, name string) error {
	return lookup(context.Background(), name)
}

// Drain hides the mint inside a closure that closes over ctx.
func Drain(ctx context.Context) error {
	do := func() error {
		return lookup(context.TODO(), "drain")
	}
	return do()
}
