// Package good keeps the errno intact across the vfs boundary: return
// vfs errnos directly or wrap them with %w so vfs.AsErrno recovers
// them. Types outside the vfs interfaces may build errors freely.
package good

import (
	"errors"
	"fmt"

	"tss/internal/vfs"
)

// FS wraps another filesystem and preserves its errors.
type FS struct {
	vfs.FileSystem
}

// Stat returns a vfs errno on failure.
func (f *FS) Stat(path string) (vfs.FileInfo, error) {
	fi, err := f.FileSystem.Stat(path)
	if err != nil {
		return vfs.FileInfo{}, vfs.EIO
	}
	return fi, nil
}

// Unlink wraps with %w so the errno survives.
func (f *FS) Unlink(path string) error {
	if err := f.FileSystem.Unlink(path); err != nil {
		return fmt.Errorf("unlink %s: %w", path, err)
	}
	return nil
}

// parser is not a vfs implementation; its errors are its own business.
type parser struct{}

// Parse may use opaque errors freely.
func (parser) Parse(s string) error {
	if s == "" {
		return errors.New("empty input")
	}
	return nil
}
