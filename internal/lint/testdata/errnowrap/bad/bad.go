// Package bad constructs opaque errors inside vfs interface methods,
// destroying the errno that the layers above need for recovery.
package bad

import (
	"errors"
	"fmt"

	"tss/internal/vfs"
)

// FS wraps another filesystem and mangles its errors.
type FS struct {
	vfs.FileSystem
}

// Stat loses the errno entirely.
func (f *FS) Stat(path string) (vfs.FileInfo, error) {
	fi, err := f.FileSystem.Stat(path)
	if err != nil {
		return vfs.FileInfo{}, errors.New("stat failed")
	}
	return fi, nil
}

// Unlink formats the error away instead of wrapping it.
func (f *FS) Unlink(path string) error {
	if err := f.FileSystem.Unlink(path); err != nil {
		return fmt.Errorf("unlink %s: %v", path, err)
	}
	return nil
}
