// Package good releases every acquired resource on every path: by
// deferring the close right after the error check, by closing
// explicitly on each branch, or by transferring ownership to a caller,
// a struct, or a consuming function.
package good

import (
	"io"
	"net"
	"os"

	"tss/internal/vfs"
)

// CompareHeaders defers each close immediately after its error check;
// the failure arm of the check has nothing to release.
func CompareHeaders(p, q string) (bool, error) {
	f, err := os.Open(p)
	if err != nil {
		return false, err
	}
	defer f.Close()
	g, err := os.Open(q)
	if err != nil {
		return false, err
	}
	defer g.Close()
	bf := make([]byte, 16)
	bg := make([]byte, 16)
	f.Read(bf)
	g.Read(bg)
	return string(bf) == string(bg), nil
}

// Probe closes explicitly on both exits.
func Probe(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if _, err := c.Write([]byte("ping\n")); err != nil {
		c.Close()
		return err
	}
	return c.Close()
}

// OpenVersion transfers ownership to the caller: the returned file is
// the caller's to close.
func OpenVersion(fs vfs.FileSystem) (vfs.File, error) {
	f, err := fs.Open("/version", 0, 0)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// session keeps the connection it is given.
type session struct {
	conn net.Conn
}

// NewSession stores the dialed connection into the session, which owns
// it from then on.
func NewSession(addr string) (*session, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &session{conn: c}, nil
}

// Drain hands the file to a consumer that assumes ownership.
func Drain(fs vfs.FileSystem, sink func(io.Closer)) error {
	f, err := fs.Open("/log", 0, 0)
	if err != nil {
		return err
	}
	sink(f)
	return nil
}

// Rename closes through an alias: the obligation follows the copy.
func Rename(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	g := f
	return g.Close()
}

// CleanupLiteral closes inside a deferred function literal.
func CleanupLiteral(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	buf := make([]byte, 4)
	_, err = f.Read(buf)
	return err
}
