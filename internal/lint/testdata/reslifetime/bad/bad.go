// Package bad leaks file descriptors and connections: every function
// here has at least one path out on which an acquired resource is
// neither closed, deferred, nor handed to a new owner.
package bad

import (
	"net"
	"os"

	"tss/internal/vfs"
)

// CompareHeaders leaks the first file when the second open fails: the
// early return inside the second error check exits with f still open.
func CompareHeaders(p, q string) (bool, error) {
	f, err := os.Open(p)
	if err != nil {
		return false, err
	}
	g, err := os.Open(q)
	if err != nil {
		return false, err
	}
	defer f.Close()
	defer g.Close()
	bf := make([]byte, 16)
	bg := make([]byte, 16)
	f.Read(bf)
	g.Read(bg)
	return string(bf) == string(bg), nil
}

// Probe never closes the connection on any path.
func Probe(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	_, err = c.Write([]byte("ping\n"))
	return err
}

// ReadVersion leaks the vfs file when the read fails.
func ReadVersion(fs vfs.FileSystem) ([]byte, error) {
	f, err := fs.Open("/version", 0, 0)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8)
	n, err := f.Pread(buf, 0)
	if err != nil {
		return nil, err
	}
	f.Close()
	return buf[:n], nil
}
