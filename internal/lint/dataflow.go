package lint

// Forward may-analysis over a CFG. Facts are drawn from a finite
// comparable domain (mutex receiver strings, resource variables); the
// state at a program point is the set of facts that MAY hold on some
// path reaching it. Join is set union, so the fixpoint is the least
// solution and every kill must happen in a transfer function — either
// the block transfer (a Close call kills its resource) or the edge
// refinement (the err != nil edge kills the paired acquisition).

// factSet is a small immutable-by-convention set: transfer functions
// copy before mutating so block IN states stay stable.
type factSet[F comparable] map[F]struct{}

func (s factSet[F]) has(f F) bool { _, ok := s[f]; return ok }

func (s factSet[F]) clone() factSet[F] {
	out := make(factSet[F], len(s))
	for f := range s {
		out[f] = struct{}{}
	}
	return out
}

// union adds src into s in place, reporting whether s grew.
func (s factSet[F]) union(src factSet[F]) bool {
	grew := false
	for f := range src {
		if _, ok := s[f]; !ok {
			s[f] = struct{}{}
			grew = true
		}
	}
	return grew
}

// flowProblem is one forward may-analysis.
type flowProblem[F comparable] struct {
	// transfer applies one AST node to the state, returning the state
	// after it. Implementations may mutate and return s.
	transfer func(n any, s factSet[F]) factSet[F]
	// refine filters the state along an edge using its branch
	// condition; nil means identity. Must not mutate s.
	refine func(e *Edge, s factSet[F]) factSet[F]
}

// blockOut folds the problem's transfer over the block's nodes.
func (p *flowProblem[F]) blockOut(b *Block, in factSet[F]) factSet[F] {
	s := in.clone()
	for _, n := range b.Nodes {
		s = p.transfer(n, s)
	}
	return s
}

// solve runs the worklist to fixpoint and returns each block's IN
// state. Every reachable block is seeded onto the worklist — a block
// must run its transfer at least once even if its IN never grows,
// because the transfer itself may generate facts (an acquisition in a
// branch arm) that its successors need. Unreachable blocks are never
// processed and keep empty states, so dead code cannot contribute
// facts.
func (p *flowProblem[F]) solve(g *CFG) map[*Block]factSet[F] {
	in := make(map[*Block]factSet[F], len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = make(factSet[F])
	}
	reach := g.Reachable()
	work := make([]*Block, 0, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		if reach[b] {
			work = append(work, b)
			queued[b] = true
		}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := p.blockOut(b, in[b])
		for _, e := range b.Succs {
			contrib := out
			if p.refine != nil {
				contrib = p.refine(e, out)
			}
			if in[e.To].union(contrib) && !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}
