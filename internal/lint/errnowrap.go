package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrnoWrap enforces the errno discipline at the recursive-abstraction
// boundary: an error returned from a vfs.FileSystem or vfs.File method
// must be a vfs.Errno or wrap one (so vfs.AsErrno can recover it).
// Constructing an opaque error with errors.New, or with fmt.Errorf and
// no %w verb, destroys the error number: by the time it crosses two
// layers, a precise ENOENT has collapsed into a generic EIO and the
// adapter's recovery protocol (§6) can no longer tell a missing file
// from a dead server.
//
// The check is intra-procedural: it flags opaque error construction
// anywhere inside the body of an interface method on a type that
// implements vfs.FileSystem or vfs.File.
type ErrnoWrap struct {
	// VFSPath is the import path of the vfs package.
	VFSPath string
	// Methods maps interface name -> method names whose bodies are
	// checked.
	Methods map[string][]string
}

// NewErrnoWrap returns the checker configured for this repository.
func NewErrnoWrap() *ErrnoWrap {
	return &ErrnoWrap{
		VFSPath: "tss/internal/vfs",
		Methods: map[string][]string{
			"FileSystem": {
				"Open", "Stat", "Unlink", "Rename", "Mkdir", "Rmdir",
				"ReadDir", "Truncate", "Chmod", "StatFS",
			},
			"File": {
				"Pread", "Pwrite", "Fstat", "Ftruncate", "Sync", "Close",
			},
		},
	}
}

// Name implements Checker.
func (c *ErrnoWrap) Name() string { return "errnowrap" }

// Doc implements Checker.
func (c *ErrnoWrap) Doc() string {
	return "errors leaving vfs.FileSystem/vfs.File methods must be vfs errnos or wrap one with %w"
}

// Check implements Checker.
func (c *ErrnoWrap) Check(pkg *Package) []Diagnostic {
	ifaces := c.interfaces(pkg)
	if len(ifaces) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			iface := c.matches(pkg, fn, ifaces)
			if iface == "" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(pkg.Info, call)
				var bad bool
				switch name {
				case "errors.New":
					bad = true
				case "fmt.Errorf":
					bad = !errorfWraps(call)
				}
				if !bad {
					return true
				}
				pos := pkg.Fset.Position(call.Pos())
				if isTestFile(pos) {
					return true
				}
				diags = append(diags, pkg.diag(c.Name(), call.Pos(),
					"%s inside vfs.%s method %s loses the errno; return a vfs errno or wrap one with %%w",
					name, iface, fn.Name.Name))
				return true
			})
		}
	}
	return diags
}

// errorfWraps reports whether a fmt.Errorf call's literal format
// string contains a %w verb. Non-literal formats cannot be decided
// statically and are accepted.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}

// interfaces resolves the checked vfs interfaces, whether pkg imports
// vfs or is vfs itself.
func (c *ErrnoWrap) interfaces(pkg *Package) map[string]*types.Interface {
	var vfsPkg *types.Package
	if pkg.Path == c.VFSPath {
		vfsPkg = pkg.Types
	} else {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == c.VFSPath {
				vfsPkg = imp
				break
			}
		}
	}
	if vfsPkg == nil {
		return nil
	}
	out := make(map[string]*types.Interface, len(c.Methods))
	for name := range c.Methods {
		obj := vfsPkg.Scope().Lookup(name)
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			out[name] = iface
		}
	}
	return out
}

// matches reports which checked interface (if any) fn is a method of:
// the receiver type must implement the interface and the method name
// must belong to it.
func (c *ErrnoWrap) matches(pkg *Package, fn *ast.FuncDecl, ifaces map[string]*types.Interface) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	tv, ok := pkg.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return ""
	}
	recv := tv.Type
	for name, iface := range ifaces {
		found := false
		for _, m := range c.Methods[name] {
			if m == fn.Name.Name {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			return name
		}
	}
	return ""
}
