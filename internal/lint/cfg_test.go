package lint

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// buildFixtureCFG loads testdata/cfg and returns the CFG of the named
// function.
func buildFixtureCFG(t *testing.T, name string) (*Package, *CFG) {
	t.Helper()
	pkg := loadFixture(t, filepath.Join("testdata", "cfg"))
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Name.Name == name {
				return pkg, BuildCFG(pkg, fd.Body)
			}
		}
	}
	t.Fatalf("function %s not found in testdata/cfg", name)
	return nil, nil
}

// TestCFGBranch asserts the if/else diamond: a condition block with a
// positive and a negated edge carrying the same condition expression,
// and a reachable exit.
func TestCFGBranch(t *testing.T) {
	_, g := buildFixtureCFG(t, "Branch")
	var pos, neg *Edge
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond == nil {
				continue
			}
			if e.Negated {
				neg = e
			} else {
				pos = e
			}
		}
	}
	if pos == nil || neg == nil {
		t.Fatalf("want one positive and one negated branch edge, got pos=%v neg=%v", pos, neg)
	}
	if pos.Cond != neg.Cond {
		t.Errorf("branch arms carry different condition expressions")
	}
	if pos.From != neg.From {
		t.Errorf("branch arms leave different blocks")
	}
	if pos.To == neg.To {
		t.Errorf("branch arms enter the same block")
	}
	if !g.ExitReachable() {
		t.Errorf("exit unreachable in a straight branch")
	}
}

// TestCFGDeferInLoop asserts the loop back edge exists and the
// per-iteration defer is recorded exactly once in registration order.
func TestCFGDeferInLoop(t *testing.T) {
	_, g := buildFixtureCFG(t, "DeferInLoop")
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
	// The defer's block must flow back around the loop: some reachable
	// cycle must contain it.
	reach := g.Reachable()
	backEdge := false
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, e := range b.Succs {
			if e.To.Index < b.Index && e.To != g.Exit {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Errorf("loop produced no back edge")
	}
	if !g.ExitReachable() {
		t.Errorf("exit unreachable")
	}
}

// TestCFGPanicEdges asserts panic(...) and os.Exit produce Panic edges
// into Exit while the normal return stays a non-panic edge.
func TestCFGPanicEdges(t *testing.T) {
	for _, name := range []string{"PanicPath", "FatalPath"} {
		_, g := buildFixtureCFG(t, name)
		var panics, normal int
		for _, e := range g.Exit.Preds {
			if e.Panic {
				panics++
			} else if e.Returns() != nil {
				normal++
			}
		}
		if panics != 1 {
			t.Errorf("%s: got %d panic edges into exit, want 1", name, panics)
		}
		if normal != 1 {
			t.Errorf("%s: got %d return edges into exit, want 1", name, normal)
		}
		if !g.ExitReachable() {
			t.Errorf("%s: normal exit should stay reachable", name)
		}
	}
}

// TestCFGRecover asserts a recover() inside a deferred literal marks
// the graph as recovering.
func TestCFGRecover(t *testing.T) {
	_, g := buildFixtureCFG(t, "RecoverGuard")
	if !g.Recovers {
		t.Errorf("deferred recover() not detected")
	}
	_, g = buildFixtureCFG(t, "DeferInLoop")
	if g.Recovers {
		t.Errorf("recover detected where none exists")
	}
}

// TestCFGExitReachability pins the property goroleak is built on: a
// bare `for {}` body has no path to Exit, while a select case that
// returns restores one.
func TestCFGExitReachability(t *testing.T) {
	for name, want := range map[string]bool{
		"Forever":    false,
		"SelectLoop": true,
		"GotoRetry":  true,
		"SwitchFall": true,
		"BreakLabel": true,
	} {
		_, g := buildFixtureCFG(t, name)
		if got := g.ExitReachable(); got != want {
			t.Errorf("%s: ExitReachable = %v, want %v", name, got, want)
		}
	}
}

// TestCFGLabeledBreak asserts break with a label leaves both loops:
// the labeled-break edge lands in a block from which exit is reachable
// without re-entering either loop head.
func TestCFGLabeledBreak(t *testing.T) {
	_, g := buildFixtureCFG(t, "BreakLabel")
	if !g.ExitReachable() {
		t.Fatalf("exit unreachable")
	}
	// There must be a reachable return edge into Exit (the final
	// `return total`).
	reach := g.Reachable()
	found := false
	for _, e := range g.Exit.Preds {
		if e.Returns() != nil && reach[e.From] {
			found = true
		}
	}
	if !found {
		t.Errorf("no reachable return edge into exit")
	}
}
