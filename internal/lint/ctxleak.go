package lint

import (
	"go/ast"
)

// CtxLeak enforces context plumbing: a function that receives a
// context.Context must forward it. Calling context.Background() or
// context.TODO() inside such a function severs the cancellation chain
// — the callee outlives the caller's deadline, which in this codebase
// means a drain (chirp Server.Shutdown) or an adapter retry budget
// silently stops propagating.
type CtxLeak struct{}

// NewCtxLeak returns the checker.
func NewCtxLeak() *CtxLeak { return &CtxLeak{} }

// Name implements Checker.
func (c *CtxLeak) Name() string { return "ctxleak" }

// Doc implements Checker.
func (c *CtxLeak) Doc() string {
	return "a function taking a context.Context must forward it, not mint context.Background()"
}

// Check implements Checker.
func (c *CtxLeak) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !hasCtxParam(pkg, ftype) {
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				// A nested function with its own ctx parameter is
				// judged on its own terms by the outer Inspect.
				if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(pkg, lit.Type) {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(pkg.Info, call)
				if name != "context.Background" && name != "context.TODO" {
					return true
				}
				pos := pkg.Fset.Position(call.Pos())
				if isTestFile(pos) {
					return true
				}
				diags = append(diags, pkg.diag(c.Name(), call.Pos(),
					"%s inside a function that already receives a context.Context; forward the caller's ctx", name))
				return true
			})
			// Keep descending: a nested literal with its own ctx
			// parameter was skipped above and is picked up when the
			// outer traversal reaches it. (Ctx-less literals were
			// already covered — they close over this ctx — and the
			// outer callback ignores plain calls, so nothing is
			// reported twice.)
			return true
		})
	}
	return diags
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pkg *Package, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if name, ok := namedFrom(tv.Type, "context"); ok && name == "Context" {
			return true
		}
	}
	return false
}
