package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak verifies that goroutines launched in non-test code have a
// provable exit. Two patterns are enforced on the goroutine body's
// CFG:
//
//  1. Exit reachability: some path from the launch must reach a
//     return (or fall off the end). A body shaped `for { work() }`
//     with no break, return or done-channel case can never exit; it
//     pins its stack, its captures and — in this codebase — usually a
//     connection, forever. Daemon loops earn their keep by selecting
//     on a ctx.Done()/stop channel case that returns, which restores
//     reachability.
//
//  2. Abandoned senders: a goroutine whose only job is `ch <- result`
//     on an unbuffered channel leaks when the launching function
//     receives from ch inside a select that can take another case
//     (timeout, ctx.Done) and move on — nobody ever drains ch and the
//     sender blocks forever. The fix is a one-slot buffer or a select
//     in the sender; the checker demands one of them.
//
// Bodies launched through function values or interface methods cannot
// be resolved statically and are skipped; `go m.run()` on a concrete
// method is followed across packages via the repo-wide index.
type GoroLeak struct{}

// NewGoroLeak returns the checker.
func NewGoroLeak() *GoroLeak { return &GoroLeak{} }

// Name implements Checker.
func (c *GoroLeak) Name() string { return "goroleak" }

// Doc implements Checker.
func (c *GoroLeak) Doc() string {
	return "launched goroutines have a provable exit (done/ctx case, bounded loop) and cannot block forever on an abandoned unbuffered send"
}

// Check implements Checker for single-package runs (fixtures).
func (c *GoroLeak) Check(pkg *Package) []Diagnostic {
	return c.CheckRepo([]*Package{pkg})
}

// CheckRepo implements RepoChecker: the function index spans every
// loaded package so `go srv.Serve(l)` resolves into its defining
// package.
func (c *GoroLeak) CheckRepo(pkgs []*Package) []Diagnostic {
	index := buildFuncIndex(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					diags = append(diags, c.checkLauncher(pkg, fd.Body, index)...)
					return false
				}
				return true
			})
		}
	}
	return diags
}

// funcIndex maps concrete functions/methods to their declarations.
type funcIndex map[*types.Func]*indexedFunc

type indexedFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func buildFuncIndex(pkgs []*Package) funcIndex {
	idx := make(funcIndex)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = &indexedFunc{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return idx
}

// checkLauncher analyzes one function declaration body (including its
// nested literals) for goroutine launches.
func (c *GoroLeak) checkLauncher(pkg *Package, body *ast.BlockStmt, index funcIndex) []Diagnostic {
	var diags []Diagnostic
	unbuffered := findUnbufferedChans(pkg, body)
	abandoned := findAbandonableReceives(pkg, body, unbuffered)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		pos := pkg.Fset.Position(g.Pos())
		if isTestFile(pos) {
			return true
		}
		// Rule 1: the body must be able to exit.
		if bpkg, gbody := c.resolveBody(pkg, g.Call, index); gbody != nil {
			cfg := BuildCFG(bpkg, gbody)
			if !cfg.ExitReachable() {
				diags = append(diags, pkg.diag(c.Name(), g.Pos(),
					"goroutine has no provable exit: no path reaches a return; add a ctx/done select case that returns, or bound the loop"))
			}
		}
		// Rule 2: plain sends on a channel whose receiver may abandon
		// it.
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			for _, send := range plainSends(pkg, lit.Body) {
				if ch := chanVar(pkg, send.Chan); ch != nil && abandoned[ch] {
					diags = append(diags, pkg.diag(c.Name(), send.Pos(),
						"goroutine may block forever: unbuffered send on %q whose receiving select can abandon it; buffer the channel or select on a done case here", ch.Name()))
				}
			}
		}
		return true
	})
	return diags
}

// resolveBody finds the statically known body a go statement runs: a
// function literal, or a named function/method declared in any loaded
// package. Function values and interface methods return nil.
func (c *GoroLeak) resolveBody(pkg *Package, call *ast.CallExpr, index funcIndex) (*Package, *ast.BlockStmt) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return pkg, fun.Body
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if f := index[fn]; f != nil {
				return f.pkg, f.decl.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if f := index[fn]; f != nil {
				return f.pkg, f.decl.Body
			}
		}
	}
	return nil, nil
}

// findUnbufferedChans collects local variables bound to make(chan T)
// with no capacity (or literal 0).
func findUnbufferedChans(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) == 0 {
			return true
		}
		if _, ok := pkg.Info.Types[call.Args[0]].Type.(*types.Chan); !ok {
			return true
		}
		if len(call.Args) >= 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); !ok || lit.Value != "0" {
				return true // buffered (or non-literal capacity: give benefit of the doubt)
			}
		}
		if lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if v, ok := pkg.Info.Defs[lhs].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// findAbandonableReceives returns the unbuffered channels received in
// a select statement that has at least one other way out — the shape
// that can abandon a blocked sender.
func findAbandonableReceives(pkg *Package, body *ast.BlockStmt, unbuffered map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || len(sel.Body.List) < 2 {
			return true
		}
		for _, cl := range sel.Body.List {
			comm := cl.(*ast.CommClause)
			if comm.Comm == nil {
				continue // default case
			}
			if ch := receivedChan(pkg, comm.Comm); ch != nil && unbuffered[ch] {
				out[ch] = true
			}
		}
		return true
	})
	return out
}

// receivedChan extracts the channel variable of a receive comm clause.
func receivedChan(pkg *Package, comm ast.Stmt) *types.Var {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if expr == nil {
		return nil
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "<-" {
		return nil
	}
	return chanVar(pkg, un.X)
}

// plainSends collects send statements in the body that are not a
// select communication (a select case can take another arm; a bare
// send cannot).
func plainSends(pkg *Package, body *ast.BlockStmt) []*ast.SendStmt {
	inSelect := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok && len(sel.Body.List) >= 2 {
			for _, cl := range sel.Body.List {
				if s, ok := cl.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
					inSelect[s] = true
				}
			}
		}
		return true
	})
	var out []*ast.SendStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok && !inSelect[s] {
			out = append(out, s)
		}
		return true
	})
	return out
}

// chanVar resolves an expression to the channel-typed local it names.
func chanVar(pkg *Package, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pkg.Info.Defs[id].(*types.Var)
	}
	return v
}
