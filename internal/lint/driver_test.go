package lint

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDriverDirty lints a synthetic violating package through the same
// entry point cmd/tsslint uses and asserts the exit status and the
// file:line:col diagnostic format.
func TestDriverDirty(t *testing.T) {
	var buf bytes.Buffer
	code := Main(&buf, ".", "./testdata/driver/bad")
	if code != ExitDiags {
		t.Fatalf("exit code = %d, want %d\noutput:\n%s", code, ExitDiags, buf.String())
	}
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d output lines, want 2 (diagnostic + summary):\n%s", len(lines), out)
	}
	diagRe := regexp.MustCompile(`^testdata[/\\]driver[/\\]bad[/\\]bad\.go:\d+:\d+: \[sleepseam\] .+$`)
	if !diagRe.MatchString(lines[0]) {
		t.Errorf("diagnostic line %q does not match %v", lines[0], diagRe)
	}
	if want := "tsslint: 1 issue(s) in 1 package(s)"; lines[1] != want {
		t.Errorf("summary = %q, want %q", lines[1], want)
	}
}

// TestDriverClean asserts a clean package produces no output and exit 0.
func TestDriverClean(t *testing.T) {
	var buf bytes.Buffer
	code := Main(&buf, ".", "./testdata/driver/good")
	if code != ExitClean {
		t.Fatalf("exit code = %d, want %d\noutput:\n%s", code, ExitClean, buf.String())
	}
	if buf.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", buf.String())
	}
}

// TestDriverBadPattern asserts loader failures map to the error exit
// code, distinct from "found diagnostics".
func TestDriverBadPattern(t *testing.T) {
	var buf bytes.Buffer
	code := Main(&buf, ".", filepath.Join("testdata", "no", "such", "dir"))
	if code != ExitError {
		t.Fatalf("exit code = %d, want %d\noutput:\n%s", code, ExitError, buf.String())
	}
}
