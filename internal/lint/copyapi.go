package lint

import (
	"go/ast"
	"strings"
)

// CopyAPI enforces the unified-transfer contract introduced with
// vfs.Copy: outside package vfs itself, non-test code may not call the
// deprecated whole-file helpers vfs.PutReader and vfs.GetWholeFile
// directly. Those helpers pick one fixed strategy (single-shot getfile
// or putfile) and skip everything the engine negotiates — parallel
// multipart for large files, end-to-end digest verification, retry
// with reconnection, and cleanup of partial state. A direct call is
// usually a transfer that silently lost those properties; the engine's
// Copy/PutBytes entry points probe vfs.Capabilities and pick the same
// fast path when it is the right one (DESIGN.md §13).
//
// Small-metadata reads (stubs, stripe descriptors) and benchmark
// baselines that *measure* the single-stream path are legitimate and
// carry //lint:ignore copyapi suppressions stating so.
type CopyAPI struct {
	// VFSPath is the import path of the vfs package.
	VFSPath string
	// Helpers maps the forbidden helper names to the replacement
	// suggested in the diagnostic.
	Helpers map[string]string
}

// NewCopyAPI returns the checker configured for this repository.
func NewCopyAPI() *CopyAPI {
	return &CopyAPI{
		VFSPath: "tss/internal/vfs",
		Helpers: map[string]string{
			"PutReader":    "vfs.Copy or vfs.PutBytes",
			"GetWholeFile": "vfs.Copy (or vfs.ReadFile for small metadata)",
		},
	}
}

// Name implements Checker.
func (c *CopyAPI) Name() string { return "copyapi" }

// Doc implements Checker.
func (c *CopyAPI) Doc() string {
	return "transfers go through the vfs.Copy engine, not the deprecated whole-file helpers"
}

// Check implements Checker.
func (c *CopyAPI) Check(pkg *Package) []Diagnostic {
	if pkg.Path == c.VFSPath {
		// The engine is built out of the helpers it deprecates.
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(pkg.Info, call)
			rest, ok := strings.CutPrefix(name, c.VFSPath+".")
			if !ok {
				return true
			}
			repl, ok := c.Helpers[rest]
			if !ok {
				return true
			}
			pos := pkg.Fset.Position(call.Pos())
			if isTestFile(pos) {
				return true
			}
			diags = append(diags, pkg.diag(c.Name(), call.Pos(),
				"direct vfs.%s call bypasses the copy engine; use %s", rest, repl))
			return true
		})
	}
	return diags
}
