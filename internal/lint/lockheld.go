package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// LockHeld forbids blocking calls — network I/O, RPC round trips,
// time.Sleep — while a sync.Mutex or sync.RWMutex is held in the same
// function body. A blocked goroutine that owns a mutex convoys every
// other goroutine behind a network peer's latency; in a storage stack
// where each layer serializes on locks, one slow replica can freeze an
// entire abstraction. Sites where holding the lock across I/O *is* the
// design (the chirp client serializes RPCs on its single connection)
// carry a //lint:ignore lockheld comment explaining exactly that.
//
// The analysis is intra-procedural and source-ordered: a mutex is held
// from X.Lock() until X.Unlock() on the same receiver expression;
// `defer X.Unlock()` holds it to the end of the function. Function
// literals (including goroutine bodies) are analyzed as independent
// functions, since they generally run outside the critical section.
type LockHeld struct {
	// Blocking is the deny-list of fully qualified callee names
	// considered blocking.
	Blocking map[string]bool
}

// NewLockHeld returns the checker configured for this repository.
func NewLockHeld() *LockHeld {
	return &LockHeld{
		Blocking: map[string]bool{
			// Sleeping.
			"time.Sleep": true,
			// Dialing and listening.
			"net.Dial":                  true,
			"net.DialTimeout":           true,
			"net.DialTCP":               true,
			"net.DialUDP":               true,
			"net.DialUnix":              true,
			"net.DialIP":                true,
			"net.Listen":                true,
			"net.ListenTCP":             true,
			"net.ListenPacket":          true,
			"(*net.Dialer).Dial":        true,
			"(*net.Dialer).DialContext": true,
			// Stream I/O on sockets.
			"(net.Conn).Read":           true,
			"(net.Conn).Write":          true,
			"(*net.TCPConn).Read":       true,
			"(*net.TCPConn).Write":      true,
			"(net.PacketConn).ReadFrom": true,
			"(net.PacketConn).WriteTo":  true,
			// Buffered readers block on their underlying source; Flush
			// pushes buffered bytes into the socket. (Buffered writes
			// themselves usually complete in memory and are not listed.)
			"(*bufio.Reader).Read":       true,
			"(*bufio.Reader).ReadString": true,
			"(*bufio.Reader).ReadBytes":  true,
			"(*bufio.Reader).ReadByte":   true,
			"(*bufio.Reader).ReadRune":   true,
			"(*bufio.Reader).ReadLine":   true,
			"(*bufio.Reader).ReadSlice":  true,
			"(*bufio.Writer).Flush":      true,
			// Chirp protocol round trips read from the connection.
			"tss/internal/chirp/proto.ReadLine": true,
			"tss/internal/chirp/proto.ReadCode": true,
			// The authentication dialog is a multi-round network
			// exchange.
			"tss/internal/auth.Login": true,
		},
	}
}

// Name implements Checker.
func (c *LockHeld) Name() string { return "lockheld" }

// Doc implements Checker.
func (c *LockHeld) Doc() string {
	return "no blocking call (net I/O, RPC, time.Sleep) while a sync mutex is held"
}

// Check implements Checker.
func (c *LockHeld) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					diags = append(diags, c.checkBody(pkg, fn.Body)...)
				}
				return false // checkBody descends, including into literals
			case *ast.FuncLit:
				// Only reached for literals outside any declaration
				// (package-level var initializers).
				diags = append(diags, c.checkBody(pkg, fn.Body)...)
				return false
			}
			return true
		})
	}
	return diags
}

// lockWalker tracks the set of held mutexes through one function body
// in source order. The analysis is deliberately conservative inside
// branches: state mutations in an if/for/switch arm persist after it,
// which can over-approximate "held" but never under-approximates an
// unconditional Lock.
type lockWalker struct {
	c     *LockHeld
	pkg   *Package
	held  map[string]bool // receiver expression -> held
	diags []Diagnostic
}

func (c *LockHeld) checkBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	w := &lockWalker{c: c, pkg: pkg, held: make(map[string]bool)}
	w.stmt(body)
	return w.diags
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			w.stmt(s2)
		}
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		w.stmt(st.Body)
		w.stmt(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		w.stmt(st.Body)
		w.stmt(st.Post)
	case *ast.RangeStmt:
		w.expr(st.X)
		w.stmt(st.Body)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.expr(st.Tag)
		w.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		w.stmt(st.Body)
	case *ast.SelectStmt:
		w.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			w.expr(e)
		}
		for _, s2 := range st.Body {
			w.stmt(s2)
		}
	case *ast.CommClause:
		w.stmt(st.Comm)
		for _, s2 := range st.Body {
			w.stmt(s2)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// `defer X.Unlock()` keeps X held to function end: do not clear.
		// Any other deferred call runs at exit — analyze its arguments
		// now (they evaluate here) but treat a deferred function
		// literal as an independent body.
		if name, recv := w.mutexOp(st.Call); name != "" {
			_ = recv
			return
		}
		for _, a := range st.Call.Args {
			w.expr(a)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.diags = append(w.diags, w.c.checkBody(w.pkg, lit.Body)...)
		}
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			w.expr(a)
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.diags = append(w.diags, w.c.checkBody(w.pkg, lit.Body)...)
		}
	}
}

func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Independent function: analyzed with a fresh lock state.
			w.diags = append(w.diags, w.c.checkBody(w.pkg, x.Body)...)
			return false
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

// mutexOp classifies call as a sync lock/unlock operation, returning
// the method name and receiver expression string, or "".
func (w *lockWalker) mutexOp(call *ast.CallExpr) (op, recv string) {
	name := calleeName(w.pkg.Info, call)
	switch name {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).Unlock",
		"(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock",
		"(*sync.RWMutex).TryLock", "(*sync.RWMutex).TryRLock":
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return name[strings.LastIndexByte(name, '.')+1:], exprString(sel.X)
}

func (w *lockWalker) call(call *ast.CallExpr) {
	if op, recv := w.mutexOp(call); op != "" {
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			w.held[recv] = true
		case "Unlock", "RUnlock":
			delete(w.held, recv)
		}
		return
	}
	name := calleeName(w.pkg.Info, call)
	if name == "" || !w.c.Blocking[name] || len(w.held) == 0 {
		return
	}
	pos := w.pkg.Fset.Position(call.Pos())
	if isTestFile(pos) {
		return
	}
	var held []string
	for m := range w.held {
		held = append(held, m)
	}
	sort.Strings(held)
	w.diags = append(w.diags, w.pkg.diag(w.c.Name(), call.Pos(),
		"blocking call %s while holding %s", name, strings.Join(held, ", ")))
}
