package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// LockHeld forbids blocking calls — network I/O, RPC round trips,
// time.Sleep — while a sync.Mutex or sync.RWMutex is held in the same
// function body. A blocked goroutine that owns a mutex convoys every
// other goroutine behind a network peer's latency; in a storage stack
// where each layer serializes on locks, one slow replica can freeze an
// entire abstraction. Sites where holding the lock across I/O *is* the
// design (the chirp client serializes RPCs on its single connection)
// carry a //lint:ignore lockheld comment explaining exactly that.
//
// The analysis is a forward may-analysis over the function's CFG: a
// mutex is held at a program point if some path reaches it with
// X.Lock() not yet matched by X.Unlock() on the same receiver
// expression; `defer X.Unlock()` holds it to every exit. Running on
// the CFG (rather than source order) means an Unlock in both arms of a
// branch really releases before the join, and a Lock taken in one arm
// is still held on the joined path — the PR 3 walker got both wrong.
// Function literals (including goroutine and deferred bodies) are
// analyzed as independent functions, since they generally run outside
// the critical section.
type LockHeld struct {
	// Blocking is the deny-list of fully qualified callee names
	// considered blocking.
	Blocking map[string]bool
}

// NewLockHeld returns the checker configured for this repository.
func NewLockHeld() *LockHeld {
	return &LockHeld{
		Blocking: map[string]bool{
			// Sleeping.
			"time.Sleep": true,
			// Dialing and listening.
			"net.Dial":                  true,
			"net.DialTimeout":           true,
			"net.DialTCP":               true,
			"net.DialUDP":               true,
			"net.DialUnix":              true,
			"net.DialIP":                true,
			"net.Listen":                true,
			"net.ListenTCP":             true,
			"net.ListenPacket":          true,
			"(*net.Dialer).Dial":        true,
			"(*net.Dialer).DialContext": true,
			// Stream I/O on sockets.
			"(net.Conn).Read":           true,
			"(net.Conn).Write":          true,
			"(*net.TCPConn).Read":       true,
			"(*net.TCPConn).Write":      true,
			"(net.PacketConn).ReadFrom": true,
			"(net.PacketConn).WriteTo":  true,
			// Buffered readers block on their underlying source; Flush
			// pushes buffered bytes into the socket. (Buffered writes
			// themselves usually complete in memory and are not listed.)
			"(*bufio.Reader).Read":       true,
			"(*bufio.Reader).ReadString": true,
			"(*bufio.Reader).ReadBytes":  true,
			"(*bufio.Reader).ReadByte":   true,
			"(*bufio.Reader).ReadRune":   true,
			"(*bufio.Reader).ReadLine":   true,
			"(*bufio.Reader).ReadSlice":  true,
			"(*bufio.Writer).Flush":      true,
			// Chirp protocol round trips read from the connection.
			"tss/internal/chirp/proto.ReadLine": true,
			"tss/internal/chirp/proto.ReadCode": true,
			// The authentication dialog is a multi-round network
			// exchange.
			"tss/internal/auth.Login": true,
		},
	}
}

// Name implements Checker.
func (c *LockHeld) Name() string { return "lockheld" }

// Doc implements Checker.
func (c *LockHeld) Doc() string {
	return "no blocking call (net I/O, RPC, time.Sleep) while a sync mutex is held"
}

// Check implements Checker.
func (c *LockHeld) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt, _ *ast.FuncDecl) {
			diags = append(diags, c.checkBody(pkg, body)...)
		})
	}
	return diags
}

// lockFlow is the dataflow problem: facts are receiver-expression
// strings of held mutexes.
type lockFlow struct {
	c     *LockHeld
	pkg   *Package
	diags []Diagnostic // only appended during the reporting pass
}

func (c *LockHeld) checkBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	g := BuildCFG(pkg, body)
	w := &lockFlow{c: c, pkg: pkg}
	p := &flowProblem[string]{transfer: func(n any, s factSet[string]) factSet[string] {
		return w.apply(n.(ast.Node), s, false)
	}}
	in := p.solve(g)
	// Reporting pass: replay each block once against its fixpoint IN
	// state so every blocking call sees exactly the may-held set.
	for _, b := range g.Blocks {
		s := in[b].clone()
		for _, n := range b.Nodes {
			s = w.apply(n, s, true)
		}
	}
	return w.diags
}

// apply transfers one CFG node over the held set, flagging blocking
// calls when report is set. Nested function literals are skipped: they
// are independent bodies with their own (empty) lock state.
func (w *lockFlow) apply(node ast.Node, s factSet[string], report bool) factSet[string] {
	// `defer X.Unlock()` keeps X held to function end: no kill.
	if d, ok := node.(*ast.DeferStmt); ok {
		if op, _ := w.mutexOp(d.Call); op != "" {
			return s
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			s = w.call(x, s, report)
		}
		return true
	})
	return s
}

// mutexOp classifies call as a sync lock/unlock operation, returning
// the method name and receiver expression string, or "".
func (w *lockFlow) mutexOp(call *ast.CallExpr) (op, recv string) {
	name := calleeName(w.pkg.Info, call)
	switch name {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).Unlock",
		"(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock",
		"(*sync.RWMutex).TryLock", "(*sync.RWMutex).TryRLock":
	default:
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return name[strings.LastIndexByte(name, '.')+1:], exprString(sel.X)
}

func (w *lockFlow) call(call *ast.CallExpr, s factSet[string], report bool) factSet[string] {
	if op, recv := w.mutexOp(call); op != "" {
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			s[recv] = struct{}{}
		case "Unlock", "RUnlock":
			delete(s, recv)
		}
		return s
	}
	if !report {
		return s
	}
	name := calleeName(w.pkg.Info, call)
	if name == "" || !w.c.Blocking[name] || len(s) == 0 {
		return s
	}
	pos := w.pkg.Fset.Position(call.Pos())
	if isTestFile(pos) {
		return s
	}
	var held []string
	for m := range s {
		held = append(held, m)
	}
	sort.Strings(held)
	w.diags = append(w.diags, w.pkg.diag(w.c.Name(), call.Pos(),
		"blocking call %s while holding %s", name, strings.Join(held, ", ")))
	return s
}
