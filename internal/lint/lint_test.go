package lint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes stdlib type-checking (the expensive part)
// across all tests in the package.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	pkg, err := testLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// format renders diagnostics with basenames so golden files are
// independent of where the repository is checked out.
func format(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		out = append(out, d.String())
	}
	return out
}

// TestCheckerGolden runs each checker against its positive fixture and
// compares the diagnostics against the checked-in golden file, then
// asserts the negative fixture is clean. Every checker must prove both
// that it fires and that it stays quiet.
func TestCheckerGolden(t *testing.T) {
	for _, c := range Checkers() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			base := filepath.Join("testdata", c.Name())

			bad := loadFixture(t, filepath.Join(base, "bad"))
			got := format(Run([]*Package{bad}, []Checker{c}))
			wantData, err := os.ReadFile(filepath.Join(base, "bad", "expected.txt"))
			if err != nil {
				t.Fatalf("reading golden file: %v", err)
			}
			want := strings.Split(strings.TrimSpace(string(wantData)), "\n")
			if len(got) == 0 {
				t.Fatalf("checker %s found nothing in its positive fixture", c.Name())
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("diagnostics mismatch\ngot:\n  %s\nwant:\n  %s",
					strings.Join(got, "\n  "), strings.Join(want, "\n  "))
			}

			good := loadFixture(t, filepath.Join(base, "good"))
			if diags := Run([]*Package{good}, []Checker{c}); len(diags) != 0 {
				t.Errorf("negative fixture not clean: %v", format(diags))
			}
		})
	}
}

// TestSuppressions exercises the //lint:ignore grammar: a well-formed
// suppression silences its diagnostic, a reason-less one is rejected
// (and reported), and an unknown check name is reported.
func TestSuppressions(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "suppress", "bad"))
	got := format(Run([]*Package{pkg}, Checkers()))
	want := []string{
		"bad.go:16:2: [lint] malformed suppression: want //lint:ignore <check> <reason>",
		"bad.go:17:2: [sleepseam] bare time.Sleep call; route the delay through an injectable sleep seam or an event (channel, Ticker, catalog WaitFor)",
		"bad.go:22:2: [lint] suppression names unknown check \"nosuchcheck\"",
		"bad.go:23:2: [sleepseam] bare time.Sleep call; route the delay through an injectable sleep seam or an event (channel, Ticker, catalog WaitFor)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("suppression handling mismatch\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestCheckerTable pins the registered checker set: DESIGN.md §9
// documents exactly these nine invariants.
func TestCheckerTable(t *testing.T) {
	want := []string{"capprobe", "lockheld", "sleepseam", "errnowrap", "ctxleak", "copyapi",
		"reslifetime", "lockorder", "goroleak"}
	cs := Checkers()
	if len(cs) != len(want) {
		t.Fatalf("got %d checkers, want %d", len(cs), len(want))
	}
	for i, c := range cs {
		if c.Name() != want[i] {
			t.Errorf("checker %d = %q, want %q", i, c.Name(), want[i])
		}
		if c.Doc() == "" {
			t.Errorf("checker %s has no doc", c.Name())
		}
	}
}
