package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: go/parser for syntax, go/types for
// semantics, and the stdlib source importer for dependencies outside
// the module. It deliberately has no dependency on golang.org/x/tools,
// keeping go.mod empty — the analyzer must be as self-hosted as the
// storage system it checks.
type Loader struct {
	// Fset positions every file loaded by this loader.
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

var cgoOff sync.Once

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	// The source importer type-checks the standard library from
	// $GOROOT/src. Cgo variants of net/os-user cannot be type-checked
	// from source, so pin the pure-Go build; the analyses here never
	// depend on cgo-only API.
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Load type-checks the packages matching the given patterns, relative
// to dir. A pattern is either an explicit package directory ("./foo")
// or a recursive pattern ("./foo/..." / "./..."); recursive patterns
// skip testdata, vendor, hidden and underscore-prefixed directories,
// exactly like the go tool.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = filepath.Join(dir, strings.TrimSuffix(base, "/"))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir type-checks the single package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPackage(abs, path)
}

// Import implements types.Importer: module-local import paths resolve
// to directories under the module root, everything else goes to the
// standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		pkg, err := l.loadPackage(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPackage(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, n); err != nil || !match {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
