package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: go/parser for syntax, go/types for
// semantics, and the stdlib source importer for dependencies outside
// the module. It deliberately has no dependency on golang.org/x/tools,
// keeping go.mod empty — the analyzer must be as self-hosted as the
// storage system it checks.
//
// Loading is concurrent: each package is computed exactly once behind a
// future, module-local imports are pre-resolved in parallel before the
// importing package type-checks, and independent packages type-check on
// separate goroutines. The token.FileSet is shared (its methods are
// concurrency-safe); the stdlib source importer is not documented as
// such, so calls into it are serialized.
type Loader struct {
	// Fset positions every file loaded by this loader.
	Fset *token.FileSet

	modRoot string
	modPath string

	stdMu sync.Mutex
	std   types.Importer

	mu      sync.Mutex
	futures map[string]*pkgFuture
	// deps records every module-local import edge ever requested.
	// Edges are added (and checked for cycles) under mu before the
	// requesting goroutine blocks on the dependency's future, so a
	// cyclic import — which would otherwise deadlock two goroutines
	// waiting on each other — is reported as an error by whichever
	// goroutine closes the cycle.
	deps map[string][]string
}

// pkgFuture is the once-computed result of loading one package. done is
// closed when pkg/err are final.
type pkgFuture struct {
	done chan struct{}
	pkg  *Package
	err  error
}

var cgoOff sync.Once

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	// The source importer type-checks the standard library from
	// $GOROOT/src. Cgo variants of net/os-user cannot be type-checked
	// from source, so pin the pure-Go build; the analyses here never
	// depend on cgo-only API.
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "source", nil),
		futures: make(map[string]*pkgFuture),
		deps:    make(map[string][]string),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Load type-checks the packages matching the given patterns, relative
// to dir. A pattern is either an explicit package directory ("./foo")
// or a recursive pattern ("./foo/..." / "./..."); recursive patterns
// skip testdata, vendor, hidden and underscore-prefixed directories,
// exactly like the go tool. Matched packages load concurrently; the
// result order follows the patterns.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = filepath.Join(dir, strings.TrimSuffix(base, "/"))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	for i, d := range dirs {
		wg.Add(1)
		go func(i int, d string) {
			defer wg.Done()
			out[i], errs[i] = l.LoadDir(d)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir type-checks the single package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPackage(abs, path)
}

// Import implements types.Importer: module-local import paths resolve
// to directories under the module root, everything else goes to the
// standard library source importer. Module-local dependencies were
// pre-resolved before type-checking began, so this never blocks on an
// in-flight package.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPackage(l.dirFor(path), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
}

// loadPackage returns the package for path, computing it at most once.
// Concurrent requests for the same path share one future.
func (l *Loader) loadPackage(dir, path string) (*Package, error) {
	l.mu.Lock()
	if f, ok := l.futures[path]; ok {
		l.mu.Unlock()
		<-f.done
		return f.pkg, f.err
	}
	f := &pkgFuture{done: make(chan struct{})}
	l.futures[path] = f
	l.mu.Unlock()
	f.pkg, f.err = l.compute(dir, path)
	close(f.done)
	return f.pkg, f.err
}

// addEdge records the import edge from→to and reports an error if it
// closes a cycle among module-local packages. Recording and checking
// happen atomically under mu, before the importer blocks on to's
// future, so at least one participant of any cycle sees the full loop
// instead of deadlocking.
func (l *Loader) addEdge(from, to string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deps[from] = append(l.deps[from], to)
	seen := map[string]bool{}
	var reaches func(p string) bool
	reaches = func(p string) bool {
		if p == from {
			return true
		}
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, q := range l.deps[p] {
			if reaches(q) {
				return true
			}
		}
		return false
	}
	if reaches(to) {
		return fmt.Errorf("lint: import cycle through %s", to)
	}
	return nil
}

// compute parses and type-checks one package. Module-local imports are
// resolved first, in parallel, so the types.Config.Check call below
// finds every dependency already complete.
func (l *Loader) compute(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, n); err != nil || !match {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Pre-resolve module-local imports concurrently.
	impSet := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == l.modPath || strings.HasPrefix(p, l.modPath+"/") {
				impSet[p] = true
			}
		}
	}
	imps := make([]string, 0, len(impSet))
	for p := range impSet {
		imps = append(imps, p)
	}
	sort.Strings(imps)
	impErrs := make([]error, len(imps))
	var wg sync.WaitGroup
	for i, p := range imps {
		if err := l.addEdge(path, p); err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			_, impErrs[i] = l.loadPackage(l.dirFor(p), p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range impErrs {
		if err != nil {
			return nil, err
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
