package lint

import (
	"fmt"
	"io"
	"path/filepath"
	"time"
)

// Exit codes of the driver, in the convention of go vet: 0 clean,
// 1 diagnostics found, 2 the analysis itself failed.
const (
	ExitClean = 0
	ExitDiags = 1
	ExitError = 2
)

// Options tune the driver beyond the default lint-and-gate run.
type Options struct {
	// Unused lists //lint:ignore suppressions that matched no
	// diagnostic. An unused suppression counts as an issue: it is a
	// silencer waiting to hide the next regression at its line.
	Unused bool
	// Timing, when non-nil, receives one line with the wall-clock
	// runtime and package count after the run (the `make lint` budget
	// guard).
	Timing io.Writer
}

// Main is the tsslint entry point, factored out of cmd/tsslint so the
// driver is testable in-process: it loads the packages matching
// patterns (relative to dir), runs every registered checker, writes
// file:line:col diagnostics to out, and returns the exit code.
func Main(out io.Writer, dir string, patterns ...string) int {
	return MainOpts(out, dir, Options{}, patterns...)
}

// MainOpts is Main with Options.
func MainOpts(out io.Writer, dir string, opts Options, patterns ...string) int {
	start := time.Now()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := NewLoader(dir)
	if err != nil {
		fmt.Fprintf(out, "tsslint: %v\n", err)
		return ExitError
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "tsslint: %v\n", err)
		return ExitError
	}
	diags, unused := RunAll(pkgs, Checkers())
	if opts.Unused {
		diags = append(diags, unused...)
		sortDiags(diags)
	}
	for _, d := range diags {
		d.Pos.Filename = relPath(dir, d.Pos.Filename)
		fmt.Fprintf(out, "%s\n", d)
	}
	if opts.Timing != nil {
		fmt.Fprintf(opts.Timing, "tsslint: %d package(s) in %s\n",
			len(pkgs), time.Since(start).Round(time.Millisecond))
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "tsslint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		return ExitDiags
	}
	return ExitClean
}

// ListCheckers writes the checker table — name and enforced invariant
// — to out (the `tsslint -list` output).
func ListCheckers(out io.Writer) {
	for _, c := range Checkers() {
		fmt.Fprintf(out, "%-12s %s\n", c.Name(), c.Doc())
	}
}

func relPath(dir, path string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(abs, path)
	if err != nil || filepath.IsAbs(rel) {
		return path
	}
	return rel
}
