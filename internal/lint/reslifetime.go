package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ResLifetime verifies that every acquired resource — a vfs.File,
// *os.File, net.Conn/Listener, chirp.Client/Pool — is released on
// every path out of the acquiring function: an explicit Close, a
// deferred Close (directly or inside a deferred literal), or an
// ownership transfer (returning the value, storing it into a struct,
// slice, map or channel, or passing it to another function). The
// paper's abstraction/resource separation only holds while resource
// lifetimes are disciplined; an fd leaked on an early error return is
// exactly the kind of bug that survives every happy-path test and
// kills a long-running server.
//
// The analysis is a forward may-analysis over the function CFG. A
// local variable becomes "live" when bound to the resource-typed
// result of a call; it dies at a release, at any escaping use
// (conservative: once ownership may have moved we never report), and
// on the failure edge of its paired error check — after
//
//	f, err := os.Open(p)
//
// the `err != nil` edge carries no open file, so the early return
// inside that branch is clean. A resource still live on a non-panic
// edge into Exit is reported at its acquisition site.
type ResLifetime struct {
	// Resources is the set of qualified type names ("os.File",
	// "tss/internal/vfs.File") whose values are tracked. Pointers and
	// aliases are unwrapped first.
	Resources map[string]bool
	// Borrowers are function or method names whose resource-typed
	// results are owned elsewhere; calls to them never count as
	// acquisitions. vfs.OSFiler.OSFile and chirp's osFileOf/bulkConn
	// hand out views of files and connections the caller must not
	// close; the experiments Env factories register their clients for
	// Env.Close.
	Borrowers map[string]bool
}

// NewResLifetime returns the checker configured for this repository.
func NewResLifetime() *ResLifetime {
	return &ResLifetime{
		Resources: map[string]bool{
			"os.File":                   true,
			"net.Conn":                  true,
			"net.TCPConn":               true,
			"net.UDPConn":               true,
			"net.UnixConn":              true,
			"net.IPConn":                true,
			"net.Listener":              true,
			"tss/internal/vfs.File":     true,
			"tss/internal/chirp.Client": true,
			"tss/internal/chirp.Pool":   true,
		},
		Borrowers: map[string]bool{
			"OSFile":        true,
			"osFileOf":      true,
			"bulkConn":      true,
			"StartChirp":    true,
			"DialChirpPool": true,
		},
	}
}

// Name implements Checker.
func (c *ResLifetime) Name() string { return "reslifetime" }

// Doc implements Checker.
func (c *ResLifetime) Doc() string {
	return "acquired files/conns/clients are closed, deferred or ownership-transferred on every path"
}

// Check implements Checker.
func (c *ResLifetime) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		funcBodies(f, func(body *ast.BlockStmt, _ *ast.FuncDecl) {
			diags = append(diags, c.checkBody(pkg, body)...)
		})
	}
	return diags
}

// resFlow carries the per-body analysis state.
type resFlow struct {
	c   *ResLifetime
	pkg *Package
	// body is the block under analysis; only variables declared inside
	// it are tracked. A closure assigning a captured variable
	// (f, e = fs.Open(...) inside a retry callback) is filling a slot
	// the enclosing function owns — the obligation is the encloser's.
	body *ast.BlockStmt
	// acquire records where each tracked variable was bound, for
	// diagnostics.
	acquire map[*types.Var]token.Pos
	// typeName records the rendered resource type per variable.
	typeName map[*types.Var]string
	// errBinds records, per error variable, every position where it was
	// (re)bound and the resource acquired alongside it (nil when the
	// binding carried no acquisition). A nil-check on the error resolves
	// against the latest binding before the check, so a later
	//
	//	n, err := f.Pread(buf, 0)
	//
	// stops the original os.Open pairing from excusing f on its arm.
	errBinds map[*types.Var]map[token.Pos]*types.Var
}

// recordErrBind notes a binding of err at pos; an acquisition pairing
// (res != nil) wins over the bare rebinding note taken at the same
// position.
func (w *resFlow) recordErrBind(err *types.Var, pos token.Pos, res *types.Var) {
	m := w.errBinds[err]
	if m == nil {
		m = make(map[token.Pos]*types.Var)
		w.errBinds[err] = m
	}
	if res != nil || m[pos] == nil {
		m[pos] = res
	}
}

// pairedRes returns the resource paired with the latest binding of v
// strictly before at, or nil.
func (w *resFlow) pairedRes(v *types.Var, at token.Pos) *types.Var {
	best := token.NoPos
	var res *types.Var
	for pos, r := range w.errBinds[v] {
		if pos < at && pos > best {
			best, res = pos, r
		}
	}
	return res
}

func (c *ResLifetime) checkBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	w := &resFlow{
		c:        c,
		pkg:      pkg,
		body:     body,
		acquire:  make(map[*types.Var]token.Pos),
		typeName: make(map[*types.Var]string),
		errBinds: make(map[*types.Var]map[token.Pos]*types.Var),
	}
	g := BuildCFG(pkg, body)
	p := &flowProblem[*types.Var]{
		transfer: func(n any, s factSet[*types.Var]) factSet[*types.Var] {
			return w.transfer(n.(ast.Node), s)
		},
		refine: w.refine,
	}
	in := p.solve(g)

	// Leak detection: replay each block that flows into Exit and
	// report what is still live on its non-panic exit edges. Each
	// acquisition is reported once, at its own position, with the
	// first leaking exit as witness.
	type leak struct {
		v    *types.Var
		exit token.Pos
	}
	var leaks []leak
	seen := make(map[*types.Var]bool)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		exits := false
		for _, e := range b.Succs {
			if e.To == g.Exit && !e.Panic {
				exits = true
			}
		}
		if !exits {
			continue
		}
		s := in[b].clone()
		for _, n := range b.Nodes {
			s = w.transfer(n, s)
		}
		exitPos := body.End()
		if len(b.Nodes) > 0 {
			exitPos = b.Nodes[len(b.Nodes)-1].Pos()
		}
		for v := range s {
			if !seen[v] {
				seen[v] = true
				leaks = append(leaks, leak{v, exitPos})
			}
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return w.acquire[leaks[i].v] < w.acquire[leaks[j].v] })
	var diags []Diagnostic
	for _, l := range leaks {
		pos := w.pkg.Fset.Position(w.acquire[l.v])
		if isTestFile(pos) {
			continue
		}
		diags = append(diags, w.pkg.diag(c.Name(), w.acquire[l.v],
			"%s (%s) acquired here may not be released on the path exiting at line %d; close it, defer the close, or transfer ownership",
			l.v.Name(), w.typeName[l.v], w.pkg.Fset.Position(l.exit).Line))
	}
	return diags
}

// isResource reports whether t (unwrapped) is a tracked resource type,
// returning its rendered name.
func (w *resFlow) isResource(t types.Type) (string, bool) {
	t = types.Unalias(t)
	ptr := false
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
		ptr = true
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !w.c.Resources[obj.Pkg().Path()+"."+obj.Name()] {
		return "", false
	}
	name := obj.Pkg().Name() + "." + obj.Name()
	if ptr {
		name = "*" + name
	}
	return name, true
}

// transfer applies one CFG node: acquisitions gen facts, releases and
// escaping uses kill them.
func (w *resFlow) transfer(node ast.Node, s factSet[*types.Var]) factSet[*types.Var] {
	// Uses first: the RHS of an assignment consumes old facts before
	// the LHS binds new ones.
	w.scanUses(node, s)
	switch st := node.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			w.bind(st.Lhs, st.Rhs[0], s)
		} else {
			for i := range st.Rhs {
				if i < len(st.Lhs) {
					w.bind(st.Lhs[i:i+1], st.Rhs[i], s)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.bind(lhs, vs.Values[0], s)
				}
			}
		}
	}
	return s
}

// bind processes one assignment target list against one RHS value: a
// call with resource-typed results gens the bound locals and pairs the
// error result; copying a live resource to a fresh local transfers the
// fact to the new name.
func (w *resFlow) bind(lhs []ast.Expr, rhs ast.Expr, s factSet[*types.Var]) {
	rhs = ast.Unparen(rhs)
	// Any binding of an error variable supersedes its earlier pairing;
	// acquisitions below re-pair at the same position.
	for _, l := range lhs {
		if v := w.localVar(l); v != nil && isErrorType(v.Type()) {
			w.recordErrBind(v, l.Pos(), nil)
		}
	}
	// Alias transfer: g := f moves the obligation to g.
	if id, ok := rhs.(*ast.Ident); ok && len(lhs) == 1 {
		if src := w.trackedVar(id); src != nil && s.has(src) {
			if dst := w.localVar(lhs[0]); dst != nil {
				delete(s, src)
				s[dst] = struct{}{}
				w.acquire[dst] = w.acquire[src]
				w.typeName[dst] = w.typeName[src]
			}
		}
		return
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if w.c.Borrowers[fun.Sel.Name] {
			return
		}
	case *ast.Ident:
		if w.c.Borrowers[fun.Name] {
			return
		}
	}
	tv, ok := w.pkg.Info.Types[call]
	if !ok {
		return
	}
	// Result types, position-aligned with lhs.
	var results []types.Type
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			results = append(results, tup.At(i).Type())
		}
	} else {
		results = []types.Type{tv.Type}
	}
	if len(results) != len(lhs) {
		return
	}
	var acquired []*types.Var
	for i, t := range results {
		name, ok := w.isResource(t)
		if !ok {
			continue
		}
		v := w.localVar(lhs[i])
		if v == nil {
			continue
		}
		s[v] = struct{}{}
		w.acquire[v] = lhs[i].Pos()
		w.typeName[v] = name
		acquired = append(acquired, v)
	}
	if len(acquired) == 0 {
		return
	}
	// Pair the error result (if any) with the acquisitions so the
	// err != nil edge can kill them.
	for i, t := range results {
		if !isErrorType(t) {
			continue
		}
		if ev := w.localVar(lhs[i]); ev != nil {
			w.recordErrBind(ev, lhs[i].Pos(), acquired[0])
		}
	}
}

// localVar resolves an assignment target to a plain variable declared
// inside the analyzed body; a field, index, blank, captured or
// package-level target returns nil.
func (w *resFlow) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := w.pkg.Info.Defs[id].(*types.Var)
	if !ok {
		// Reassignment targets resolve through Uses.
		v, ok = w.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return nil
		}
	}
	// Accept variables declared inside the body, plus parameters and
	// named results of the function that owns it — the function scope
	// ends exactly where the body does. Everything else — package-level
	// vars (long-lived by design) and variables captured from an
	// enclosing function (the encloser's obligation, not this
	// closure's) — is not tracked.
	if v.Pos() >= w.body.Pos() && v.Pos() < w.body.End() {
		return v
	}
	if p := v.Parent(); p != nil && p.End() == w.body.End() {
		return v
	}
	return nil
}

// trackedVar resolves an expression to a variable present in the
// acquisition table.
func (w *resFlow) trackedVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = w.pkg.Info.Defs[id].(*types.Var)
	}
	if v == nil {
		return nil
	}
	if _, tracked := w.acquire[v]; !tracked {
		return nil
	}
	return v
}

// scanUses kills facts for releases and escaping uses inside the node.
// Exempt (borrowing) uses: the receiver of a method call, a comparison
// against nil, and the write side of an assignment. Everything else —
// argument position, return results, composite literals, sends,
// appends — may transfer ownership, and a transferred resource is the
// new owner's to close.
func (w *resFlow) scanUses(node ast.Node, s factSet[*types.Var]) {
	exempt := make(map[*ast.Ident]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v := w.trackedVar(id); v != nil {
						// Method call on the resource: a release if the
						// method closes it, a borrow otherwise.
						if sel.Sel.Name == "Close" {
							delete(s, v)
						}
						exempt[id] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if isNilExpr(x.Y) {
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
						exempt[id] = true
					}
				}
				if isNilExpr(x.X) {
					if id, ok := ast.Unparen(x.Y).(*ast.Ident); ok {
						exempt[id] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					exempt[id] = true
				}
			}
			// A pure alias (g := f) is handled by bind as an ownership
			// transfer, not an escape — but only when the target is a
			// plain local. Storing into a field or element (af.f = f)
			// hands the resource to the containing object: that is an
			// escape, and the object's Close owns it from here.
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if _, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident); ok {
					if id, ok := ast.Unparen(x.Rhs[0]).(*ast.Ident); ok {
						exempt[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(node, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		if v := w.trackedVar(id); v != nil && s.has(v) {
			delete(s, v) // escaping use: ownership may have moved
		}
		return true
	})
}

// refine interprets branch conditions on edges: the failure arm of a
// paired error check carries no acquired resource, a nil check on the
// resource itself clears it on the nil arm, and the repo's errno idiom
// — switch vfs.AsErrno(err) or a comparison against a vfs.Errno
// constant — clears the paired acquisition on every arm that implies
// the error was non-nil.
func (w *resFlow) refine(e *Edge, s factSet[*types.Var]) factSet[*types.Var] {
	if e.Tag != nil {
		return w.refineErrnoSwitch(e, s)
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return s
	}
	if out, ok := w.refineErrnoCompare(bin, e.Negated, s); ok {
		return out
	}
	var operand ast.Expr
	switch {
	case isNilExpr(bin.Y):
		operand = bin.X
	case isNilExpr(bin.X):
		operand = bin.Y
	default:
		return s
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return s
	}
	v, _ := w.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return s
	}
	// nonNilArm: the edge taken when the operand is non-nil.
	nonNilArm := (bin.Op == token.NEQ) != e.Negated
	if r := w.pairedRes(v, bin.Pos()); r != nil && s.has(r) {
		if nonNilArm {
			// err != nil: the acquisition failed, nothing to close.
			out := s.clone()
			delete(out, r)
			return out
		}
		return s
	}
	if _, tracked := w.acquire[v]; tracked && s.has(v) && !nonNilArm {
		// resource == nil: nothing to close on this arm.
		out := s.clone()
		delete(out, v)
		return out
	}
	return s
}

// refineErrnoSwitch interprets one edge out of a `switch
// vfs.AsErrno(err)` dispatch. The EOK arm is the success path; an arm
// matching only non-EOK errnos — or the default arm when EOK appears
// among the other cases — implies the acquisition paired with err
// failed and left nothing to close.
func (w *resFlow) refineErrnoSwitch(e *Edge, s factSet[*types.Var]) factSet[*types.Var] {
	v := w.errnoArg(e.Tag)
	if v == nil {
		return s
	}
	r := w.pairedRes(v, e.Tag.Pos())
	if r == nil || !s.has(r) {
		return s
	}
	fail := false
	if len(e.Cases) > 0 {
		fail = true
		for _, c := range e.Cases {
			if name, ok := w.errnoConst(c); !ok || name == "EOK" {
				fail = false
			}
		}
	} else {
		for _, c := range e.NotCases {
			if name, ok := w.errnoConst(c); ok && name == "EOK" {
				fail = true
			}
		}
	}
	if !fail {
		return s
	}
	out := s.clone()
	delete(out, r)
	return out
}

// refineErrnoCompare interprets `vfs.AsErrno(err) ==/!= vfs.EFOO`
// branch conditions; reported ok when the condition is such a
// comparison (whether or not anything was killed).
func (w *resFlow) refineErrnoCompare(bin *ast.BinaryExpr, negated bool, s factSet[*types.Var]) (factSet[*types.Var], bool) {
	call, cnst := bin.X, bin.Y
	name, ok := w.errnoConst(cnst)
	if !ok {
		call, cnst = bin.Y, bin.X
		if name, ok = w.errnoConst(cnst); !ok {
			return s, false
		}
	}
	v := w.errnoArg(call)
	if v == nil {
		return s, false
	}
	r := w.pairedRes(v, bin.Pos())
	if r == nil || !s.has(r) {
		return s, true
	}
	// eq: this edge implies AsErrno(err) == name holds.
	eq := (bin.Op == token.EQL) != negated
	// Equality with a non-EOK errno, or inequality with EOK, both
	// imply err != nil: the acquisition failed.
	if (eq && name != "EOK") || (!eq && name == "EOK") {
		out := s.clone()
		delete(out, r)
		return out, true
	}
	return s, true
}

// errnoArg returns the error variable passed to a vfs.AsErrno call,
// or nil.
func (w *resFlow) errnoArg(e ast.Expr) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = w.pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = w.pkg.Info.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "AsErrno" || fn.Pkg() == nil || fn.Pkg().Path() != "tss/internal/vfs" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.pkg.Info.Uses[id].(*types.Var)
	return v
}

// errnoConst reports whether e denotes a vfs.Errno constant and, if
// so, its name ("EOK", "EEXIST", ...).
func (w *resFlow) errnoConst(e ast.Expr) (string, bool) {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj = w.pkg.Info.Uses[x.Sel]
	case *ast.Ident:
		obj = w.pkg.Info.Uses[x]
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != "tss/internal/vfs" {
		return "", false
	}
	n, ok := types.Unalias(c.Type()).(*types.Named)
	if !ok || n.Obj().Name() != "Errno" {
		return "", false
	}
	return c.Name(), true
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
