package obs_test

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"tss/internal/abstraction"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// fakeFS is an allocation-free in-memory filesystem core: every file
// reads as zeroes. It implements only the base vfs.FileSystem.
type fakeFS struct{}

type fakeFile struct{}

func (fakeFS) Open(string, int, uint32) (vfs.File, error) { return fakeFile{}, nil }
func (fakeFS) Stat(string) (vfs.FileInfo, error)          { return vfs.FileInfo{}, nil }
func (fakeFS) Unlink(string) error                        { return nil }
func (fakeFS) Rename(string, string) error                { return nil }
func (fakeFS) Mkdir(string, uint32) error                 { return nil }
func (fakeFS) Rmdir(string) error                         { return nil }
func (fakeFS) ReadDir(string) ([]vfs.DirEntry, error)     { return nil, nil }
func (fakeFS) Truncate(string, int64) error               { return nil }
func (fakeFS) Chmod(string, uint32) error                 { return nil }
func (fakeFS) StatFS() (vfs.FSInfo, error)                { return vfs.FSInfo{}, nil }
func (fakeFile) Pread(p []byte, _ int64) (int, error)     { return len(p), nil }
func (fakeFile) Pwrite(p []byte, _ int64) (int, error)    { return len(p), nil }
func (fakeFile) Fstat() (vfs.FileInfo, error)             { return vfs.FileInfo{}, nil }
func (fakeFile) Ftruncate(int64) error                    { return nil }
func (fakeFile) Sync() error                              { return nil }
func (fakeFile) Close() error                             { return nil }

// getterFS adds a GetFile fast path to fakeFS.
type getterFS struct{ fakeFS }

func (getterFS) GetFile(path string, w io.Writer) (int64, error) {
	n, err := w.Write([]byte("hello"))
	return int64(n), err
}

func TestInstrumentNilRegistryReturnsSameFS(t *testing.T) {
	fs := fakeFS{}
	if got := obs.Instrument(fs, nil, "x"); got != vfs.FileSystem(fs) {
		t.Fatal("Instrument with nil registry must return fs unchanged")
	}
	if got := obs.Instrument(nil, obs.NewRegistry(), "x"); got != nil {
		t.Fatal("Instrument(nil, ...) must return nil")
	}
}

// TestNilRegistryPreadNoAllocs is the acceptance proof that disabled
// instrumentation adds no allocations on the pread path.
func TestNilRegistryPreadNoAllocs(t *testing.T) {
	fs := obs.Instrument(fakeFS{}, nil, "x")
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := f.Pread(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-instrumentation pread allocates %.1f objects/op, want 0", allocs)
	}
}

func TestInstrumentTimesOperations(t *testing.T) {
	reg := obs.NewRegistry()
	fs := obs.Instrument(fakeFS{}, reg, "lay")
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	for i := 0; i < 3; i++ {
		f.Pread(buf, 0)
	}
	f.Pwrite(buf, 0)
	f.Close()
	fs.Stat("/f")
	s := reg.Snapshot()
	if got := s.Histograms["lay.pread"].Count; got != 3 {
		t.Errorf("lay.pread count = %d, want 3", got)
	}
	if got := s.Histograms["lay.open"].Count; got != 1 {
		t.Errorf("lay.open count = %d, want 1", got)
	}
	if got := s.Counters["lay.bytes_read"]; got != 300 {
		t.Errorf("lay.bytes_read = %d, want 300", got)
	}
	if got := s.Counters["lay.bytes_written"]; got != 100 {
		t.Errorf("lay.bytes_written = %d, want 100", got)
	}
	if got := s.Counters["lay.ops"]; got == 0 {
		t.Error("lay.ops not counted")
	}
	// All instrumented op histograms exist from the moment of
	// instrumentation, even the never-exercised ones.
	if _, ok := s.Histograms["lay.reconnect"]; !ok {
		t.Error("lay.reconnect histogram not pre-created")
	}
}

func TestInstrumentForwardsOnlyInnerCapabilities(t *testing.T) {
	reg := obs.NewRegistry()
	fs := obs.Instrument(getterFS{}, reg, "lay")
	caps := vfs.Capabilities(fs)
	if caps.FileGetter == nil {
		t.Fatal("inner GetFile capability not forwarded")
	}
	if caps.FilePutter != nil || caps.Reconnector != nil || caps.OpenStater != nil || caps.Closer != nil {
		t.Fatal("capabilities the inner FS lacks must stay absent")
	}
	var buf bytes.Buffer
	n, err := caps.FileGetter.GetFile("/f", &buf)
	if err != nil || n != 5 {
		t.Fatalf("GetFile = (%d, %v), want (5, nil)", n, err)
	}
	s := reg.Snapshot()
	if got := s.Histograms["lay.getfile"].Count; got != 1 {
		t.Errorf("lay.getfile count = %d, want 1 (fast path must be timed)", got)
	}
	if got := s.Counters["lay.bytes_read"]; got != 5 {
		t.Errorf("lay.bytes_read = %d, want 5", got)
	}
}

// TestConcurrentInstrumentedMirrorReads exercises concurrent metric
// emission end to end: parallel whole-file reads through an
// instrumented mirror over two instrumented local replicas, verified
// under -race by the race gate in `make verify`.
func TestConcurrentInstrumentedMirrorReads(t *testing.T) {
	reg := obs.NewRegistry()
	var replicas []vfs.FileSystem
	for i := 0; i < 2; i++ {
		lfs, err := vfs.NewLocalFS(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(lfs, "/data", []byte(strings.Repeat("x", 8192)), 0o644); err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, obs.Instrument(lfs, reg, "local"))
	}
	m, err := abstraction.NewMirrorOptions(abstraction.MirrorOptions{Metrics: reg, Layer: "mirror"}, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	fs := obs.Instrument(m, reg, "mirror")

	const readers, reads = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8192)
			for i := 0; i < reads; i++ {
				f, err := fs.Open("/data", vfs.O_RDONLY, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := f.Pread(buf, 0); err != nil {
					t.Error(err)
				}
				f.Close()
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	want := int64(readers * reads)
	if got := s.Histograms["mirror.pread"].Count; got != want {
		t.Errorf("mirror.pread count = %d, want %d", got, want)
	}
	if got := s.Histograms["local.pread"].Count; got != want {
		t.Errorf("local.pread count = %d, want %d (mirror serves reads from one replica)", got, want)
	}
	if got := s.Counters["mirror.bytes_read"]; got != want*8192 {
		t.Errorf("mirror.bytes_read = %d, want %d", got, want*8192)
	}
}

func BenchmarkPreadRaw(b *testing.B) {
	f, _ := fakeFS{}.Open("/f", vfs.O_RDONLY, 0)
	buf := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Pread(buf, 0)
	}
}

func BenchmarkPreadDisabledInstrumentation(b *testing.B) {
	fs := obs.Instrument(fakeFS{}, nil, "x")
	f, _ := fs.Open("/f", vfs.O_RDONLY, 0)
	buf := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Pread(buf, 0)
	}
}

func BenchmarkPreadEnabledInstrumentation(b *testing.B) {
	fs := obs.Instrument(fakeFS{}, obs.NewRegistry(), "x")
	f, _ := fs.Open("/f", vfs.O_RDONLY, 0)
	buf := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Pread(buf, 0)
	}
}
