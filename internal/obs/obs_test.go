package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Errorf("nil Counter.Value() = %d, want 0", got)
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 0 {
		t.Errorf("nil Gauge.Value() = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	h.Since(time.Now())
	if s := h.Snap(); s.Count != 0 {
		t.Errorf("nil Histogram.Snap().Count = %d, want 0", s.Count)
	}
}

func TestNilRegistryHandsOutNilMetrics(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil Registry must hand out nil metrics")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil Registry.Snapshot() must be empty")
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops")
	b := r.Counter("ops")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	b.Inc()
	if got := r.Snapshot().Counters["ops"]; got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1 in the 1µs bucket, 2 in the 100µs bucket, 1 in overflow.
	h.Observe(500 * time.Nanosecond)
	h.Observe(60 * time.Microsecond)
	h.Observe(80 * time.Microsecond)
	h.Observe(time.Minute)
	s := h.Snap()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if got := s.Buckets[0]; got != 1 {
		t.Errorf("1µs bucket = %d, want 1", got)
	}
	if got := s.Buckets[len(s.Buckets)-1]; got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
	if got := s.Quantile(0.5); got != 100*time.Microsecond {
		t.Errorf("p50 = %v, want 100µs (bucket upper bound)", got)
	}
	if s.Mean() <= 0 {
		t.Errorf("mean = %v, want > 0", s.Mean())
	}
	// Negative observations clamp instead of corrupting the sum.
	h.Observe(-time.Second)
	if s := h.Snap(); s.SumNS < 0 {
		t.Errorf("negative observation corrupted sum: %d", s.SumNS)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("ops").Add(3)
	r2.Counter("ops").Add(4)
	r2.Counter("only2").Add(1)
	r1.Gauge("state").Set(1)
	r2.Gauge("state").Set(2)
	r1.Histogram("lat").Observe(10 * time.Microsecond)
	r2.Histogram("lat").Observe(10 * time.Microsecond)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	if got := s.Counters["ops"]; got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := s.Counters["only2"]; got != 1 {
		t.Errorf("merged new counter = %d, want 1", got)
	}
	if got := s.Gauges["state"]; got != 2 {
		t.Errorf("merged gauge = %d, want 2 (last writer wins)", got)
	}
	if got := s.Histograms["lat"].Count; got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}
	// Merging into an empty snapshot copies buckets.
	var empty Snapshot
	empty.Merge(s)
	if got := empty.Histograms["lat"].Count; got != 2 {
		t.Errorf("merge into empty: count = %d, want 2", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(5)
	r.Histogram("lat").Observe(time.Millisecond)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["ops"] != 5 || back.Histograms["lat"].Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestConcurrentRegistryAndMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("ops").Inc()
				r.Gauge("depth").Set(int64(i))
				r.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["ops"]; got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := s.Histograms["lat"].Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
