// Package obs is the measurement substrate of the tactical storage
// system: dependency-free counters, gauges, and fixed-bucket latency
// histograms with mergeable snapshots.
//
// The paper's entire evaluation is latency and throughput measurement
// (Figures 3-9), and its users distrust transparent layers (§3); obs
// makes every layer of a running stack report what it is doing. A
// Registry holds named metrics; Instrument wraps any vfs.FileSystem so
// a CFS-over-mirror-over-chirp stack reports per-layer latency exactly
// like the paper's figure decomposition; Handler publishes a snapshot
// over HTTP.
//
// All metric types are safe for concurrent use, and every method is
// nil-receiver-safe: a component wired with a nil *Counter (because no
// registry was configured) pays a single predictable branch, so
// instrumentation can be threaded through hot paths unconditionally.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down — a breaker state, a queue
// depth, a drain flag.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on a nil receiver (no-op).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value. Safe on a nil receiver (zero).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// BucketBounds are the fixed upper bounds of every latency histogram,
// spanning sub-microsecond local operations to multi-second WAN
// recovery. A fixed layout keeps snapshots from different processes
// mergeable bucket-by-bucket.
var BucketBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// numBuckets counts the bounded buckets plus the overflow bucket.
var numBuckets = len(BucketBounds) + 1

// Histogram is a fixed-bucket latency histogram. Observations above
// the last bound land in the overflow bucket.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	counts []atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, numBuckets)}
}

// Observe records one duration. Safe on a nil receiver (no-op) and
// allocation-free otherwise.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	i := sort.Search(len(BucketBounds), func(i int) bool { return d <= BucketBounds[i] })
	h.counts[i].Add(1)
}

// Since records the time elapsed from start until now — the usual
// call-site idiom is `defer h.Since(time.Now())`. Safe on nil.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Snap returns a consistent-enough snapshot of the histogram: bucket
// counts are read individually, so a snapshot taken under concurrent
// observation may be off by in-flight observations, never corrupt.
func (h *Histogram) Snap() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNS:   h.sum.Load(),
		Buckets: make([]int64, numBuckets),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the frozen, JSON-friendly form of a Histogram.
// Buckets is parallel to BucketBounds, plus one final overflow bucket.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Mean returns the mean observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket containing it; overflow reports the last bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			if i < len(BucketBounds) {
				return BucketBounds[i]
			}
			break
		}
	}
	return BucketBounds[len(BucketBounds)-1]
}

// Merge adds other's observations into s. Mismatched bucket layouts
// (snapshots from a build with different bounds) merge count and sum
// only, leaving s's buckets — the totals stay truthful either way.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.SumNS += other.SumNS
	if len(s.Buckets) == 0 {
		s.Buckets = append([]int64(nil), other.Buckets...)
		return
	}
	if len(other.Buckets) != len(s.Buckets) {
		return
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Snapshot is a frozen view of a whole Registry, the unit that travels:
// serialized on /metrics, embedded in bench output, merged across
// processes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge folds other into s: counters and histogram contents add,
// gauges take other's value (last writer wins).
func (s *Snapshot) Merge(other Snapshot) {
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	for k, v := range other.Gauges {
		s.Gauges[k] = v
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, v := range other.Histograms {
		h := s.Histograms[k]
		h.Merge(v)
		s.Histograms[k] = h
	}
}

// Registry is a namespace of metrics. Metric accessors get-or-create
// by name, so independent components wiring the same name share the
// metric. All methods are safe for concurrent use and on a nil
// receiver: a nil registry hands out nil metrics, which are themselves
// safe no-ops — "instrumentation disabled" needs no branches at the
// call site.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot freezes the registry. Safe on a nil receiver (empty).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for k, h := range r.histograms {
			s.Histograms[k] = h.Snap()
		}
	}
	return s
}
