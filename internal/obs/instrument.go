package obs

import (
	"io"
	"time"

	"tss/internal/vfs"
)

// Instrument wraps fs so every operation is timed into reg under
// "<layer>.<op>" histograms, with "<layer>.ops", "<layer>.errors",
// "<layer>.bytes_read", and "<layer>.bytes_written" counters. Stacked
// layers instrumented with distinct layer tags decompose end-to-end
// latency the way the paper's figures do: a CFS-over-mirror-over-chirp
// stack reports where each microsecond went.
//
// The wrapper forwards the wrapped layer's capabilities (vfs.Capabler):
// a getfile or openstat fast path below stays reachable — and timed —
// above, so instrumentation never distorts the measurement it exists to
// take. A nil registry returns fs unchanged: disabled instrumentation
// costs nothing, not even an allocation on the pread path.
func Instrument(fs vfs.FileSystem, reg *Registry, layer string) vfs.FileSystem {
	if fs == nil || reg == nil {
		return fs
	}
	i := &instrumentedFS{fs: fs, hists: make(map[string]*Histogram, len(instrumentedOps))}
	for _, op := range instrumentedOps {
		i.hists[op] = reg.Histogram(layer + "." + op)
	}
	i.ops = reg.Counter(layer + ".ops")
	i.errs = reg.Counter(layer + ".errors")
	i.bytesRead = reg.Counter(layer + ".bytes_read")
	i.bytesWritten = reg.Counter(layer + ".bytes_written")
	return i
}

// instrumentedOps enumerates every metric the wrapper emits, so all
// histograms exist (at zero) from the moment of instrumentation rather
// than appearing when first exercised.
var instrumentedOps = []string{
	"open", "stat", "unlink", "rename", "mkdir", "rmdir", "readdir",
	"truncate", "chmod", "statfs",
	"pread", "pwrite", "fstat", "ftruncate", "sync", "close",
	"openstat", "getfile", "putfile", "checksum", "reconnect",
	"getpart", "putbegin", "putpart", "putcomplete",
	"lease", "leasebreak",
}

type instrumentedFS struct {
	fs           vfs.FileSystem
	hists        map[string]*Histogram
	ops          *Counter
	errs         *Counter
	bytesRead    *Counter
	bytesWritten *Counter
}

var (
	_ vfs.FileSystem = (*instrumentedFS)(nil)
	_ vfs.Capabler   = (*instrumentedFS)(nil)
)

// observe charges one operation: latency into the op histogram, and
// the error counter when it failed.
func (i *instrumentedFS) observe(op string, start time.Time, err error) {
	i.hists[op].Observe(time.Since(start))
	i.ops.Inc()
	if err != nil {
		i.errs.Inc()
	}
}

func (i *instrumentedFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	start := time.Now()
	f, err := i.fs.Open(path, flags, mode)
	i.observe("open", start, err)
	if err != nil {
		return nil, err
	}
	return &instrumentedFile{i: i, f: f}, nil
}

func (i *instrumentedFS) Stat(path string) (vfs.FileInfo, error) {
	start := time.Now()
	fi, err := i.fs.Stat(path)
	i.observe("stat", start, err)
	return fi, err
}

func (i *instrumentedFS) Unlink(path string) error {
	start := time.Now()
	err := i.fs.Unlink(path)
	i.observe("unlink", start, err)
	return err
}

func (i *instrumentedFS) Rename(oldPath, newPath string) error {
	start := time.Now()
	err := i.fs.Rename(oldPath, newPath)
	i.observe("rename", start, err)
	return err
}

func (i *instrumentedFS) Mkdir(path string, mode uint32) error {
	start := time.Now()
	err := i.fs.Mkdir(path, mode)
	i.observe("mkdir", start, err)
	return err
}

func (i *instrumentedFS) Rmdir(path string) error {
	start := time.Now()
	err := i.fs.Rmdir(path)
	i.observe("rmdir", start, err)
	return err
}

func (i *instrumentedFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	start := time.Now()
	ents, err := i.fs.ReadDir(path)
	i.observe("readdir", start, err)
	return ents, err
}

func (i *instrumentedFS) Truncate(path string, size int64) error {
	start := time.Now()
	err := i.fs.Truncate(path, size)
	i.observe("truncate", start, err)
	return err
}

func (i *instrumentedFS) Chmod(path string, mode uint32) error {
	start := time.Now()
	err := i.fs.Chmod(path, mode)
	i.observe("chmod", start, err)
	return err
}

func (i *instrumentedFS) StatFS() (vfs.FSInfo, error) {
	start := time.Now()
	info, err := i.fs.StatFS()
	i.observe("statfs", start, err)
	return info, err
}

// Capabilities forwards the wrapped layer's capabilities, each wrapped
// so the fast path is timed like any other operation. Absent inner
// capabilities stay absent: instrumentation adds measurements, never
// round-trip behavior.
func (i *instrumentedFS) Capabilities() vfs.Capability {
	inner := vfs.Capabilities(i.fs)
	var c vfs.Capability
	if inner.OpenStater != nil {
		c.OpenStater = &instrumentedOpenStater{i: i, inner: inner.OpenStater}
	}
	if inner.FileGetter != nil {
		c.FileGetter = &instrumentedFileGetter{i: i, inner: inner.FileGetter}
	}
	if inner.FilePutter != nil {
		c.FilePutter = &instrumentedFilePutter{i: i, inner: inner.FilePutter}
	}
	if inner.PartGetter != nil {
		c.PartGetter = &instrumentedPartGetter{i: i, inner: inner.PartGetter}
	}
	if inner.PartPutter != nil {
		c.PartPutter = &instrumentedPartPutter{i: i, inner: inner.PartPutter}
	}
	if inner.Checksummer != nil {
		c.Checksummer = &instrumentedChecksummer{i: i, inner: inner.Checksummer}
	}
	if inner.Leaser != nil {
		c.Leaser = &instrumentedLeaser{i: i, inner: inner.Leaser}
	}
	if inner.Reconnector != nil {
		c.Reconnector = &instrumentedReconnector{i: i, inner: inner.Reconnector}
	}
	c.Closer = inner.Closer
	return c
}

type instrumentedOpenStater struct {
	i     *instrumentedFS
	inner vfs.OpenStater
}

func (o *instrumentedOpenStater) OpenStat(path string, flags int, mode uint32) (vfs.File, vfs.FileInfo, error) {
	start := time.Now()
	f, fi, err := o.inner.OpenStat(path, flags, mode)
	o.i.observe("openstat", start, err)
	if err != nil {
		return nil, fi, err
	}
	return &instrumentedFile{i: o.i, f: f}, fi, nil
}

type instrumentedFileGetter struct {
	i     *instrumentedFS
	inner vfs.FileGetter
}

func (g *instrumentedFileGetter) GetFile(path string, w io.Writer) (int64, error) {
	start := time.Now()
	n, err := g.inner.GetFile(path, w)
	g.i.observe("getfile", start, err)
	g.i.bytesRead.Add(n)
	return n, err
}

type instrumentedFilePutter struct {
	i     *instrumentedFS
	inner vfs.FilePutter
}

func (p *instrumentedFilePutter) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	start := time.Now()
	err := p.inner.PutFile(path, mode, size, r)
	p.i.observe("putfile", start, err)
	if err == nil {
		p.i.bytesWritten.Add(size)
	}
	return err
}

type instrumentedPartGetter struct {
	i     *instrumentedFS
	inner vfs.PartGetter
}

func (g *instrumentedPartGetter) GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error) {
	start := time.Now()
	n, sum, err := g.inner.GetPart(path, off, length, algo, w)
	g.i.observe("getpart", start, err)
	g.i.bytesRead.Add(n)
	return n, sum, err
}

type instrumentedPartPutter struct {
	i     *instrumentedFS
	inner vfs.PartPutter
}

func (p *instrumentedPartPutter) PutBegin(path string, mode uint32, size int64) error {
	start := time.Now()
	err := p.inner.PutBegin(path, mode, size)
	p.i.observe("putbegin", start, err)
	return err
}

func (p *instrumentedPartPutter) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	start := time.Now()
	sum, err := p.inner.PutPart(path, off, length, algo, r)
	p.i.observe("putpart", start, err)
	if err == nil {
		p.i.bytesWritten.Add(length)
	}
	return sum, err
}

func (p *instrumentedPartPutter) PutComplete(path string, size int64, algo, sum string) error {
	start := time.Now()
	err := p.inner.PutComplete(path, size, algo, sum)
	p.i.observe("putcomplete", start, err)
	return err
}

type instrumentedChecksummer struct {
	i     *instrumentedFS
	inner vfs.Checksummer
}

func (cs *instrumentedChecksummer) Checksum(path, algo string) (string, error) {
	start := time.Now()
	sum, err := cs.inner.Checksum(path, algo)
	cs.i.observe("checksum", start, err)
	return sum, err
}

type instrumentedLeaser struct {
	i     *instrumentedFS
	inner vfs.Leaser
}

func (l *instrumentedLeaser) Lease(path string) (vfs.Lease, error) {
	start := time.Now()
	lease, err := l.inner.Lease(path)
	l.i.observe("lease", start, err)
	return lease, err
}

func (l *instrumentedLeaser) LeaseBreak(id int64) error {
	start := time.Now()
	err := l.inner.LeaseBreak(id)
	l.i.observe("leasebreak", start, err)
	return err
}

type instrumentedReconnector struct {
	i     *instrumentedFS
	inner vfs.Reconnector
}

func (r *instrumentedReconnector) Reconnect() error {
	start := time.Now()
	err := r.inner.Reconnect()
	r.i.observe("reconnect", start, err)
	return err
}

// instrumentedFile times per-descriptor I/O into the layer's metrics.
type instrumentedFile struct {
	i *instrumentedFS
	f vfs.File
}

func (f *instrumentedFile) Pread(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := f.f.Pread(p, off)
	f.i.observe("pread", start, err)
	f.i.bytesRead.Add(int64(n))
	return n, err
}

func (f *instrumentedFile) Pwrite(p []byte, off int64) (int, error) {
	start := time.Now()
	n, err := f.f.Pwrite(p, off)
	f.i.observe("pwrite", start, err)
	f.i.bytesWritten.Add(int64(n))
	return n, err
}

func (f *instrumentedFile) Fstat() (vfs.FileInfo, error) {
	start := time.Now()
	fi, err := f.f.Fstat()
	f.i.observe("fstat", start, err)
	return fi, err
}

func (f *instrumentedFile) Ftruncate(size int64) error {
	start := time.Now()
	err := f.f.Ftruncate(size)
	f.i.observe("ftruncate", start, err)
	return err
}

func (f *instrumentedFile) Sync() error {
	start := time.Now()
	err := f.f.Sync()
	f.i.observe("sync", start, err)
	return err
}

func (f *instrumentedFile) Close() error {
	start := time.Now()
	err := f.f.Close()
	f.i.observe("close", start, err)
	return err
}
