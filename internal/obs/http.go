package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the debugd-style endpoints:
//
//	/metrics  — the registry snapshot as JSON
//	/healthz  — 200 "ok" while healthy(), 503 with the reason otherwise
//
// healthy may be nil, in which case /healthz always reports ok. A
// server command wires its drain state here so orchestrators stop
// routing to a draining process before its connections finish.
func Handler(reg *Registry, healthy func() (ok bool, reason string)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		data, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		ok, reason := true, "ok"
		if healthy != nil {
			ok, reason = healthy()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if reason == "" {
			reason = "ok"
		}
		w.Write([]byte(reason + "\n"))
	})
	return mux
}
