package pathutil

import (
	"strings"
	"testing"
)

// FuzzConfine is the software-chroot escape hunt: for any
// client-supplied logical path, a confined result must be the root
// itself or a strict descendant of it, and the mapped suffix must be
// free of "." and ".." segments. A counterexample here is a directory
// traversal bug in every exported server.
func FuzzConfine(f *testing.F) {
	f.Add(uint8(0), "/")
	f.Add(uint8(0), "/../../etc/passwd")
	f.Add(uint8(0), "a/../../..//b")
	f.Add(uint8(1), "/.././..")
	f.Add(uint8(1), "/a/b/../../../../root/.ssh/id_rsa")
	f.Add(uint8(2), "..\\..\\windows")
	f.Add(uint8(0), "/a/./b//c/")
	f.Add(uint8(0), "/\x00/etc")
	f.Fuzz(func(t *testing.T, rootSel uint8, logical string) {
		// Confine's contract requires a well-formed host root; the
		// adversary controls only the logical path.
		roots := []string{"/srv/tss/export", "/", "/tmp"}
		root := roots[int(rootSel)%len(roots)]
		host, err := Confine(root, logical)
		if err != nil {
			return
		}
		var rest string
		if root == "/" {
			rest = host
		} else {
			if host != root && !strings.HasPrefix(host, root+"/") {
				t.Fatalf("Confine(%q, %q) = %q escapes the root", root, logical, host)
			}
			rest = strings.TrimPrefix(host, root)
		}
		for _, seg := range strings.Split(rest, "/") {
			if seg == "." || seg == ".." {
				t.Fatalf("Confine(%q, %q) = %q retains a %q segment", root, logical, host, seg)
			}
		}
		// The logical view must agree: every accepted path normalizes
		// to something Within "/" maps back under the root.
		norm, err := Norm(logical)
		if err != nil {
			t.Fatalf("Confine accepted %q but Norm rejects it: %v", logical, err)
		}
		if !strings.HasPrefix(norm, "/") {
			t.Fatalf("Norm(%q) = %q is not absolute", logical, norm)
		}
	})
}
