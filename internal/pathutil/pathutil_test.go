package pathutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNorm(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"/a", "/a"},
		{"a", "/a"},
		{"/a/", "/a"},
		{"/a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../..", "/"},
		{"/..", "/"},
		{"..", "/"},
		{"/a/b/../../../../c", "/c"},
		{"/a/b/c/..", "/a/b"},
		{"./x", "/x"},
		{"/a/b/./.", "/a/b"},
	}
	for _, c := range cases {
		got, err := Norm(c.in)
		if err != nil {
			t.Fatalf("Norm(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Norm(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormRejectsBadBytes(t *testing.T) {
	for _, in := range []string{"/a\x00b", "/a\nb", "\x00", "x\ny"} {
		if _, err := Norm(in); err == nil {
			t.Errorf("Norm(%q) accepted malformed path", in)
		}
	}
}

// Property: Norm output is always absolute, contains no "." or ".."
// components, and never two consecutive slashes.
func TestNormCanonicalProperty(t *testing.T) {
	f := func(s string) bool {
		n, err := Norm(s)
		if err != nil {
			return !strings.ContainsAny(s, "\x00\n") == false
		}
		if !strings.HasPrefix(n, "/") {
			return false
		}
		if strings.Contains(n, "//") {
			return false
		}
		for _, c := range Split(n) {
			if c == "." || c == ".." || c == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Confine never escapes the root, no matter the input.
func TestConfineNeverEscapes(t *testing.T) {
	const root = "/srv/export"
	f := func(s string) bool {
		hp, err := Confine(root, s)
		if err != nil {
			return true // rejected outright is safe
		}
		return hp == root || strings.HasPrefix(hp, root+"/")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Directed adversarial cases.
	for _, in := range []string{"..", "/..", "/../../etc/passwd", "a/../../..", "/a/../../b", "....//....//etc"} {
		hp, err := Confine(root, in)
		if err != nil {
			continue
		}
		if hp != root && !strings.HasPrefix(hp, root+"/") {
			t.Errorf("Confine escaped: %q -> %q", in, hp)
		}
	}
}

func TestSplitJoin(t *testing.T) {
	if got := Split("/"); len(got) != 0 {
		t.Errorf("Split(/) = %v", got)
	}
	if got := Split("/a/b/c"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("Split(/a/b/c) = %v", got)
	}
	if got := Join("a", "b"); got != "/a/b" {
		t.Errorf("Join = %q", got)
	}
	if got := Join(); got != "/" {
		t.Errorf("Join() = %q", got)
	}
}

func TestWithinRebase(t *testing.T) {
	cases := []struct {
		prefix, p string
		within    bool
		rest      string
	}{
		{"/", "/a/b", true, "/a/b"},
		{"/a", "/a", true, "/"},
		{"/a", "/a/b", true, "/b"},
		{"/a", "/ab", false, ""},
		{"/a/b", "/a", false, ""},
	}
	for _, c := range cases {
		if got := Within(c.prefix, c.p); got != c.within {
			t.Errorf("Within(%q,%q) = %v", c.prefix, c.p, got)
		}
		rest, ok := Rebase(c.prefix, c.p)
		if ok != c.within {
			t.Errorf("Rebase(%q,%q) ok = %v", c.prefix, c.p, ok)
		}
		if ok && rest != c.rest {
			t.Errorf("Rebase(%q,%q) = %q, want %q", c.prefix, c.p, rest, c.rest)
		}
	}
}

func TestDirBase(t *testing.T) {
	if Dir("/a/b") != "/a" || Dir("/a") != "/" || Dir("/") != "/" {
		t.Error("Dir wrong")
	}
	if Base("/a/b") != "b" || Base("/") != "/" {
		t.Error("Base wrong")
	}
	if !IsRoot("/") || IsRoot("/a") {
		t.Error("IsRoot wrong")
	}
}
