// Package pathutil implements the path handling used by every layer of
// the tactical storage system: logical normalization of client-supplied
// paths and confinement of those paths beneath a server root.
//
// Confinement is the software equivalent of chroot described in the
// paper (§4): a Chirp server exports an arbitrary directory and must
// guarantee that no client-supplied path — however many ".." components
// it contains — escapes that directory.
package pathutil

import (
	"errors"
	"path"
	"strings"
)

// ErrBadPath reports a path that cannot be represented in the server
// namespace at all (embedded NUL or newline, which would corrupt the
// line-oriented wire protocol or the host filesystem API).
var ErrBadPath = errors.New("pathutil: malformed path")

// Norm converts a client-supplied path into canonical logical form: an
// absolute, slash-separated path with ".", ".." and duplicate slashes
// resolved, where ".." never ascends above "/". Relative input is
// interpreted against "/". The empty string normalizes to "/".
//
// Norm is purely lexical; it never touches the filesystem.
func Norm(p string) (string, error) {
	if strings.IndexByte(p, 0) >= 0 || strings.IndexByte(p, '\n') >= 0 {
		return "", ErrBadPath
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	// path.Clean resolves "." and ".." and, because the input is
	// absolute, clamps ".." at the root rather than escaping it.
	return path.Clean(p), nil
}

// Split returns the components of a normalized path, in order. The root
// "/" has no components.
func Split(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// Join joins components into a normalized absolute path.
func Join(elem ...string) string {
	return path.Clean("/" + strings.Join(elem, "/"))
}

// Dir returns the parent of a normalized path. The parent of "/" is "/".
func Dir(p string) string {
	return path.Dir(p)
}

// Base returns the final component of a normalized path.
func Base(p string) string {
	return path.Base(p)
}

// IsRoot reports whether p is the root path.
func IsRoot(p string) bool { return p == "/" }

// Within reports whether the normalized path p lies at or beneath the
// normalized path prefix. Both arguments must already be normalized.
func Within(prefix, p string) bool {
	if prefix == "/" {
		return strings.HasPrefix(p, "/")
	}
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}

// Rebase interprets the normalized logical path p relative to the
// normalized mount prefix, returning the remainder as a normalized
// path. It reports ok=false when p is not within prefix.
func Rebase(prefix, p string) (rest string, ok bool) {
	if !Within(prefix, p) {
		return "", false
	}
	if prefix == "/" {
		return p, true
	}
	rest = strings.TrimPrefix(p, prefix)
	if rest == "" {
		rest = "/"
	}
	return rest, true
}

// Confine maps a client-supplied logical path into the host filesystem
// beneath root. The result is guaranteed to be root itself or a
// descendant of root; escape via ".." is impossible because the logical
// path is normalized first. root must be a host path without a trailing
// slash (except "/").
func Confine(root, logical string) (string, error) {
	norm, err := Norm(logical)
	if err != nil {
		return "", err
	}
	if norm == "/" {
		return root, nil
	}
	if root == "/" {
		return norm, nil
	}
	return root + norm, nil
}
