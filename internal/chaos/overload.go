package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// The overload scenarios exercise the server's admission control and
// the clients' retry budgets end to end (DESIGN.md §15): a closed-loop
// fleet offers several times the server's capacity, the server sheds
// the excess with EAGAIN, and the clients' budgeted, full-jitter
// retries must keep goodput near capacity instead of collapsing into
// a retry storm.
//
// Unlike the quorum-mirror timelines, both scenarios run against a
// single chirp server whose capacity is made scarce on purpose: bulk
// request bodies arrive over a bandwidth-shaped simulated link, so an
// admitted write pins its admission slot for a real, controlled
// duration while control-plane RPCs stay cheap.
//
//   - overload: 4x-capacity closed loop. Invariants: the server sheds
//     (harness), goodput under overload stays at least half of the
//     unloaded baseline (goodput-collapse), control-plane p99 under
//     pressure is bounded relative to unloaded (control-plane-latency),
//     a graceful drain completes within its budget under fire
//     (drain-timeout), and every acknowledged write survives the drain
//     and a server reboot (acked-write-loss).
//   - retry-storm: the lone admission slot is pinned by a slow bulk
//     write while a fleet hammers the server. The shared retry budget
//     must cap aggregate retry volume by token conservation
//     (retry-amplification), the budget must actually exhaust
//     (harness), goodput must return once the hog finishes
//     (goodput-recovers), and acked writes must survive
//     (acked-write-loss).

const (
	overloadName   = "overload"
	retryStormName = "retry-storm"

	// overloadServer is the lone server's symbolic address; loadHost,
	// probeHost, and hogHost are the client identities. Bulk load rides
	// the shaped loadHost/hogHost links; the probe's control-plane RPCs
	// use their own unshaped link so their latency measures the server's
	// admission queue, not the congested uplink.
	overloadServer = "srv.sim"
	loadHost       = "load.sim"
	probeHost      = "probe.sim"
	hogHost        = "hog.sim"
)

func tempRoot() (string, error) { return os.MkdirTemp("", "tss-chaos-") }

func cleanupRoot(dir string) { os.RemoveAll(dir) }

// overloadACL grants every client identity the scenarios use full
// rights on the export root.
func overloadACL() *acl.List {
	l := &acl.List{}
	for _, host := range []string{loadHost, probeHost, hogHost} {
		l.Set("hostname:"+host, acl.AllRights, 0)
	}
	return l
}

// overloadStack is the single-server harness both scenarios share.
type overloadStack struct {
	net  *netsim.Network
	srv  *chirp.Server
	root string
	cfg  chirp.ServerConfig

	mu    sync.Mutex
	acked map[string][]byte
	paths []string
}

func buildOverloadStack(cfg Config, serverCfg chirp.ServerConfig) (*overloadStack, func(), error) {
	s := &overloadStack{net: netsim.NewNetwork(), acked: make(map[string][]byte)}
	root, err := tempRoot()
	if err != nil {
		return nil, nil, err
	}
	s.root = root
	serverCfg.Name = overloadServer
	serverCfg.Owner = auth.Subject("hostname:" + loadHost)
	serverCfg.Verifiers = []auth.Verifier{&auth.HostnameVerifier{}}
	serverCfg.RootACL = overloadACL()
	s.cfg = serverCfg
	srv, err := chirp.NewServer(root, serverCfg)
	if err != nil {
		cleanupRoot(root)
		return nil, nil, err
	}
	l, err := s.net.Listen(overloadServer)
	if err != nil {
		cleanupRoot(root)
		return nil, nil, err
	}
	go srv.Serve(l)
	s.srv = srv
	return s, func() { srv.Abort(); cleanupRoot(root) }, nil
}

// dial opens one client connection from the given host identity.
func (s *overloadStack) dial(host string, timeout time.Duration) (*chirp.Client, error) {
	return chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return s.net.DialFrom(host, overloadServer, netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     timeout,
	})
}

func (s *overloadStack) recordAck(path string, content []byte) {
	s.mu.Lock()
	s.acked[path] = content
	s.paths = append(s.paths, path)
	s.mu.Unlock()
}

// verifyAcked reads every acknowledged write back through a fresh
// client and reports each loss to violate. When reboot is true the
// original instance has been shut down and a new server is booted over
// the same root first — the bytes must have outlived the process.
func (s *overloadStack) verifyAcked(reboot bool, violate func(step int64, invariant, detail string), step int64) error {
	if reboot {
		srv, err := chirp.NewServer(s.root, s.cfg)
		if err != nil {
			return fmt.Errorf("reboot: %w", err)
		}
		l, err := s.net.Listen(overloadServer)
		if err != nil {
			return fmt.Errorf("reboot listen: %w", err)
		}
		go srv.Serve(l)
		defer srv.Abort()
	}
	c, err := s.dial(probeHost, 5*time.Second)
	if err != nil {
		return fmt.Errorf("verify dial: %w", err)
	}
	defer c.Close()
	s.mu.Lock()
	paths := append([]string(nil), s.paths...)
	s.mu.Unlock()
	sort.Strings(paths)
	for _, path := range paths {
		want := s.acked[path]
		//lint:ignore copyapi the epilogue audits the raw read path, not the engine
		data, err := vfs.GetWholeFile(c, path)
		switch {
		case err != nil:
			violate(step, "acked-write-loss", fmt.Sprintf("%s unreadable after the run: %v", path, err))
		case !bytes.Equal(data, want):
			violate(step, "acked-write-loss", fmt.Sprintf("%s corrupt after the run: got %d bytes want %d", path, len(data), len(want)))
		}
	}
	return nil
}

// prober issues control-plane Stats on its own connection and collects
// per-success latencies into the slice selected by phase.
type prober struct {
	c    *chirp.Client
	mu   sync.Mutex
	lat  map[string][]time.Duration
	fail int64
}

func (p *prober) run(stop <-chan struct{}, phase *atomic.Value) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		name, _ := phase.Load().(string)
		if name == "" {
			continue
		}
		t0 := time.Now()
		if _, err := p.c.Stat("/"); err != nil {
			atomic.AddInt64(&p.fail, 1)
			continue
		}
		d := time.Since(t0)
		p.mu.Lock()
		p.lat[name] = append(p.lat[name], d)
		p.mu.Unlock()
	}
}

func (p *prober) p99(phase string) (time.Duration, int) {
	p.mu.Lock()
	lat := append([]time.Duration(nil), p.lat[phase]...)
	p.mu.Unlock()
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100], len(lat)
}

// runOverload executes the 4x-capacity closed-loop scenario.
func runOverload(cfg Config, tl Timeline) (*Result, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	const (
		maxInflight  = 4
		queueTimeout = 25 * time.Millisecond
		payload      = 24 << 10
		// bandwidth shapes the bulk uplink so one admitted write body
		// takes payload/bandwidth ≈ 16ms of real time on its slot.
		bandwidth       = int64(1500 << 10)
		baselineWorkers = 2
		overloadWorkers = 16 // 4x the admission capacity
		baselineFor     = 500 * time.Millisecond
		overloadFor     = 1000 * time.Millisecond
		drainBudget     = 5 * time.Second
	)
	s, cleanup, err := buildOverloadStack(cfg, chirp.ServerConfig{
		MaxInflight:  maxInflight,
		QueueTimeout: queueTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	s.net.SetLinkProfileOneWay(loadHost, overloadServer, netsim.LinkProfile{Bandwidth: bandwidth})

	res := &Result{Timeline: tl.Name, Seed: cfg.Seed, Steps: tl.Steps}
	violate := func(step int64, invariant, detail string) {
		res.Violations = append(res.Violations, Violation{
			Timeline: tl.Name, Seed: cfg.Seed, Step: step,
			Invariant: invariant, Detail: detail,
		})
	}

	setup, err := s.dial(probeHost, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := setup.Mkdir("/data", 0o755); err != nil {
		setup.Close()
		return nil, fmt.Errorf("overload prologue: %w", err)
	}
	setup.Close()

	// The budget is deliberately roomy: this scenario measures admission
	// under honest load, and the budget should not bind. retry-storm is
	// where the budget is the mechanism under test.
	budget := resilient.NewRetryBudget(50, 0.1)
	var goodput atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(id int) {
		defer wg.Done()
		c, err := s.dial(loadHost, 2*time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id+1)*7919))
		policy := resilient.Policy{
			Attempts: 8, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond,
			Jitter: 1, RetryBudget: budget,
		}
		for seq := 0; !stop.Load(); seq++ {
			path := fmt.Sprintf("/data/w%02d-%06d", id, seq)
			content := make([]byte, payload)
			rng.Read(content)
			err, _ := policy.Do(func() error {
				//lint:ignore copyapi the closed-loop workload issues bare single-shot writes on purpose
				return vfs.PutReader(c, path, 0o644, int64(len(content)), bytes.NewReader(content))
			}, nil, resilient.RetryableOrPushback)
			if err == nil {
				s.recordAck(path, content)
				goodput.Add(1)
				atomic.AddInt64(&res.Ops, 1)
			} else {
				atomic.AddInt64(&res.OpErrors, 1)
			}
		}
	}

	probeClient, err := s.dial(probeHost, 2*time.Second)
	if err != nil {
		return nil, err
	}
	pb := &prober{c: probeClient, lat: make(map[string][]time.Duration)}
	var phase atomic.Value
	phase.Store("")
	probeStop := make(chan struct{})
	go pb.run(probeStop, &phase)

	// Phase 1: unloaded baseline — the closed loop stays under capacity.
	for id := 0; id < baselineWorkers; id++ {
		wg.Add(1)
		go worker(id)
	}
	phase.Store("baseline")
	//lint:ignore sleepseam chaos pacing: phases are measured in wall time
	time.Sleep(baselineFor)
	baseOps := goodput.Swap(0)

	// Phase 2: overload — 4x capacity offered, excess shed with EAGAIN.
	for id := baselineWorkers; id < overloadWorkers; id++ {
		wg.Add(1)
		go worker(id)
	}
	phase.Store("overload")
	//lint:ignore sleepseam chaos pacing: phases are measured in wall time
	time.Sleep(overloadFor)
	overOps := goodput.Load()
	phase.Store("")
	close(probeStop)
	probeClient.Close()

	// Phase 3: graceful drain under fire. Workers stop issuing new ops,
	// but their in-flight bodies must run to completion inside the
	// budget while anything queued is failed fast with ESHUTDOWN.
	stop.Store(true)
	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	err = s.srv.Shutdown(ctx)
	cancel()
	if err != nil {
		violate(tl.Steps, "drain-timeout", fmt.Sprintf(
			"graceful drain did not complete in %v: %v (%d force-closed)",
			drainBudget, err, s.srv.Stats.DrainForced.Load()))
	}
	drainTook := time.Since(t0)
	wg.Wait()

	baseRate := float64(baseOps) / baselineFor.Seconds()
	overRate := float64(overOps) / overloadFor.Seconds()
	shed := s.srv.Stats.Shed.Load()
	res.AckedWrites = len(s.paths)
	p99Base, nBase := pb.p99("baseline")
	p99Over, nOver := pb.p99("overload")
	cfg.Logf("overload: baseline %.0f ops/s, overload %.0f ops/s, %d shed, control p99 %v→%v (%d/%d samples), drain %v",
		baseRate, overRate, shed, p99Base, p99Over, nBase, nOver, drainTook)

	if shed == 0 {
		violate(tl.Steps, "harness", "the server never shed a request — the scenario did not overload it")
	}
	if baseOps == 0 {
		violate(tl.Steps, "harness", "no baseline ops completed — cannot judge goodput")
	} else if overRate < 0.5*baseRate {
		violate(tl.Steps, "goodput-collapse", fmt.Sprintf(
			"goodput under 4x load fell to %.0f ops/s from a %.0f ops/s baseline (floor 50%%)", overRate, baseRate))
	}
	if nBase == 0 || nOver == 0 {
		violate(tl.Steps, "harness", fmt.Sprintf(
			"control-plane prober has too few samples (%d baseline, %d overload)", nBase, nOver))
	} else if p99Over > 5*p99Base+100*time.Millisecond {
		violate(tl.Steps, "control-plane-latency", fmt.Sprintf(
			"control-plane p99 under pressure %v exceeds 5x the unloaded %v (+100ms slack)", p99Over, p99Base))
	}
	if err := s.verifyAcked(true, violate, tl.Steps); err != nil {
		return nil, err
	}
	return res, nil
}

// runRetryStorm executes the budget-capped storm scenario.
func runRetryStorm(cfg Config, tl Timeline) (*Result, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	const (
		stormWorkers = 10
		budgetCap    = 12.0
		budgetEarn   = 0.1
		hogBytes     = 500 << 10
		hogBandwidth = int64(1 << 20) // ~500ms of slot hold
		recoveryFor  = 400 * time.Millisecond
		pace         = time.Millisecond
	)
	s, cleanup, err := buildOverloadStack(cfg, chirp.ServerConfig{
		MaxInflight:  1,
		QueueDepth:   1,
		QueueTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	s.net.SetLinkProfileOneWay(hogHost, overloadServer, netsim.LinkProfile{Bandwidth: hogBandwidth})

	res := &Result{Timeline: tl.Name, Seed: cfg.Seed, Steps: tl.Steps}
	violate := func(step int64, invariant, detail string) {
		res.Violations = append(res.Violations, Violation{
			Timeline: tl.Name, Seed: cfg.Seed, Step: step,
			Invariant: invariant, Detail: detail,
		})
	}

	setup, err := s.dial(probeHost, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if err := setup.Mkdir("/data", 0o755); err != nil {
		setup.Close()
		return nil, fmt.Errorf("retry-storm prologue: %w", err)
	}
	setup.Close()

	// One shared token bucket across the fleet makes the invariant an
	// exact conservation law: every performed retry withdrew a whole
	// token, and deposits only come from successes.
	budget := resilient.NewRetryBudget(budgetCap, budgetEarn)
	var retries, successes, recovered atomic.Int64
	var inRecovery, stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(id int) {
		defer wg.Done()
		c, err := s.dial(loadHost, 2*time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id+1)*104729))
		policy := resilient.Policy{
			Attempts: 6, Base: 2 * time.Millisecond, Max: 30 * time.Millisecond,
			Jitter: 1, RetryBudget: budget,
			OnRetry: func(int, error) { retries.Add(1) },
		}
		for seq := 0; !stop.Load(); seq++ {
			path := fmt.Sprintf("/data/w%02d-%06d", id, seq)
			content := make([]byte, 4<<10)
			rng.Read(content)
			err, _ := policy.Do(func() error {
				//lint:ignore copyapi the storm workload issues bare single-shot writes on purpose
				return vfs.PutReader(c, path, 0o644, int64(len(content)), bytes.NewReader(content))
			}, nil, resilient.RetryableOrPushback)
			if err == nil {
				s.recordAck(path, content)
				successes.Add(1)
				atomic.AddInt64(&res.Ops, 1)
				if inRecovery.Load() {
					recovered.Add(1)
				}
			} else {
				atomic.AddInt64(&res.OpErrors, 1)
			}
			// Closed-loop think time: a real client does not spin at MHz
			// on an error return, and the budget — not loop speed — is
			// what must bound retry volume.
			//lint:ignore sleepseam chaos pacing: per-iteration think time is part of the modeled workload
			time.Sleep(pace)
		}
	}

	// The hog pins the single admission slot with one slow bulk body,
	// starving everyone into EAGAIN for roughly hogBytes/hogBandwidth.
	hogDone := make(chan error, 1)
	go func() {
		c, err := s.dial(hogHost, 10*time.Second)
		if err != nil {
			hogDone <- err
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x4061))
		content := make([]byte, hogBytes)
		rng.Read(content)
		//lint:ignore copyapi the hog must be one long single-shot body pinning its admission slot
		err = vfs.PutReader(c, "/data/hog", 0o644, int64(len(content)), bytes.NewReader(content))
		if err == nil {
			s.recordAck("/data/hog", content)
		}
		hogDone <- err
	}()
	// Give the hog a head start so it owns the slot before the fleet
	// arrives.
	//lint:ignore sleepseam chaos pacing: the hog needs wall time to get admitted first
	time.Sleep(30 * time.Millisecond)

	for id := 0; id < stormWorkers; id++ {
		wg.Add(1)
		go worker(id)
	}
	if err := <-hogDone; err != nil {
		violate(tl.Steps, "harness", fmt.Sprintf("the hog write failed: %v", err))
	}
	inRecovery.Store(true)
	//lint:ignore sleepseam chaos pacing: the recovery window is measured in wall time
	time.Sleep(recoveryFor)
	stop.Store(true)
	wg.Wait()

	// Token conservation: retries ≤ initial capacity + earnings, with
	// one token of slack for a withdrawal racing the final snapshot.
	cap := budgetCap + budgetEarn*float64(successes.Load()) + 1
	res.AckedWrites = len(s.paths)
	cfg.Logf("retry-storm: %d retries (cap %.1f), %d successes, %d shed, budget refused %d, %d recovered",
		retries.Load(), cap, successes.Load(), s.srv.Stats.Shed.Load(), budget.Exhausted(), recovered.Load())
	if float64(retries.Load()) > cap {
		violate(tl.Steps, "retry-amplification", fmt.Sprintf(
			"%d retries exceed the budget-conservation cap %.1f — the storm sustained itself", retries.Load(), cap))
	}
	if budget.Exhausted() == 0 {
		violate(tl.Steps, "harness", "the retry budget never refused a withdrawal — the storm never pressed it")
	}
	if s.srv.Stats.Shed.Load() == 0 {
		violate(tl.Steps, "harness", "the server never shed a request — the slot was never contended")
	}
	if recovered.Load() < 20 {
		violate(tl.Steps, "goodput-recovers", fmt.Sprintf(
			"only %d ops succeeded in the %v after the hog finished", recovered.Load(), recoveryFor))
	}
	if err := s.verifyAcked(false, violate, tl.Steps); err != nil {
		return nil, err
	}
	return res, nil
}
