// Package chaos is the deterministic chaos engine of ROADMAP item 5:
// it assembles a full tactical-storage stack from the existing pieces
// — chirp servers on a simulated network, pooled chirp clients wrapped
// in fault injectors, a quorum mirror with verify-on-read above them —
// then executes a declarative fault timeline against it while checking
// whole-stack invariants. Everything that varies is derived from one
// seed, so a reported violation replays from (timeline, seed, step)
// alone.
//
// The model has two fault planes, matching the paper's separation of
// resources from abstractions:
//
//   - the network plane: partitions, asymmetric slowness, and
//     crash/restart of server instances, applied imperatively as the
//     engine's step clock reaches each event;
//   - the storage plane: flaky, corrupt, and torn-write windows armed
//     up front on per-(client,replica) faultfs wrappers and activated
//     by the same step clock (faultfs.SetClock).
package chaos

import "time"

// Kind names one fault action in a timeline.
type Kind string

const (
	// Partition severs the link between a client and a replica (both
	// directions, live connections reset, dials refused) from Step
	// until Until.
	Partition Kind = "partition"
	// Slow sets an asymmetric replica→client latency profile on the
	// link from Step until Until.
	Slow Kind = "slow"
	// Flap makes a replica's storage fail each operation with
	// probability Prob during the window — the brown-out that drives
	// breakers open and half-open probes back in.
	Flap Kind = "flap"
	// Corrupt arms read-path bit flips on a replica during the window.
	// Each replica's corruption stream is derived from the engine seed
	// and the replica index, so "correlated" corruption (same window,
	// several replicas) still yields distinct wrong bytes per replica —
	// as independent hardware faults would.
	Corrupt Kind = "corrupt"
	// Torn silently drops the tail of writes on a replica during the
	// window: the lying server whose acknowledgements cannot be
	// trusted.
	Torn Kind = "torn"
	// Crash aborts a replica's server instance at Step — connections
	// die abruptly, no drain — and reboots a fresh instance over the
	// same root at Until (or during the epilogue if Until is 0).
	Crash Kind = "crash"
)

// Event schedules one fault. Step is when it begins; Until, for
// windowed kinds, is when it ends (half-open interval, 0 = never ends
// on its own — the epilogue still heals everything). Client and
// Replica select targets; -1 means every client / every replica.
type Event struct {
	Kind    Kind
	Step    int64
	Until   int64
	Client  int
	Replica int
	// Prob is the per-operation failure probability (Flap) or per-byte
	// corruption probability (Corrupt).
	Prob float64
	// Latency is the injected one-way delay (Slow).
	Latency time.Duration
	// Bytes is the torn-write tail size (Torn).
	Bytes int64
}

// Timeline is a named fault schedule executed over a fixed number of
// virtual steps. The engine advances the step clock, fires the events
// whose moment has come, and runs one workload round per step.
type Timeline struct {
	Name   string
	Steps  int64
	Events []Event
}

// Timelines returns the canned timelines the chaos benchmark runs.
// Together they cover partitions (rolling and split-brain), replica
// flapping, asymmetric slowness, independent and correlated
// corruption, torn writes, and crash/restart — each shaped so that the
// stack's published guarantees hold: writes need a quorum, and
// corruption windows always leave verify-on-read a clean reachable
// sibling (a reader isolated with a single lying replica is explicitly
// outside the contract; integrity.go delivers unverified when
// redundancy is already gone).
func Timelines() []Timeline {
	return []Timeline{
		{
			// Each replica takes a turn being unreachable from every
			// client; writes keep flowing through the remaining majority.
			Name:  "partition-rolling",
			Steps: 30,
			Events: []Event{
				{Kind: Partition, Step: 2, Until: 9, Client: -1, Replica: 0},
				{Kind: Partition, Step: 11, Until: 18, Client: -1, Replica: 1},
				{Kind: Partition, Step: 20, Until: 27, Client: -1, Replica: 2},
			},
		},
		{
			// Disjoint split: client 0 keeps the majority {r0,r1}, client
			// 1 is left with only r2. The minority side must not win any
			// exclusive create.
			Name:  "partition-split",
			Steps: 24,
			Events: []Event{
				{Kind: Partition, Step: 4, Until: 18, Client: 0, Replica: 2},
				{Kind: Partition, Step: 4, Until: 18, Client: 1, Replica: 0},
				{Kind: Partition, Step: 4, Until: 18, Client: 1, Replica: 1},
			},
		},
		{
			// One replica flaps hard while another goes through a shorter
			// brown-out: breakers trip, probes re-admit, repeatedly.
			Name:  "flap",
			Steps: 28,
			Events: []Event{
				{Kind: Flap, Step: 3, Until: 10, Client: -1, Replica: 0, Prob: 0.9},
				{Kind: Flap, Step: 14, Until: 20, Client: -1, Replica: 0, Prob: 0.9},
				{Kind: Flap, Step: 8, Until: 12, Client: -1, Replica: 1, Prob: 0.5},
			},
		},
		{
			// Asymmetric slowness: replica 0's return path turns WAN-slow;
			// hedged reads and health ordering route around it.
			Name:  "slow-asym",
			Steps: 20,
			Events: []Event{
				{Kind: Slow, Step: 3, Until: 15, Client: -1, Replica: 0, Latency: 25 * time.Millisecond},
			},
		},
		{
			// A single replica serves corrupt bytes for a while;
			// verify-on-read must never deliver them.
			Name:  "corrupt-one",
			Steps: 24,
			Events: []Event{
				{Kind: Corrupt, Step: 5, Until: 18, Client: -1, Replica: 1, Prob: 0.02},
			},
		},
		{
			// Correlated corruption: two of three replicas lie in the same
			// window (distinct wrong bytes each). Any read that cannot be
			// arbitrated fail-stops rather than guess.
			Name:  "corrupt-correlated",
			Steps: 24,
			Events: []Event{
				{Kind: Corrupt, Step: 6, Until: 16, Client: -1, Replica: 0, Prob: 0.02},
				{Kind: Corrupt, Step: 6, Until: 16, Client: -1, Replica: 2, Prob: 0.02},
			},
		},
		{
			// A lying server tears write tails; acked data must still be
			// whole after scrub, thanks to the quorum siblings.
			Name:  "torn-writes",
			Steps: 22,
			Events: []Event{
				{Kind: Torn, Step: 4, Until: 16, Client: -1, Replica: 2, Bytes: 64},
			},
		},
		{
			// One replica's server crashes mid-run and reboots later; its
			// clients reconnect through breaker probes.
			Name:  "crash-restart",
			Steps: 26,
			Events: []Event{
				{Kind: Crash, Step: 5, Until: 16, Replica: 1},
			},
		},
		{
			// Rolling crashes: every instance dies once, staggered, each
			// rebooting before the next goes down.
			Name:  "crash-rolling",
			Steps: 30,
			Events: []Event{
				{Kind: Crash, Step: 3, Until: 9, Replica: 0},
				{Kind: Crash, Step: 12, Until: 18, Replica: 1},
				{Kind: Crash, Step: 21, Until: 27, Replica: 2},
			},
		},
		{
			// A caching client holds read leases, is partitioned from
			// every replica, the file changes under it from the other
			// client at the window's midpoint, then the network heals.
			// Run dispatches this name to the lease-scenario runner
			// (lease.go), which checks the lease consistency bound
			// against the wall clock: no successful read returns the
			// old bytes later than one lease TTL past the conflicting
			// write, and reads converge on the new bytes after heal.
			Name:  staleLeaseName,
			Steps: 24,
			Events: []Event{
				{Kind: Partition, Step: 6, Until: 18, Client: 0, Replica: -1},
			},
		},
		{
			// A 4x-capacity closed loop against a single admission-
			// controlled server. Run dispatches this name to the
			// overload runner (overload.go), whose phases are wall-clock
			// windows rather than step events: unloaded baseline, 4x
			// overload, then a graceful drain under fire. Checked:
			// goodput does not collapse, control-plane p99 stays
			// bounded, the drain completes, and no acked write is lost
			// across a server reboot.
			Name:  overloadName,
			Steps: 20,
		},
		{
			// A slow bulk write pins the only admission slot while a
			// fleet of budgeted clients hammers the server. Run
			// dispatches to the retry-storm runner (overload.go), which
			// checks token conservation: aggregate retries never exceed
			// the shared budget's capacity plus earnings, the budget
			// actually exhausts, and goodput returns once the hog
			// finishes.
			Name:  retryStormName,
			Steps: 20,
		},
		{
			// Everything at once, staggered to respect the fault budget
			// the stack's guarantees assume: at most one lying-or-absent
			// replica per write. The torn window shares its phase only
			// with read-path corruption (which never endangers stored
			// bytes); loud faults on *other* replicas — flap, crash —
			// come before or after, never while a torn replica can end
			// up one of only two acked copies. (A torn ack concurrent
			// with a second replica's outage leaves a single good copy
			// and a 1-vs-1 scrub tie that is rightly refused — that is a
			// durability budget violation, not a checker target.)
			Name:  "kitchen-sink",
			Steps: 36,
			Events: []Event{
				{Kind: Partition, Step: 2, Until: 8, Client: 0, Replica: 0},
				{Kind: Torn, Step: 10, Until: 16, Client: -1, Replica: 0, Bytes: 32},
				{Kind: Corrupt, Step: 10, Until: 16, Client: -1, Replica: 2, Prob: 0.02},
				{Kind: Flap, Step: 18, Until: 23, Client: -1, Replica: 1, Prob: 0.7},
				{Kind: Slow, Step: 18, Until: 25, Client: -1, Replica: 2, Latency: 10 * time.Millisecond},
				{Kind: Crash, Step: 27, Until: 32, Replica: 1},
			},
		},
	}
}

// FindTimeline returns the canned timeline with the given name.
func FindTimeline(name string) (Timeline, bool) {
	for _, t := range Timelines() {
		if t.Name == name {
			return t, true
		}
	}
	return Timeline{}, false
}
