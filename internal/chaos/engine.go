package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/abstraction"
	"tss/internal/faultfs"
	"tss/internal/netsim"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// Config parameterizes one chaos run. The zero value of every field
// picks the default noted on it; Seed alone determines all randomness.
type Config struct {
	// Seed drives every random choice: workload content, flaky-window
	// draws, per-replica corruption streams, breaker jitter.
	Seed int64
	// Replicas is the number of chirp server instances (default 3).
	Replicas int
	// Clients is the number of independent client stacks (default 2).
	Clients int
	// NoQuorum switches the mirror back to its historical "everywhere
	// reachable, at least one" write semantics. Under a disjoint
	// partition that lets both sides of a split win an exclusive
	// create — the engine exists to demonstrate exactly that, so the
	// deliberate-violation tests use this switch.
	NoQuorum bool
	// NoVerify disables verify-on-read.
	NoVerify bool
	// StepPause is how long the engine lets wall time run inside each
	// virtual step, so shaped links, breaker re-probe timers, and
	// background probes make progress (default 2ms; the stale-lease
	// scenario defaults to 5ms so its partition window outlives the
	// lease TTL).
	StepPause time.Duration
	// LeaseTTL is the read-lease TTL the servers grant; the stale-lease
	// scenario's staleness bound (default 25ms there, the chirp default
	// elsewhere).
	LeaseTTL time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Violation is one invariant breach, carrying everything needed to
// replay it: re-running the named timeline with the same seed
// reproduces the breach at the same step.
type Violation struct {
	Timeline  string `json:"timeline"`
	Seed      int64  `json:"seed"`
	Step      int64  `json:"step"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s seed=%d step=%d] %s: %s",
		v.Timeline, v.Seed, v.Step, v.Invariant, v.Detail)
}

// Result summarizes one timeline execution.
type Result struct {
	Timeline    string      `json:"timeline"`
	Seed        int64       `json:"seed"`
	Steps       int64       `json:"steps"`
	Ops         int64       `json:"ops"`       // workload operations that succeeded
	OpErrors    int64       `json:"op_errors"` // operations a fault refused (expected under chaos)
	AckedWrites int         `json:"acked_writes"`
	ExclRaces   int         `json:"excl_races"`
	ExclWins    int         `json:"excl_wins"`
	Flips       int64       `json:"flips"` // corruption bits actually flipped
	Trips       int64       `json:"trips"`
	Readmits    int64       `json:"readmits"`
	ScrubRepair int         `json:"scrub_repaired"`
	Violations  []Violation `json:"violations"`
}

// engine is the per-run state behind Run.
type engine struct {
	cfg   Config
	tl    Timeline
	s     *stack
	sleep func(time.Duration)

	mu       sync.Mutex
	expected map[string][]byte // acked write-once payloads
	paths    []string          // keys of expected, in ack order
	res      *Result
}

// action is one imperative step of the compiled timeline: an event
// beginning, or (end=true) an event's window closing.
type action struct {
	ev  Event
	end bool
}

// Run executes one timeline against a freshly assembled stack and
// reports what the invariant checkers saw. A nil error with zero
// Violations is the pass criterion; an error means the harness itself
// could not run (setup failure), not that an invariant broke.
func Run(cfg Config, tl Timeline) (*Result, error) {
	switch tl.Name {
	case staleLeaseName:
		// The lease scenario has its own workload and wall-clock
		// invariants (lease.go); the stack underneath is the same.
		return runStaleLease(cfg, tl)
	case overloadName, retryStormName:
		// The overload scenarios run a dedicated single-server stack
		// with admission control and budgeted clients (overload.go).
		if tl.Name == overloadName {
			return runOverload(cfg, tl)
		}
		return runRetryStorm(cfg, tl)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.StepPause <= 0 {
		cfg.StepPause = 2 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s, err := buildStack(cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()

	e := &engine{
		cfg:      cfg,
		tl:       tl,
		s:        s,
		sleep:    time.Sleep,
		expected: make(map[string][]byte),
		res:      &Result{Timeline: tl.Name, Seed: cfg.Seed, Steps: tl.Steps},
	}
	if err := e.prologue(); err != nil {
		return nil, err
	}
	at := e.compile()
	for step := int64(0); step < tl.Steps; step++ {
		s.clock.Store(step)
		for _, a := range at[step] {
			e.apply(a)
		}
		e.workloadRound(step)
		if step%3 == 0 {
			e.exclRace(step)
		}
		// Wall time must actually pass inside a virtual step: shaped
		// links deliver, breaker re-probe timers expire, background
		// probes land. The virtual clock only gates *which* faults are
		// active, not how fast the real stack underneath runs.
		//lint:ignore sleepseam chaos pacing: real time advances inside a held virtual step
		time.Sleep(cfg.StepPause)
	}
	e.epilogue()
	e.collectStats()
	return e.res, nil
}

// compile expands the timeline into per-step imperative actions.
// Windowed storage-plane faults (flap/corrupt/torn) are instead armed
// up front on the faultfs wrappers — the step clock activates them.
func (e *engine) compile() map[int64][]action {
	at := make(map[int64][]action)
	for _, ev := range e.tl.Events {
		switch ev.Kind {
		case Partition, Slow, Crash:
			at[ev.Step] = append(at[ev.Step], action{ev: ev})
			if ev.Until > 0 {
				at[ev.Until] = append(at[ev.Until], action{ev: ev, end: true})
			}
		case Flap:
			e.s.forEachTarget(ev, func(k, i int) {
				seed := e.cfg.Seed ^ int64(k+1)<<16 ^ int64(i+1)<<8 ^ ev.Step
				e.s.clients[k].faults[i].FlakyDuring(windowOf(ev), ev.Prob, seed)
			})
		case Corrupt:
			e.s.forEachTarget(ev, func(k, i int) {
				// The corruption stream is derived per *replica*, not per
				// window: correlated windows on two replicas produce
				// distinct wrong bytes on each, as independent hardware
				// faults would. Both clients see a given replica's lie
				// identically, like a real bad sector.
				e.s.clients[k].faults[i].CorruptDuring(windowOf(ev), ev.Prob, e.cfg.Seed^int64(i+1)*0x9e37)
			})
		case Torn:
			e.s.forEachTarget(ev, func(k, i int) {
				e.s.clients[k].faults[i].TornDuring(windowOf(ev), ev.Bytes)
			})
		}
	}
	return at
}

func windowOf(ev Event) faultfs.Window { return faultfs.Window{From: ev.Step, To: ev.Until} }

// apply fires one imperative action on the network/server plane.
func (e *engine) apply(a action) {
	ev := a.ev
	switch ev.Kind {
	case Partition:
		e.s.forEachTarget(ev, func(k, i int) {
			if a.end {
				e.s.net.Heal(clientHost(k), replicaName(i))
			} else {
				e.s.net.Partition(clientHost(k), replicaName(i))
			}
		})
		e.logf("step %d: %s partition client=%d replica=%d", ev.Step, beganOrEnded(a.end), ev.Client, ev.Replica)
	case Slow:
		e.s.forEachTarget(ev, func(k, i int) {
			prof := netsim.Loopback
			if !a.end {
				prof = netsim.LinkProfile{Latency: ev.Latency}
			}
			e.s.net.SetLinkProfileOneWay(replicaName(i), clientHost(k), prof)
		})
	case Crash:
		for i, slot := range e.s.servers {
			if ev.Replica >= 0 && ev.Replica != i {
				continue
			}
			if a.end {
				if err := e.s.bootServer(slot); err != nil {
					e.violate(e.s.clock.Load(), "harness", fmt.Sprintf("restart of %s failed: %v", slot.name, err))
				}
			} else {
				e.s.crashServer(slot)
			}
		}
		e.logf("step %d: %s crash replica=%d", ev.Step, beganOrEnded(a.end), ev.Replica)
	}
}

func beganOrEnded(end bool) string {
	if end {
		return "ended"
	}
	return "began"
}

func (e *engine) logf(format string, args ...any) { e.cfg.Logf(format, args...) }

// violate records one invariant breach.
func (e *engine) violate(step int64, invariant, detail string) {
	e.mu.Lock()
	e.res.Violations = append(e.res.Violations, Violation{
		Timeline: e.tl.Name, Seed: e.cfg.Seed, Step: step,
		Invariant: invariant, Detail: detail,
	})
	e.mu.Unlock()
}

// prologue creates the directory skeleton and a few seed files while
// everything is healthy (canned timelines schedule no event before
// step 1).
func (e *engine) prologue() error {
	fs0 := e.s.clients[0].fs
	for _, dir := range []string{"/locks", "/data"} {
		if err := fs0.Mkdir(dir, 0o755); err != nil {
			return fmt.Errorf("prologue mkdir %s: %w", dir, err)
		}
	}
	for k := range e.s.clients {
		if err := fs0.Mkdir(fmt.Sprintf("/data/c%d", k), 0o755); err != nil {
			return fmt.Errorf("prologue mkdir client dir: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	for j := 0; j < 3; j++ {
		path := fmt.Sprintf("/data/seed%d", j)
		content := make([]byte, 512+rng.Intn(1024))
		rng.Read(content)
		//lint:ignore copyapi the chaos engine exercises the raw single-shot path on purpose
		if err := vfs.PutReader(fs0, path, 0o644, int64(len(content)), bytes.NewReader(content)); err != nil {
			return fmt.Errorf("prologue seed write: %w", err)
		}
		e.recordAck(path, content)
	}
	return nil
}

func (e *engine) recordAck(path string, content []byte) {
	e.mu.Lock()
	e.expected[path] = content
	e.paths = append(e.paths, path)
	e.res.AckedWrites++
	e.mu.Unlock()
}

// workloadRound runs one round of client activity: every client, in
// its own goroutine, writes one fresh file and verifies one previously
// acknowledged file. Failures are expected under chaos and only
// counted; *wrong data delivered as success* is a violation.
func (e *engine) workloadRound(step int64) {
	var wg sync.WaitGroup
	for k, cs := range e.s.clients {
		wg.Add(1)
		go func(k int, cs *clientStack) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(k+1)*7919 ^ step<<20))

			// One write-once file per client per step. Acked means the
			// quorum mirror reported success — from then on the bytes are
			// the stack's responsibility.
			path := fmt.Sprintf("/data/c%d/s%d", k, step)
			content := make([]byte, 200+rng.Intn(1800))
			rng.Read(content)
			//lint:ignore copyapi chaos workload writes must be bare single-shot ops, uncushioned by engine retries
			if err := vfs.PutReader(cs.fs, path, 0o644, int64(len(content)), bytes.NewReader(content)); err == nil {
				e.recordAck(path, content)
				atomic.AddInt64(&e.res.Ops, 1)
			} else {
				atomic.AddInt64(&e.res.OpErrors, 1)
			}

			// One verified read of a random acknowledged file. A failed
			// read is legitimate (partition, fail-stop on unarbitrable
			// corruption); ENOENT is legitimate (stale replica not yet
			// scrubbed). Delivering bytes that differ from what was acked
			// is never legitimate while verify-on-read is active.
			e.mu.Lock()
			var rpath string
			var want []byte
			if len(e.paths) > 0 {
				rpath = e.paths[rng.Intn(len(e.paths))]
				want = e.expected[rpath]
			}
			e.mu.Unlock()
			if rpath == "" {
				return
			}
			//lint:ignore copyapi the verified-read invariant checks the stack's own read path, not the engine
			data, err := vfs.GetWholeFile(cs.fs, rpath)
			switch {
			case err != nil:
				atomic.AddInt64(&e.res.OpErrors, 1)
			case !bytes.Equal(data, want) && !e.cfg.NoVerify:
				e.violate(step, "verified-read",
					fmt.Sprintf("client %d read %s: got %d bytes, want %d, content differs", k, rpath, len(data), len(want)))
			default:
				atomic.AddInt64(&e.res.Ops, 1)
			}
		}(k, cs)
	}
	wg.Wait()
}

// exclRace races every client on one O_CREAT|O_EXCL create of the same
// fresh path. Mutual exclusion must hold no matter which replicas each
// client can currently reach: at most one winner.
func (e *engine) exclRace(step int64) {
	path := fmt.Sprintf("/locks/s%d", step)
	var wins atomic.Int32
	var winners sync.Map
	var wg sync.WaitGroup
	for k, cs := range e.s.clients {
		wg.Add(1)
		go func(k int, cs *clientStack) {
			defer wg.Done()
			f, err := cs.fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
			if err == nil {
				wins.Add(1)
				winners.Store(k, true)
				f.Close()
			}
		}(k, cs)
	}
	wg.Wait()
	e.res.ExclRaces++
	if n := wins.Load(); n > 1 {
		var who []string
		winners.Range(func(k, _ any) bool {
			who = append(who, fmt.Sprintf("client %d", k))
			return true
		})
		sort.Strings(who)
		e.violate(step, "exclusive-create",
			fmt.Sprintf("%d clients won O_EXCL create of %s (%v)", n, path, who))
	} else if n == 1 {
		e.res.ExclWins++
	}
}

// epilogue heals every fault, lets the breakers converge, scrubs, and
// checks the durable invariants: breaker state consistent with link
// health, and no acknowledged write lost.
func (e *engine) epilogue() {
	// Move the clock past every window and drop any open-ended ones;
	// heal the network and reboot anything still crashed.
	e.s.clock.Store(e.tl.Steps + 1_000_000)
	for _, cs := range e.s.clients {
		for _, ff := range cs.faults {
			ff.ClearSchedule()
		}
	}
	e.s.net.HealAll()
	e.s.net.ClearLinkProfiles()
	for _, slot := range e.s.servers {
		if slot.down {
			if err := e.s.bootServer(slot); err != nil {
				e.violate(e.tl.Steps, "harness", fmt.Sprintf("epilogue restart of %s failed: %v", slot.name, err))
				return
			}
		}
	}

	// Invariant: with every link healthy, every breaker eventually
	// closes. Traffic is pumped so Record/TryProbe have something to
	// chew on; the re-probe schedule needs real time, hence the seam.
	converged := false
	for attempt := 0; attempt < 600; attempt++ {
		if e.allBreakersClosed() {
			converged = true
			break
		}
		for _, cs := range e.s.clients {
			cs.fs.Stat("/")
		}
		e.sleep(5 * time.Millisecond)
	}
	if !converged {
		e.violate(e.tl.Steps, "breaker-convergence", e.breakerStates())
	}

	// Scrub with repair restores full redundancy: stale replicas catch
	// up, torn and divergent copies are rewritten from the majority.
	rep, err := e.s.clients[0].fs.Scrub(context.Background(), abstraction.ScrubOptions{Repair: true, Parallel: 2})
	if err != nil {
		e.violate(e.tl.Steps, "scrub-error", err.Error())
		return
	}
	e.res.ScrubRepair = rep.Repaired

	// Invariant: every acknowledged write reads back intact through
	// every client. ENOENT is no longer excusable — the stack had heal,
	// settle, and scrub to recover.
	e.mu.Lock()
	paths := append([]string(nil), e.paths...)
	e.mu.Unlock()
	sort.Strings(paths)
	for _, path := range paths {
		want := e.expected[path]
		for k, cs := range e.s.clients {
			//lint:ignore copyapi the epilogue audits the stack's own read path, not the engine
			data, err := vfs.GetWholeFile(cs.fs, path)
			if err != nil {
				e.violate(e.tl.Steps, "acked-write-loss",
					fmt.Sprintf("client %d: %s unreadable after heal+scrub: %v", k, path, err))
				continue
			}
			if !bytes.Equal(data, want) {
				e.violate(e.tl.Steps, "acked-write-loss",
					fmt.Sprintf("client %d: %s corrupt after heal+scrub: got %d bytes want %d", k, path, len(data), len(want)))
			}
		}
	}
}

func (e *engine) allBreakersClosed() bool {
	for _, cs := range e.s.clients {
		for _, h := range cs.fs.Health() {
			if h.State != resilient.Closed {
				return false
			}
		}
	}
	return true
}

func (e *engine) breakerStates() string {
	var b bytes.Buffer
	for k, cs := range e.s.clients {
		for i, h := range cs.fs.Health() {
			if h.State != resilient.Closed {
				fmt.Fprintf(&b, "client %d replica %d: %s; ", k, i, h.State)
			}
		}
	}
	return "breakers still open after heal and settle: " + b.String()
}

// collectStats folds the stack's own counters into the result.
func (e *engine) collectStats() {
	for _, cs := range e.s.clients {
		e.res.Trips += cs.fs.Stats.Trips.Load()
		e.res.Readmits += cs.fs.Stats.Readmits.Load()
		for _, ff := range cs.faults {
			e.res.Flips += ff.Flips()
		}
	}
}

// seededRand adapts a seeded PRNG to the breaker's Rand contract
// (concurrent use).
func seededRand(seed int64) func() float64 {
	r := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}
