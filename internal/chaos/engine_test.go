package chaos

import (
	"reflect"
	"testing"
)

// runClean executes one canned timeline and requires zero violations.
func runClean(t *testing.T, name string, seed int64) *Result {
	t.Helper()
	tl, ok := FindTimeline(name)
	if !ok {
		t.Fatalf("no timeline %q", name)
	}
	res, err := Run(Config{Seed: seed, Logf: t.Logf}, tl)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.AckedWrites == 0 {
		t.Error("no writes were ever acknowledged")
	}
	return res
}

func TestTimelinePartitionRolling(t *testing.T) {
	res := runClean(t, "partition-rolling", 1)
	if res.Trips == 0 {
		t.Error("rolling partitions tripped no breaker")
	}
	if res.Readmits == 0 {
		t.Error("healed partitions re-admitted no replica")
	}
}

func TestTimelinePartitionSplit(t *testing.T) {
	res := runClean(t, "partition-split", 2)
	if res.ExclRaces == 0 {
		t.Error("no exclusive-create races ran")
	}
}

func TestTimelineFlap(t *testing.T) {
	res := runClean(t, "flap", 3)
	if res.Trips == 0 {
		t.Error("flapping replica tripped no breaker")
	}
}

func TestTimelineCorruptOne(t *testing.T) {
	res := runClean(t, "corrupt-one", 4)
	if res.Flips == 0 {
		t.Error("corruption window flipped no bits — the fault never bit")
	}
}

func TestTimelineCorruptCorrelated(t *testing.T) {
	res := runClean(t, "corrupt-correlated", 5)
	if res.Flips == 0 {
		t.Error("correlated corruption flipped no bits")
	}
}

func TestTimelineTornWrites(t *testing.T) {
	res := runClean(t, "torn-writes", 6)
	if res.ScrubRepair == 0 {
		t.Error("torn writes left nothing for scrub to repair")
	}
}

func TestTimelineCrashRestart(t *testing.T) {
	runClean(t, "crash-restart", 7)
}

func TestTimelineKitchenSink(t *testing.T) {
	runClean(t, "kitchen-sink", 8)
}

// TestTimelineStaleLease runs the lease consistency scenario: a
// partitioned cache holder must never serve the old bytes past one
// lease TTL after the conflicting write, and must converge on the new
// bytes after heal.
func TestTimelineStaleLease(t *testing.T) {
	res := runClean(t, "stale-lease", 9)
	if res.Ops == 0 {
		t.Error("no cached read ever succeeded")
	}
	if res.OpErrors == 0 {
		t.Error("no read was ever refused — the partition never bit or the horizon never lapsed")
	}
	if res.AckedWrites < 2 {
		t.Error("the conflicting write was never acknowledged")
	}
}

// TestSplitBrainViolationReplays is the deliberate-violation test: with
// quorum writes disabled (the mirror's historical semantics), a
// disjoint partition lets both clients win the same exclusive create —
// and the engine must (a) catch it, (b) report the seed and step that
// reproduce it, and (c) reproduce it identically on a second run with
// the same seed. This is the replay workflow DESIGN.md §12 documents.
func TestSplitBrainViolationReplays(t *testing.T) {
	tl, _ := FindTimeline("partition-split")
	// Violations at steps inside the partition window are structural:
	// the partition alone decides who each client can reach, so they
	// replay exactly. At the heal boundary the split brain lingers for
	// however long breaker re-admission takes, which is wall-clock
	// timing — those edge violations are real but not part of the
	// deterministic replay set.
	run := func() []Violation {
		res, err := Run(Config{Seed: 99, NoQuorum: true}, tl)
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		var excl []Violation
		for _, v := range res.Violations {
			if v.Invariant == "exclusive-create" && v.Step < 18 {
				excl = append(excl, v)
			}
		}
		return excl
	}
	first := run()
	if len(first) < 4 {
		t.Fatalf("no-quorum split brain produced %d in-window exclusive-create violations, want one per race (4)", len(first))
	}
	for _, v := range first {
		if v.Seed != 99 || v.Timeline != "partition-split" {
			t.Errorf("violation lacks replay coordinates: %+v", v)
		}
		if v.Step < 4 {
			t.Errorf("violation before the partition began: %+v", v)
		}
	}
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("replay diverged:\n first: %v\nsecond: %v", first, second)
	}
}

// TestQuorumClosesSplitBrain is the counterpart: the same timeline and
// seed with quorum writes (the default) must race cleanly.
func TestQuorumClosesSplitBrain(t *testing.T) {
	tl, _ := FindTimeline("partition-split")
	res, err := Run(Config{Seed: 99}, tl)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation with quorum enabled: %s", v)
	}
}

// TestTimelineOverload runs the 4x-capacity admission scenario: the
// server must shed, goodput must hold, control-plane latency must stay
// bounded, and the graceful drain must complete under fire.
func TestTimelineOverload(t *testing.T) {
	res := runClean(t, "overload", 10)
	if res.OpErrors == 0 {
		t.Error("no op was ever refused — the fleet never overloaded the server")
	}
}

// TestTimelineRetryStorm runs the budget-capped storm scenario: the
// shared retry budget must exhaust, cap aggregate retry volume by
// token conservation, and let goodput return after the hog finishes.
func TestTimelineRetryStorm(t *testing.T) {
	res := runClean(t, "retry-storm", 11)
	if res.OpErrors == 0 {
		t.Error("no op was ever refused — the slot was never contended")
	}
}
