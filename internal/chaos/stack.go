package chaos

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"tss/internal/abstraction"
	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/faultfs"
	"tss/internal/netsim"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// replicaName is replica i's symbolic address on the simulated network.
func replicaName(i int) string { return fmt.Sprintf("r%d.sim", i) }

// clientHost is client k's symbolic host identity; partitions key on
// the (client host, replica name) pair, so each client has its own
// links to sever.
func clientHost(k int) string { return fmt.Sprintf("c%d.sim", k) }

// serverSlot is one replica's server instance plus what is needed to
// crash and reboot it: the same root directory outlives the process.
type serverSlot struct {
	name string
	root string
	cfg  chirp.ServerConfig
	srv  *chirp.Server
	down bool
}

// clientStack is one client's complete view of the system: a chirp
// pool per replica, a faultfs wrapper per pool (that client's storage
// fault plane), and the quorum mirror on top.
type clientStack struct {
	host   string
	pools  []*chirp.Pool
	faults []*faultfs.FS
	fs     *abstraction.MirrorFS
}

// stack is the full system under test.
type stack struct {
	net     *netsim.Network
	servers []*serverSlot
	clients []*clientStack
	clock   atomic.Int64
	dirs    []string
}

// bootServer starts (or reboots) slot's server on the simulated
// network. The previous instance, if any, must already be aborted.
func (s *stack) bootServer(slot *serverSlot) error {
	srv, err := chirp.NewServer(slot.root, slot.cfg)
	if err != nil {
		return err
	}
	l, err := s.net.Listen(slot.name)
	if err != nil {
		return err
	}
	go srv.Serve(l)
	slot.srv = srv
	slot.down = false
	return nil
}

// crashServer aborts slot's instance; open connections die abruptly.
func (s *stack) crashServer(slot *serverSlot) {
	if slot.down {
		return
	}
	slot.srv.Abort()
	slot.down = true
}

// buildStack assembles servers, client stacks, and fault planes for
// one run. All randomness below this point derives from cfg.Seed.
func buildStack(cfg Config) (*stack, error) {
	s := &stack{net: netsim.NewNetwork()}

	rootACL := &acl.List{}
	for k := 0; k < cfg.Clients; k++ {
		rootACL.Set("hostname:"+clientHost(k), acl.AllRights, 0)
	}
	for i := 0; i < cfg.Replicas; i++ {
		dir, err := os.MkdirTemp("", "tss-chaos-")
		if err != nil {
			s.close()
			return nil, err
		}
		s.dirs = append(s.dirs, dir)
		slot := &serverSlot{
			name: replicaName(i),
			root: dir,
			cfg: chirp.ServerConfig{
				Name:      replicaName(i),
				Owner:     auth.Subject("hostname:" + clientHost(0)),
				Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
				RootACL:   rootACL,
				LeaseTTL:  cfg.LeaseTTL,
			},
		}
		if err := s.bootServer(slot); err != nil {
			s.close()
			return nil, err
		}
		s.servers = append(s.servers, slot)
	}

	quorum := cfg.Replicas/2 + 1
	if cfg.NoQuorum {
		quorum = 0
	}
	for k := 0; k < cfg.Clients; k++ {
		cs := &clientStack{host: clientHost(k)}
		replicas := make([]vfs.FileSystem, cfg.Replicas)
		for i := 0; i < cfg.Replicas; i++ {
			host, name := cs.host, replicaName(i)
			pool, err := chirp.NewPool(chirp.ClientConfig{
				Dial: func() (net.Conn, error) {
					return s.net.DialFrom(host, name, netsim.Loopback)
				},
				Credentials: []auth.Credential{auth.HostnameCredential{}},
				Timeout:     2 * time.Second,
				PoolSize:    2,
			})
			if err != nil {
				s.close()
				return nil, err
			}
			ff := faultfs.New(pool)
			ff.SetClock(s.clock.Load)
			cs.pools = append(cs.pools, pool)
			cs.faults = append(cs.faults, ff)
			replicas[i] = ff
		}
		// Breakers are tuned fast so trips, probes, and readmissions all
		// happen within a timeline's few hundred milliseconds of wall
		// time. Jitter keeps its default: determinism comes from the
		// seeded Rand, not from disabling the mechanism.
		seed := cfg.Seed ^ int64(k+1)*0x9e3779b9
		m, err := abstraction.NewMirrorOptions(abstraction.MirrorOptions{
			Breaker: resilient.BreakerConfig{
				Threshold:   2,
				ReprobeBase: 5 * time.Millisecond,
				ReprobeMax:  40 * time.Millisecond,
				Rand:        seededRand(seed),
			},
			WriteQuorum: quorum,
			VerifyReads: !cfg.NoVerify,
		}, replicas...)
		if err != nil {
			s.close()
			return nil, err
		}
		cs.fs = m
		s.clients = append(s.clients, cs)
	}
	return s, nil
}

// close releases every resource the stack created.
func (s *stack) close() {
	for _, cs := range s.clients {
		for _, p := range cs.pools {
			p.Close()
		}
	}
	for _, slot := range s.servers {
		if slot.srv != nil && !slot.down {
			slot.srv.Abort()
		}
	}
	for _, d := range s.dirs {
		os.RemoveAll(d)
	}
}

// forEachTarget expands an event's Client/Replica selectors (with -1
// as "all") into concrete (client, replica) pairs.
func (s *stack) forEachTarget(ev Event, f func(k, i int)) {
	for k := range s.clients {
		if ev.Client >= 0 && ev.Client != k {
			continue
		}
		for i := range s.servers {
			if ev.Replica >= 0 && ev.Replica != i {
				continue
			}
			f(k, i)
		}
	}
}
