package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"tss/internal/cache"
	"tss/internal/vfs"
)

// The stale-lease scenario: a caching client (internal/cache over the
// quorum mirror, leases pinned through to replica 0) warms its tiers
// on a file, is partitioned from every replica, the file changes under
// it from the other client, and then the network heals. The published
// consistency bound is the lease TTL — the server may break the lease
// but cannot reach the partitioned holder, so the cache is entitled to
// serve the old bytes only until its last granted horizon lapses.
//
// Checked invariants, against the wall clock (lease TTLs are wall
// time, not virtual steps):
//
//   - stale-read: no read the cached stack answers successfully
//     returns the pre-write bytes later than one lease TTL after the
//     conflicting write was acknowledged. Inside the window both the
//     old bytes (bounded staleness) and a refused read (horizon
//     lapsed, revalidation unreachable) are legitimate.
//   - lease-read-integrity: a successful read never returns anything
//     other than exactly the old or the new content.
//   - lease-convergence: after heal, revalidation must observe the
//     bumped version, drop the cache, and deliver the new bytes.
//
// The timeline's partition window drives the phases; the conflicting
// write fires at the window's midpoint. Step pacing defaults slower
// than the generic engine's so the window outlives the TTL and the
// past-deadline arm of stale-read is actually exercised.

// staleLeaseName is the canned timeline Run dispatches to the lease
// scenario runner.
const staleLeaseName = "stale-lease"

// staleLeaseTarget is the file the two clients conflict on.
const staleLeaseTarget = "/data/lease-target"

// readThroughCache reads the target through the cache's own syscall
// tiers — stat (attr), then open/pread (pages). The capability
// fast paths (GetFile and friends) are deliberately avoided: they
// stream around the cache, and the invariants here are about the
// bytes the cache answers.
func readThroughCache(cached vfs.FileSystem) ([]byte, error) {
	if _, err := cached.Stat(staleLeaseTarget); err != nil {
		return nil, err
	}
	return vfs.ReadFile(cached, staleLeaseTarget)
}

// runStaleLease executes the stale-lease timeline. It reuses the
// standard stack — the cache layer goes on top of client 0's mirror,
// exercising the whole lease delegation chain (cache → mirror pin →
// faultfs → pool → server).
func runStaleLease(cfg Config, tl Timeline) (*Result, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2
	}
	if cfg.StepPause <= 0 {
		cfg.StepPause = 5 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 25 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s, err := buildStack(cfg)
	if err != nil {
		return nil, err
	}
	defer s.close()

	res := &Result{Timeline: tl.Name, Seed: cfg.Seed, Steps: tl.Steps}
	violate := func(step int64, invariant, detail string) {
		res.Violations = append(res.Violations, Violation{
			Timeline: tl.Name, Seed: cfg.Seed, Step: step,
			Invariant: invariant, Detail: detail,
		})
	}

	// Distinct sizes so a stale attr would be caught as loudly as a
	// stale page.
	rng := rand.New(rand.NewSource(cfg.Seed))
	v1 := make([]byte, 1024)
	rng.Read(v1)
	v2 := make([]byte, 1600)
	rng.Read(v2)

	writer := s.clients[1].fs
	if err := writer.Mkdir("/data", 0o755); err != nil {
		return nil, fmt.Errorf("stale-lease prologue mkdir: %w", err)
	}
	//lint:ignore copyapi the scenario exercises the raw single-shot path on purpose
	if err := vfs.PutReader(writer, staleLeaseTarget, 0o644, int64(len(v1)), bytes.NewReader(v1)); err != nil {
		return nil, fmt.Errorf("stale-lease prologue write: %w", err)
	}
	res.AckedWrites++

	cached := cache.New(s.clients[0].fs, cache.Options{AttrTTL: cfg.LeaseTTL})
	defer cached.Close()

	// The conflicting write fires at the midpoint of the (first)
	// partition window, so the window's back half runs past the
	// staleness deadline.
	writeStep := tl.Steps / 2
	for _, ev := range tl.Events {
		if ev.Kind == Partition {
			writeStep = ev.Step + (ev.Until-ev.Step)/2
			break
		}
	}

	at := make(map[int64][]action)
	for _, ev := range tl.Events {
		if ev.Kind != Partition {
			continue
		}
		at[ev.Step] = append(at[ev.Step], action{ev: ev})
		if ev.Until > 0 {
			at[ev.Until] = append(at[ev.Until], action{ev: ev, end: true})
		}
	}

	var tWrite time.Time
	wroteV2 := false
	for step := int64(0); step < tl.Steps; step++ {
		s.clock.Store(step)
		for _, a := range at[step] {
			s.forEachTarget(a.ev, func(k, i int) {
				if a.end {
					s.net.Heal(clientHost(k), replicaName(i))
				} else {
					s.net.Partition(clientHost(k), replicaName(i))
				}
			})
			cfg.Logf("step %d: %s partition client=%d replica=%d", step, beganOrEnded(a.end), a.ev.Client, a.ev.Replica)
		}
		if !wroteV2 && step >= writeStep {
			//lint:ignore copyapi the conflicting write must be a bare single-shot op
			if err := vfs.PutReader(writer, staleLeaseTarget, 0o644, int64(len(v2)), bytes.NewReader(v2)); err != nil {
				res.OpErrors++
			} else {
				tWrite = time.Now()
				wroteV2 = true
				res.AckedWrites++
				cfg.Logf("step %d: conflicting write acknowledged", step)
			}
		}

		// One cached read per step. The deadline compares against the
		// ack time of the conflicting write, which postdates the last
		// lease grant the partitioned holder could possibly have — so
		// the check carries built-in slack and never false-positives on
		// scheduling jitter.
		data, err := readThroughCache(cached)
		now := time.Now()
		switch {
		case err != nil:
			res.OpErrors++
		case bytes.Equal(data, v2):
			res.Ops++
		case bytes.Equal(data, v1):
			if wroteV2 && now.Sub(tWrite) > cfg.LeaseTTL {
				violate(step, "stale-read", fmt.Sprintf(
					"cached read returned pre-write bytes %.1fms after the conflicting write (TTL %.1fms)",
					float64(now.Sub(tWrite))/float64(time.Millisecond),
					float64(cfg.LeaseTTL)/float64(time.Millisecond)))
			} else {
				res.Ops++
			}
		default:
			violate(step, "lease-read-integrity", fmt.Sprintf(
				"cached read returned %d bytes matching neither version", len(data)))
		}
		//lint:ignore sleepseam chaos pacing: lease TTLs are wall time, so wall time must pass inside a step
		time.Sleep(cfg.StepPause)
	}

	if !wroteV2 {
		violate(tl.Steps, "harness", "conflicting write was never acknowledged")
	}

	// Epilogue: with every link healthy, revalidation must observe the
	// version bump and converge on the new bytes. The pinned lease
	// replica's breaker needs probe traffic and real time to re-admit.
	s.net.HealAll()
	converged := false
	for attempt := 0; attempt < 600; attempt++ {
		data, err := readThroughCache(cached)
		if err == nil && bytes.Equal(data, v2) {
			converged = true
			break
		}
		if err == nil && wroteV2 && time.Since(tWrite) > cfg.LeaseTTL && bytes.Equal(data, v1) {
			violate(tl.Steps, "stale-read", "cached read returned pre-write bytes after heal, past the TTL")
			break
		}
		//lint:ignore sleepseam epilogue settle: breaker re-probe timers need real time
		time.Sleep(5 * time.Millisecond)
	}
	if !converged {
		violate(tl.Steps, "lease-convergence", "cached reads never delivered the post-write bytes after heal")
	}

	st := cached.Stats()
	if st.AttrHits == 0 || st.PageHits == 0 {
		violate(tl.Steps, "harness", fmt.Sprintf(
			"the cache never served a hit (%d attr, %d page) — the scenario did not exercise it", st.AttrHits, st.PageHits))
	}
	cfg.Logf("stale-lease cache stats: %d attr hits, %d page hits, %d renewals, %d revalidations, %d invalidations",
		st.AttrHits, st.PageHits, st.Renewals, st.Revalidations, st.Invalidations)
	return res, nil
}
