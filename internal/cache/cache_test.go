package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/vfs"
)

// countingFS wraps an inner filesystem and counts the operations that
// reach it, optionally serving leases from a fake version table — the
// RPC ledger every caching assertion reads.
type countingFS struct {
	vfs.FileSystem
	stats, readdirs, opens atomic.Int64
	preads, pwrites        atomic.Int64
	leases, breaks         atomic.Int64
	noLease                bool
	// onLease, if set, runs at the start of every Lease call — a hook
	// for interleaving cache mutations "while the RPC is on the wire".
	onLease  func(path string)
	mu       sync.Mutex
	ops      []string // RPC order ledger: "stat", "readdir", "lease"
	versions map[string]int64
	nextID   int64
	leaseTTL time.Duration
}

func newCountingFS(t *testing.T) *countingFS {
	t.Helper()
	inner, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return &countingFS{FileSystem: inner, versions: make(map[string]int64), leaseTTL: time.Second}
}

func (c *countingFS) op(name string) {
	c.mu.Lock()
	c.ops = append(c.ops, name)
	c.mu.Unlock()
}

func (c *countingFS) Stat(path string) (vfs.FileInfo, error) {
	c.stats.Add(1)
	c.op("stat")
	return c.FileSystem.Stat(path)
}

func (c *countingFS) ReadDir(path string) ([]vfs.DirEntry, error) {
	c.readdirs.Add(1)
	c.op("readdir")
	return c.FileSystem.ReadDir(path)
}

func (c *countingFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	c.opens.Add(1)
	f, err := c.FileSystem.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

// bump simulates another client mutating path: the version advances.
func (c *countingFS) bump(path string) {
	c.mu.Lock()
	c.versions[path]++
	c.mu.Unlock()
}

func (c *countingFS) Lease(path string) (vfs.Lease, error) {
	c.leases.Add(1)
	c.op("lease")
	if h := c.onLease; h != nil {
		h(path)
	}
	if c.noLease {
		return vfs.Lease{}, vfs.EINVAL
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return vfs.Lease{ID: c.nextID, Version: c.versions[path], TTL: c.leaseTTL}, nil
}

func (c *countingFS) LeaseBreak(id int64) error {
	c.breaks.Add(1)
	return nil
}

type countingFile struct {
	vfs.File
	fs *countingFS
}

func (f *countingFile) Pread(p []byte, off int64) (int, error) {
	f.fs.preads.Add(1)
	return f.File.Pread(p, off)
}

func (f *countingFile) Pwrite(p []byte, off int64) (int, error) {
	f.fs.pwrites.Add(1)
	return f.File.Pwrite(p, off)
}

// fakeClock is a manual time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newCache(t *testing.T, inner vfs.FileSystem, opt Options) (*FS, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	opt.Clock = clk.Now
	fs := New(inner, opt)
	t.Cleanup(func() { fs.Close() })
	return fs, clk
}

func TestAttrCacheHitsWithinTTL(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := fs.Stat("/f"); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.stats.Load(); got != 1 {
		t.Fatalf("10 stats issued %d inner stats, want 1", got)
	}
	s := fs.Stats()
	if s.AttrHits != 9 || s.AttrMisses != 1 {
		t.Fatalf("attr hits/misses = %d/%d, want 9/1", s.AttrHits, s.AttrMisses)
	}
}

func TestDirentCacheHitsWithinTTL(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ents, err := fs.ReadDir("/")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 1 || ents[0].Name != "f" {
			t.Fatalf("listing = %v", ents)
		}
	}
	if got := inner.readdirs.Load(); got != 1 {
		t.Fatalf("5 listings issued %d inner readdirs, want 1", got)
	}
}

func TestRevalidationKeepsCacheAlive(t *testing.T) {
	inner := newCountingFS(t)
	fs, clk := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	// Horizon lapses; the version is unchanged, so one lease RPC must
	// revalidate the attr entry with no inner stat.
	clk.Advance(2 * time.Second)
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if got := inner.stats.Load(); got != 1 {
		t.Fatalf("revalidated stat issued %d inner stats, want 1", got)
	}
	s := fs.Stats()
	if s.Revalidations != 1 {
		t.Fatalf("revalidations = %d, want 1", s.Revalidations)
	}
}

func TestVersionChangeDropsCache(t *testing.T) {
	inner := newCountingFS(t)
	fs, clk := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	// Another client rewrites the file: version moves.
	if err := vfs.WriteFile(inner, "/f", []byte("newer"), 0o644); err != nil {
		t.Fatal(err)
	}
	inner.bump("/f")
	clk.Advance(2 * time.Second)
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 5 {
		t.Fatalf("stale attr after version change: size = %d, want 5", fi.Size)
	}
	if got := inner.stats.Load(); got != 2 {
		t.Fatalf("inner stats = %d, want 2 (refetch after invalidation)", got)
	}
	if s := fs.Stats(); s.Invalidations == 0 {
		t.Fatal("version change did not count an invalidation")
	}
}

func TestDegradedModeDropsAtTTL(t *testing.T) {
	inner := newCountingFS(t)
	inner.noLease = true // pre-lease server: every lease answers EINVAL
	fs, clk := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if got := inner.stats.Load(); got != 1 {
		t.Fatalf("TTL-mode hit issued %d inner stats, want 1", got)
	}
	clk.Advance(2 * time.Second)
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if got := inner.stats.Load(); got != 2 {
		t.Fatalf("expired TTL-mode entry issued %d inner stats, want 2", got)
	}
	// Exactly one lease probe: the EINVAL was memoized.
	if got := inner.leases.Load(); got != 1 {
		t.Fatalf("degraded cache issued %d lease probes, want 1", got)
	}
}

func TestPageCacheServesRereads(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second, PageSize: 8})
	data := []byte("0123456789abcdef0123")
	if err := vfs.WriteFile(inner, "/f", data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, len(data))
	n, err := f.Pread(buf, 0)
	if err != nil || n != len(data) {
		t.Fatalf("pread = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("payload mismatch: %q", buf)
	}
	fills := inner.preads.Load()
	// Re-read, same handle: all pages must come from cache.
	for i := 0; i < 3; i++ {
		if _, err := f.Pread(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.preads.Load(); got != fills {
		t.Fatalf("re-reads issued %d extra inner preads", got-fills)
	}
	// And a second handle shares the same pages.
	f2, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.Pread(buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := inner.preads.Load(); got != fills {
		t.Fatalf("second handle issued %d extra inner preads", got-fills)
	}
}

func TestWriteBackCoalesces(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	f, err := fs.Open("/w", vfs.O_WRONLY|vfs.O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential small writes must coalesce into one flush at close.
	for i := 0; i < 16; i++ {
		if _, err := f.Pwrite([]byte("chunk-16-bytes!!"), int64(i*16)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.pwrites.Load(); got != 0 {
		t.Fatalf("write-back sent %d inner pwrites before close, want 0", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inner.pwrites.Load(); got != 1 {
		t.Fatalf("close flushed %d inner pwrites, want 1", got)
	}
	got, err := vfs.ReadFile(inner, "/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 256 {
		t.Fatalf("flushed %d bytes, want 256", len(got))
	}
}

func TestWriteBackReadsOwnWrites(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("aaaaaaaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Pwrite([]byte("BB"), 3); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := f.Pread(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "aaaBBaaa" {
		t.Fatalf("read-own-write = %q, want aaaBBaaa", buf[:n])
	}
	// The write extends past EOF after a flushless overlay too.
	if _, err := f.Pwrite([]byte("ZZ"), 10); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 16)
	n, err = f.Pread(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 || string(big[8:12]) != "\x00\x00ZZ" {
		t.Fatalf("extended read = %d %q", n, big[:n])
	}
}

func TestOSyncWritesThrough(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	f, err := fs.Open("/s", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_SYNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	if got := inner.pwrites.Load(); got != 1 {
		t.Fatalf("O_SYNC write reached inner %d times, want 1 (write-through)", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalWriteInvalidates(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Minute})
	if err := vfs.WriteFile(inner, "/f", []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadDir("/"); err != nil {
		t.Fatal(err)
	}
	// A write through the cache itself must drop the cached state even
	// well inside the TTL.
	if err := vfs.WriteFile(fs, "/f", []byte("twotwo"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 6 {
		t.Fatalf("stat after own write = %d bytes, want 6", fi.Size)
	}
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("listing after unlink = %v, want empty", ents)
	}
}

func TestTruncateDropsPages(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Minute, PageSize: 8})
	if err := vfs.WriteFile(inner, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Pread(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	n, err := f.Pread(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("read after truncate = %d bytes, want 4 (stale pages served)", n)
	}
}

// corruptChecksummer reports a digest that never matches, standing in
// for a replica whose disk corrupted the file after the digest RPC's
// view of it.
type corruptChecksummer struct {
	*countingFS
}

func (c *corruptChecksummer) Checksum(path, algo string) (string, error) {
	return "00000000", nil
}

func TestVerifiedFillRejectsMismatch(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, &corruptChecksummer{inner}, Options{AttrTTL: time.Second, Verify: true, Clock: time.Now})
	defer fs.Close()
	if err := vfs.WriteFile(inner, "/f", []byte("short file"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 32)
	_, err = f.Pread(buf, 0)
	if !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("mismatched fill = %v, want ErrIntegrity", err)
	}
	if s := fs.Stats(); s.VerifyFails != 1 {
		t.Fatalf("verify_fails = %d, want 1", s.VerifyFails)
	}
}

// TestRevalidateRaceFallsToMiss reproduces the lost-entry race:
// revalidate drops f.mu across the lease RPC, and a concurrent
// renewal of the same path that observes the changed version
// invalidates the entry and records the new version. This renewal
// then compares equal and reports fresh — over a nil attr. The hit
// path must recheck the entry and fall through to a refetch instead
// of dereferencing it.
func TestRevalidateRaceFallsToMiss(t *testing.T) {
	inner := newCountingFS(t)
	fs, clk := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	inner.bump("/f")
	clk.Advance(2 * time.Second)
	// While this renewal is "on the wire", the concurrent one wins:
	// it invalidates and installs the post-write version.
	inner.onLease = func(path string) {
		inner.onLease = nil
		fs.mu.Lock()
		if ps, ok := fs.paths.Peek(path); ok {
			fs.invalidateLocked(path, ps)
			ps.version = 1
			ps.haveVersion = true
		}
		fs.mu.Unlock()
	}
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 3 {
		t.Fatalf("raced stat size = %d, want 3", fi.Size)
	}
	if got := inner.stats.Load(); got != 2 {
		t.Fatalf("raced stat issued %d inner stats, want 2 (refetch, not a phantom hit)", got)
	}
}

// TestRevalidateRaceReadDir is the listing flavor of the same race:
// the renewal must not serve a vanished dirent slice as an empty
// listing.
func TestRevalidateRaceReadDir(t *testing.T) {
	inner := newCountingFS(t)
	fs, clk := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadDir("/"); err != nil {
		t.Fatal(err)
	}
	inner.bump("/")
	clk.Advance(2 * time.Second)
	inner.onLease = func(path string) {
		inner.onLease = nil
		fs.mu.Lock()
		if ps, ok := fs.paths.Peek(path); ok {
			fs.invalidateLocked(path, ps)
			ps.version = 1
			ps.haveVersion = true
		}
		fs.mu.Unlock()
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "f" {
		t.Fatalf("raced listing = %v, want [f]", ents)
	}
	if got := inner.readdirs.Load(); got != 2 {
		t.Fatalf("raced listing issued %d inner readdirs, want 2", got)
	}
}

// TestMissLeasesBeforeFetch pins the fill order of the metadata miss
// paths: the lease must open the trust horizon before the fetch, so a
// write landing between the two RPCs moves the version and is caught
// at the next renewal. Fetch-then-lease would cache pre-write state
// under the post-write version and revalidate it forever.
func TestMissLeasesBeforeFetch(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadDir("/"); err != nil {
		t.Fatal(err)
	}
	inner.mu.Lock()
	ops := append([]string(nil), inner.ops...)
	inner.mu.Unlock()
	want := []string{"lease", "stat", "lease", "readdir"}
	if len(ops) != len(want) {
		t.Fatalf("RPC sequence = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("RPC sequence = %v, want %v (lease must precede the fill)", ops, want)
		}
	}
}

// TestMaxPathsBoundsMetadata walks more paths than the metadata budget
// and checks the tier stays bounded, evicted paths release their
// leases, and a local write leaves no empty husk entry behind.
func TestMaxPathsBoundsMetadata(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Minute, MaxPaths: 4})
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("/f%d", i)
		if err := vfs.WriteFile(inner, path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(path); err != nil {
			t.Fatal(err)
		}
	}
	fs.mu.Lock()
	n := fs.paths.Len()
	fs.mu.Unlock()
	if n > 4 {
		t.Fatalf("metadata tier holds %d paths, budget 4", n)
	}
	// The 8 evicted paths held live leases; each must have been
	// released, not left to server TTL.
	if got := inner.breaks.Load(); got != 8 {
		t.Fatalf("evictions released %d leases, want 8", got)
	}
	// A write through the cache empties the entry — and an entry with
	// no data, no version, and no lease must not stay indexed.
	if err := vfs.WriteFile(fs, "/f11", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	_, husk := fs.paths.Peek("/f11")
	fs.mu.Unlock()
	if husk {
		t.Fatal("written path left an empty metadata entry behind")
	}
}

// TestPwriteReadOnlyHandle writes to a lazily opened read-only handle:
// the cache must answer EBADF like the uncached stack, not buffer the
// bytes and panic flushing them through a nil descriptor at close.
func TestPwriteReadOnlyHandle(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Minute})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	opens := inner.opens.Load()
	f, err := fs.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := inner.opens.Load(); got != opens {
		t.Fatalf("warm read-only open reached the server (%d opens)", got-opens)
	}
	pwrites := inner.pwrites.Load()
	if _, err := f.Pwrite([]byte("no"), 0); vfs.AsErrno(err) != vfs.EBADF {
		t.Fatalf("pwrite on read-only handle = %v, want EBADF", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close after rejected write: %v", err)
	}
	if got := inner.pwrites.Load(); got != pwrites {
		t.Fatalf("rejected write reached the server %d times", got-pwrites)
	}
}

func TestCloseReleasesLeases(t *testing.T) {
	inner := newCountingFS(t)
	fs, _ := newCache(t, inner, Options{AttrTTL: time.Second})
	if err := vfs.WriteFile(inner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	granted := inner.leases.Load()
	if granted == 0 {
		t.Fatal("no lease acquired for cached path")
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inner.breaks.Load(); got != granted {
		t.Fatalf("close released %d of %d leases", got, granted)
	}
}
