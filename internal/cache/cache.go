// Package cache provides the client-side caching tier of the storage
// stack: a vfs.FileSystem wrapper holding three caches — file
// attributes, directory listings, and file data pages — whose validity
// is governed by read leases from the server (DESIGN.md §14).
//
// The consistency model is version revalidation, not server push.
// Every cached item for a path is trusted for a bounded horizon; when
// the horizon lapses the cache renews its lease and compares the
// returned version with the one it last saw. An unchanged version
// proves every byte and attribute cached for the path is still
// current, so one round trip revalidates the attr entry, the dirent
// listing, and all data pages at once — that single cheap RPC standing
// in for a re-stat, a re-listing, and a re-read is where the syscall
// amplification of a network filesystem goes to die. A changed
// version drops everything for the path. Against a server that
// predates leases the wrapper degrades to plain TTL expiry: entries
// are dropped, not revalidated, when the horizon lapses; staleness
// stays bounded either way.
package cache

import (
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"

	"tss/internal/obs"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// Defaults for the zero Options value.
const (
	DefaultAttrTTL   = 2 * time.Second
	DefaultDataBytes = 64 << 20
	DefaultPageSize  = 64 << 10
	// DefaultFlushAt bounds how much dirty write-back data a single
	// open file accumulates before it is pushed to the server.
	DefaultFlushAt = 1 << 20
	// DefaultMaxPaths bounds how many paths the metadata tier tracks
	// (attrs, listings, lease/version state), so a walk over a large
	// tree cannot grow client memory for the FS lifetime.
	DefaultMaxPaths = 16 << 10
)

// Options configures a cache.FS. The zero value enables all three
// tiers with the defaults above, write-back buffering, and no
// verification.
type Options struct {
	// AttrTTL is the validity horizon of cached attributes, listings,
	// and pages. With leases the horizon is renewed by revalidation;
	// without, it is the hard staleness bound.
	AttrTTL time.Duration
	// DataBytes is the page cache budget; 0 means DefaultDataBytes,
	// negative disables the data tier.
	DataBytes int64
	// PageSize is the data cache granule.
	PageSize int64
	// WriteThrough disables write-back buffering: every Pwrite goes to
	// the server before it returns. Opening a file with vfs.O_SYNC
	// forces the same per handle regardless of this setting.
	WriteThrough bool
	// FlushAt bounds the dirty extent of one open file.
	FlushAt int64
	// MaxPaths bounds the number of paths with cached metadata; the
	// least recently used path's attrs, listing, pages, and lease are
	// dropped past the bound. 0 means DefaultMaxPaths, negative
	// disables the bound.
	MaxPaths int
	// Verify digest-checks whole-file fills against the inner layer's
	// Checksummer, when it has one.
	Verify bool
	// Metrics registers hit/miss counters and per-tier latency
	// histograms under Layer; nil disables registration.
	Metrics *obs.Registry
	// Layer is the metric name prefix; empty means "cache".
	Layer string
	// Clock is the time source, a seam for deterministic tests; nil
	// means time.Now.
	Clock func() time.Time
}

// Stats counts cache activity; all fields are safe to read
// concurrently.
type Stats struct {
	AttrHits, AttrMisses     int64
	DirentHits, DirentMisses int64
	PageHits, PageMisses     int64
	// Renewals counts lease RPCs issued to extend a lapsed horizon;
	// Revalidations counts those that came back with an unchanged
	// version, keeping the cached state alive without refetching.
	Renewals, Revalidations int64
	// Invalidations counts paths whose cached state was dropped, by a
	// changed version or by a local write.
	Invalidations int64
	// Flushes counts write-back extents pushed to the server.
	Flushes int64
	// VerifyFails counts whole-file fills rejected by digest check.
	VerifyFails int64
}

// pageKey addresses one granule of one file in the shared data LRU.
type pageKey struct {
	path string
	idx  int64
}

// pathState is everything the cache knows about one path's validity:
// the last seen lease version, the trust horizon, the outstanding
// lease, and which tiers currently hold entries for the path.
type pathState struct {
	version     int64
	haveVersion bool
	validUntil  time.Time

	leaseID  int64
	leased   bool
	leaseExp time.Time

	attr    *vfs.FileInfo
	dirents []vfs.DirEntry
	pages   map[int64]struct{} // page indexes resident in the LRU
}

// FS is the caching layer. It is safe for concurrent use; the caches
// are guarded by one mutex, which is never held across an RPC to the
// inner filesystem.
type FS struct {
	inner vfs.FileSystem
	opt   Options

	mu sync.Mutex
	// paths is the metadata tier: per-path attrs, listings, page
	// indexes, and lease/version state, count-budgeted at
	// Options.MaxPaths entries.
	paths *LRU[string, *pathState]
	data  *LRU[pageKey, []byte]
	// pendingRel queues lease IDs whose entries were evicted under
	// f.mu; the release RPCs run later, off the lock (drainReleases).
	pendingRel []int64
	// leaser is the inner layer's lease capability; degraded records
	// that it answered EINVAL (a pre-lease server) and the cache
	// stopped asking.
	leaser   vfs.Leaser
	degraded bool
	closed   bool

	stats struct {
		mu sync.Mutex
		s  Stats
	}

	// Registry shadows of Stats plus per-tier latency histograms (nil
	// without a registry; obs instruments are nil-safe).
	cAttrHits, cAttrMisses     *obs.Counter
	cDirentHits, cDirentMisses *obs.Counter
	cPageHits, cPageMisses     *obs.Counter
	cRenewals, cRevalidations  *obs.Counter
	cInvalidations, cFlushes   *obs.Counter
	cVerifyFails               *obs.Counter
	hAttr, hDirent, hRead      *obs.Histogram
}

var (
	_ vfs.FileSystem = (*FS)(nil)
	_ vfs.Capabler   = (*FS)(nil)
	_ vfs.Closer     = (*FS)(nil)
)

// New wraps inner in a caching tier.
func New(inner vfs.FileSystem, opt Options) *FS {
	if opt.AttrTTL <= 0 {
		opt.AttrTTL = DefaultAttrTTL
	}
	if opt.DataBytes == 0 {
		opt.DataBytes = DefaultDataBytes
	}
	if opt.PageSize <= 0 {
		opt.PageSize = DefaultPageSize
	}
	if opt.FlushAt <= 0 {
		opt.FlushAt = DefaultFlushAt
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	if opt.Layer == "" {
		opt.Layer = "cache"
	}
	if opt.MaxPaths == 0 {
		opt.MaxPaths = DefaultMaxPaths
	}
	maxPaths := int64(opt.MaxPaths)
	if maxPaths < 0 {
		maxPaths = 1<<63 - 1
	}
	f := &FS{
		inner:  inner,
		opt:    opt,
		paths:  NewLRU[string, *pathState](maxPaths),
		leaser: vfs.Capabilities(inner).Leaser,
	}
	// Capacity eviction of a path's metadata takes its pages with it
	// and queues a live lease for off-lock release. Nil-ing the tiers
	// on the struct matters beyond hygiene: a revalidate in flight
	// holds a pointer to the evicted state, and its hit-path recheck
	// must see the entries gone. The callback runs under f.mu (every
	// Put is).
	f.paths.OnEvict = func(path string, ps *pathState, _ int64) {
		if f.data != nil {
			for idx := range ps.pages {
				f.data.Remove(pageKey{path: path, idx: idx})
			}
		}
		ps.pages = nil
		ps.attr = nil
		ps.dirents = nil
		if ps.leased && f.opt.Clock().Before(ps.leaseExp) {
			f.pendingRel = append(f.pendingRel, ps.leaseID)
		}
		ps.leased = false
	}
	if opt.DataBytes > 0 {
		f.data = NewLRU[pageKey, []byte](opt.DataBytes)
		// Keep the per-path page index honest when the budget evicts;
		// the callback runs under f.mu (every Put is).
		f.data.OnEvict = func(k pageKey, _ []byte, _ int64) {
			if ps, ok := f.paths.Peek(k.path); ok {
				delete(ps.pages, k.idx)
			}
		}
	}
	if reg := opt.Metrics; reg != nil {
		l := opt.Layer
		f.cAttrHits = reg.Counter(l + ".attr_hits")
		f.cAttrMisses = reg.Counter(l + ".attr_misses")
		f.cDirentHits = reg.Counter(l + ".dirent_hits")
		f.cDirentMisses = reg.Counter(l + ".dirent_misses")
		f.cPageHits = reg.Counter(l + ".page_hits")
		f.cPageMisses = reg.Counter(l + ".page_misses")
		f.cRenewals = reg.Counter(l + ".lease_renewals")
		f.cRevalidations = reg.Counter(l + ".lease_revalidations")
		f.cInvalidations = reg.Counter(l + ".invalidations")
		f.cFlushes = reg.Counter(l + ".writeback_flushes")
		f.cVerifyFails = reg.Counter(l + ".verify_fails")
		f.hAttr = reg.Histogram(l + ".attr")
		f.hDirent = reg.Histogram(l + ".dirent")
		f.hRead = reg.Histogram(l + ".read")
	}
	return f
}

// Stats returns a snapshot of the cache counters.
func (f *FS) Stats() Stats {
	f.stats.mu.Lock()
	defer f.stats.mu.Unlock()
	return f.stats.s
}

func (f *FS) count(c *obs.Counter, field *int64) {
	f.stats.mu.Lock()
	*field++
	f.stats.mu.Unlock()
	c.Inc()
}

// state returns the pathState for path, creating it if needed (which
// may evict the coldest path past the MaxPaths budget). Caller holds
// f.mu.
func (f *FS) state(path string) *pathState {
	if ps, ok := f.paths.Get(path); ok {
		return ps
	}
	ps := &pathState{}
	f.paths.Put(path, ps, 1)
	return ps
}

// drainReleases issues the lease-release RPCs queued by metadata
// eviction, best effort. Called without f.mu.
func (f *FS) drainReleases() {
	f.mu.Lock()
	ids := f.pendingRel
	f.pendingRel = nil
	f.mu.Unlock()
	for _, id := range ids {
		f.releaseLease(id)
	}
}

// validLocked reports whether path's cached state may be served right
// now, without renewing. Caller holds f.mu.
func (f *FS) validLocked(ps *pathState, now time.Time) bool {
	return ps != nil && now.Before(ps.validUntil)
}

// revalidate makes path's cached state servable if it can: when the
// horizon has lapsed it renews the lease and compares versions. It
// returns true when cached entries for the path may be used. The lock
// is dropped across the lease RPC.
func (f *FS) revalidate(path string, ps *pathState, now time.Time) bool {
	if now.Before(ps.validUntil) {
		return true
	}
	if f.leaser == nil || f.degraded {
		// TTL-only mode: a lapsed horizon is a drop.
		f.invalidateLocked(path, ps)
		return false
	}
	oldID := ps.leaseID
	// An expired grant is already gone server-side; only a live one is
	// worth a release RPC.
	oldLive := ps.leased && now.Before(ps.leaseExp)
	ps.leased = false
	f.mu.Unlock()
	lease, err := f.leaser.Lease(path)
	if oldLive {
		// The old grant is dead to us either way; tell the server so
		// its table does not carry it to TTL expiry.
		f.releaseLease(oldID)
	}
	f.mu.Lock()
	f.count(f.cRenewals, &f.stats.s.Renewals)
	if err != nil {
		if vfs.AsErrno(err) == vfs.EINVAL {
			f.degraded = true
		}
		f.invalidateLocked(path, ps)
		return false
	}
	horizon := f.opt.AttrTTL
	if lease.TTL > 0 && lease.TTL < horizon {
		horizon = lease.TTL
	}
	now = f.opt.Clock()
	fresh := ps.haveVersion && ps.version == lease.Version
	if fresh {
		f.count(f.cRevalidations, &f.stats.s.Revalidations)
	} else if ps.haveVersion {
		f.invalidateLocked(path, ps)
	}
	ps.version = lease.Version
	ps.haveVersion = true
	ps.validUntil = now.Add(horizon)
	ps.leaseID = lease.ID
	ps.leased = true
	ps.leaseExp = now.Add(lease.TTL)
	return fresh
}

// releaseLease drops a lease server-side, best effort: an expired or
// already-broken grant answers EBADF, which is the desired end state.
func (f *FS) releaseLease(id int64) {
	if f.leaser == nil {
		return
	}
	_ = f.leaser.LeaseBreak(id)
}

// invalidateLocked drops every cached entry for path. The lease
// version survives — it is the comparison point for the next renewal.
// Caller holds f.mu.
func (f *FS) invalidateLocked(path string, ps *pathState) {
	if ps == nil {
		return
	}
	had := ps.attr != nil || ps.dirents != nil || len(ps.pages) > 0
	ps.attr = nil
	ps.dirents = nil
	if f.data != nil {
		for idx := range ps.pages {
			f.data.Remove(pageKey{path: path, idx: idx})
		}
	}
	ps.pages = nil
	ps.validUntil = time.Time{}
	if had {
		f.count(f.cInvalidations, &f.stats.s.Invalidations)
	}
}

// wrote records a local mutation of path: cached state is dropped and
// the horizon zeroed, so the next read renews and observes the
// server's post-write version.
func (f *FS) wrote(paths ...string) {
	f.mu.Lock()
	for _, p := range paths {
		if ps, ok := f.paths.Peek(p); ok {
			f.invalidateLocked(p, ps)
			ps.haveVersion = false
			ps.leased = false
			// The entry now holds nothing a future read could use —
			// no data, no version to compare, no lease — so indexing
			// it is pure growth; drop it.
			f.paths.Remove(p)
		}
	}
	f.mu.Unlock()
}

// Stat serves attributes from the attr tier (vfs.FileSystem).
func (f *FS) Stat(path string) (vfs.FileInfo, error) {
	start := f.opt.Clock()
	defer f.drainReleases()
	f.mu.Lock()
	ps := f.state(path)
	// The trailing nil recheck is load-bearing: revalidate drops f.mu
	// across the lease RPC, and a concurrent renewal that observed a
	// changed version nils ps.attr and records the new version — this
	// renewal then compares equal and reports fresh over an entry that
	// is gone. Fall through to the miss path in that case.
	if ps.attr != nil && (f.validLocked(ps, start) || f.revalidate(path, ps, start)) && ps.attr != nil {
		fi := *ps.attr
		f.count(f.cAttrHits, &f.stats.s.AttrHits)
		f.mu.Unlock()
		f.hAttr.Observe(time.Since(start))
		return fi, nil
	}
	f.count(f.cAttrMisses, &f.stats.s.AttrMisses)
	needLease := !f.validLocked(ps, f.opt.Clock())
	f.mu.Unlock()

	// Lease before the fetch, pinning the version the fill is cached
	// under: a write landing between the two RPCs then moves the
	// version and the next renewal drops the entry. Fetch-then-lease
	// would cache pre-write attrs under the post-write version and
	// revalidate them forever.
	if needLease {
		f.lease(path)
	}
	fi, err := f.inner.Stat(path)
	if err != nil {
		f.hAttr.Observe(time.Since(start))
		return fi, err
	}
	f.mu.Lock()
	ps = f.state(path)
	if f.validLocked(ps, f.opt.Clock()) {
		c := fi
		ps.attr = &c
	}
	f.mu.Unlock()
	f.hAttr.Observe(time.Since(start))
	return fi, nil
}

// lease acquires a fresh lease on path and opens its trust horizon,
// entering degraded mode on a pre-lease server. Called without f.mu.
func (f *FS) lease(path string) {
	defer f.drainReleases()
	f.mu.Lock()
	if f.leaser == nil || f.degraded {
		ps := f.state(path)
		// TTL-only: trust what we are about to cache for one horizon.
		ps.validUntil = f.opt.Clock().Add(f.opt.AttrTTL)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	lease, err := f.leaser.Lease(path)
	var oldID int64
	var oldLive bool
	f.mu.Lock()
	f.count(f.cRenewals, &f.stats.s.Renewals)
	ps := f.state(path)
	if err != nil {
		if vfs.AsErrno(err) == vfs.EINVAL {
			f.degraded = true
			ps.validUntil = f.opt.Clock().Add(f.opt.AttrTTL)
		}
		f.mu.Unlock()
		return
	}
	now := f.opt.Clock()
	if ps.leased && now.Before(ps.leaseExp) {
		// A concurrent fill leased the path while we were on the wire;
		// adopt the newer grant and release the superseded one.
		oldID, oldLive = ps.leaseID, true
	}
	horizon := f.opt.AttrTTL
	if lease.TTL > 0 && lease.TTL < horizon {
		horizon = lease.TTL
	}
	if ps.haveVersion && ps.version != lease.Version {
		f.invalidateLocked(path, ps)
	}
	ps.version = lease.Version
	ps.haveVersion = true
	ps.validUntil = now.Add(horizon)
	ps.leaseID = lease.ID
	ps.leased = true
	ps.leaseExp = now.Add(lease.TTL)
	f.mu.Unlock()
	if oldLive {
		f.releaseLease(oldID)
	}
}

// ReadDir serves listings from the dirent tier (vfs.FileSystem).
func (f *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	start := f.opt.Clock()
	defer f.drainReleases()
	f.mu.Lock()
	ps := f.state(path)
	// Trailing nil recheck for the same reason as Stat: a concurrent
	// revalidation may have dropped the listing while f.mu was down
	// across the lease RPC.
	if ps.dirents != nil && (f.validLocked(ps, start) || f.revalidate(path, ps, start)) && ps.dirents != nil {
		ents := append([]vfs.DirEntry(nil), ps.dirents...)
		f.count(f.cDirentHits, &f.stats.s.DirentHits)
		f.mu.Unlock()
		f.hDirent.Observe(time.Since(start))
		return ents, nil
	}
	f.count(f.cDirentMisses, &f.stats.s.DirentMisses)
	needLease := !f.validLocked(ps, f.opt.Clock())
	f.mu.Unlock()

	// Lease-then-fetch, as in Stat: the fill must be cached under a
	// version pinned no later than the listing it describes.
	if needLease {
		f.lease(path)
	}
	ents, err := f.inner.ReadDir(path)
	if err != nil {
		f.hDirent.Observe(time.Since(start))
		return ents, err
	}
	f.mu.Lock()
	ps = f.state(path)
	if f.validLocked(ps, f.opt.Clock()) {
		ps.dirents = append([]vfs.DirEntry(nil), ents...)
	}
	f.mu.Unlock()
	f.hDirent.Observe(time.Since(start))
	return ents, nil
}

// Open opens the named file (vfs.FileSystem). Write-intent opens
// invalidate the path locally — the server is about to break our lease
// anyway — and O_SYNC handles write through.
//
// A read-only open of a path with a valid attr entry is satisfied
// locally: the server descriptor is created lazily, on the first page
// miss that actually needs it. A fully warm open/read/close cycle
// therefore costs zero RPCs — the open is a local act, as in NFSv3 —
// at the price of deferring an EACCES to the first uncached read.
func (f *FS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if mutatingOpen(flags) {
		f.wrote(path, pathutil.Dir(path))
	} else {
		f.mu.Lock()
		ps, _ := f.paths.Get(path)
		known := ps != nil && ps.attr != nil && f.validLocked(ps, f.opt.Clock())
		f.mu.Unlock()
		if known {
			return f.newFile(nil, path, flags, mode), nil
		}
	}
	inner, err := f.inner.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	return f.newFile(inner, path, flags, mode), nil
}

// mutatingOpen reports whether an open with these flags can change the
// file or its directory entry.
func mutatingOpen(flags int) bool {
	return flags&vfs.AccessModeMask != vfs.O_RDONLY ||
		flags&(vfs.O_CREAT|vfs.O_TRUNC) != 0
}

// newFile wraps an open descriptor; inner may be nil for a lazy
// read-only handle, materialized by ensureInner on the first miss.
func (f *FS) newFile(inner vfs.File, path string, flags int, mode uint32) *cacheFile {
	writeThrough := f.opt.WriteThrough || flags&vfs.O_SYNC != 0 ||
		flags&vfs.O_APPEND != 0
	return &cacheFile{
		fs:           f,
		inner:        inner,
		path:         path,
		flags:        flags,
		mode:         mode,
		writable:     flags&vfs.AccessModeMask != vfs.O_RDONLY,
		writeThrough: writeThrough,
	}
}

// Unlink removes the named file (vfs.FileSystem).
func (f *FS) Unlink(path string) error {
	err := f.inner.Unlink(path)
	if err == nil {
		f.wrote(path, pathutil.Dir(path))
	}
	return err
}

// Rename renames a file or directory (vfs.FileSystem).
func (f *FS) Rename(oldPath, newPath string) error {
	err := f.inner.Rename(oldPath, newPath)
	if err == nil {
		f.wrote(oldPath, newPath, pathutil.Dir(oldPath), pathutil.Dir(newPath))
	}
	return err
}

// Mkdir creates a directory (vfs.FileSystem).
func (f *FS) Mkdir(path string, mode uint32) error {
	err := f.inner.Mkdir(path, mode)
	if err == nil {
		f.wrote(path, pathutil.Dir(path))
	}
	return err
}

// Rmdir removes an empty directory (vfs.FileSystem).
func (f *FS) Rmdir(path string) error {
	err := f.inner.Rmdir(path)
	if err == nil {
		f.wrote(path, pathutil.Dir(path))
	}
	return err
}

// Truncate changes the length of the named file (vfs.FileSystem).
func (f *FS) Truncate(path string, size int64) error {
	err := f.inner.Truncate(path, size)
	if err == nil {
		f.wrote(path)
	}
	return err
}

// Chmod changes permission bits (vfs.FileSystem).
func (f *FS) Chmod(path string, mode uint32) error {
	err := f.inner.Chmod(path, mode)
	if err == nil {
		f.wrote(path)
	}
	return err
}

// StatFS reports capacity, uncached (vfs.FileSystem).
func (f *FS) StatFS() (vfs.FSInfo, error) { return f.inner.StatFS() }

// Close releases every outstanding lease and closes the inner layer if
// it closes (vfs.Closer). The FS must not be used afterwards.
func (f *FS) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	ids := f.pendingRel
	f.pendingRel = nil
	f.paths.Each(func(_ string, ps *pathState) {
		if ps.leased {
			ids = append(ids, ps.leaseID)
			ps.leased = false
		}
	})
	onEvict := f.paths.OnEvict
	f.paths = NewLRU[string, *pathState](f.paths.capacity)
	f.paths.OnEvict = onEvict
	if f.data != nil {
		f.data = NewLRU[pageKey, []byte](f.opt.DataBytes)
	}
	f.mu.Unlock()
	for _, id := range ids {
		f.releaseLease(id)
	}
	if c := vfs.Capabilities(f.inner).Closer; c != nil {
		return c.Close()
	}
	return nil
}

// readPage returns one cached granule of path, using (and refreshing)
// the path's validity horizon.
func (f *FS) readPage(path string, idx int64) ([]byte, bool) {
	if f.data == nil {
		return nil, false
	}
	now := f.opt.Clock()
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.paths.Get(path)
	if !ok {
		return nil, false
	}
	if !f.validLocked(ps, now) && !f.revalidate(path, ps, now) {
		return nil, false
	}
	page, ok := f.data.Get(pageKey{path: path, idx: idx})
	return page, ok
}

// storePage caches one granule, provided the path's horizon is open.
func (f *FS) storePage(path string, idx int64, page []byte) {
	if f.data == nil {
		return
	}
	defer f.drainReleases()
	f.mu.Lock()
	defer f.mu.Unlock()
	ps := f.state(path)
	if !f.validLocked(ps, f.opt.Clock()) {
		return
	}
	if ps.pages == nil {
		ps.pages = make(map[int64]struct{})
	}
	ps.pages[idx] = struct{}{}
	f.data.Put(pageKey{path: path, idx: idx}, page, int64(len(page)))
}

// verifyFill digest-checks a whole-file fill against the inner layer's
// checksummer. data is the entire file as just read.
func (f *FS) verifyFill(path string, data []byte) error {
	cs := vfs.Capabilities(f.inner).Checksummer
	if cs == nil {
		return nil
	}
	want, err := cs.Checksum(path, vfs.AlgoCRC32C)
	if err != nil {
		// A server that cannot digest does not fail the read.
		return nil
	}
	h, err := vfs.NewHash(vfs.AlgoCRC32C)
	if err != nil {
		return nil
	}
	h.Write(data)
	got := hex.EncodeToString(h.Sum(nil))
	if got != want {
		f.mu.Lock()
		f.count(f.cVerifyFails, &f.stats.s.VerifyFails)
		f.mu.Unlock()
		return vfs.ChecksumMismatch(path, vfs.AlgoCRC32C, want, got)
	}
	return nil
}

// Capabilities forwards the inner layer's optional interfaces
// (vfs.Capabler). Fast paths that mutate are wrapped so they
// invalidate the tiers exactly like their syscall counterparts; read
// fast paths bypass the page cache by design — a whole-file stream
// does not want 64 KiB granules — and Leaser is forwarded untouched so
// a second cache above would share the same version domain.
func (f *FS) Capabilities() vfs.Capability {
	inner := vfs.Capabilities(f.inner)
	c := inner
	c.Closer = f
	if inner.FilePutter != nil {
		c.FilePutter = &cacheFilePutter{f: f, inner: inner.FilePutter}
	}
	if inner.PartPutter != nil {
		c.PartPutter = &cachePartPutter{f: f, inner: inner.PartPutter}
	}
	if inner.OpenStater != nil {
		c.OpenStater = &cacheOpenStater{f: f, inner: inner.OpenStater}
	}
	return c
}

type cacheFilePutter struct {
	f     *FS
	inner vfs.FilePutter
}

func (p *cacheFilePutter) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	p.f.wrote(path, pathutil.Dir(path))
	return p.inner.PutFile(path, mode, size, r)
}

type cachePartPutter struct {
	f     *FS
	inner vfs.PartPutter
}

func (p *cachePartPutter) PutBegin(path string, mode uint32, size int64) error {
	p.f.wrote(path, pathutil.Dir(path))
	return p.inner.PutBegin(path, mode, size)
}

func (p *cachePartPutter) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	p.f.wrote(path)
	return p.inner.PutPart(path, off, length, algo, r)
}

func (p *cachePartPutter) PutComplete(path string, size int64, algo, sum string) error {
	p.f.wrote(path)
	return p.inner.PutComplete(path, size, algo, sum)
}

type cacheOpenStater struct {
	f     *FS
	inner vfs.OpenStater
}

func (o *cacheOpenStater) OpenStat(path string, flags int, mode uint32) (vfs.File, vfs.FileInfo, error) {
	if mutatingOpen(flags) {
		o.f.wrote(path, pathutil.Dir(path))
	}
	inner, fi, err := o.inner.OpenStat(path, flags, mode)
	if err != nil {
		return nil, fi, err
	}
	return o.f.newFile(inner, path, flags, mode), fi, nil
}

// preadFull reads at off until p is full or the file ends, returning
// how many bytes landed. Both EOF conventions of vfs.File — a zero
// count and an io.EOF error — terminate cleanly.
func preadFull(f vfs.File, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n, err := f.Pread(p[total:], off+int64(total))
		total += n
		if err == io.EOF || (err == nil && n == 0) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// cacheFile is an open file over the page cache with optional
// write-back buffering. Reads see this handle's unflushed writes;
// flushes happen on Sync, Fstat, Ftruncate, Close, on a
// non-contiguous write, and when the dirty extent reaches
// Options.FlushAt. Lazy read-only handles carry no server descriptor
// until a miss materializes one.
type cacheFile struct {
	fs           *FS
	path         string
	flags        int
	mode         uint32
	writable     bool
	writeThrough bool

	mu    sync.Mutex
	inner vfs.File // nil on a lazy handle until materialized
	dirty []byte   // pending write-back extent
	dOff  int64    // its file offset
}

var _ vfs.File = (*cacheFile)(nil)

// ensureInner materializes the server descriptor of a lazy handle.
// The open uses the original flags minus creation/truncation bits —
// those only make sense on the first open, which lazy handles never
// are (a lazy handle requires a valid attr entry, hence an existing
// file).
func (cf *cacheFile) ensureInner() (vfs.File, error) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.inner != nil {
		return cf.inner, nil
	}
	inner, err := cf.fs.inner.Open(cf.path, cf.flags&^(vfs.O_CREAT|vfs.O_EXCL|vfs.O_TRUNC), cf.mode)
	if err != nil {
		return nil, err
	}
	cf.inner = inner
	return inner, nil
}

// Pread reads through the page cache (vfs.File), overlaying this
// handle's pending write-back extent.
func (cf *cacheFile) Pread(p []byte, off int64) (int, error) {
	start := cf.fs.opt.Clock()
	n, err := cf.preadCached(p, off)
	cf.fs.hRead.Observe(time.Since(start))
	if err != nil {
		return n, err
	}
	cf.mu.Lock()
	n = cf.overlayDirty(p, off, n)
	cf.mu.Unlock()
	return n, err
}

// preadCached serves the clean view of the file: cached pages first,
// inner reads to fill.
func (cf *cacheFile) preadCached(p []byte, off int64) (int, error) {
	fs := cf.fs
	if fs.data == nil {
		//lint:ignore reslifetime ensureInner memoizes the handle on cf; cacheFile.Close releases it
		inner, err := cf.ensureInner()
		if err != nil {
			return 0, err
		}
		return inner.Pread(p, off)
	}
	pg := fs.opt.PageSize
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		idx := cur / pg
		inPage := cur % pg
		page, ok := fs.readPage(cf.path, idx)
		if !ok {
			fs.mu.Lock()
			fs.count(fs.cPageMisses, &fs.stats.s.PageMisses)
			cps, _ := fs.paths.Peek(cf.path)
			needLease := !fs.validLocked(cps, fs.opt.Clock())
			fs.mu.Unlock()
			if needLease {
				// Open the path's trust horizon before the fill, so
				// the page is cacheable the moment it lands.
				fs.lease(cf.path)
			}
			inner, err := cf.ensureInner()
			if err != nil {
				return total, err
			}
			page = make([]byte, pg)
			n, err := preadFull(inner, page, idx*pg)
			if err != nil {
				return total, err
			}
			page = page[:n]
			if idx == 0 && int64(n) < pg && fs.opt.Verify {
				// The file fits in one page: this fill is the whole
				// file, so it can be digest-checked end to end.
				if verr := fs.verifyFill(cf.path, page); verr != nil {
					return total, verr
				}
			}
			fs.storePage(cf.path, idx, page)
		} else {
			fs.mu.Lock()
			fs.count(fs.cPageHits, &fs.stats.s.PageHits)
			fs.mu.Unlock()
		}
		if inPage >= int64(len(page)) {
			// EOF inside this page.
			break
		}
		n := copy(p[total:], page[inPage:])
		total += n
		if int64(len(page)) < pg {
			// Short page: end of file.
			break
		}
	}
	return total, nil
}

// overlayDirty patches this handle's pending extent over a clean read.
// Caller holds cf.mu. Returns the possibly extended count.
func (cf *cacheFile) overlayDirty(p []byte, off int64, n int) int {
	if len(cf.dirty) == 0 {
		return n
	}
	dEnd := cf.dOff + int64(len(cf.dirty))
	rEnd := off + int64(len(p))
	if dEnd <= off || cf.dOff >= rEnd {
		return n
	}
	lo := cf.dOff
	if lo < off {
		lo = off
	}
	hi := dEnd
	if hi > rEnd {
		hi = rEnd
	}
	copy(p[lo-off:hi-off], cf.dirty[lo-cf.dOff:hi-cf.dOff])
	// A write past the clean EOF extends the visible length; any gap
	// between the clean end and the extent reads as zeros (the page
	// buffer p arrives zeroed only at fill, so clear it explicitly).
	if int64(n) < hi-off {
		for i := off + int64(n); i < lo; i++ {
			p[i-off] = 0
		}
		n = int(hi - off)
	}
	return n
}

// Pwrite writes through or buffers for write-back (vfs.File). A
// read-only handle answers EBADF up front, as the uncached stack
// would: buffering the bytes would strand them — a lazy read-only
// handle has no writable descriptor to flush through.
func (cf *cacheFile) Pwrite(p []byte, off int64) (int, error) {
	if !cf.writable {
		return 0, vfs.EBADF
	}
	if cf.writeThrough {
		//lint:ignore reslifetime ensureInner memoizes the handle on cf; cacheFile.Close releases it
		inner, err := cf.ensureInner()
		if err != nil {
			return 0, err
		}
		n, err := inner.Pwrite(p, off)
		cf.fs.wrote(cf.path)
		return n, err
	}
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if len(cf.dirty) > 0 && off != cf.dOff+int64(len(cf.dirty)) {
		// Non-contiguous: push the pending extent first.
		if err := cf.flushLocked(); err != nil {
			return 0, err
		}
	}
	if len(cf.dirty) == 0 {
		cf.dOff = off
	}
	cf.dirty = append(cf.dirty, p...)
	if int64(len(cf.dirty)) >= cf.fs.opt.FlushAt {
		if err := cf.flushLocked(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// flushLocked pushes the pending extent to the server. Caller holds
// cf.mu. Only writable handles accumulate dirty data (Pwrite rejects
// the rest with EBADF), and writable handles are always eagerly
// opened, so cf.inner is non-nil here.
func (cf *cacheFile) flushLocked() error {
	if len(cf.dirty) == 0 {
		return nil
	}
	err := vfs.WriteAll(cf.inner, cf.dirty, cf.dOff)
	cf.dirty = cf.dirty[:0]
	cf.fs.mu.Lock()
	cf.fs.count(cf.fs.cFlushes, &cf.fs.stats.s.Flushes)
	cf.fs.mu.Unlock()
	cf.fs.wrote(cf.path)
	return err
}

// flush pushes pending write-back data.
func (cf *cacheFile) flush() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.flushLocked()
}

// Fstat flushes pending writes so size and mtime are truthful, then
// asks the server (vfs.File). A still-lazy handle answers from the
// attr tier: the entry is valid by the lazy-open invariant, or a
// descriptor is materialized to re-fetch.
func (cf *cacheFile) Fstat() (vfs.FileInfo, error) {
	if err := cf.flush(); err != nil {
		return vfs.FileInfo{}, err
	}
	cf.mu.Lock()
	lazy := cf.inner == nil
	cf.mu.Unlock()
	if lazy {
		fs := cf.fs
		fs.mu.Lock()
		ps, _ := fs.paths.Get(cf.path)
		if ps != nil && ps.attr != nil && fs.validLocked(ps, fs.opt.Clock()) {
			fi := *ps.attr
			fs.count(fs.cAttrHits, &fs.stats.s.AttrHits)
			fs.mu.Unlock()
			return fi, nil
		}
		fs.mu.Unlock()
	}
	//lint:ignore reslifetime ensureInner memoizes the handle on cf; cacheFile.Close releases it
	inner, err := cf.ensureInner()
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return inner.Fstat()
}

// Ftruncate flushes, truncates, and invalidates (vfs.File).
func (cf *cacheFile) Ftruncate(size int64) error {
	if err := cf.flush(); err != nil {
		return err
	}
	//lint:ignore reslifetime ensureInner memoizes the handle on cf; cacheFile.Close releases it
	inner, err := cf.ensureInner()
	if err != nil {
		return err
	}
	err = inner.Ftruncate(size)
	cf.fs.wrote(cf.path)
	return err
}

// Sync flushes write-back data and forwards the barrier (vfs.File). A
// lazy handle has nothing in flight to sync.
func (cf *cacheFile) Sync() error {
	if err := cf.flush(); err != nil {
		return err
	}
	cf.mu.Lock()
	inner := cf.inner
	cf.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.Sync()
}

// Close flushes pending writes and closes the descriptor (vfs.File).
// The inner close always runs: a failed flush must not leak the
// server-side descriptor. A never-materialized lazy handle closes
// without a round trip.
func (cf *cacheFile) Close() error {
	ferr := cf.flush()
	cf.mu.Lock()
	inner := cf.inner
	cf.inner = nil
	cf.mu.Unlock()
	var cerr error
	if inner != nil {
		cerr = inner.Close()
	}
	if ferr != nil {
		return fmt.Errorf("cache: write-back flush on close: %w", ferr)
	}
	return cerr
}
