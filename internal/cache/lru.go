// Package cache provides the client-side caching tier: a shared
// size-aware LRU index and cache.FS, a vfs.FileSystem wrapper with
// lease-backed attribute, directory, and page caches (see DESIGN.md
// §14 for the consistency model).
package cache

// LRU is a size-aware, byte-budgeted LRU map: each entry carries a
// size, and inserting past the capacity evicts least-recently-used
// entries until the new one fits. Entries larger than the whole
// capacity are not cached at all. It is not safe for concurrent use;
// callers serialize access.
//
// It was promoted from the cluster simulator's private buffer-cache
// model so the data tier of cache.FS and the cluster model share one
// eviction policy.
type LRU[K comparable, V any] struct {
	capacity int64
	used     int64
	entries  map[K]*lruNode[K, V]
	head     *lruNode[K, V] // most recently used
	tail     *lruNode[K, V] // least recently used

	// OnEvict, if set, is called for every entry removed by capacity
	// eviction (not by Remove), after it has left the index.
	OnEvict func(key K, value V, size int64)
}

type lruNode[K comparable, V any] struct {
	key        K
	value      V
	size       int64
	prev, next *lruNode[K, V]
}

// NewLRU returns an empty LRU holding at most capacity bytes.
func NewLRU[K comparable, V any](capacity int64) *LRU[K, V] {
	return &LRU[K, V]{capacity: capacity, entries: make(map[K]*lruNode[K, V])}
}

func (c *LRU[K, V]) unlink(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU[K, V]) pushFront(n *lruNode[K, V]) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Touch reports whether key is cached, marking it most recently used
// if so.
func (c *LRU[K, V]) Touch(key K) bool {
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(n)
	c.pushFront(n)
	return true
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.unlink(n)
	c.pushFront(n)
	return n.value, true
}

// Peek returns the cached value for key without refreshing its
// recency.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	n, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.value, true
}

// Each calls fn for every entry, most recently used first, without
// refreshing recency. fn must not mutate the cache.
func (c *LRU[K, V]) Each(fn func(key K, value V)) {
	for n := c.head; n != nil; n = n.next {
		fn(n.key, n.value)
	}
}

// Put adds or refreshes key, evicting least-recently-used entries as
// needed. A re-Put of a present key updates its value and size and
// refreshes its recency. Entries larger than the whole capacity are
// not cached.
func (c *LRU[K, V]) Put(key K, value V, size int64) {
	if size > c.capacity {
		return
	}
	if n, ok := c.entries[key]; ok {
		c.used += size - n.size
		n.value, n.size = value, size
		c.unlink(n)
		c.pushFront(n)
		c.evictOver()
		return
	}
	n := &lruNode[K, V]{key: key, value: value, size: size}
	c.entries[n.key] = n
	c.pushFront(n)
	c.used += size
	c.evictOver()
}

// evictOver drops LRU entries until used fits the capacity, sparing
// the most-recently-used entry (the one a Put just installed).
func (c *LRU[K, V]) evictOver() {
	for c.used > c.capacity && c.tail != nil && c.tail != c.head {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.key)
		c.used -= evict.size
		if c.OnEvict != nil {
			c.OnEvict(evict.key, evict.value, evict.size)
		}
	}
}

// Remove drops key from the cache, reporting whether it was present.
// OnEvict is not called: the caller chose the removal.
func (c *LRU[K, V]) Remove(key K) bool {
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.entries, key)
	c.used -= n.size
	return true
}

// Used returns the bytes currently cached.
func (c *LRU[K, V]) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int { return len(c.entries) }
