package cache

import (
	"math/rand"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[int, struct{}](10)
	c.Put(1, struct{}{}, 4)
	c.Put(2, struct{}{}, 4)
	if !c.Touch(1) || !c.Touch(2) {
		t.Fatal("inserted entries missing")
	}
	// Recency is now 2 (MRU), 1 (LRU): the touches above reordered the
	// insertion order. Adding 3 (4 bytes) overflows the 10-byte budget,
	// so the least recently used entry — 1 — is evicted.
	c.Put(3, struct{}{}, 4)
	if c.Touch(1) {
		t.Error("LRU entry not evicted")
	}
	if !c.Touch(2) || !c.Touch(3) {
		t.Error("wrong entry evicted")
	}
	if c.Used() != 8 {
		t.Errorf("used = %d", c.Used())
	}
}

func TestLRUOversizedEntryNotCached(t *testing.T) {
	c := NewLRU[int, struct{}](10)
	c.Put(1, struct{}{}, 11)
	if c.Touch(1) || c.Used() != 0 {
		t.Error("oversized entry cached")
	}
}

func TestLRUReinsertRefreshes(t *testing.T) {
	c := NewLRU[int, struct{}](8)
	c.Put(1, struct{}{}, 4)
	c.Put(2, struct{}{}, 4)
	c.Put(1, struct{}{}, 4) // refresh, not duplicate
	if c.Used() != 8 || c.Len() != 2 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	c.Put(3, struct{}{}, 4) // now 2 is LRU
	if c.Touch(2) {
		t.Error("refresh did not update recency")
	}
	if !c.Touch(1) {
		t.Error("refreshed entry evicted")
	}
}

// Property: used never exceeds capacity under random operations.
func TestLRUCapacityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewLRU[int, struct{}](1000)
	for i := 0; i < 10000; i++ {
		id := rng.Intn(100)
		switch rng.Intn(2) {
		case 0:
			c.Put(id, struct{}{}, int64(rng.Intn(400)+1))
		case 1:
			c.Touch(id)
		}
		if c.Used() > 1000 {
			t.Fatalf("cache over capacity: %d", c.Used())
		}
	}
}

func TestLRUGetAndValues(t *testing.T) {
	c := NewLRU[string, []byte](16)
	c.Put("a", []byte("aaaa"), 4)
	c.Put("b", []byte("bbbb"), 4)
	v, ok := c.Get("a")
	if !ok || string(v) != "aaaa" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("Get on absent key succeeded")
	}
	// Re-Put with a new size adjusts the budget.
	c.Put("a", []byte("aaaaaaaa"), 8)
	if c.Used() != 12 {
		t.Errorf("used = %d after resize, want 12", c.Used())
	}
}

func TestLRUOnEvictAndRemove(t *testing.T) {
	var evicted []int
	c := NewLRU[int, struct{}](8)
	c.OnEvict = func(k int, _ struct{}, _ int64) { evicted = append(evicted, k) }
	c.Put(1, struct{}{}, 4)
	c.Put(2, struct{}{}, 4)
	c.Put(3, struct{}{}, 4) // evicts 1
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Errorf("evicted = %v, want [1]", evicted)
	}
	if !c.Remove(2) || c.Remove(2) {
		t.Error("Remove semantics wrong")
	}
	if len(evicted) != 1 {
		t.Errorf("Remove invoked OnEvict: %v", evicted)
	}
	if c.Used() != 4 || c.Len() != 1 {
		t.Errorf("used=%d len=%d after remove", c.Used(), c.Len())
	}
}
