package chirp

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// testServer spins up a server on a simulated network and returns a
// dialer for clients with a chosen host identity.
type testServer struct {
	srv *Server
	net *netsim.Network
}

func startServer(t *testing.T, rootACL *acl.List) *testServer {
	t.Helper()
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "fs.sim",
		Owner:     "hostname:owner.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		RootACL:   rootACL,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("fs.sim")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return &testServer{srv: srv, net: nw}
}

func (ts *testServer) client(t *testing.T, host string) *Client {
	t.Helper()
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom(host, "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientServerBasicCycle(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")

	if err := vfs.WriteFile(c, "/greeting", []byte("hello chirp"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(c, "/greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello chirp" {
		t.Errorf("read %q", data)
	}
	fi, err := c.Stat("/greeting")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 11 || fi.IsDir {
		t.Errorf("stat = %+v", fi)
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "greeting" {
		t.Errorf("readdir = %+v (ACL file must be hidden)", ents)
	}
	if err := c.Rename("/greeting", "/hi"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/hi"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/hi"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("stat after unlink = %v", err)
	}
}

func TestWhoamiAndStatFS(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	who, err := c.Whoami()
	if err != nil {
		t.Fatal(err)
	}
	if who != "hostname:owner.sim" {
		t.Errorf("whoami = %q", who)
	}
	info, err := c.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalBytes <= 0 {
		t.Errorf("statfs = %+v", info)
	}
}

func TestACLEnforcement(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:reader.sim", acl.R|acl.L, 0)
	rootACL.Set("hostname:writer.sim", acl.R|acl.W|acl.L, 0)
	ts := startServer(t, rootACL)

	owner := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(owner, "/data", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	reader := ts.client(t, "reader.sim")
	if _, err := vfs.ReadFile(reader, "/data"); err != nil {
		t.Errorf("reader denied read: %v", err)
	}
	if err := vfs.WriteFile(reader, "/new", []byte("x"), 0o644); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("reader write = %v, want EACCES", err)
	}
	if err := reader.Unlink("/data"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("reader unlink = %v, want EACCES", err)
	}
	if err := reader.SetACL("/", "hostname:reader.sim", "rwla"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("reader setacl = %v, want EACCES", err)
	}

	writer := ts.client(t, "writer.sim")
	if err := vfs.WriteFile(writer, "/new", []byte("y"), 0o644); err != nil {
		t.Errorf("writer denied write: %v", err)
	}

	stranger := ts.client(t, "evil.org")
	if _, err := vfs.ReadFile(stranger, "/data"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("stranger read = %v, want EACCES", err)
	}
	if _, err := stranger.ReadDir("/"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("stranger list = %v, want EACCES", err)
	}
}

// The paper's reservation scenario: a visiting user with only v(rwl)
// calls mkdir and receives a private directory with exactly rwl — and
// cannot extend access because A was omitted.
func TestReserveRight(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:*.cse.nd.edu", acl.V, acl.R|acl.W|acl.L)
	ts := startServer(t, rootACL)

	laptop := ts.client(t, "laptop.cse.nd.edu")
	if err := laptop.Mkdir("/backup", 0o755); err != nil {
		t.Fatalf("reserved mkdir: %v", err)
	}
	// The new directory belongs to the caller.
	if err := vfs.WriteFile(laptop, "/backup/img1", []byte("dump"), 0o644); err != nil {
		t.Errorf("creator denied write in reserved dir: %v", err)
	}
	lines, err := laptop.GetACL("/backup")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "hostname:laptop.cse.nd.edu rwl") {
		t.Errorf("reserved ACL = %q, want exactly creator rwl", joined)
	}
	// No A right: the creator cannot extend access to others.
	if err := laptop.SetACL("/backup", "hostname:friend.org", "rl"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("setacl without A = %v, want EACCES", err)
	}
	// Another visitor cannot see inside.
	other := ts.client(t, "desk.cse.nd.edu")
	if _, err := other.ReadDir("/backup"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("other visitor list = %v, want EACCES", err)
	}
	// But can reserve their own space.
	if err := other.Mkdir("/scratch", 0o755); err != nil {
		t.Errorf("second reservation: %v", err)
	}
	// A visitor with only V cannot create files at the root itself.
	if err := vfs.WriteFile(other, "/toplevel", []byte("x"), 0o644); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("V-only root write = %v, want EACCES", err)
	}
}

// Reservation with the A sub-right allows delegation, as in the paper's
// globus:/O=Notre_Dame/* v(rwla) example.
func TestReserveWithAdminDelegates(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:*.nd.edu", acl.V, acl.R|acl.W|acl.L|acl.A)
	ts := startServer(t, rootACL)

	alice := ts.client(t, "alice.nd.edu")
	if err := alice.Mkdir("/proj", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := alice.SetACL("/proj", "hostname:bob.example.org", "rl"); err != nil {
		t.Fatalf("delegation with A right failed: %v", err)
	}
	bob := ts.client(t, "bob.example.org")
	if _, err := bob.ReadDir("/proj"); err != nil {
		t.Errorf("delegated reader denied: %v", err)
	}
}

func TestMkdirInheritsACL(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:writer.sim", acl.R|acl.W|acl.L, 0)
	ts := startServer(t, rootACL)
	w := ts.client(t, "writer.sim")
	if err := w.Mkdir("/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	// Ordinary mkdir copies the parent policy: writer still has rwl.
	if err := vfs.WriteFile(w, "/sub/f", []byte("z"), 0o644); err != nil {
		t.Errorf("write in inherited dir: %v", err)
	}
}

func TestDeleteRight(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:janitor.sim", acl.L|acl.D, 0)
	ts := startServer(t, rootACL)
	owner := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(owner, "/junk", []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := ts.client(t, "janitor.sim")
	// D grants delete but not read or write.
	if _, err := vfs.ReadFile(j, "/junk"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("janitor read = %v, want EACCES", err)
	}
	if err := vfs.WriteFile(j, "/junk2", []byte("x"), 0o644); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("janitor write = %v, want EACCES", err)
	}
	if err := j.Unlink("/junk"); err != nil {
		t.Errorf("janitor unlink with D right: %v", err)
	}
}

func TestGetPutFile(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64<<10/16*3) // 192 KiB
	if err := c.PutFile("/blob", 0o644, int64(len(payload)), bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, err := c.GetFile("/blob", &sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) || !bytes.Equal(sink.Bytes(), payload) {
		t.Errorf("getfile returned %d bytes, corrupt=%v", n, !bytes.Equal(sink.Bytes(), payload))
	}
}

func TestACLFileIsUnreachable(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if _, err := c.Open("/"+ACLFileName, vfs.O_RDONLY, 0); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("open .__acl = %v, want EACCES", err)
	}
	if err := c.Unlink("/" + ACLFileName); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("unlink .__acl = %v, want EACCES", err)
	}
	if err := c.Rename("/"+ACLFileName, "/stolen"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("rename .__acl = %v, want EACCES", err)
	}
}

func TestRmdirTreatsACLOnlyDirAsEmpty(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/d"); err != nil {
		t.Fatalf("rmdir of dir holding only its ACL: %v", err)
	}
	if err := c.Mkdir("/d2", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/d2/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/d2"); vfs.AsErrno(err) != vfs.ENOTEMPTY {
		t.Errorf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
}

// §4: "a file descriptor returned by open is only valid for the
// duration of the connection" — after a reconnect, old descriptors
// fence with ENOTCONN and the server has released its state.
func TestFDInvalidAfterReconnect(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.Pread(buf, 0); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("pread on stale fd = %v, want ENOTCONN", err)
	}
	// The client itself is fine after reconnecting.
	if _, err := c.Stat("/f"); err != nil {
		t.Errorf("stat after reconnect: %v", err)
	}
}

func TestOpsAfterCloseReturnENOTCONN(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	c.Close()
	if _, err := c.Stat("/"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("stat after close = %v, want ENOTCONN", err)
	}
}

func TestMaxFDs(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "fs.sim",
		Owner:     "hostname:owner.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		MaxFDs:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("fs.sim")
	defer l.Close()
	go srv.Serve(l)
	c, err := Dial(ClientConfig{
		Dial:        func() (net.Conn, error) { return nw.DialFrom("owner.sim", "fs.sim", netsim.Loopback) },
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var files []vfs.File
	for i := 0; i < 4; i++ {
		f, err := c.Open(fmt.Sprintf("/f%d", i), vfs.O_WRONLY|vfs.O_CREAT, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if _, err := c.Open("/overflow", vfs.O_WRONLY|vfs.O_CREAT, 0o644); vfs.AsErrno(err) != vfs.EMFILE {
		t.Errorf("open beyond MaxFDs = %v, want EMFILE", err)
	}
	files[0].Close()
	if _, err := c.Open("/ok", vfs.O_WRONLY|vfs.O_CREAT, 0o644); err != nil {
		t.Errorf("open after close = %v", err)
	}
}

func TestExclusiveCreate(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	f, err := c.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := c.Open("/x", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_EXCL, 0o644); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("second exclusive create = %v, want EEXIST", err)
	}
}

func TestLargeTransferSplitsChunks(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	payload := make([]byte, 3<<20) // larger than one protocol I/O would carry comfortably
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := vfs.WriteFile(c, "/big", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(c, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large transfer corrupted")
	}
}

func TestServerOverTCP(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "localhost",
		Owner:     "hostname:localhost",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	c, err := DialTCP(l.Addr().String(), []auth.Credential{auth.HostnameCredential{}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := vfs.WriteFile(c, "/t", []byte("tcp works"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(c, "/t")
	if err != nil || string(data) != "tcp works" {
		t.Fatalf("tcp cycle: %q, %v", data, err)
	}
	if c.Subject() != "hostname:localhost" {
		t.Errorf("subject over TCP = %q", c.Subject())
	}
}

func TestStatRequiresListRight(t *testing.T) {
	rootACL := &acl.List{}
	rootACL.Set("hostname:blind.sim", acl.R, 0) // read but not list
	ts := startServer(t, rootACL)
	owner := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(owner, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	blind := ts.client(t, "blind.sim")
	if _, err := blind.Stat("/f"); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("stat without L = %v, want EACCES", err)
	}
	// But reading works: R does not imply L.
	if _, err := vfs.ReadFile(blind, "/f"); err != nil {
		t.Errorf("read with R = %v", err)
	}
}

func TestServerStatsCount(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	before := ts.srv.Stats.Requests.Load()
	c.Stat("/")
	c.Stat("/")
	if got := ts.srv.Stats.Requests.Load() - before; got < 2 {
		t.Errorf("requests counted = %d, want >= 2", got)
	}
	if ts.srv.Stats.Connections.Load() < 1 {
		t.Error("connections not counted")
	}
}
