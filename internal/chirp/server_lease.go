package chirp

// Server-side read leases (DESIGN.md §14). A lease is a named promise
// that the holder may serve cached data for one path until the TTL
// elapses. The server does not push revocations: every path carries a
// version counter bumped on each conflicting mutation, the grant
// response carries the version, and a holder revalidates by leasing
// again — an unchanged version proves every cached byte and attribute
// for the path is still current. Staleness is therefore bounded by the
// TTL even across partitions, with no callback channel to lose.

import (
	"bufio"
	"fmt"
	"sync"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

// DefaultLeaseTTL bounds how long a client may trust cached data
// without revalidation when ServerConfig.LeaseTTL is zero. Short by
// design: a partitioned cache holder goes stale for at most this long.
const DefaultLeaseTTL = 2 * time.Second

// leaseEntry is one outstanding read lease.
type leaseEntry struct {
	id      int64
	path    string
	subject auth.Subject
	expiry  time.Time
}

// leaseTable is the server's lease state: outstanding grants indexed
// by ID and by path, plus the per-path version counters that make
// renewal a cheap revalidation.
type leaseTable struct {
	mu      sync.Mutex
	ttl     time.Duration
	nextID  int64
	byID    map[int64]*leaseEntry
	byPath  map[string]map[int64]*leaseEntry
	version map[string]int64
	// nextVer is the global change counter versions are drawn from, so
	// a path's version never repeats even across unlink/recreate. It is
	// seeded with the boot timestamp: version state is in-memory, and a
	// restarted server must never re-issue a version number a client
	// cached before the restart — a replayed number would falsely
	// revalidate data mutated while the table was empty.
	nextVer int64
	// base is the seed itself: the version reported for a path that has
	// not been mutated since boot. Two boots get two bases, so the
	// untouched-path version also never matches across a restart.
	base int64
}

func (t *leaseTable) init(ttl time.Duration) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	t.ttl = ttl
	t.byID = make(map[int64]*leaseEntry)
	t.byPath = make(map[string]map[int64]*leaseEntry)
	t.version = make(map[string]int64)
	t.base = time.Now().UnixNano()
	t.nextVer = t.base
}

// grant issues a lease on path to subject, purging that path's expired
// leases while it holds the lock.
func (t *leaseTable) grant(path string, subject auth.Subject) (id, version int64, ttl time.Duration) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, e := range t.byPath[path] {
		if now.After(e.expiry) {
			delete(t.byPath[path], id)
			delete(t.byID, id)
		}
	}
	t.nextID++
	e := &leaseEntry{id: t.nextID, path: path, subject: subject, expiry: now.Add(t.ttl)}
	t.byID[e.id] = e
	if t.byPath[path] == nil {
		t.byPath[path] = make(map[int64]*leaseEntry)
	}
	t.byPath[path][e.id] = e
	v, ok := t.version[path]
	if !ok {
		v = t.base
	}
	return e.id, v, t.ttl
}

// release drops one lease early. Any authenticated subject may release
// only its own leases; a pool routes the release over any member
// connection, so ownership is by subject, not by session.
func (t *leaseTable) release(id int64, subject auth.Subject) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	if !ok {
		return vfs.EBADF
	}
	if e.subject != subject {
		return vfs.EACCES
	}
	t.drop(e)
	return nil
}

// releaseOwned drops a session's remaining grants at disconnect; per
// the paper's failure semantics all per-connection state dies with the
// connection.
func (t *leaseTable) releaseOwned(ids map[int64]struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range ids {
		if e, ok := t.byID[id]; ok {
			t.drop(e)
		}
	}
}

// pruneOwned removes from ids every grant the table no longer needs:
// IDs already gone (released over another pool connection, or broken
// by a write) leave ids, and expired grants leave both ids and the
// table. Without this a long-lived connection whose renewals grant on
// it while the releases ride other pool members accumulates dead IDs
// for the connection's lifetime.
func (t *leaseTable) pruneOwned(ids map[int64]struct{}) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range ids {
		e, ok := t.byID[id]
		if !ok {
			delete(ids, id)
			continue
		}
		if now.After(e.expiry) {
			t.drop(e)
			delete(ids, id)
		}
	}
}

// drop removes e from both indexes. Caller holds t.mu.
func (t *leaseTable) drop(e *leaseEntry) {
	delete(t.byID, e.id)
	if m := t.byPath[e.path]; m != nil {
		delete(m, e.id)
		if len(m) == 0 {
			delete(t.byPath, e.path)
		}
	}
}

// bump records a conflicting mutation of path: the version advances
// (from the global counter) and every outstanding lease on the path is
// broken. It returns how many unexpired leases were broken, for the
// chirp_server.lease_breaks counter.
func (t *leaseTable) bump(path string) int {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextVer++
	t.version[path] = t.nextVer
	broken := 0
	for _, e := range t.byPath[path] {
		if !now.After(e.expiry) {
			broken++
		}
		delete(t.byID, e.id)
	}
	delete(t.byPath, path)
	return broken
}

// breakLeases is the mutation hook: every handler that changes a
// path's data, attributes, or its directory's entry list calls it with
// the affected paths before acknowledging the write, so no client can
// revalidate stale data after the server accepted a conflicting
// mutation.
func (s *Server) breakLeases(paths ...string) {
	for _, p := range paths {
		if n := s.leases.bump(p); n > 0 {
			s.Stats.LeaseBreaks.Add(int64(n))
			s.mLeaseBreaks.Add(int64(n))
		}
	}
}

func (ss *session) handleLease(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	// The same bar as stat: a lease only reveals that something about
	// the path changed, which is metadata visibility.
	if err := ss.srv.checkParent(ss.subject, path, acl.L); err != nil {
		return ss.respondErr(bw, err)
	}
	id, version, ttl := ss.srv.leases.grant(path, ss.subject)
	if ss.leases == nil {
		ss.leases = make(map[int64]struct{})
	}
	// Grant time is when this session's ledger gets trued up: IDs
	// released over other pool connections or expired since the last
	// grant are dropped, so the map tracks only live grants. The cost
	// is O(live leases), bounded by this very pruning.
	ss.srv.leases.pruneOwned(ss.leases)
	ss.leases[id] = struct{}{}
	ss.srv.Stats.LeaseGrants.Add(1)
	ss.srv.mLeaseGrants.Inc()
	if err := respondCode(bw, 0); err != nil {
		return err
	}
	_, err = fmt.Fprintf(bw, "%d %d %d\n", id, ttl.Milliseconds(), version)
	return err
}

func (ss *session) handleLeasebreak(req *proto.Request, bw *bufio.Writer) error {
	err := ss.srv.leases.release(req.FD, ss.subject)
	delete(ss.leases, req.FD)
	return ss.respondErr(bw, err)
}
