package chirp

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/netsim"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// pool dials a pooled transport against the test server over unshaped
// links.
func (ts *testServer) pool(t *testing.T, host string, size int, idle time.Duration) *Pool {
	return ts.poolOn(t, host, size, idle, netsim.Loopback)
}

// poolOn dials a pooled transport through links with the given profile.
func (ts *testServer) poolOn(t *testing.T, host string, size int, idle time.Duration, prof netsim.LinkProfile) *Pool {
	t.Helper()
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom(host, "fs.sim", prof)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    size,
		IdleTimeout: idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// preadAll reads the whole file through f in one Pread.
func preadAll(t *testing.T, f vfs.File, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got, err := f.Pread(buf, 0)
	if err != nil {
		t.Fatalf("pread: %v", err)
	}
	return buf[:got]
}

// Descriptor RPCs must travel on the connection that opened the fd:
// every server session numbers descriptors from 1 independently, so the
// same fd number names a different file on every pooled connection. A
// misrouted pread would read the wrong file's bytes.
func TestPoolFDAffinity(t *testing.T) {
	ts := startServer(t, nil)
	single := ts.client(t, "owner.sim")
	p := ts.pool(t, "owner.sim", 4, 0)

	const files = 8
	contents := make([][]byte, files)
	for i := 0; i < files; i++ {
		contents[i] = bytes.Repeat([]byte{byte('a' + i)}, 512)
		if err := vfs.WriteFile(single, fmt.Sprintf("/f%d", i), contents[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Holding every file open forces the pool to spread descriptors
	// across members (open placement is least-loaded), guaranteeing
	// colliding fd numbers on different connections.
	fds := make([]vfs.File, files)
	for i := range fds {
		f, err := p.Open(fmt.Sprintf("/f%d", i), vfs.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		fds[i] = f
	}
	if got := p.Conns(); got < 2 {
		t.Fatalf("pool did not grow under descriptor load: %d conns", got)
	}

	for i, f := range fds {
		if got := preadAll(t, f, 1024); !bytes.Equal(got, contents[i]) {
			t.Errorf("fd %d read %q..., want %q...", i, got[:8], contents[i][:8])
		}
		fi, err := f.Fstat()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Name != fmt.Sprintf("f%d", i) || fi.Size != 512 {
			t.Errorf("fd %d fstat = %+v", i, fi)
		}
	}
	for _, f := range fds {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// A member connection dropping mid-use fences only that member's
// descriptors; files opened on other members keep working, and
// Reconnect repairs exactly the dead member.
func TestPoolAffinitySurvivesMemberDrop(t *testing.T) {
	ts := startServer(t, nil)
	single := ts.client(t, "owner.sim")
	p := ts.pool(t, "owner.sim", 2, 0)

	if err := vfs.WriteFile(single, "/a", []byte("alpha-data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(single, "/b", []byte("bravo-data"), 0o644); err != nil {
		t.Fatal(err)
	}
	fa, err := p.Open("/a", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := p.Open("/b", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := fa.(*poolFile).m, fb.(*poolFile).m
	if ma == mb {
		t.Fatal("both descriptors placed on one member; cannot exercise isolation")
	}

	// Sever member A's transport out from under it, as a network
	// partition would.
	ma.c.mu.Lock()
	conn := ma.c.conn
	ma.c.mu.Unlock()
	conn.Close()

	if _, err := fa.Pread(make([]byte, 16), 0); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Fatalf("pread on severed member = %v, want ENOTCONN", err)
	}
	// The other member's descriptor is untouched.
	if got := preadAll(t, fb, 64); string(got) != "bravo-data" {
		t.Errorf("healthy member read %q", got)
	}
	if got := p.Conns(); got != 1 {
		t.Fatalf("after drop: %d live conns, want 1", got)
	}

	if err := p.Reconnect(); err != nil {
		t.Fatalf("Reconnect = %v", err)
	}
	if got := p.Conns(); got != 2 {
		t.Fatalf("after repair: %d live conns, want 2", got)
	}
	// Generation fencing: the old descriptor stays dead after repair...
	if _, err := fa.Pread(make([]byte, 16), 0); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("stale fd after reconnect = %v, want ENOTCONN", err)
	}
	// ...and the healthy member's descriptor still works.
	if got := preadAll(t, fb, 64); string(got) != "bravo-data" {
		t.Errorf("healthy member read after repair %q", got)
	}
	// Re-opening on the repaired pool works.
	fa2, err := p.Open("/a", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := preadAll(t, fa2, 64); string(got) != "alpha-data" {
		t.Errorf("reopened read %q", got)
	}
	fa.Close()
	fb.Close()
	fa2.Close()
}

// Eight goroutines hammer open/pread/close and stateless RPCs through
// one pool; run under -race this is the dispatcher's data-race and
// accounting test.
func TestPoolConcurrentStorm(t *testing.T) {
	ts := startServer(t, nil)
	single := ts.client(t, "owner.sim")
	// A latency-shaped link keeps members visibly busy, so the storm
	// also exercises lazy growth concurrent with dispatch.
	p := ts.poolOn(t, "owner.sim", 4, 0, netsim.LinkProfile{Latency: 500 * time.Microsecond})

	const files = 4
	contents := make([][]byte, files)
	for i := 0; i < files; i++ {
		contents[i] = bytes.Repeat([]byte{byte('A' + i)}, 256)
		if err := vfs.WriteFile(single, fmt.Sprintf("/s%d", i), contents[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("/s%d", (g+i)%files)
				if i%5 == 0 {
					if _, err := p.Stat(name); err != nil {
						errs[g] = fmt.Errorf("stat: %w", err)
						return
					}
					continue
				}
				f, err := p.Open(name, vfs.O_RDONLY, 0)
				if err != nil {
					errs[g] = fmt.Errorf("open: %w", err)
					return
				}
				buf := make([]byte, 512)
				n, err := f.Pread(buf, 0)
				if err != nil {
					f.Close()
					errs[g] = fmt.Errorf("pread: %w", err)
					return
				}
				if !bytes.Equal(buf[:n], contents[(g+i)%files]) {
					f.Close()
					errs[g] = fmt.Errorf("goroutine %d iter %d: misrouted read", g, i)
					return
				}
				if err := f.Close(); err != nil {
					errs[g] = fmt.Errorf("close: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Conns(); got < 2 || got > 4 {
		t.Errorf("pool size after storm = %d, want 2..4", got)
	}
	// All placement accounting must have drained back to zero.
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, m := range p.members {
		if m.inflight != 0 || m.openFDs != 0 {
			t.Errorf("member %d: inflight=%d openFDs=%d after storm", i, m.inflight, m.openFDs)
		}
	}
}

// Graceful server drain completes while a grown pool sits idle: the
// drain machinery nudges idle connections closed rather than waiting
// them out, and no connection is force-closed.
func TestPoolDrainClosesIdleMembers(t *testing.T) {
	ts := startServer(t, nil)
	single := ts.client(t, "owner.sim")
	p := ts.pool(t, "owner.sim", 3, 0)

	if err := vfs.WriteFile(single, "/d", []byte("drain"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Grow the pool by holding descriptors open, then release them so
	// every member is idle.
	var fds []vfs.File
	for i := 0; i < 3; i++ {
		f, err := p.Open("/d", vfs.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, f)
	}
	if got := p.Conns(); got != 3 {
		t.Fatalf("pool grew to %d conns, want 3", got)
	}
	for _, f := range fds {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	single.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with idle pool = %v", err)
	}
	if forced := ts.srv.Stats.DrainForced.Load(); forced != 0 {
		t.Errorf("drain force-closed %d connections, want 0", forced)
	}
	// The pool notices on next use.
	if _, err := p.Stat("/d"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("stat after drain = %v, want ENOTCONN", err)
	}
}

// Surplus members idle past IdleTimeout are reaped back to one
// connection; the pool regrows on demand afterwards.
func TestPoolIdleReap(t *testing.T) {
	ts := startServer(t, nil)
	single := ts.client(t, "owner.sim")
	p := ts.pool(t, "owner.sim", 4, 50*time.Millisecond)

	if err := vfs.WriteFile(single, "/r", []byte("reap"), 0o644); err != nil {
		t.Fatal(err)
	}
	var fds []vfs.File
	for i := 0; i < 4; i++ {
		f, err := p.Open("/r", vfs.O_RDONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		fds = append(fds, f)
	}
	if got := p.Conns(); got != 4 {
		t.Fatalf("pool grew to %d conns, want 4", got)
	}
	for _, f := range fds {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	time.Sleep(80 * time.Millisecond)
	// Reaping is opportunistic: the next released RPC sweeps the idle
	// surplus.
	if _, err := p.Stat("/r"); err != nil {
		t.Fatal(err)
	}
	if got := p.Conns(); got != 1 {
		t.Errorf("after idle reap: %d conns, want 1", got)
	}
	// The pool still works and can regrow.
	f, err := p.Open("/r", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := preadAll(t, f, 16); string(got) != "reap" {
		t.Errorf("read after reap = %q", got)
	}
	f.Close()
}

// An RPC verb missing from the pre-resolved rpcVerbs set must still be
// observed: the old code indexed the histogram map to a nil entry and
// silently dropped the sample.
func TestObserveRPCUnknownVerb(t *testing.T) {
	ts := startServer(t, nil)
	reg := obs.NewRegistry()
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	c.observeRPC("frobnicate", start, nil)
	c.observeRPC("frobnicate", start, nil) // cached lazy histogram
	snap := reg.Snapshot()
	h, ok := snap.Histograms["chirp_client.rpc.frobnicate"]
	if !ok {
		t.Fatal("unknown verb was not lazily registered")
	}
	if h.Count != 2 {
		t.Errorf("unknown-verb observations = %d, want 2", h.Count)
	}
	// Known verbs still take the pre-resolved path.
	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); snap.Histograms["chirp_client.rpc.stat"].Count == 0 {
		t.Error("known verb not observed")
	}
}

// Whole-file transfers over real TCP exercise the server's zero-copy
// bulk path (io.Copy onto the raw *net.TCPConn); the data must survive
// the round trip bit-exact and the fast path must actually engage.
func TestPoolBulkOverTCP(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "localhost",
		Owner:     "hostname:localhost",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Large enough to span many protocol buffers; odd size to catch
	// off-by-one framing.
	payload := bytes.Repeat([]byte("bulk-data-path!"), 70000)[:1<<20+3]
	if err := p.PutFile("/bulk", 0o644, int64(len(payload)), bytes.NewReader(payload)); err != nil {
		t.Fatalf("putfile: %v", err)
	}
	var got bytes.Buffer
	n, err := p.GetFile("/bulk", &got)
	if err != nil {
		t.Fatalf("getfile: %v", err)
	}
	if n != int64(len(payload)) || !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("bulk round trip corrupted: n=%d want %d", n, len(payload))
	}
	if fast := reg.Snapshot().Counters["chirp_server.bulk_fastpath"]; fast < 2 {
		t.Errorf("bulk fast path engaged %d times, want >= 2 (putfile + getfile)", fast)
	}
}
