package chirp

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"io"

	"tss/internal/acl"
	"tss/internal/chirp/proto"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// The digest RPCs: checksum computes a file's digest server-side;
// getfilesum/putfilesum are getfile/putfile with a digest trailer line
// after the body, so the receiver can verify every byte that crossed
// the wire. They are separate verbs rather than flags on the old ones
// so that an old server answers EINVAL with its framing intact and the
// client can fall back (see Client.noSums).

// handleChecksum computes a file digest where the data lives — one
// round trip instead of shipping the file.
func (ss *session) handleChecksum(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.R); err != nil {
		return ss.respondErr(bw, err)
	}
	sum, err := ss.srv.fs.Checksum(path, req.Algo)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	raw, err := hex.DecodeString(sum)
	if err != nil {
		return ss.respondErr(bw, vfs.EIO)
	}
	if err := respondCode(bw, 0); err != nil {
		return err
	}
	ss.scratch = append(proto.AppendDigestTrailer(ss.scratch[:0], req.Algo, raw), '\n')
	_, err = bw.Write(ss.scratch)
	return err
}

// handleGetfilesum streams the file body followed by a digest trailer.
// Unlike getfile it cannot use the sendfile fast path — the digest must
// see every byte — so the body is pumped through the buffered path with
// the hasher teed in; it remains one pass and one round trip.
func (ss *session) handleGetfilesum(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	h, err := vfs.NewHash(req.Algo)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.R); err != nil {
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	defer f.Close()
	fi, err := f.Fstat()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, fi.Size); err != nil {
		return err
	}
	// Exactly fi.Size bytes were promised; a concurrently shrinking file
	// is zero-padded (and the padding is hashed: the digest covers what
	// was sent, which is the contract).
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	var off int64
	for off < fi.Size {
		if ss.deadlineLapsed() {
			return ss.abortStream()
		}
		want := int64(len(buf))
		if fi.Size-off < want {
			want = fi.Size - off
		}
		n, err := f.Pread(buf[:want], off)
		if err != nil {
			return err
		}
		if n == 0 {
			for i := range buf[:want] {
				buf[i] = 0
			}
			n = int(want)
		}
		h.Write(buf[:n])
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		off += int64(n)
		ss.srv.Stats.BytesRead.Add(int64(n))
		ss.srv.mBytesRead.Add(int64(n))
	}
	ss.scratch = append(proto.AppendDigestTrailer(ss.scratch[:0], req.Algo, h.Sum(nil)), '\n')
	_, err = bw.Write(ss.scratch)
	return err
}

// handlePutfilesum is a two-phase putfile with verification. Phase 1
// validates path, rights, and algorithm and answers a ready line (0)
// before the client commits any body bytes — which is what lets a
// client probe a server that predates the verb: an old server answers
// EINVAL to the bare request line and no body is ever sent, so the
// stream stays in sync. Phase 2 receives body plus digest trailer; on
// mismatch the file is unlinked and the client gets EBADMSG, so a torn
// transfer never survives at rest.
func (ss *session) handlePutfilesum(req *proto.Request, br *bufio.Reader, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Length < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	h, err := vfs.NewHash(req.Algo)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, uint32(req.Mode))
	if err != nil {
		return ss.respondErr(bw, err)
	}
	// Created or truncated: break leases before any acknowledgement.
	ss.srv.breakLeases(path, pathutil.Dir(path))
	if err := respondCode(bw, 0); err != nil {
		f.Close()
		return err
	}
	// The client waits for the ready line before streaming.
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	var off int64
	var writeErr error
	for off < req.Length {
		if ss.deadlineLapsed() {
			f.Close()
			return ss.abortStream()
		}
		want := int64(len(buf))
		if req.Length-off < want {
			want = req.Length - off
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			f.Close()
			return err
		}
		h.Write(buf[:want])
		if writeErr == nil {
			// A failed write (disk full) stops writing but keeps
			// draining body and trailer: the stream must stay in sync.
			writeErr = vfs.WriteAll(f, buf[:want], off)
		}
		off += want
		ss.srv.Stats.BytesWriten.Add(want)
		ss.srv.mBytesWritten.Add(want)
	}
	line, err := proto.ReadLine(br)
	if err != nil {
		f.Close()
		return err
	}
	algo, sum, perr := proto.ParseDigestTrailer(line)
	closeErr := f.Close()
	if writeErr == nil {
		writeErr = closeErr
	}
	if writeErr != nil {
		ss.srv.fs.Unlink(path)
		return ss.respondErr(bw, writeErr)
	}
	if perr != nil || algo != req.Algo || !bytes.Equal(sum, h.Sum(nil)) {
		ss.srv.fs.Unlink(path)
		return ss.respondErr(bw, vfs.EBADMSG)
	}
	return respondCode(bw, req.Length)
}
