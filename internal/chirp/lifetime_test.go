package chirp

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/netsim"
)

// closeCountConn records whether Close was called on the underlying
// transport, so tests can pin the connection lifetime on failed dials.
type closeCountConn struct {
	net.Conn
	closed *atomic.Bool
}

func (c closeCountConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// TestDialClosesConnOnAuthFailure pins Reconnect's error path: when
// the transport comes up but the authentication dialog fails (here, a
// client with no credentials at all), the freshly dialed connection
// must be closed before Dial reports the error. Retry loops around
// Dial would otherwise accumulate one half-open socket per attempt.
func TestDialClosesConnOnAuthFailure(t *testing.T) {
	ts := startServer(t, nil)
	var closed atomic.Bool
	_, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			conn, err := ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
			if err != nil {
				return nil, err
			}
			return closeCountConn{Conn: conn, closed: &closed}, nil
		},
		Credentials: nil, // no credential can satisfy the verifier
		Timeout:     5 * time.Second,
	})
	if err == nil {
		t.Fatal("Dial with no credentials succeeded, want auth failure")
	}
	if !closed.Load() {
		t.Error("dialed connection left open after authentication failure")
	}
}

// TestDialKeepsConnOnSuccess is the success-path complement: a clean
// handshake must leave the transport open and owned by the client
// until Close.
func TestDialKeepsConnOnSuccess(t *testing.T) {
	ts := startServer(t, nil)
	var closed atomic.Bool
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			conn, err := ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
			if err != nil {
				return nil, err
			}
			return closeCountConn{Conn: conn, closed: &closed}, nil
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Load() {
		t.Fatal("transport closed during a successful handshake")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !closed.Load() {
		t.Error("client Close did not release the transport")
	}
}
