package chirp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/faultfs"
	"tss/internal/netsim"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// partPayload builds a deterministic test body.
func partPayload(size int) []byte {
	rng := rand.New(rand.NewSource(int64(size) ^ 0x9e37))
	p := make([]byte, size)
	rng.Read(p)
	return p
}

// localEndpoint wraps a temp-dir file as a copy-engine endpoint.
func localEndpoint(t *testing.T, name string, data []byte) vfs.Loc {
	t.Helper()
	dir := t.TempDir()
	if data != nil {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := vfs.NewLocalFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	return vfs.Loc{FS: fs, Path: "/" + name}
}

// TestPartVerbsRoundTrip drives the raw multipart verbs: begin, two
// digested chunks, a composed-sum completion, then offset reads with
// per-chunk digest trailers.
func TestPartVerbsRoundTrip(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	data := partPayload(100_000)
	half := int64(len(data) / 2)

	if err := c.PutBegin("/mp", 0o644, int64(len(data))); err != nil {
		t.Fatalf("putbegin: %v", err)
	}
	// Chunks written out of order: offset addressing must not care.
	sum2, err := c.PutPart("/mp", half, int64(len(data))-half, "crc32c", bytes.NewReader(data[half:]))
	if err != nil {
		t.Fatalf("putpart 2: %v", err)
	}
	sum1, err := c.PutPart("/mp", 0, half, "crc32c", bytes.NewReader(data[:half]))
	if err != nil {
		t.Fatalf("putpart 1: %v", err)
	}
	c1, err := vfs.ParseCRC32C(sum1)
	if err != nil {
		t.Fatalf("chunk sum 1 unparseable: %v", err)
	}
	c2, err := vfs.ParseCRC32C(sum2)
	if err != nil {
		t.Fatalf("chunk sum 2 unparseable: %v", err)
	}
	composed := vfs.CombineCRC32C(c1, c2, int64(len(data))-half)
	if composed != vfs.CRC32C(0, data) {
		t.Fatal("server chunk digests do not compose to the whole-file digest")
	}
	if err := c.PutComplete("/mp", int64(len(data)), "crc32c", vfs.FormatCRC32C(composed)); err != nil {
		t.Fatalf("putcomplete: %v", err)
	}

	var got bytes.Buffer
	n, sum, err := c.GetPart("/mp", half, int64(len(data))-half, "crc32c", &got)
	if err != nil {
		t.Fatalf("getpart: %v", err)
	}
	if n != int64(len(data))-half || !bytes.Equal(got.Bytes(), data[half:]) {
		t.Fatalf("getpart returned %d bytes, mismatch=%v", n, !bytes.Equal(got.Bytes(), data[half:]))
	}
	if sum != sum2 {
		t.Errorf("getpart digest %s, want %s", sum, sum2)
	}
	// Reads past EOF clamp; a zero-length probe succeeds with no body.
	if n, _, err := c.GetPart("/mp", int64(len(data))+5, 10, "", &bytes.Buffer{}); err != nil || n != 0 {
		t.Errorf("past-EOF getpart = (%d, %v), want (0, nil)", n, err)
	}
	if _, _, err := c.GetPart("/mp", 0, 0, "", &bytes.Buffer{}); err != nil {
		t.Errorf("zero-length probe getpart = %v", err)
	}
}

// TestMultipartCopyThroughPool runs the full engine both directions
// through a pooled transport, verified, with chunk sizes that force
// many parts.
func TestMultipartCopyThroughPool(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	data := partPayload(300_000)
	opts := vfs.CopyOptions{Concurrency: 4, ChunkSize: 64 << 10, Verify: true}

	src := localEndpoint(t, "up.bin", data)
	n, err := vfs.Copy(context.Background(), vfs.Loc{FS: p, Path: "/up"}, src, opts)
	if err != nil {
		t.Fatalf("multipart put: %v", err)
	}
	if n != int64(len(data)) {
		t.Errorf("put copied %d, want %d", n, len(data))
	}

	dst := localEndpoint(t, "down.bin", nil)
	n, err = vfs.Copy(context.Background(), dst, vfs.Loc{FS: p, Path: "/up"}, opts)
	if err != nil {
		t.Fatalf("multipart get: %v", err)
	}
	if n != int64(len(data)) {
		t.Errorf("get copied %d, want %d", n, len(data))
	}
	got, err := vfs.ReadFile(dst.FS, dst.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip through pooled multipart corrupted the payload")
	}
}

// TestMultipartSingleMemberPool degrades gracefully: one pooled
// connection serializes the chunks but the transfer still completes.
func TestMultipartSingleMemberPool(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	data := partPayload(200_000)
	src := localEndpoint(t, "one.bin", data)
	if _, err := vfs.Copy(context.Background(), vfs.Loc{FS: p, Path: "/one"}, src,
		vfs.CopyOptions{Concurrency: 4, ChunkSize: 32 << 10, Verify: true}); err != nil {
		t.Fatalf("multipart over single-member pool: %v", err)
	}
	var got bytes.Buffer
	if _, err := p.GetFile("/one", &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("payload mismatch after single-member multipart")
	}
}

// TestLegacyPartsFallback runs the engine against a server that answers
// EINVAL to every part verb, as a pre-multipart server would. Both
// directions must degrade to positional I/O, still verified, and the
// negotiation probes must leave the connection framing intact.
func TestLegacyPartsFallback(t *testing.T) {
	ts := startServer(t, nil)
	ts.srv.legacyParts.Store(true)
	c := ts.client(t, "owner.sim")

	data := partPayload(150_000)
	opts := vfs.CopyOptions{Concurrency: 4, ChunkSize: 32 << 10, Verify: true}

	src := localEndpoint(t, "legacy.bin", data)
	if _, err := vfs.Copy(context.Background(), vfs.Loc{FS: c, Path: "/legacy"}, src, opts); err != nil {
		t.Fatalf("put against legacy server: %v", err)
	}
	dst := localEndpoint(t, "back.bin", nil)
	if _, err := vfs.Copy(context.Background(), dst, vfs.Loc{FS: c, Path: "/legacy"}, opts); err != nil {
		t.Fatalf("get against legacy server: %v", err)
	}
	got, err := vfs.ReadFile(dst.FS, dst.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch after legacy fallback")
	}
	// The EINVAL probes must not desync the stream.
	if err := vfs.WriteFile(c, "/after", []byte("ok"), 0o644); err != nil {
		t.Fatalf("connection unusable after legacy negotiation: %v", err)
	}
}

// TestPutpartRejectsBadDigest sends a chunk whose trailer lies about
// the body. The server must answer EBADMSG, zero the chunk's range
// (restoring the pre-sized hole — zero wrong bytes at rest), keep the
// file, and keep the connection framed.
func TestPutpartRejectsBadDigest(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	good := partPayload(4096)
	evil := partPayload(512)

	if err := c.PutBegin("/chunked", 0o644, int64(len(good))+int64(len(evil))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutPart("/chunked", 0, int64(len(good)), "crc32c", bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	wrong := bytes.Repeat([]byte{0xee}, 4)
	err := c.putStream(
		&proto.Request{Verb: "putpart", Path: "/chunked", Offset: int64(len(good)),
			Length: int64(len(evil)), Algo: "crc32c"},
		int64(len(evil)), bytes.NewReader(evil), false,
		func(dst []byte) []byte {
			return append(proto.AppendDigestTrailer(dst, "crc32c", wrong), '\n')
		})
	if vfs.AsErrno(err) != vfs.EBADMSG {
		t.Fatalf("bad-digest putpart = %v, want EBADMSG", err)
	}

	var got bytes.Buffer
	if _, err := c.GetFile("/chunked", &got); err != nil {
		t.Fatalf("connection unusable after rejected chunk: %v", err)
	}
	want := append(append([]byte{}, good...), make([]byte, len(evil))...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("rejected chunk left non-zero bytes (verified chunk or hole damaged)")
	}
}

// TestPutcompleteRejectsBadSum asserts the composed-digest check: a
// completion whose whole-file sum does not match removes the file and
// reports an integrity error.
func TestPutcompleteRejectsBadSum(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	data := partPayload(8192)

	if err := c.PutBegin("/torn", 0o644, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutPart("/torn", 0, int64(len(data)), "crc32c", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// The client translates the server's EBADMSG into an integrity
	// error, the classification the engine's retry logic keys on.
	err := c.PutComplete("/torn", int64(len(data)), "crc32c", "deadbeef")
	if !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("bad composed sum = %v, want integrity error", err)
	}
	if _, err := c.Stat("/torn"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("server kept unverifiable multipart file: stat = %v, want ENOENT", err)
	}
	// A size mismatch (chunk never arrived) is equally fatal.
	if err := c.PutBegin("/short", 0o644, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.PutComplete("/short", 200, "", ""); !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("size-mismatch putcomplete = %v, want integrity error", err)
	}
	if _, err := c.Stat("/short"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("server kept short multipart file: stat = %v, want ENOENT", err)
	}
}

// TestPartMetricsFromBoot pins the no-lazy-registration contract: the
// histograms and fastpath counter for the multipart verbs exist in the
// registry snapshot from server and client construction, before any
// part RPC has been issued.
func TestPartMetricsFromBoot(t *testing.T) {
	sreg := obs.NewRegistry()
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "fs.sim",
		Owner:     "hostname:owner.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		Metrics:   sreg,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("fs.sim")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer l.Close()

	creg := obs.NewRegistry()
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		Metrics:     creg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ssnap, csnap := sreg.Snapshot(), creg.Snapshot()
	for _, verb := range []string{"putbegin", "putpart", "putcomplete", "getpart"} {
		if _, ok := ssnap.Histograms["chirp_server.rpc."+verb]; !ok {
			t.Errorf("server histogram for %s absent before first call", verb)
		}
		if _, ok := csnap.Histograms["chirp_client.rpc."+verb]; !ok {
			t.Errorf("client histogram for %s absent before first call", verb)
		}
	}
	if _, ok := ssnap.Counters["chirp_server.multipart_fastpath"]; !ok {
		t.Error("multipart_fastpath counter absent before first call")
	}

	// And the observations land in the pre-registered metrics.
	if err := c.PutBegin("/m", 0o644, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutPart("/m", 0, 4, "", bytes.NewReader([]byte("abcd"))); err != nil {
		t.Fatal(err)
	}
	if err := c.PutComplete("/m", 4, "", ""); err != nil {
		t.Fatal(err)
	}
	snap := sreg.Snapshot()
	for _, verb := range []string{"putbegin", "putpart", "putcomplete"} {
		if snap.Histograms["chirp_server.rpc."+verb].Count == 0 {
			t.Errorf("server %s RPC not observed", verb)
		}
	}
}

// TestMultipartFastpathOverTCP checks that undigested chunk transfers
// over real TCP engage the zero-copy part fast path in both directions.
func TestMultipartFastpathOverTCP(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "localhost",
		Owner:     "hostname:localhost",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := partPayload(1<<20 + 3)
	half := int64(len(data) / 2)
	if err := c.PutBegin("/fast", 0o644, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutPart("/fast", 0, half, "", bytes.NewReader(data[:half])); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutPart("/fast", half, int64(len(data))-half, "", bytes.NewReader(data[half:])); err != nil {
		t.Fatal(err)
	}
	if err := c.PutComplete("/fast", int64(len(data)), "", ""); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	for off := int64(0); off < int64(len(data)); off += half {
		n := half
		if int64(len(data))-off < n {
			n = int64(len(data)) - off
		}
		if _, _, err := c.GetPart("/fast", off, n, "", &got); err != nil {
			t.Fatalf("getpart at %d: %v", off, err)
		}
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("fast-path round trip corrupted the payload")
	}
	if fast := reg.Snapshot().Counters["chirp_server.multipart_fastpath"]; fast < 4 {
		t.Errorf("multipart fast path engaged %d times, want >= 4 (2 putpart + 2 getpart)", fast)
	}
}

// TestMultipartTornChunkTimeline replays the canonical multipart
// failure on a deterministic fault timeline: a torn-write window tears
// the tail off chunks written during step 0. Per-chunk digests pass
// (the tear is silent), so only the composed whole-file digest at
// putcomplete can catch it. The transfer must fail with an integrity
// error, leave no partial file on the server, and succeed when re-run
// after the window closes.
func TestMultipartTornChunkTimeline(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	ffs := faultfs.New(c)
	var step atomic.Int64
	ffs.SetClock(step.Load)
	ffs.TornDuring(faultfs.Window{From: 0, To: 1}, 64)

	data := partPayload(96 << 10)
	src := localEndpoint(t, "torn.bin", data)
	opts := vfs.CopyOptions{Concurrency: 2, ChunkSize: 32 << 10, Verify: true}

	_, err := vfs.Copy(context.Background(), vfs.Loc{FS: ffs, Path: "/torn"}, src, opts)
	if !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("torn multipart = %v, want integrity error", err)
	}
	if _, serr := c.Stat("/torn"); vfs.AsErrno(serr) != vfs.ENOENT {
		t.Fatalf("partial multipart state survived: stat = %v, want ENOENT", serr)
	}

	// The window closes; the identical transfer now succeeds.
	step.Store(1)
	n, err := vfs.Copy(context.Background(), vfs.Loc{FS: ffs, Path: "/torn"}, src, opts)
	if err != nil {
		t.Fatalf("retry after torn window: %v", err)
	}
	if n != int64(len(data)) {
		t.Errorf("retry copied %d, want %d", n, len(data))
	}
	sum, err := c.Checksum("/torn", "crc32c")
	if err != nil {
		t.Fatal(err)
	}
	if want := vfs.FormatCRC32C(vfs.CRC32C(0, data)); sum != want {
		t.Errorf("server digest %s, want %s", sum, want)
	}
}

// TestMultipartCorruptReadTimeline corrupts chunk reads during the
// transfer window only: the engine's composed digest disagrees with
// the source's post-window authoritative digest, the copy fails, and
// no wrong bytes survive at the destination. Re-run clean, it
// succeeds bit-exact.
func TestMultipartCorruptReadTimeline(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	data := partPayload(128 << 10)
	if err := vfs.WriteFile(c, "/src", data, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(c)
	var step atomic.Int64
	ffs.SetClock(step.Load)
	ffs.CorruptDuring(faultfs.Window{From: 0, To: 1}, 0.001, 99)

	dst := localEndpoint(t, "out.bin", nil)
	total := int64(len(data))
	opts := vfs.CopyOptions{
		Concurrency: 2,
		ChunkSize:   32 << 10,
		Verify:      true,
		// Once every chunk has landed, close the corruption window so the
		// completion-time source digest reflects the true bytes.
		Progress: func(copied, t int64) {
			if copied == total {
				step.Store(1)
			}
		},
	}
	_, err := vfs.Copy(context.Background(), dst, vfs.Loc{FS: ffs, Path: "/src"}, opts)
	if !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("corrupted multipart read = %v, want integrity error", err)
	}
	if ffs.Flips() == 0 {
		t.Fatal("fault injection never corrupted a byte; test proves nothing")
	}
	if _, serr := dst.FS.Stat(dst.Path); vfs.AsErrno(serr) != vfs.ENOENT {
		t.Fatalf("corrupted destination survived: stat = %v, want ENOENT", serr)
	}

	if _, err := vfs.Copy(context.Background(), dst, vfs.Loc{FS: ffs, Path: "/src"}, opts); err != nil {
		t.Fatalf("clean retry: %v", err)
	}
	got, err := vfs.ReadFile(dst.FS, dst.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retry delivered wrong bytes")
	}
}

// TestMultipartManyChunksPooled is a broader soak: chunk count well
// above the worker count, odd tail, out-of-order completion under
// concurrency.
func TestMultipartManyChunksPooled(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     10 * time.Second,
		PoolSize:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i, size := range []int{16<<10*2 - 1, 16 << 10 * 7, 16<<10*11 + 13} {
		data := partPayload(size)
		src := localEndpoint(t, "soak.bin", data)
		path := fmt.Sprintf("/soak%d", i)
		if _, err := vfs.Copy(context.Background(), vfs.Loc{FS: p, Path: path}, src,
			vfs.CopyOptions{Concurrency: 3, ChunkSize: 16 << 10, Verify: true}); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		sum, err := p.Checksum(path, "crc32c")
		if err != nil {
			t.Fatal(err)
		}
		if want := vfs.FormatCRC32C(vfs.CRC32C(0, data)); sum != want {
			t.Errorf("size %d: server digest %s, want %s", size, sum, want)
		}
	}
}
