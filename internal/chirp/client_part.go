package chirp

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

// Client side of the multipart transfer verbs (getpart, putbegin,
// putpart, putcomplete). Parts are addressed by path and offset — not
// by descriptor — so the multipart engine can fan chunks of one file
// out across the members of a chirp.Pool, each chunk a self-contained
// round trip on whichever connection the pool dispatches it to.
//
// Negotiation with servers that predate the verbs is the engine's job,
// not this layer's: putbegin carries no body, so its EINVAL arrives
// with the stream in sync and proves (or disproves) server support for
// the whole put family before the first blind putpart body is
// streamed; a zero-length getpart probes the read side the same way.
// No answer is memoized here — an EINVAL earned by a genuinely bad
// argument must not disable multipart for the life of the client.

var (
	_ vfs.PartGetter = (*Client)(nil)
	_ vfs.PartPutter = (*Client)(nil)
)

// GetPart streams up to length bytes at offset off of the named file
// into w (vfs.PartGetter, the getpart verb). With a non-empty algo the
// body is teed through the digest and checked against the server's
// trailer; the chunk digest (lowercase hex) is returned for the
// engine's whole-file composition. The server clamps the transfer at
// end of file, so the returned count can be short.
func (c *Client) GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error) {
	var h = io.Discard
	var hasher = (interface {
		io.Writer
		Sum([]byte) []byte
	})(nil)
	if algo != "" {
		hh, err := vfs.NewHash(algo)
		if err != nil {
			return 0, "", err
		}
		hasher, h = hh, hh
	}
	var copied int64
	var sum string
	var verifyErr error
	var inTrailer bool
	_, err := c.rpc(&proto.Request{Verb: "getpart", Path: path, Offset: off, Length: length, Algo: algo}, nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			var copyErr error
			copied, copyErr = io.CopyN(io.MultiWriter(w, h), br, code)
			if copyErr != nil {
				// Stream broken mid-body: connection is desynced.
				return copyErr
			}
			if algo == "" {
				return nil
			}
			inTrailer = true
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			a, raw, perr := proto.ParseDigestTrailer(line)
			if perr != nil || a != algo {
				verifyErr = fmt.Errorf("chirp: getpart %s@%d: malformed digest trailer: %w",
					path, off, errors.Join(vfs.EIO, vfs.ErrIntegrity))
				return nil
			}
			if got := hasher.Sum(nil); !bytes.Equal(raw, got) {
				verifyErr = vfs.ChecksumMismatch(fmt.Sprintf("%s@%d", path, off), algo,
					hex.EncodeToString(raw), hex.EncodeToString(got))
				return nil
			}
			sum = hex.EncodeToString(raw)
			return nil
		})
	if err != nil {
		if inTrailer {
			// The chunk arrived whole but its digest trailer did not: the
			// bytes cannot be trusted and the connection is gone.
			return copied, "", fmt.Errorf("chirp: getpart %s@%d: short digest trailer: %w",
				path, off, errors.Join(err, vfs.ErrIntegrity))
		}
		return copied, "", err
	}
	if verifyErr != nil {
		return copied, "", verifyErr
	}
	return copied, sum, nil
}

// PutBegin opens a multipart upload (vfs.PartPutter, the putbegin
// verb): the destination is created at its final path and full size,
// so concurrent putparts land in a fully allocated file. It carries no
// body, which makes it the natural negotiation probe — an old server's
// EINVAL arrives before any putpart has streamed blind.
func (c *Client) PutBegin(path string, mode uint32, size int64) error {
	_, err := c.rpc(&proto.Request{Verb: "putbegin", Path: path, Mode: int64(mode), Size: size}, nil, nil)
	return err
}

// PutPart stores length bytes from r at offset off of the named file
// (vfs.PartPutter, the putpart verb). With a non-empty algo the chunk
// carries a digest trailer the server verifies before acknowledging —
// a mismatch answers EBADMSG without touching other chunks, so one
// corrupted chunk retries independently. The chunk digest (lowercase
// hex) is returned for the engine's whole-file composition.
//
// The body streams without a ready phase; callers must have proven
// server support with PutBegin first (an old server's mid-body EINVAL
// could not be distinguished from data).
func (c *Client) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	req := &proto.Request{Verb: "putpart", Path: path, Offset: off, Length: length, Algo: algo}
	if algo == "" {
		return "", c.putStream(req, length, r, false, nil)
	}
	h, err := vfs.NewHash(algo)
	if err != nil {
		return "", err
	}
	err = c.putStream(req, length, io.TeeReader(r, h), false,
		func(dst []byte) []byte {
			return append(proto.AppendDigestTrailer(dst, algo, h.Sum(nil)), '\n')
		})
	if vfs.AsErrno(err) == vfs.EBADMSG {
		// The server hashed different bytes than were sent: this chunk
		// was corrupted in flight (and discarded server-side).
		return "", fmt.Errorf("chirp: putpart %s@%d: server digest mismatch: %w",
			path, off, errors.Join(vfs.EIO, vfs.ErrIntegrity))
	}
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// PutComplete closes a multipart upload (vfs.PartPutter, the
// putcomplete verb): the server checks the assembled file's size and —
// with a non-empty algo — its whole-file digest against sum, removing
// the file on any mismatch so a torn transfer never survives at rest.
func (c *Client) PutComplete(path string, size int64, algo, sum string) error {
	_, err := c.rpc(&proto.Request{Verb: "putcomplete", Path: path, Size: size, Algo: algo, Sum: sum}, nil, nil)
	if vfs.AsErrno(err) == vfs.EBADMSG {
		return fmt.Errorf("chirp: putcomplete %s: composed digest mismatch, file removed: %w",
			path, errors.Join(vfs.EIO, vfs.ErrIntegrity))
	}
	return err
}
