package chirp

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

// Client-side integrity: the Checksum RPC and the verified whole-file
// transfer paths. All errors here stay errno-clean — a digest mismatch
// or a broken trailer wraps vfs.ErrIntegrity together with an errno
// via %w, so vfs.AsErrno still answers and errors.Is(err,
// vfs.ErrIntegrity) identifies corruption precisely.

var _ vfs.Checksummer = (*Client)(nil)

// algo returns the configured digest algorithm for verified transfers.
func (c *Client) algo() string {
	if c.cfg.ChecksumAlgo != "" {
		return c.cfg.ChecksumAlgo
	}
	return vfs.DefaultAlgo
}

// Checksum computes the digest of a remote file where it lives — one
// round trip, no data transfer (vfs.Checksummer). Against a server
// that predates the verb it falls back to hashing a plain getfile
// stream client-side, so digest comparison keeps working across
// versions.
func (c *Client) Checksum(path, algo string) (string, error) {
	if algo == "" {
		algo = c.algo()
	}
	if c.noSums.Load() {
		return c.hashRemote(path, algo)
	}
	var sum string
	var badTrailer bool
	_, err := c.rpc(&proto.Request{Verb: "checksum", Path: path, Algo: algo}, nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			a, raw, perr := proto.ParseDigestTrailer(line)
			if perr != nil || a != algo {
				badTrailer = true
				return nil
			}
			sum = hex.EncodeToString(raw)
			return nil
		})
	if err != nil {
		if vfs.AsErrno(err) == vfs.EINVAL {
			// Either the server does not know the verb or the argument
			// was genuinely invalid; hashing the plain read path answers
			// both, and only a success proves the verb was the problem.
			fallback, herr := c.hashRemote(path, algo)
			if herr == nil {
				c.noSums.Store(true)
			}
			return fallback, herr
		}
		return "", err
	}
	if badTrailer {
		return "", fmt.Errorf("chirp: checksum %s: malformed digest trailer: %w",
			path, errors.Join(vfs.EIO, vfs.ErrIntegrity))
	}
	return sum, nil
}

// hashRemote digests a file by reading it over the plain getfile path.
func (c *Client) hashRemote(path, algo string) (string, error) {
	h, err := vfs.NewHash(algo)
	if err != nil {
		return "", err
	}
	if _, err := c.getFilePlain(path, h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// GetFile streams the whole named file to w (vfs.FileGetter). With
// ClientConfig.Verify it uses getfilesum and checks the server's
// digest trailer against the received bytes; a server that predates
// the verb triggers one plain-getfile fallback and is remembered.
func (c *Client) GetFile(path string, w io.Writer) (int64, error) {
	if !c.cfg.Verify || c.noSums.Load() {
		return c.getFilePlain(path, w)
	}
	n, err := c.getFileSum(path, w)
	if err != nil && vfs.AsErrno(err) == vfs.EINVAL && !errors.Is(err, vfs.ErrIntegrity) {
		// Refused before the data phase: nothing was written to w. Only
		// a successful plain retry proves the verb — not the argument —
		// was the problem.
		n, err = c.getFilePlain(path, w)
		if err == nil {
			c.noSums.Store(true)
		}
	}
	return n, err
}

// getFileSum is GetFile over the getfilesum verb: body bytes are teed
// through the digest and checked against the server's trailer.
func (c *Client) getFileSum(path string, w io.Writer) (int64, error) {
	algo := c.algo()
	h, err := vfs.NewHash(algo)
	if err != nil {
		return 0, err
	}
	var copied int64
	var verifyErr error
	var inTrailer bool
	_, err = c.rpc(&proto.Request{Verb: "getfilesum", Path: path, Algo: algo}, nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			var copyErr error
			copied, copyErr = io.CopyN(io.MultiWriter(w, h), br, code)
			if copyErr != nil {
				// Stream broken mid-body: connection is desynced.
				return copyErr
			}
			inTrailer = true
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			a, sum, perr := proto.ParseDigestTrailer(line)
			if perr != nil || a != algo {
				verifyErr = fmt.Errorf("chirp: getfile %s: malformed digest trailer: %w",
					path, errors.Join(vfs.EIO, vfs.ErrIntegrity))
				return nil
			}
			if got := h.Sum(nil); !bytes.Equal(sum, got) {
				verifyErr = vfs.ChecksumMismatch(path, algo,
					hex.EncodeToString(sum), hex.EncodeToString(got))
			}
			return nil
		})
	if err != nil {
		if inTrailer {
			// The body arrived whole but its digest trailer did not: the
			// payload cannot be trusted and the connection is gone.
			return copied, fmt.Errorf("chirp: getfile %s: short digest trailer: %w",
				path, errors.Join(err, vfs.ErrIntegrity))
		}
		return copied, err
	}
	return copied, verifyErr
}

// PutFile streams size bytes from r into the named file
// (vfs.FilePutter). With ClientConfig.Verify it uses the two-phase
// putfilesum verb: the server acknowledges readiness before the body
// (so an old server's EINVAL consumes nothing from r), then verifies
// the digest trailer and unlinks the file on mismatch.
func (c *Client) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	if !c.cfg.Verify || c.noSums.Load() {
		return c.putFilePlain(path, mode, size, r)
	}
	err := c.putFileSum(path, mode, size, r)
	if err != nil && vfs.AsErrno(err) == vfs.EINVAL && !errors.Is(err, vfs.ErrIntegrity) {
		err = c.putFilePlain(path, mode, size, r)
		if err == nil {
			c.noSums.Store(true)
		}
	}
	return err
}

// putFileSum is PutFile over the two-phase putfilesum verb.
func (c *Client) putFileSum(path string, mode uint32, size int64, r io.Reader) error {
	algo := c.algo()
	h, err := vfs.NewHash(algo)
	if err != nil {
		return err
	}
	err = c.putStream(
		&proto.Request{Verb: "putfilesum", Path: path, Mode: int64(mode), Length: size, Algo: algo},
		size, io.TeeReader(r, h), true,
		func(dst []byte) []byte {
			return append(proto.AppendDigestTrailer(dst, algo, h.Sum(nil)), '\n')
		})
	if vfs.AsErrno(err) == vfs.EBADMSG {
		// The server hashed different bytes than were sent: the body was
		// corrupted in flight and the partial file was unlinked.
		return fmt.Errorf("chirp: putfile %s: server digest mismatch: %w",
			path, errors.Join(vfs.EIO, vfs.ErrIntegrity))
	}
	return err
}
