package chirp

// Client-side read leases (vfs.Leaser): the lease/leasebreak RPCs with
// the PR 5/7 negotiation downgrade. A server that predates the verbs
// answers EINVAL with its framing intact — lease carries no data
// phase, so the refusal is inherently stream-safe and the client can
// memoize it directly: a supporting server never answers EINVAL to a
// normalized path (missing files are ENOENT, denied paths EACCES), so
// there is no plain-verb retry to disambiguate with, unlike the digest
// fallback in client_sum.go.

import (
	"bufio"
	"fmt"
	"time"

	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

var _ vfs.Leaser = (*Client)(nil)

// Lease asks the server for a read lease on path (vfs.Leaser). Against
// a server that predates the verb it fails with EINVAL and remembers,
// so a caching layer stops probing after the first refusal.
func (c *Client) Lease(path string) (vfs.Lease, error) {
	if c.noLeases.Load() {
		return vfs.Lease{}, vfs.EINVAL
	}
	var l vfs.Lease
	var badBody bool
	_, err := c.rpc(&proto.Request{Verb: "lease", Path: path}, nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			var ttlMS int64
			if _, serr := fmt.Sscanf(line, "%d %d %d", &l.ID, &ttlMS, &l.Version); serr != nil {
				badBody = true
				return nil
			}
			l.TTL = time.Duration(ttlMS) * time.Millisecond
			return nil
		})
	if err != nil {
		if vfs.AsErrno(err) == vfs.EINVAL {
			c.noLeases.Store(true)
		}
		return vfs.Lease{}, err
	}
	if badBody {
		return vfs.Lease{}, fmt.Errorf("chirp: lease %s: malformed grant line: %w", path, vfs.EIO)
	}
	return l, nil
}

// LeaseBreak releases a previously granted lease early (vfs.Leaser).
// Releasing a lease the server no longer tracks (expired, broken by a
// writer, or granted on a connection that died) answers EBADF, which
// callers treat as already-released.
func (c *Client) LeaseBreak(id int64) error {
	if c.noLeases.Load() {
		return vfs.EINVAL
	}
	_, err := c.rpc(&proto.Request{Verb: "leasebreak", FD: id}, nil, nil)
	if err != nil && vfs.AsErrno(err) == vfs.EINVAL {
		c.noLeases.Store(true)
	}
	return err
}
