package chirp

import (
	"net"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// TestLeaseGrantAndVersion exercises the core consistency signal: a
// lease's version is stable while the file is untouched and advances
// on every conflicting mutation, so a renewal with an unchanged
// version proves everything cached for the path is still current.
func TestLeaseGrantAndVersion(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	l1, err := c.Lease("/f")
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if l1.TTL <= 0 {
		t.Fatalf("lease TTL = %v, want > 0", l1.TTL)
	}
	l2, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Version != l1.Version {
		t.Fatalf("version moved without a write: %d -> %d", l1.Version, l2.Version)
	}
	if l2.ID == l1.ID {
		t.Fatalf("two grants shared lease ID %d", l1.ID)
	}

	// Each flavor of conflicting write must advance the version.
	if err := vfs.WriteFile(c, "/f", []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if l3.Version <= l2.Version {
		t.Fatalf("version did not advance over a write: %d -> %d", l2.Version, l3.Version)
	}
	if err := c.Truncate("/f", 1); err != nil {
		t.Fatal(err)
	}
	l4, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if l4.Version <= l3.Version {
		t.Fatalf("version did not advance over truncate: %d -> %d", l3.Version, l4.Version)
	}
	if err := c.Chmod("/f", 0o600); err != nil {
		t.Fatal(err)
	}
	l5, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if l5.Version <= l4.Version {
		t.Fatalf("version did not advance over chmod: %d -> %d", l4.Version, l5.Version)
	}
}

// TestLeaseDirectoryVersion covers the dirent-cache contract: creating
// or removing an entry advances the parent directory's version.
func TestLeaseDirectoryVersion(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	l1, err := c.Lease("/d")
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/d/child", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := c.Lease("/d")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Version <= l1.Version {
		t.Fatalf("parent version did not advance over create: %d -> %d", l1.Version, l2.Version)
	}
	if err := c.Unlink("/d/child"); err != nil {
		t.Fatal(err)
	}
	l3, err := c.Lease("/d")
	if err != nil {
		t.Fatal(err)
	}
	if l3.Version <= l2.Version {
		t.Fatalf("parent version did not advance over unlink: %d -> %d", l2.Version, l3.Version)
	}
}

// TestLeaseBreakCounting checks the server-side accounting: breaks
// count only live leases invalidated by a conflicting write, and a
// client release is not a break.
func TestLeaseBreakCounting(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	breaks0 := ts.srv.Stats.LeaseBreaks.Load()

	l, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if g := ts.srv.Stats.LeaseGrants.Load(); g == 0 {
		t.Fatal("grant not counted")
	}
	if err := c.LeaseBreak(l.ID); err != nil {
		t.Fatalf("leasebreak: %v", err)
	}
	if got := ts.srv.Stats.LeaseBreaks.Load(); got != breaks0 {
		t.Fatalf("client release counted as a break: %d -> %d", breaks0, got)
	}
	// Releasing an ID the server no longer tracks answers EBADF.
	if err := c.LeaseBreak(l.ID); vfs.AsErrno(err) != vfs.EBADF {
		t.Fatalf("double release = %v, want EBADF", err)
	}

	if _, err := c.Lease("/f"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c, "/f", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ts.srv.Stats.LeaseBreaks.Load(); got != breaks0+1 {
		t.Fatalf("conflicting write broke %d leases, want 1", got-breaks0)
	}
}

// TestLeaseLegacyDowngrade runs a lease-issuing client against a server
// that predates the verbs: the first probe gets EINVAL, the client
// memoizes the downgrade, and the connection stays framed for normal
// traffic.
func TestLeaseLegacyDowngrade(t *testing.T) {
	ts := startServer(t, nil)
	ts.srv.legacyLeases.Store(true)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lease("/f"); vfs.AsErrno(err) != vfs.EINVAL {
		t.Fatalf("lease against legacy server = %v, want EINVAL", err)
	}
	if !c.noLeases.Load() {
		t.Fatal("client did not remember the lease downgrade")
	}
	// Later calls short-circuit without touching the wire.
	reqs := ts.srv.Stats.Requests.Load()
	if _, err := c.Lease("/f"); vfs.AsErrno(err) != vfs.EINVAL {
		t.Fatal("memoized lease probe should fail EINVAL")
	}
	if got := ts.srv.Stats.Requests.Load(); got != reqs {
		t.Fatalf("memoized lease probe issued %d RPCs", got-reqs)
	}
	// The refusal left the stream in sync.
	if _, err := c.Stat("/f"); err != nil {
		t.Fatalf("connection unusable after lease refusal: %v", err)
	}
}

// TestLeaseSessionCleanup closes a lease-holding connection and checks
// the server forgot its grants: a second client's grant on the same
// path is then the only live lease, so one write breaks exactly one.
func TestLeaseSessionCleanup(t *testing.T) {
	ts := startServer(t, nil)
	c1 := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c1, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Lease("/f"); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := ts.client(t, "owner.sim")
	// The close is asynchronous server-side; wait until the dead
	// session's cleanup has emptied the lease table.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ts.srv.leases.mu.Lock()
		n := len(ts.srv.leases.byID)
		ts.srv.leases.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	breaks0 := ts.srv.Stats.LeaseBreaks.Load()
	if _, err := c2.Lease("/f"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(c2, "/f", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ts.srv.Stats.LeaseBreaks.Load() - breaks0; got != 1 {
		t.Fatalf("write broke %d leases, want 1 (dead session's grant should be gone)", got)
	}
}

// TestLeaseACL verifies the access bar: a lease requires list rights on
// the parent, the same as stat, because it only reveals that something
// about the path changed.
func TestLeaseACL(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "stranger.sim")
	if _, err := c.Lease("/f"); vfs.AsErrno(err) != vfs.EACCES {
		t.Fatalf("unauthorized lease = %v, want EACCES", err)
	}
}

// TestLeaseExpiry confirms a lease past its TTL is not counted broken
// by a later write: the grant has already lapsed.
func TestLeaseExpiry(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "fs.sim",
		Owner:     "hostname:owner.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		LeaseTTL:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("fs.sim")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	ts := &testServer{srv: srv, net: nw}

	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	lease, err := c.Lease("/f")
	if err != nil {
		t.Fatal(err)
	}
	if lease.TTL != 10*time.Millisecond {
		t.Fatalf("TTL = %v, want configured 10ms", lease.TTL)
	}
	time.Sleep(30 * time.Millisecond)
	if err := vfs.WriteFile(c, "/f", []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ts.srv.Stats.LeaseBreaks.Load(); got != 0 {
		t.Fatalf("expired lease counted broken: breaks = %d", got)
	}
}

// TestLeaseOwnedPruning covers the session-ledger hygiene behind
// pooled release routing: a grant recorded in one session's map may be
// released over another connection, which cannot reach the granting
// session's map — pruneOwned at the next grant must drop such IDs (and
// expired ones) so a long-lived connection does not accumulate them.
func TestLeaseOwnedPruning(t *testing.T) {
	var tbl leaseTable
	tbl.init(50 * time.Millisecond)
	sub := auth.Subject("hostname:owner.sim")
	id1, _, _ := tbl.grant("/a", sub)
	id2, _, _ := tbl.grant("/b", sub)
	owned := map[int64]struct{}{id1: {}, id2: {}}
	// id1 is released as if over another pool member: the owning
	// session's map still carries it.
	if err := tbl.release(id1, sub); err != nil {
		t.Fatal(err)
	}
	tbl.pruneOwned(owned)
	if _, ok := owned[id1]; ok {
		t.Fatal("released ID survived pruning")
	}
	if _, ok := owned[id2]; !ok {
		t.Fatal("live ID was pruned")
	}
	// Past the TTL the remaining grant is dead weight in both the
	// session map and the table; pruning clears both.
	time.Sleep(60 * time.Millisecond)
	tbl.pruneOwned(owned)
	if len(owned) != 0 {
		t.Fatalf("expired ID survived pruning: %v", owned)
	}
	tbl.mu.Lock()
	n := len(tbl.byID)
	tbl.mu.Unlock()
	if n != 0 {
		t.Fatalf("expired grant still in server table (%d entries)", n)
	}
}

// TestLeasePooled checks the pool passthrough: a lease granted over one
// member releases cleanly over whichever member the break lands on.
func TestLeasePooled(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := vfs.WriteFile(p, "/p", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := p.Lease("/p")
	if err != nil {
		t.Fatalf("pooled lease: %v", err)
	}
	if err := p.LeaseBreak(l.ID); err != nil {
		t.Fatalf("pooled leasebreak: %v", err)
	}
	if caps := vfs.Capabilities(p); caps.Leaser == nil {
		t.Fatal("pool does not advertise Leaser")
	}
}
