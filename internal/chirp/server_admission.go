package chirp

// Server admission control (DESIGN.md §15). A server under overload
// must degrade predictably instead of collapsing: unbounded accepted
// work makes every request's sojourn time exceed every client's
// timeout, at which point all service capacity is spent computing
// answers nobody is waiting for while retries multiply the offered
// load. The armor here is a bounded in-flight RPC semaphore with a
// short, priority-split admission queue: when the queue for a class is
// full the request is shed immediately with EAGAIN — explicit pushback
// the client-side retry budget understands. Cheap control-plane RPCs
// (stat, lease renewal, open/close) get two forms of priority so the
// metadata plane browns out last: a small reserved headroom above
// MaxInflight that bulk verbs can never use — a stat does not wait
// behind four in-flight bulk streams — and, if even the headroom is
// busy, a queue position granted ahead of every bulk waiter. Queue
// waits are bounded by their own timeout, and a drain fails every
// queued-but-unstarted request with ESHUTDOWN promptly, so Shutdown
// never stalls behind a full queue.

import (
	"sync"
	"time"

	"tss/internal/obs"
	"tss/internal/vfs"
)

// DefaultQueueTimeout bounds how long an RPC may wait for admission
// when ServerConfig.QueueTimeout is zero. Short by design: a request
// that cannot start promptly is better shed now, while the client's
// own deadline still has room for a backoff and retry elsewhere.
const DefaultQueueTimeout = 100 * time.Millisecond

// bulkVerb marks the data-plane verbs: whole-file streams, chunk
// transfers, and the CPU-heavy digest work. Everything else — stat,
// lease renewal, descriptor bookkeeping, multipart framing — is
// control plane and admitted with priority under pressure.
var bulkVerb = map[string]bool{
	"pread":      true,
	"pwrite":     true,
	"getfile":    true,
	"putfile":    true,
	"checksum":   true,
	"getfilesum": true,
	"putfilesum": true,
	"putpart":    true,
	"getpart":    true,
}

// admission is the bounded in-flight semaphore plus its two waiter
// queues. A nil *admission (or max <= 0) admits everything: admission
// control is opt-in per server.
type admission struct {
	max      int
	ctrl     int // reserved control-plane headroom above max
	queueCap int
	timeout  time.Duration

	mu       sync.Mutex
	inflight int
	high     []chan struct{} // control-plane waiters, granted first
	low      []chan struct{} // bulk-data waiters
	draining bool
	drainCh  chan struct{} // closed once, when draining begins

	mInflight   *obs.Gauge
	mQueueDepth *obs.Gauge
	mShed       *obs.Counter
	stats       *ServerStats
}

// newAdmission builds the admission gate for one server. queueCap <= 0
// with a positive max defaults to max (a queue about as deep as the
// service floor); timeout <= 0 takes DefaultQueueTimeout. The
// control-plane headroom is a quarter of max, at least one slot: big
// enough that metadata stays responsive while every bulk slot streams,
// small enough that a control-plane storm is still bounded.
func newAdmission(max, queueCap int, timeout time.Duration, stats *ServerStats, reg *obs.Registry) *admission {
	if queueCap <= 0 {
		queueCap = max
	}
	if timeout <= 0 {
		timeout = DefaultQueueTimeout
	}
	ctrl := max / 4
	if ctrl < 1 {
		ctrl = 1
	}
	a := &admission{
		max:      max,
		ctrl:     ctrl,
		queueCap: queueCap,
		timeout:  timeout,
		drainCh:  make(chan struct{}),
		stats:    stats,
	}
	if reg != nil {
		a.mInflight = reg.Gauge("chirp_server.inflight")
		a.mQueueDepth = reg.Gauge("chirp_server.queue_depth")
		a.mShed = reg.Counter("chirp_server.shed_total")
	}
	return a
}

// acquire admits one RPC, blocking in the class queue when the server
// is at capacity. It returns nil when a slot is held (the caller must
// release), EAGAIN when the request is shed (queue full or queue wait
// timed out), and ESHUTDOWN when a drain began before the request was
// admitted.
func (a *admission) acquire(bulk bool) error {
	if a == nil || a.max <= 0 {
		return nil
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return vfs.ESHUTDOWN
	}
	limit := a.max
	if !bulk {
		limit += a.ctrl
	}
	if a.inflight < limit {
		a.inflight++
		a.mInflight.Set(int64(a.inflight))
		a.mu.Unlock()
		return nil
	}
	q := &a.high
	if bulk {
		q = &a.low
	}
	if len(*q) >= a.queueCap {
		a.mu.Unlock()
		a.shed()
		return vfs.EAGAIN
	}
	ch := make(chan struct{})
	*q = append(*q, ch)
	a.mQueueDepth.Set(int64(len(a.high) + len(a.low)))
	a.mu.Unlock()

	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case <-ch:
		// Granted: the releaser transferred its slot to us.
		return nil
	case <-t.C:
		if a.cancel(ch) {
			a.shed()
			return vfs.EAGAIN
		}
		// A grant raced the timeout; the slot is ours after all.
		<-ch
		return nil
	case <-a.drainCh:
		if a.cancel(ch) {
			return vfs.ESHUTDOWN
		}
		<-ch
		return nil
	}
}

// release returns one slot, handing it to the oldest control-plane
// waiter first, then the oldest bulk waiter — each only if its class
// has capacity after the release (a slot freed by a headroom-admitted
// control RPC must not push bulk occupancy past max).
func (a *admission) release() {
	if a == nil || a.max <= 0 {
		return
	}
	a.mu.Lock()
	a.inflight--
	if ch := a.popLocked(); ch != nil {
		a.inflight++ // the slot transfers to the granted waiter
		close(ch)
		a.mQueueDepth.Set(int64(len(a.high) + len(a.low)))
	}
	a.mInflight.Set(int64(a.inflight))
	a.mu.Unlock()
}

// popLocked removes and returns the next waiter whose class has
// capacity, or nil. Caller holds a.mu with a.inflight already
// decremented for the slot being released.
func (a *admission) popLocked() chan struct{} {
	if len(a.high) > 0 && a.inflight < a.max+a.ctrl {
		ch := a.high[0]
		a.high = a.high[1:]
		return ch
	}
	if len(a.low) > 0 && a.inflight < a.max {
		ch := a.low[0]
		a.low = a.low[1:]
		return ch
	}
	return nil
}

// cancel removes ch from its queue, reporting whether it was still
// queued. False means a grant already popped it: the grant channel is
// closed (or about to be) and the slot belongs to the caller.
func (a *admission) cancel(ch chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, q := range []*[]chan struct{}{&a.high, &a.low} {
		for i, c := range *q {
			if c == ch {
				*q = append((*q)[:i], (*q)[i+1:]...)
				a.mQueueDepth.Set(int64(len(a.high) + len(a.low)))
				return true
			}
		}
	}
	return false
}

// shed records one refused request.
func (a *admission) shed() {
	a.mShed.Inc()
	if a.stats != nil {
		a.stats.Shed.Add(1)
	}
}

// drain fails every queued-but-unstarted waiter with ESHUTDOWN and
// makes all future acquires refuse immediately. RPCs already admitted
// keep their slots and finish normally. Idempotent.
func (a *admission) drain() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		close(a.drainCh)
	}
	a.mu.Unlock()
}
