// Package chirp implements the Chirp personal file server and client —
// the resource layer of the tactical storage system (§4 of the paper).
//
// A server exports one host directory over a Unix-like protocol with
// per-directory ACLs and virtual-user-space authentication. It can be
// deployed by an ordinary user with a single call: no privileges,
// kernel modules, or configuration files. The client implements
// vfs.FileSystem, so a remote server is usable anywhere a local
// filesystem is — the recursive storage abstraction.
package chirp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/obs"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// ACLFileName is the name of the per-directory ACL file. It is hidden
// from directory listings and unreachable through the protocol.
const ACLFileName = ".__acl"

// ServerConfig configures a file server.
type ServerConfig struct {
	// Name is the advertised server name (host:port or symbolic).
	Name string
	// Owner is the subject that receives all rights on a fresh root.
	Owner auth.Subject
	// Verifiers are the authentication methods the server accepts.
	Verifiers []auth.Verifier
	// RootACL, when non-nil, seeds the root directory ACL of a fresh
	// root (the owner entry is always added).
	RootACL *acl.List
	// MaxFDs bounds open descriptors per connection (default 256).
	MaxFDs int
	// IdleTimeout disconnects clients idle for this long (0 = none).
	IdleTimeout time.Duration
	// LeaseTTL bounds read leases granted to caching clients (default
	// DefaultLeaseTTL). It is the server's staleness bound: a
	// partitioned holder may serve cached data for at most this long.
	LeaseTTL time.Duration
	// MaxInflight bounds concurrently executing RPCs across all
	// connections; excess requests wait in a short admission queue and
	// are shed with EAGAIN when it fills (0 = unlimited, admission
	// control off). See DESIGN.md §15.
	MaxInflight int
	// MaxSessions bounds concurrently served connections; excess
	// connections are refused at accept (0 = unlimited).
	MaxSessions int
	// QueueDepth bounds admission-queue waiters per priority class
	// (default MaxInflight when admission control is on).
	QueueDepth int
	// QueueTimeout bounds how long an RPC may wait for admission before
	// being shed with EAGAIN (default DefaultQueueTimeout).
	QueueTimeout time.Duration
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives per-RPC counts, latency
	// histograms ("chirp_server.rpc.<verb>"), byte counters, and the
	// drain gauge. Nil disables instrumentation at zero cost.
	Metrics *obs.Registry
}

// ServerStats holds monotonic counters exposed for catalogs and tests.
type ServerStats struct {
	Connections atomic.Int64
	Requests    atomic.Int64
	BytesRead   atomic.Int64
	BytesWriten atomic.Int64
	// Drains counts completed Shutdown calls.
	Drains atomic.Int64
	// DrainForced counts connections force-closed because the drain
	// context expired before they finished.
	DrainForced atomic.Int64
	// Aborts counts Abort calls — simulated crashes.
	Aborts atomic.Int64
	// LeaseGrants counts read leases granted to caching clients.
	LeaseGrants atomic.Int64
	// LeaseBreaks counts outstanding leases broken by conflicting
	// writes (client-initiated leasebreak releases are not breaks).
	LeaseBreaks atomic.Int64
	// Shed counts RPCs refused with EAGAIN by admission control.
	Shed atomic.Int64
	// SessionsRefused counts connections refused by the session cap.
	SessionsRefused atomic.Int64
	// DeadlineRejects counts RPCs fast-rejected (or aborted
	// mid-transfer) because their propagated deadline lapsed.
	DeadlineRejects atomic.Int64
}

// Server is a Chirp file server bound to one exported directory.
type Server struct {
	cfg   ServerConfig
	fs    *vfs.LocalFS
	aclMu sync.Mutex // serializes ACL read-modify-write cycles

	draining atomic.Bool
	// legacySums makes the server answer EINVAL to the digest verbs
	// (checksum/getfilesum/putfilesum) without consuming anything from
	// the stream — exactly what a pre-digest server does with an
	// unknown verb. Test hook for the client's negotiation fallback.
	legacySums atomic.Bool
	// legacyParts does the same for the multipart verbs
	// (putbegin/putpart/putcomplete/getpart): test hook for the
	// multipart engine's per-transfer negotiation probes.
	legacyParts atomic.Bool
	// legacyLeases does the same for the lease verbs
	// (lease/leasebreak): test hook for the caching tier's negotiation
	// downgrade.
	legacyLeases atomic.Bool
	// legacyDeadlines does the same for the deadline prefix verb: test
	// hook for the client's deadline-propagation downgrade.
	legacyDeadlines atomic.Bool
	// admission is the bounded in-flight gate of DESIGN.md §15; with
	// MaxInflight 0 it admits everything.
	admission *admission
	// leases is the read-lease table of DESIGN.md §14: outstanding
	// grants plus per-path version counters bumped on every
	// conflicting mutation.
	leases    leaseTable
	connMu    sync.Mutex
	conns     map[net.Conn]*connState
	listeners map[net.Listener]struct{}
	connWG    sync.WaitGroup

	// Per-RPC metrics, pre-resolved at construction so the serving
	// loop pays one map lookup per request; all nil without a registry.
	rpcHist          map[string]*obs.Histogram
	mRPCUnknown      *obs.Counter
	mRPCErrors       *obs.Counter
	mConnections     *obs.Counter
	mRequests        *obs.Counter
	mBytesRead       *obs.Counter
	mBytesWritten    *obs.Counter
	mBulkFast        *obs.Counter
	mMultipartFast   *obs.Counter
	mLeaseGrants     *obs.Counter
	mLeaseBreaks     *obs.Counter
	mDraining        *obs.Gauge
	mSessionsRefused *obs.Counter
	mDeadlineRejects *obs.Counter

	Stats ServerStats
}

// rpcVerbs is every verb the dispatch loop understands; the histogram
// set is fixed at construction so /metrics shows all RPCs from boot.
var rpcVerbs = []string{
	"open", "pread", "pwrite", "fstat", "fsync", "ftruncate", "close",
	"stat", "unlink", "rename", "mkdir", "rmdir", "getdir",
	"getfile", "putfile", "checksum", "getfilesum", "putfilesum",
	"putbegin", "putpart", "putcomplete", "getpart",
	"truncate", "chmod", "getacl", "setacl",
	"lease", "leasebreak",
	"statfs", "whoami",
	"deadline",
}

// ioBufPool recycles bulk-data buffers across requests and
// connections, so the data path's steady state allocates nothing: a
// busy server otherwise pays one fresh buffer — up to proto.MaxIOSize —
// per pread/pwrite. Entries are *[]byte (a pool of slices would box a
// fresh header on every Put) and grow to the largest request they have
// served.
var ioBufPool sync.Pool

// getIOBuf returns a pooled buffer of length n.
func getIOBuf(n int) *[]byte {
	v, _ := ioBufPool.Get().(*[]byte)
	if v == nil {
		v = new([]byte)
	}
	if cap(*v) < n {
		*v = make([]byte, n)
	}
	*v = (*v)[:n]
	return v
}

func putIOBuf(v *[]byte) { ioBufPool.Put(v) }

// connState tracks one connection's drain-relevant state: whether a
// request is mid-flight (never interrupt it) and whether Shutdown has
// nudged the connection's read deadline to unblock an idle ReadLine.
type connState struct {
	mu     sync.Mutex
	busy   bool
	nudged bool
}

// NewServer creates a file server exporting root. If the root has no
// ACL yet, one is created granting the owner all rights.
func NewServer(root string, cfg ServerConfig) (*Server, error) {
	fs, err := vfs.NewLocalFS(root)
	if err != nil {
		return nil, err
	}
	if cfg.MaxFDs <= 0 {
		cfg.MaxFDs = 256
	}
	if cfg.Owner == "" {
		cfg.Owner = "unix:owner"
	}
	s := &Server{cfg: cfg, fs: fs}
	s.leases.init(cfg.LeaseTTL)
	s.admission = newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueTimeout, &s.Stats, cfg.Metrics)
	if reg := cfg.Metrics; reg != nil {
		s.rpcHist = make(map[string]*obs.Histogram, len(rpcVerbs))
		for _, v := range rpcVerbs {
			s.rpcHist[v] = reg.Histogram("chirp_server.rpc." + v)
		}
		s.mRPCUnknown = reg.Counter("chirp_server.rpc_unknown")
		s.mRPCErrors = reg.Counter("chirp_server.rpc_errors")
		s.mConnections = reg.Counter("chirp_server.connections")
		s.mRequests = reg.Counter("chirp_server.requests")
		s.mBytesRead = reg.Counter("chirp_server.bytes_read")
		s.mBytesWritten = reg.Counter("chirp_server.bytes_written")
		s.mBulkFast = reg.Counter("chirp_server.bulk_fastpath")
		s.mMultipartFast = reg.Counter("chirp_server.multipart_fastpath")
		s.mLeaseGrants = reg.Counter("chirp_server.lease_grants")
		s.mLeaseBreaks = reg.Counter("chirp_server.lease_breaks")
		s.mDraining = reg.Gauge("chirp_server.draining")
		s.mSessionsRefused = reg.Counter("chirp_server.sessions_refused")
		s.mDeadlineRejects = reg.Counter("chirp_server.deadline_rejects")
	}
	if err := s.ensureRootACL(); err != nil {
		return nil, err
	}
	return s, nil
}

// observeRPC times one dispatched request into the per-verb histogram.
func (s *Server) observeRPC(verb string, start time.Time) {
	if h, ok := s.rpcHist[verb]; ok {
		h.Observe(time.Since(start))
		return
	}
	s.mRPCUnknown.Inc()
}

// Name returns the advertised server name.
func (s *Server) Name() string { return s.cfg.Name }

// Owner returns the owner subject.
func (s *Server) Owner() auth.Subject { return s.cfg.Owner }

// FS exposes the underlying confined filesystem (owner access: the
// paper notes the owner retains access to all data on the server).
func (s *Server) FS() *vfs.LocalFS { return s.fs }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) ensureRootACL() error {
	s.aclMu.Lock()
	defer s.aclMu.Unlock()
	if _, err := s.fs.Stat("/" + ACLFileName); err == nil {
		return nil
	}
	list := &acl.List{}
	if s.cfg.RootACL != nil {
		list = s.cfg.RootACL.Clone()
	}
	list.Set(string(s.cfg.Owner), acl.AllRights|acl.V, acl.AllRights)
	return s.writeACL("/", list)
}

// readACL returns the ACL stored exactly at dir, or nil if absent.
// Caller holds aclMu or tolerates racing writers.
func (s *Server) readACL(dir string) (*acl.List, error) {
	data, err := vfs.ReadFile(s.fs, pathutil.Join(dir, ACLFileName))
	if err != nil {
		if vfs.AsErrno(err) == vfs.ENOENT {
			return nil, nil
		}
		return nil, err
	}
	return acl.Parse(data)
}

func (s *Server) writeACL(dir string, list *acl.List) error {
	return vfs.WriteFile(s.fs, pathutil.Join(dir, ACLFileName), list.Encode(), 0o644)
}

// effectiveACL walks from dir toward the root and returns the nearest
// ACL, so directories created outside the protocol (pre-existing data
// being exported) inherit their ancestor's policy.
func (s *Server) effectiveACL(dir string) (*acl.List, error) {
	for {
		l, err := s.readACL(dir)
		if err != nil {
			return nil, err
		}
		if l != nil {
			return l, nil
		}
		if pathutil.IsRoot(dir) {
			// Root ACL is created at startup; reaching here means it
			// was deleted out from under us.
			return nil, vfs.EIO
		}
		dir = pathutil.Dir(dir)
	}
}

// checkDir verifies that subject holds want rights in directory dir.
func (s *Server) checkDir(subject auth.Subject, dir string, want acl.Rights) error {
	l, err := s.effectiveACL(dir)
	if err != nil {
		return err
	}
	if !l.Allows(string(subject), want) {
		return vfs.EACCES
	}
	return nil
}

// checkParent verifies rights in the parent directory of path.
func (s *Server) checkParent(subject auth.Subject, path string, want acl.Rights) error {
	return s.checkDir(subject, pathutil.Dir(path), want)
}

// checkEither verifies that subject holds at least one of the right
// sets in the parent directory of path.
func (s *Server) checkParentEither(subject auth.Subject, path string, wants ...acl.Rights) error {
	l, err := s.effectiveACL(pathutil.Dir(path))
	if err != nil {
		return err
	}
	for _, w := range wants {
		if l.Allows(string(subject), w) {
			return nil
		}
	}
	return vfs.EACCES
}

// normPath validates and normalizes a client path, rejecting any
// attempt to name the ACL file directly.
func normPath(p string) (string, error) {
	n, err := pathutil.Norm(p)
	if err != nil {
		return "", vfs.EINVAL
	}
	for _, c := range pathutil.Split(n) {
		if c == ACLFileName {
			return "", vfs.EACCES
		}
	}
	return n, nil
}

// Serve accepts connections until the listener is closed (directly or
// by Shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.draining.Load() {
		s.connMu.Unlock()
		l.Close()
		return nil
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[l] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, l)
		s.connMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// track registers a connection for drain accounting; it returns nil
// when the server is already draining — or the session cap is reached —
// and the connection must be refused.
func (s *Server) track(conn net.Conn) *connState {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining.Load() {
		return nil
	}
	if max := s.cfg.MaxSessions; max > 0 && len(s.conns) >= max {
		s.Stats.SessionsRefused.Add(1)
		s.mSessionsRefused.Inc()
		return nil
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]*connState)
	}
	st := &connState{}
	s.conns[conn] = st
	s.connWG.Add(1)
	return st
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	s.connWG.Done()
}

// Draining reports whether Shutdown has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully drains the server: it stops accepting new
// connections, lets requests already in flight run to completion, and
// unblocks connections idle between requests. When ctx expires before
// the drain completes, remaining connections are force-closed and the
// context error is returned. After Shutdown the server refuses new
// connections permanently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mDraining.Set(1)
	// Queued-but-unstarted RPCs fail with ESHUTDOWN right now — a full
	// admission queue must not stall the drain for a queue-timeout (or
	// deadline-length) period. In-flight RPCs keep their slots.
	s.admission.drain()
	s.connMu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	for c, st := range s.conns {
		st.mu.Lock()
		if !st.busy {
			// Idle between requests (or mid-auth): interrupt the blocked
			// read. A request line racing this nudge is saved by the
			// serving loop, which clears the deadline once the line
			// lands.
			st.nudged = true
			c.SetReadDeadline(time.Unix(1, 0))
		}
		st.mu.Unlock()
	}
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.Stats.Drains.Add(1)
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			s.Stats.DrainForced.Add(1)
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		s.Stats.Drains.Add(1)
		return ctx.Err()
	}
}

// Abort kills the server the way a crash would: listeners and every
// live connection are closed immediately, with no drain and no
// farewell to requests in flight. Clients observe the same abrupt
// transport errors a chirpd process death produces. Like Shutdown,
// the server refuses new connections permanently afterwards; a
// "rebooted" instance is a fresh Server constructed over the same
// root directory. Abort returns once every connection handler has
// exited, so server-side descriptor state is fully released — the
// paper's failure semantics (§6) tie all per-connection state to the
// connection's lifetime.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.mDraining.Set(1)
	s.admission.drain()
	s.connMu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	s.Stats.Aborts.Add(1)
}

// ServeConn authenticates and serves a single connection, returning
// when the peer disconnects. Per the paper's failure semantics, all
// server-side state for the connection — in particular open file
// descriptors — is released when the connection ends.
func (s *Server) ServeConn(conn net.Conn) {
	st := s.track(conn)
	if st == nil {
		// Already draining: refuse.
		conn.Close()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			log.Printf("chirp: panic serving %v: %v", conn.RemoteAddr(), r)
		}
		conn.Close()
		s.untrack(conn)
	}()
	s.Stats.Connections.Add(1)
	s.mConnections.Inc()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	peer := auth.PeerInfo{Addr: conn.RemoteAddr().String()}
	subject, err := auth.Accept(br, flushWriter{bw}, peer, s.cfg.Verifiers...)
	if err != nil {
		s.logf("chirp: auth failed for %v: %v", conn.RemoteAddr(), err)
		return
	}
	s.logf("chirp: %v authenticated as %s", conn.RemoteAddr(), subject)

	sess := &session{srv: s, subject: subject, files: make(map[int64]*openFD)}
	defer sess.closeAll()

	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return // disconnect: free everything
		}
		// The request is now in flight: a drain must let it finish. If a
		// drain nudge raced the arriving request line, clear the poisoned
		// read deadline so the data phase and response go through.
		st.mu.Lock()
		st.busy = true
		if st.nudged {
			conn.SetReadDeadline(time.Time{})
			st.nudged = false
		}
		st.mu.Unlock()
		if !isDeadlinePrefix(line) {
			// The deadline prefix annotates the request that follows; it
			// is protocol overhead, not an RPC of its own.
			s.Stats.Requests.Add(1)
			s.mRequests.Inc()
		}
		if err := sess.dispatch(line, conn, br, bw); err != nil {
			s.logf("chirp: %s: fatal: %v", subject, err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		st.mu.Lock()
		st.busy = false
		st.mu.Unlock()
		if s.draining.Load() {
			return // drain: this request was the connection's last
		}
	}
}

// flushWriter flushes after every write; the auth dialog is interactive
// line-at-a-time traffic.
type flushWriter struct{ w *bufio.Writer }

func (f flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if err == nil {
		err = f.w.Flush()
	}
	return n, err
}

type openFD struct {
	file vfs.File
	path string
}

// session is the per-connection server state.
type session struct {
	srv     *Server
	subject auth.Subject
	files   map[int64]*openFD
	nextFD  int64
	// leases are the lease IDs granted on this connection, released at
	// disconnect like descriptors (nil until the first grant).
	leases map[int64]struct{}
	// armed is the deadline set by the last "deadline" prefix line,
	// consumed by the next dispatched request (zero = none).
	armed time.Time
	// reqDeadline is the deadline governing the request currently in
	// flight; bulk loops poll it and abort the stream when it lapses.
	reqDeadline time.Time
	// scratch is the session's response-line encoding buffer; a session
	// serves one connection serially, so reuse is race-free and the
	// per-line allocation of fmt.Fprintf disappears from the hot path.
	scratch []byte
}

func (ss *session) closeAll() {
	for _, f := range ss.files {
		f.file.Close()
	}
	ss.files = nil
	if ss.leases != nil {
		ss.srv.leases.releaseOwned(ss.leases)
		ss.leases = nil
	}
}

func respondCode(bw *bufio.Writer, v int64) error {
	var b [21]byte // fits any int64 plus the newline
	if _, err := bw.Write(strconv.AppendInt(b[:0], v, 10)); err != nil {
		return err
	}
	return bw.WriteByte('\n')
}

// writeStat renders one stat response line through the session scratch
// buffer.
func (ss *session) writeStat(bw *bufio.Writer, fi vfs.FileInfo) error {
	ss.scratch = append(proto.AppendStat(ss.scratch[:0], fi), '\n')
	_, err := bw.Write(ss.scratch)
	return err
}

// respondErr reports a per-request status to the client, counting
// failed requests into the server metrics.
func (ss *session) respondErr(bw *bufio.Writer, err error) error {
	code := vfs.Code(err)
	if code != 0 {
		ss.srv.mRPCErrors.Inc()
	}
	return respondCode(bw, int64(code))
}

// dispatch handles one request. A returned error is fatal to the
// connection (stream desync); per-request failures are reported to the
// client as negative status codes instead. conn is the raw transport
// under br/bw; the bulk-data verbs use it to stream file bodies past
// the protocol buffers.
func (ss *session) dispatch(line string, conn net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	req, err := proto.ParseRequest(line)
	if err != nil {
		// Unknown or malformed verb with no data phase: report and
		// continue; the line framing is intact.
		return ss.respondErr(bw, vfs.EINVAL)
	}
	if ss.srv.rpcHist != nil {
		defer ss.srv.observeRPC(req.Verb, time.Now())
	}
	if req.Verb == "deadline" {
		// The pipelined deadline prefix arms the next request; it is
		// pure bookkeeping and bypasses admission control — refusing it
		// would only hide the very information load shedding wants.
		if ss.srv.legacyDeadlines.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleDeadline(req, bw)
	}
	// Consume the armed deadline: it governs exactly one request.
	deadline := ss.armed
	ss.armed = time.Time{}
	ss.reqDeadline = deadline
	if !deadline.IsZero() && time.Now().After(deadline) {
		// Nobody is waiting for this answer; burn no cycles on it.
		ss.srv.Stats.DeadlineRejects.Add(1)
		ss.srv.mDeadlineRejects.Inc()
		return ss.reject(req, br, bw, vfs.ETIMEDOUT)
	}
	if err := ss.srv.admission.acquire(bulkVerb[req.Verb]); err != nil {
		return ss.reject(req, br, bw, err)
	}
	defer ss.srv.admission.release()
	if !deadline.IsZero() && time.Now().After(deadline) {
		// The deadline lapsed while the request waited for admission.
		ss.srv.Stats.DeadlineRejects.Add(1)
		ss.srv.mDeadlineRejects.Inc()
		return ss.reject(req, br, bw, vfs.ETIMEDOUT)
	}
	switch req.Verb {
	case "open":
		return ss.handleOpen(req, bw)
	case "pread":
		return ss.handlePread(req, bw)
	case "pwrite":
		return ss.handlePwrite(req, br, bw)
	case "fstat":
		return ss.handleFstat(req, bw)
	case "fsync":
		return ss.handleFsync(req, bw)
	case "ftruncate":
		return ss.handleFtruncate(req, bw)
	case "close":
		return ss.handleClose(req, bw)
	case "stat":
		return ss.handleStat(req, bw)
	case "unlink":
		return ss.handleUnlink(req, bw)
	case "rename":
		return ss.handleRename(req, bw)
	case "mkdir":
		return ss.handleMkdir(req, bw)
	case "rmdir":
		return ss.handleRmdir(req, bw)
	case "getdir":
		return ss.handleGetdir(req, bw)
	case "getfile":
		return ss.handleGetfile(req, conn, bw)
	case "putfile":
		return ss.handlePutfile(req, conn, br, bw)
	case "checksum":
		if ss.srv.legacySums.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleChecksum(req, bw)
	case "getfilesum":
		if ss.srv.legacySums.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleGetfilesum(req, bw)
	case "putfilesum":
		if ss.srv.legacySums.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handlePutfilesum(req, br, bw)
	case "putbegin":
		if ss.srv.legacyParts.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handlePutbegin(req, bw)
	case "putpart":
		if ss.srv.legacyParts.Load() {
			// An old server never reaches a putpart: putbegin's EINVAL
			// stops the client first. Mirror that — no data phase has
			// been consumed, so the caller that got here anyway is
			// already desynced, exactly like a real legacy server.
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handlePutpart(req, conn, br, bw)
	case "putcomplete":
		if ss.srv.legacyParts.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handlePutcomplete(req, bw)
	case "getpart":
		if ss.srv.legacyParts.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleGetpart(req, conn, bw)
	case "truncate":
		return ss.handleTruncate(req, bw)
	case "chmod":
		return ss.handleChmod(req, bw)
	case "lease":
		if ss.srv.legacyLeases.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleLease(req, bw)
	case "leasebreak":
		if ss.srv.legacyLeases.Load() {
			return ss.respondErr(bw, vfs.EINVAL)
		}
		return ss.handleLeasebreak(req, bw)
	case "getacl":
		return ss.handleGetacl(req, bw)
	case "setacl":
		return ss.handleSetacl(req, bw)
	case "statfs":
		return ss.handleStatfs(bw)
	case "whoami":
		if err := respondCode(bw, 0); err != nil {
			return err
		}
		_, err := fmt.Fprintf(bw, "%s\n", proto.Escape(string(ss.subject)))
		return err
	}
	return ss.respondErr(bw, vfs.EINVAL)
}

func (ss *session) handleOpen(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	flags := int(req.Flags)
	want := acl.R
	if flags&vfs.AccessModeMask != vfs.O_RDONLY || flags&(vfs.O_CREAT|vfs.O_TRUNC|vfs.O_APPEND) != 0 {
		want = acl.W
	}
	if err := ss.srv.checkParent(ss.subject, path, want); err != nil {
		return ss.respondErr(bw, err)
	}
	if len(ss.files) >= ss.srv.cfg.MaxFDs {
		return ss.respondErr(bw, vfs.EMFILE)
	}
	f, err := ss.srv.fs.Open(path, flags, uint32(req.Mode))
	if err != nil {
		return ss.respondErr(bw, err)
	}
	// The open response carries the stat line, so clients get the
	// metadata (notably the inode, which the adapter's recovery
	// protocol needs) without a second round trip.
	fi, err := f.Fstat()
	if err != nil {
		f.Close()
		return ss.respondErr(bw, err)
	}
	ss.nextFD++
	fd := ss.nextFD
	ss.files[fd] = &openFD{file: f, path: path}
	if flags&(vfs.O_CREAT|vfs.O_TRUNC) != 0 {
		// The open itself may have created or emptied the file; break
		// leases on it and on its directory's entry list.
		ss.srv.breakLeases(path, pathutil.Dir(path))
	}
	if err := respondCode(bw, fd); err != nil {
		return err
	}
	return ss.writeStat(bw, fi)
}

func (ss *session) fd(id int64) (*openFD, error) {
	f, ok := ss.files[id]
	if !ok {
		return nil, vfs.EBADF
	}
	return f, nil
}

func (ss *session) handlePread(req *proto.Request, bw *bufio.Writer) error {
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Length < 0 || req.Length > proto.MaxIOSize || req.Offset < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	bp := getIOBuf(int(req.Length))
	defer putIOBuf(bp)
	buf := *bp
	n, err := f.file.Pread(buf, req.Offset)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	ss.srv.Stats.BytesRead.Add(int64(n))
	ss.srv.mBytesRead.Add(int64(n))
	if err := respondCode(bw, int64(n)); err != nil {
		return err
	}
	_, err = bw.Write(buf[:n])
	return err
}

func (ss *session) handlePwrite(req *proto.Request, br *bufio.Reader, bw *bufio.Writer) error {
	if req.Length < 0 || req.Length > proto.MaxIOSize || req.Offset < 0 {
		// Cannot honor the data phase safely; the stream is desynced.
		ss.respondErr(bw, vfs.EINVAL)
		return fmt.Errorf("pwrite length out of range")
	}
	bp := getIOBuf(int(req.Length))
	defer putIOBuf(bp)
	buf := *bp
	if _, err := io.ReadFull(br, buf); err != nil {
		return err
	}
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	n, err := f.file.Pwrite(buf, req.Offset)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	ss.srv.breakLeases(f.path)
	ss.srv.Stats.BytesWriten.Add(int64(n))
	ss.srv.mBytesWritten.Add(int64(n))
	return respondCode(bw, int64(n))
}

func (ss *session) handleFstat(req *proto.Request, bw *bufio.Writer) error {
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	fi, err := f.file.Fstat()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, 0); err != nil {
		return err
	}
	return ss.writeStat(bw, fi)
}

func (ss *session) handleFsync(req *proto.Request, bw *bufio.Writer) error {
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	return ss.respondErr(bw, f.file.Sync())
}

func (ss *session) handleFtruncate(req *proto.Request, bw *bufio.Writer) error {
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Size < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	err = f.file.Ftruncate(req.Size)
	if err == nil {
		ss.srv.breakLeases(f.path)
	}
	return ss.respondErr(bw, err)
}

func (ss *session) handleClose(req *proto.Request, bw *bufio.Writer) error {
	f, err := ss.fd(req.FD)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	delete(ss.files, req.FD)
	return ss.respondErr(bw, f.file.Close())
}

func (ss *session) handleStat(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.L); err != nil {
		return ss.respondErr(bw, err)
	}
	fi, err := ss.srv.fs.Stat(path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, 0); err != nil {
		return err
	}
	return ss.writeStat(bw, fi)
}

func (ss *session) handleUnlink(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParentEither(ss.subject, path, acl.W, acl.D); err != nil {
		return ss.respondErr(bw, err)
	}
	err = ss.srv.fs.Unlink(path)
	if err == nil {
		ss.srv.breakLeases(path, pathutil.Dir(path))
	}
	return ss.respondErr(bw, err)
}

func (ss *session) handleRename(req *proto.Request, bw *bufio.Writer) error {
	oldPath, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	newPath, err := normPath(req.Path2)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParentEither(ss.subject, oldPath, acl.W, acl.D); err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, newPath, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	err = ss.srv.fs.Rename(oldPath, newPath)
	if err == nil {
		ss.srv.breakLeases(oldPath, newPath, pathutil.Dir(oldPath), pathutil.Dir(newPath))
	}
	return ss.respondErr(bw, err)
}

func (ss *session) handleMkdir(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if pathutil.IsRoot(path) {
		return ss.respondErr(bw, vfs.EEXIST)
	}
	ss.srv.aclMu.Lock()
	defer ss.srv.aclMu.Unlock()
	parent, err := ss.srv.effectiveACL(pathutil.Dir(path))
	if err != nil {
		return ss.respondErr(bw, err)
	}
	rights, reserve := parent.RightsFor(string(ss.subject))
	var childACL *acl.List
	switch {
	case rights.Has(acl.W):
		// Ordinary mkdir: the new directory inherits the parent policy.
		childACL = parent.Clone()
	case rights.Has(acl.V):
		// Reservation (§4): the new directory belongs to the caller,
		// with exactly the sub-rights named in the parent's v(...)
		// entry — no more. If A was omitted there, the creator cannot
		// extend access to anyone else.
		childACL = &acl.List{}
		childACL.Set(string(ss.subject), reserve, 0)
	default:
		return ss.respondErr(bw, vfs.EACCES)
	}
	if err := ss.srv.fs.Mkdir(path, uint32(req.Mode)); err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.writeACL(path, childACL); err != nil {
		ss.srv.fs.Rmdir(path)
		return ss.respondErr(bw, err)
	}
	ss.srv.breakLeases(path, pathutil.Dir(path))
	return respondCode(bw, 0)
}

func (ss *session) handleRmdir(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if pathutil.IsRoot(path) {
		return ss.respondErr(bw, vfs.EBUSY)
	}
	if err := ss.srv.checkParentEither(ss.subject, path, acl.W, acl.D); err != nil {
		return ss.respondErr(bw, err)
	}
	ss.srv.aclMu.Lock()
	defer ss.srv.aclMu.Unlock()
	// A directory whose only remaining entry is its ACL file counts as
	// empty; remove the ACL first, restoring it if rmdir then fails.
	ents, err := ss.srv.fs.ReadDir(path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	hadACL := false
	for _, e := range ents {
		if e.Name == ACLFileName {
			hadACL = true
			continue
		}
		return ss.respondErr(bw, vfs.ENOTEMPTY)
	}
	var saved *acl.List
	if hadACL {
		saved, _ = ss.srv.readACL(path)
		if err := ss.srv.fs.Unlink(pathutil.Join(path, ACLFileName)); err != nil {
			return ss.respondErr(bw, err)
		}
	}
	if err := ss.srv.fs.Rmdir(path); err != nil {
		if saved != nil {
			ss.srv.writeACL(path, saved)
		}
		return ss.respondErr(bw, err)
	}
	ss.srv.breakLeases(path, pathutil.Dir(path))
	return respondCode(bw, 0)
}

func (ss *session) handleGetdir(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkDir(ss.subject, path, acl.L); err != nil {
		return ss.respondErr(bw, err)
	}
	ents, err := ss.srv.fs.ReadDir(path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	visible := ents[:0]
	for _, e := range ents {
		if e.Name != ACLFileName {
			visible = append(visible, e)
		}
	}
	if err := respondCode(bw, int64(len(visible))); err != nil {
		return err
	}
	for _, e := range visible {
		ss.scratch = append(proto.AppendDirEntry(ss.scratch[:0], e), '\n')
		if _, err := bw.Write(ss.scratch); err != nil {
			return err
		}
	}
	return nil
}

// bulkConn returns the raw TCP connection under the session transport
// when the bulk fast path can use it, or nil. Simulated and wrapped
// connections take the buffered path.
func bulkConn(conn net.Conn) *net.TCPConn {
	tcp, _ := conn.(*net.TCPConn)
	return tcp
}

// osFileOf unwraps a host-backed file for zero-copy streaming.
func osFileOf(f vfs.File) *os.File {
	if o, ok := f.(vfs.OSFiler); ok {
		return o.OSFile()
	}
	return nil
}

func (ss *session) handleGetfile(req *proto.Request, conn net.Conn, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.R); err != nil {
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	defer f.Close()
	fi, err := f.Fstat()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, fi.Size); err != nil {
		return err
	}
	// Stream exactly fi.Size bytes: the count was already promised, so
	// a concurrently shrinking file is padded with zeros to keep the
	// stream in sync.
	var off int64
	if tcp := bulkConn(conn); tcp != nil {
		if osf := osFileOf(f); osf != nil {
			// Zero-copy bulk path: flush the status line, then hand the
			// host file straight to the TCP stack — io.Copy resolves to
			// TCPConn.ReadFrom, which uses sendfile(2) on a *os.File.
			// The file was opened fresh at offset zero and nothing else
			// moves its offset.
			if err := bw.Flush(); err != nil {
				return err
			}
			n, err := io.Copy(tcp, &io.LimitedReader{R: osf, N: fi.Size})
			ss.srv.Stats.BytesRead.Add(n)
			ss.srv.mBytesRead.Add(n)
			ss.srv.mBulkFast.Inc()
			if err != nil {
				return err
			}
			off = n // a shrunken file leaves off < fi.Size: pad below
		}
	}
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	for off < fi.Size {
		if ss.deadlineLapsed() {
			return ss.abortStream()
		}
		want := int64(len(buf))
		if fi.Size-off < want {
			want = fi.Size - off
		}
		n, err := f.Pread(buf[:want], off)
		if err != nil {
			return err
		}
		if n == 0 {
			for i := range buf[:want] {
				buf[i] = 0
			}
			n = int(want)
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		off += int64(n)
		ss.srv.Stats.BytesRead.Add(int64(n))
		ss.srv.mBytesRead.Add(int64(n))
	}
	return nil
}

// countingReader counts bytes consumed from the transport during a
// bulk receive, so a write-side failure mid-copy still knows exactly
// where the protocol stream stands. It records read errors separately:
// a failed transport read is fatal to the connection, a failed file
// write is a per-request error.
type countingReader struct {
	r       io.Reader
	n       int64
	readErr error
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	if err != nil && err != io.EOF {
		c.readErr = err
	}
	return n, err
}

// receiveBulk streams length body bytes into the host file osf: first
// whatever bufio already holds, then the remainder directly from the
// transport (where the runtime can splice socket-to-file). It returns
// the bytes consumed from the stream and the first error, with
// transportErr set when the error came from the transport read side.
func receiveBulk(osf *os.File, conn net.Conn, br *bufio.Reader, length int64) (consumed int64, err error, transportErr bool) {
	if buffered := int64(br.Buffered()); buffered > 0 {
		if buffered > length {
			buffered = length
		}
		cr := &countingReader{r: io.LimitReader(br, buffered)}
		_, err = io.Copy(osf, cr)
		consumed += cr.n
		if err != nil {
			return consumed, err, false // bufio reads cannot fail
		}
	}
	if consumed < length {
		cr := &countingReader{r: conn}
		_, err = io.Copy(osf, io.LimitReader(cr, length-consumed))
		consumed += cr.n
		if err != nil {
			return consumed, err, cr.readErr != nil
		}
	}
	return consumed, nil, false
}

func (ss *session) handlePutfile(req *proto.Request, conn net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		// Must still consume the data phase to stay in sync.
		io.CopyN(io.Discard, br, req.Length)
		return ss.respondErr(bw, err)
	}
	if req.Length < 0 {
		ss.respondErr(bw, vfs.EINVAL)
		return fmt.Errorf("putfile negative length")
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		io.CopyN(io.Discard, br, req.Length)
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, uint32(req.Mode))
	if err != nil {
		io.CopyN(io.Discard, br, req.Length)
		return ss.respondErr(bw, err)
	}
	// The open created or truncated the file: leases are broken now,
	// before any acknowledgement, even if the body copy fails midway.
	ss.srv.breakLeases(path, pathutil.Dir(path))
	if osf := osFileOf(f); osf != nil {
		// Bulk fast path: the file was opened fresh and truncated, so
		// sequential writes from offset zero are exactly the body.
		consumed, copyErr, transport := receiveBulk(osf, conn, br, req.Length)
		ss.srv.Stats.BytesWriten.Add(consumed)
		ss.srv.mBytesWritten.Add(consumed)
		ss.srv.mBulkFast.Inc()
		if copyErr != nil {
			f.Close()
			if transport {
				return copyErr
			}
			// Write-side failure (e.g. disk full): resynchronize the
			// stream by draining the rest of the body, then report.
			if _, err := io.CopyN(io.Discard, br, req.Length-consumed); err != nil {
				return err
			}
			return ss.respondErr(bw, vfs.AsErrno(copyErr))
		}
		if consumed < req.Length {
			// The peer closed mid-body: nothing more will arrive.
			f.Close()
			return io.ErrUnexpectedEOF
		}
		if err := f.Close(); err != nil {
			return ss.respondErr(bw, err)
		}
		return respondCode(bw, req.Length)
	}
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	var off int64
	for off < req.Length {
		if ss.deadlineLapsed() {
			// The sender's own timeout already fired; don't spend disk
			// writes on a transfer nobody will acknowledge.
			f.Close()
			return ss.abortStream()
		}
		want := int64(len(buf))
		if req.Length-off < want {
			want = req.Length - off
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			f.Close()
			return err
		}
		if err := vfs.WriteAll(f, buf[:want], off); err != nil {
			f.Close()
			io.CopyN(io.Discard, br, req.Length-off-want)
			return ss.respondErr(bw, err)
		}
		off += want
		ss.srv.Stats.BytesWriten.Add(want)
		ss.srv.mBytesWritten.Add(want)
	}
	if err := f.Close(); err != nil {
		return ss.respondErr(bw, err)
	}
	return respondCode(bw, req.Length)
}

func (ss *session) handleTruncate(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Size < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	err = ss.srv.fs.Truncate(path, req.Size)
	if err == nil {
		ss.srv.breakLeases(path)
	}
	return ss.respondErr(bw, err)
}

func (ss *session) handleChmod(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	err = ss.srv.fs.Chmod(path, uint32(req.Mode))
	if err == nil {
		ss.srv.breakLeases(path)
	}
	return ss.respondErr(bw, err)
}

func (ss *session) handleGetacl(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkDir(ss.subject, path, acl.L); err != nil {
		return ss.respondErr(bw, err)
	}
	ss.srv.aclMu.Lock()
	list, err := ss.srv.effectiveACL(path)
	ss.srv.aclMu.Unlock()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, int64(len(list.Entries))); err != nil {
		return err
	}
	for _, e := range list.Entries {
		if _, err := fmt.Fprintf(bw, "%s\n", e.String()); err != nil {
			return err
		}
	}
	return nil
}

func (ss *session) handleSetacl(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := ss.srv.checkDir(ss.subject, path, acl.A); err != nil {
		return ss.respondErr(bw, err)
	}
	rights, reserve, err := acl.ParseSpec(req.Rights)
	if err != nil {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	ss.srv.aclMu.Lock()
	defer ss.srv.aclMu.Unlock()
	list, err := ss.srv.effectiveACL(path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	list = list.Clone()
	list.Set(req.Subject, rights, reserve)
	return ss.respondErr(bw, ss.srv.writeACL(path, list))
}

func (ss *session) handleStatfs(bw *bufio.Writer) error {
	info, err := ss.srv.fs.StatFS()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if err := respondCode(bw, 0); err != nil {
		return err
	}
	_, err = fmt.Fprintf(bw, "%d %d\n", info.TotalBytes, info.FreeBytes)
	return err
}

// Describe summarizes the server for catalog reports.
func (s *Server) Describe() (name, owner string, info vfs.FSInfo, rootACL string) {
	info, _ = s.fs.StatFS()
	s.aclMu.Lock()
	list, err := s.effectiveACL("/")
	s.aclMu.Unlock()
	if err == nil {
		rootACL = strings.TrimRight(string(list.Encode()), "\n")
	}
	return s.cfg.Name, string(s.cfg.Owner), info, rootACL
}
