package proto

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// The digest trailer is one extra protocol line after the raw bytes of
// a getfilesum/putfilesum body (and the sole payload of a checksum
// response): "<algo>:<hexdigest>". Keeping it a distinct line preserves
// the protocol's framing — a peer that has consumed the body can always
// resynchronize at the next newline, digest or not.

// MaxDigestLen bounds the decoded digest size: sha512 is 64 bytes, and
// nothing larger is on the horizon.
const MaxDigestLen = 64

// AppendDigestTrailer appends the trailer line (without newline) for an
// algorithm name and raw digest bytes to dst.
func AppendDigestTrailer(dst []byte, algo string, sum []byte) []byte {
	dst = AppendEscape(dst, algo)
	dst = append(dst, ':')
	n := len(dst)
	dst = append(dst, make([]byte, hex.EncodedLen(len(sum)))...)
	hex.Encode(dst[n:], sum)
	return dst
}

// MarshalDigestTrailer encodes a digest trailer line.
func MarshalDigestTrailer(algo string, sum []byte) string {
	return string(AppendDigestTrailer(nil, algo, sum))
}

// ParseDigestTrailer decodes a digest trailer line into the algorithm
// name and raw digest bytes. The hex digest cannot contain a colon, so
// the split point is the last one; algorithm names containing colons
// therefore round-trip.
func ParseDigestTrailer(line string) (algo string, sum []byte, err error) {
	colon := strings.LastIndexByte(line, ':')
	if colon <= 0 {
		return "", nil, fmt.Errorf("proto: malformed digest trailer %q", line)
	}
	algo, err = Unescape(line[:colon])
	if err != nil {
		return "", nil, err
	}
	hexSum := line[colon+1:]
	if len(hexSum) == 0 || len(hexSum)%2 != 0 || len(hexSum) > 2*MaxDigestLen {
		return "", nil, fmt.Errorf("proto: malformed digest trailer %q", line)
	}
	sum, err = hex.DecodeString(hexSum)
	if err != nil {
		return "", nil, fmt.Errorf("proto: malformed digest trailer %q", line)
	}
	return algo, sum, nil
}
