// Package proto defines the Chirp wire protocol: a line-oriented,
// Unix-like remote procedure call protocol carried over a single
// stream connection (§4 of the paper).
//
// Each request is one text line: a verb followed by space-separated,
// percent-escaped arguments. Each response begins with one line
// containing a decimal integer — a non-negative result value, or the
// negated error number (vfs.Errno) on failure — optionally followed by
// fixed-length raw data or further lines. Bulk data travels on the same
// connection as control, so a single TCP window serves both (the paper
// contrasts this with FTP's separate data connections).
//
// Requests:
//
//	open <path> <flags> <mode>          -> fd, then stat line
//	pread <fd> <length> <offset>        -> n, then n raw bytes
//	pwrite <fd> <length> <offset>       (then length raw bytes) -> n
//	fstat <fd>                          -> 0, then stat line
//	fsync <fd>                          -> 0
//	ftruncate <fd> <size>               -> 0
//	close <fd>                          -> 0
//	stat <path>                         -> 0, then stat line
//	unlink <path>                       -> 0
//	rename <old> <new>                  -> 0
//	mkdir <path> <mode>                 -> 0
//	rmdir <path>                        -> 0
//	getdir <path>                       -> count, then count entry lines
//	getfile <path>                      -> size, then size raw bytes
//	putfile <path> <mode> <size>        (then size raw bytes) -> size
//	checksum <path> <algo>              -> 0, then digest trailer line
//	getfilesum <path> <algo>            -> size, then size raw bytes, then digest trailer line
//	putfilesum <path> <mode> <size> <algo> -> 0 (ready), then size raw bytes and a
//	                                    digest trailer line from the client -> size
//	putbegin <path> <mode> <size>       -> 0 (creates the file at its full size)
//	putpart <path> <offset> <length> <algo> (then length raw bytes and, with a
//	                                    non-empty algo, a digest trailer line) -> length
//	putcomplete <path> <size> <algo> <sum> -> 0 (verifies size and composed digest,
//	                                    unlinking the file on mismatch)
//	getpart <path> <offset> <length> <algo> -> n, then n raw bytes, then a digest
//	                                    trailer line when algo is non-empty
//	truncate <path> <size>              -> 0
//	chmod <path> <mode>                 -> 0
//	lease <path>                        -> 0, then "<id> <ttl_ms> <version>" line
//	leasebreak <id>                     -> 0
//	getacl <path>                       -> count, then count ACL lines
//	setacl <path> <subject> <rights>    -> 0
//	statfs                              -> 0, then "total free" line
//	whoami                              -> 0, then subject line
//	deadline <budget_ms>                -> 0 (arms the deadline for the next request)
//
// deadline is a pipelined prefix verb: a client with a request timeout
// writes "deadline <remaining_ms>" immediately before the real request
// line and reads two status lines back. The server fast-rejects the
// armed request with ETIMEDOUT once the budget lapses, instead of
// burning cycles producing an answer nobody is waiting for. Because
// the prefix carries no data phase, a legacy server answers the
// unknown verb with EINVAL and framing stays intact — the established
// downgrade path (the client stops sending the prefix after the first
// EINVAL, exactly like the checksum and lease negotiation).
package proto

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"tss/internal/vfs"
)

// MaxLineLen bounds a single protocol line, preventing memory
// exhaustion from a malicious peer.
const MaxLineLen = 64 << 10

// MaxIOSize bounds a single pread/pwrite transfer. Larger application
// requests are split by the client.
const MaxIOSize = 8 << 20

// emptyToken encodes the empty string; it is otherwise unparseable as
// an escape (truncated), so it cannot collide with any Escape output.
const emptyToken = "%0"

const hexUpper = "0123456789ABCDEF"

// needsEscape reports whether s contains any byte Escape must rewrite.
func needsEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%', ' ', '\t', '\n', '\r', 0:
			return true
		}
	}
	return false
}

// AppendEscape appends the escaped form of s to dst and returns the
// extended slice. It is the allocation-free core of Escape, used by the
// append-based encoders on the RPC hot path.
func AppendEscape(dst []byte, s string) []byte {
	if s == "" {
		return append(dst, emptyToken...)
	}
	if !needsEscape(s) {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '%', ' ', '\t', '\n', '\r', 0:
			dst = append(dst, '%', hexUpper[c>>4], hexUpper[c&0xF])
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// Escape percent-escapes an argument so it contains no spaces, newlines
// or NUL bytes, and is never empty (fields must survive tokenization).
// A string with nothing to escape is returned unchanged, unallocated.
func Escape(s string) string {
	if s == "" {
		return emptyToken
	}
	if !needsEscape(s) {
		return s
	}
	return string(AppendEscape(nil, s))
}

// Unescape reverses Escape.
func Unescape(s string) (string, error) {
	if s == emptyToken {
		return "", nil
	}
	if !strings.ContainsRune(s, '%') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("proto: truncated escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("proto: bad escape in %q", s)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// asciiFields splits on runs of ASCII space and tab only. The standard
// strings.Fields splits on all Unicode whitespace, which would corrupt
// unescaped multibyte path arguments containing characters like U+2008.
func asciiFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// ReadLine reads one newline-terminated line, enforcing MaxLineLen.
func ReadLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > MaxLineLen {
		return "", fmt.Errorf("proto: line exceeds %d bytes", MaxLineLen)
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// ReadCode reads a response status line: a decimal integer. Negative
// values decode to the corresponding vfs.Errno.
func ReadCode(r *bufio.Reader) (int64, error) {
	line, err := ReadLine(r)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(line, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("proto: malformed status line %q", line)
	}
	return v, nil
}

// AppendStat appends a stat line (without newline) for fi to dst.
func AppendStat(dst []byte, fi vfs.FileInfo) []byte {
	dst = AppendEscape(dst, fi.Name)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, fi.Size, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(fi.Mode), 8)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, fi.MTime, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, fi.Inode, 10)
	if fi.IsDir {
		return append(dst, " 1"...)
	}
	return append(dst, " 0"...)
}

// MarshalStat encodes a FileInfo as a stat line.
func MarshalStat(fi vfs.FileInfo) string {
	return string(AppendStat(nil, fi))
}

// UnmarshalStat decodes a stat line.
func UnmarshalStat(line string) (vfs.FileInfo, error) {
	f := asciiFields(line)
	if len(f) != 6 {
		return vfs.FileInfo{}, fmt.Errorf("proto: malformed stat line %q", line)
	}
	name, err := Unescape(f[0])
	if err != nil {
		return vfs.FileInfo{}, err
	}
	size, err1 := strconv.ParseInt(f[1], 10, 64)
	mode, err2 := strconv.ParseUint(f[2], 8, 32)
	mtime, err3 := strconv.ParseInt(f[3], 10, 64)
	inode, err4 := strconv.ParseUint(f[4], 10, 64)
	isdir, err5 := strconv.ParseInt(f[5], 10, 8)
	for _, e := range []error{err1, err2, err3, err4, err5} {
		if e != nil {
			return vfs.FileInfo{}, fmt.Errorf("proto: malformed stat line %q", line)
		}
	}
	return vfs.FileInfo{
		Name:  name,
		Size:  size,
		Mode:  uint32(mode),
		MTime: mtime,
		Inode: inode,
		IsDir: isdir != 0,
	}, nil
}

// AppendDirEntry appends one getdir response line (without newline) to
// dst.
func AppendDirEntry(dst []byte, e vfs.DirEntry) []byte {
	dst = AppendEscape(dst, e.Name)
	if e.IsDir {
		return append(dst, " 1"...)
	}
	return append(dst, " 0"...)
}

// MarshalDirEntry encodes one getdir response line.
func MarshalDirEntry(e vfs.DirEntry) string {
	return string(AppendDirEntry(nil, e))
}

// UnmarshalDirEntry decodes one getdir response line.
func UnmarshalDirEntry(line string) (vfs.DirEntry, error) {
	f := asciiFields(line)
	if len(f) != 2 {
		return vfs.DirEntry{}, fmt.Errorf("proto: malformed dir entry %q", line)
	}
	name, err := Unescape(f[0])
	if err != nil {
		return vfs.DirEntry{}, err
	}
	return vfs.DirEntry{Name: name, IsDir: f[1] == "1"}, nil
}

// Request is a parsed protocol request. Fields are used according to
// the verb; unused fields are zero.
type Request struct {
	Verb    string
	Path    string // open, stat, unlink, mkdir, rmdir, getdir, getfile, putfile, truncate, chmod, getacl, setacl, rename (old)
	Path2   string // rename (new)
	Subject string // setacl
	Rights  string // setacl
	FD      int64  // pread, pwrite, fstat, fsync, ftruncate, close, leasebreak (lease ID)
	Length  int64  // pread, pwrite, putfile, getpart, putpart
	Offset  int64  // pread, pwrite, getpart, putpart
	Flags   int64  // open
	Mode    int64  // open, mkdir, putfile, chmod
	Size    int64  // truncate, ftruncate, putbegin, putcomplete
	Algo    string // checksum, getfilesum, putfilesum, getpart, putpart, putcomplete
	Sum     string // putcomplete (lowercase hex digest; empty when Algo is empty)
	Budget  int64  // deadline (remaining budget in milliseconds)
}

// AppendTo appends the request as a protocol line (without newline) to
// dst and returns the extended slice. It is the allocation-free encoder
// the client uses on the RPC hot path: with a recycled dst, encoding
// performs no heap allocation.
func (q *Request) AppendTo(dst []byte) ([]byte, error) {
	appendInt := func(b []byte, v int64) []byte {
		return strconv.AppendInt(append(b, ' '), v, 10)
	}
	appendOctal := func(b []byte, v int64) []byte {
		return strconv.AppendInt(append(b, ' '), v, 8)
	}
	appendPath := func(b []byte, s string) []byte {
		return AppendEscape(append(b, ' '), s)
	}
	switch q.Verb {
	case "open":
		dst = append(dst, "open"...)
		dst = appendPath(dst, q.Path)
		dst = appendInt(dst, q.Flags)
		return appendOctal(dst, q.Mode), nil
	case "pread", "pwrite":
		dst = append(dst, q.Verb...)
		dst = appendInt(dst, q.FD)
		dst = appendInt(dst, q.Length)
		return appendInt(dst, q.Offset), nil
	case "fstat", "fsync", "close":
		dst = append(dst, q.Verb...)
		return appendInt(dst, q.FD), nil
	case "ftruncate":
		dst = append(dst, "ftruncate"...)
		dst = appendInt(dst, q.FD)
		return appendInt(dst, q.Size), nil
	case "stat", "unlink", "rmdir", "getdir", "getfile", "getacl", "lease":
		dst = append(dst, q.Verb...)
		return appendPath(dst, q.Path), nil
	case "leasebreak":
		dst = append(dst, "leasebreak"...)
		return appendInt(dst, q.FD), nil
	case "rename":
		dst = append(dst, "rename"...)
		dst = appendPath(dst, q.Path)
		return appendPath(dst, q.Path2), nil
	case "mkdir", "chmod":
		dst = append(dst, q.Verb...)
		dst = appendPath(dst, q.Path)
		return appendOctal(dst, q.Mode), nil
	case "putfile":
		dst = append(dst, "putfile"...)
		dst = appendPath(dst, q.Path)
		dst = appendOctal(dst, q.Mode)
		return appendInt(dst, q.Length), nil
	case "checksum", "getfilesum":
		dst = append(dst, q.Verb...)
		dst = appendPath(dst, q.Path)
		return AppendEscape(append(dst, ' '), q.Algo), nil
	case "putfilesum":
		dst = append(dst, "putfilesum"...)
		dst = appendPath(dst, q.Path)
		dst = appendOctal(dst, q.Mode)
		dst = appendInt(dst, q.Length)
		return AppendEscape(append(dst, ' '), q.Algo), nil
	case "putbegin":
		dst = append(dst, "putbegin"...)
		dst = appendPath(dst, q.Path)
		dst = appendOctal(dst, q.Mode)
		return appendInt(dst, q.Size), nil
	case "getpart", "putpart":
		dst = append(dst, q.Verb...)
		dst = appendPath(dst, q.Path)
		dst = appendInt(dst, q.Offset)
		dst = appendInt(dst, q.Length)
		return AppendEscape(append(dst, ' '), q.Algo), nil
	case "putcomplete":
		dst = append(dst, "putcomplete"...)
		dst = appendPath(dst, q.Path)
		dst = appendInt(dst, q.Size)
		dst = AppendEscape(append(dst, ' '), q.Algo)
		return AppendEscape(append(dst, ' '), q.Sum), nil
	case "truncate":
		dst = append(dst, "truncate"...)
		dst = appendPath(dst, q.Path)
		return appendInt(dst, q.Size), nil
	case "setacl":
		dst = append(dst, "setacl"...)
		dst = appendPath(dst, q.Path)
		dst = AppendEscape(append(dst, ' '), q.Subject)
		return AppendEscape(append(dst, ' '), q.Rights), nil
	case "statfs", "whoami":
		return append(dst, q.Verb...), nil
	case "deadline":
		dst = append(dst, "deadline"...)
		return appendInt(dst, q.Budget), nil
	}
	return dst, fmt.Errorf("proto: unknown verb %q", q.Verb)
}

// Encode renders the request as a protocol line (without newline).
func (q *Request) Encode() (string, error) {
	b, err := q.AppendTo(nil)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func parseInt(s string, base int) (int64, error) {
	return strconv.ParseInt(s, base, 64)
}

// ParseRequest parses a protocol line into a Request.
func ParseRequest(line string) (*Request, error) {
	fields := asciiFields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("proto: empty request")
	}
	q := &Request{Verb: fields[0]}
	args := fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("proto: %s: want %d args, got %d", q.Verb, n, len(args))
		}
		return nil
	}
	var err error
	unescape := func(s string) string {
		var u string
		u, err = Unescape(s)
		return u
	}
	switch q.Verb {
	case "open":
		if e := need(3); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Flags, err = parseInt(args[1], 10)
		}
		if err == nil {
			q.Mode, err = parseInt(args[2], 8)
		}
	case "pread", "pwrite":
		if e := need(3); e != nil {
			return nil, e
		}
		q.FD, err = parseInt(args[0], 10)
		if err == nil {
			q.Length, err = parseInt(args[1], 10)
		}
		if err == nil {
			q.Offset, err = parseInt(args[2], 10)
		}
	case "fstat", "fsync", "close", "leasebreak":
		if e := need(1); e != nil {
			return nil, e
		}
		q.FD, err = parseInt(args[0], 10)
	case "ftruncate":
		if e := need(2); e != nil {
			return nil, e
		}
		q.FD, err = parseInt(args[0], 10)
		if err == nil {
			q.Size, err = parseInt(args[1], 10)
		}
	case "stat", "unlink", "rmdir", "getdir", "getfile", "getacl", "lease":
		if e := need(1); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
	case "rename":
		if e := need(2); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Path2 = unescape(args[1])
		}
	case "mkdir", "chmod":
		if e := need(2); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Mode, err = parseInt(args[1], 8)
		}
	case "putfile":
		if e := need(3); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Mode, err = parseInt(args[1], 8)
		}
		if err == nil {
			q.Length, err = parseInt(args[2], 10)
		}
	case "checksum", "getfilesum":
		if e := need(2); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Algo = unescape(args[1])
		}
	case "putfilesum":
		if e := need(4); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Mode, err = parseInt(args[1], 8)
		}
		if err == nil {
			q.Length, err = parseInt(args[2], 10)
		}
		if err == nil {
			q.Algo = unescape(args[3])
		}
	case "putbegin":
		if e := need(3); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Mode, err = parseInt(args[1], 8)
		}
		if err == nil {
			q.Size, err = parseInt(args[2], 10)
		}
	case "getpart", "putpart":
		if e := need(4); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Offset, err = parseInt(args[1], 10)
		}
		if err == nil {
			q.Length, err = parseInt(args[2], 10)
		}
		if err == nil {
			q.Algo = unescape(args[3])
		}
	case "putcomplete":
		if e := need(4); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Size, err = parseInt(args[1], 10)
		}
		if err == nil {
			q.Algo = unescape(args[2])
		}
		if err == nil {
			q.Sum = unescape(args[3])
		}
	case "truncate":
		if e := need(2); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Size, err = parseInt(args[1], 10)
		}
	case "setacl":
		if e := need(3); e != nil {
			return nil, e
		}
		q.Path = unescape(args[0])
		if err == nil {
			q.Subject = unescape(args[1])
		}
		if err == nil {
			q.Rights = unescape(args[2])
		}
	case "statfs", "whoami":
		if e := need(0); e != nil {
			return nil, e
		}
	case "deadline":
		if e := need(1); e != nil {
			return nil, e
		}
		q.Budget, err = parseInt(args[0], 10)
	default:
		return nil, fmt.Errorf("proto: unknown verb %q", q.Verb)
	}
	if err != nil {
		return nil, fmt.Errorf("proto: %s: %w", q.Verb, err)
	}
	return q, nil
}
