package proto

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary protocol lines to ParseRequest. The
// parser must never panic, and any line it accepts must survive a full
// re-encode/re-parse round trip unchanged: the parsed form is the
// canonical meaning of the request.
func FuzzDecodeRequest(f *testing.F) {
	f.Add("open /etc/motd 2 644")
	f.Add("pread 3 65536 0")
	f.Add("pwrite 3 8 1024")
	f.Add("rename /a%20b %0")
	f.Add("setacl / hostname:*.cse.nd.edu rwla")
	f.Add("putfile /data/blob 755 1048576")
	f.Add("close -1")
	f.Add("whoami")
	f.Add("open %GG 0 0")
	f.Add("stat %2")
	f.Fuzz(func(t *testing.T, line string) {
		q, err := ParseRequest(line)
		if err != nil {
			return
		}
		enc, err := q.Encode()
		if err != nil {
			t.Fatalf("accepted request %+v does not re-encode: %v", q, err)
		}
		q2, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded line %q does not re-parse: %v", enc, err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip changed request:\nline   %q\nfirst  %+v\nencode %q\nsecond %+v", line, q, enc, q2)
		}
	})
}

// FuzzEncodeDecode drives the opposite direction: a Request built from
// arbitrary field values must encode to a line that parses back to the
// same canonical encoding, no matter what bytes the path, subject or
// rights carry. This is the injection check — a hostile path must not
// be able to smuggle extra fields or verbs through Escape.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(0), "/etc/motd", "", "", "", int64(0), int64(0), int64(0), int64(2), int64(0644), int64(0))
	f.Add(uint8(1), "", "", "", "", int64(3), int64(65536), int64(0), int64(0), int64(0), int64(0))
	f.Add(uint8(9), "/a b", "/c\td", "", "", int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(uint8(17), "/", "", "unix:alice", "rwla", int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(uint8(13), "/data/%00", "", "", "", int64(0), int64(9), int64(0), int64(0), int64(0755), int64(0))
	f.Fuzz(func(t *testing.T, verbSel uint8, path, path2, subject, rights string,
		fd, length, offset, flags, mode, size int64) {
		verbs := []string{
			"open", "pread", "pwrite", "fstat", "fsync", "ftruncate",
			"close", "stat", "unlink", "rename", "mkdir", "rmdir",
			"getdir", "getfile", "putfile", "truncate", "chmod",
			"getacl", "setacl", "statfs", "whoami",
		}
		q := &Request{
			Verb: verbs[int(verbSel)%len(verbs)], Path: path, Path2: path2,
			Subject: subject, Rights: rights, FD: fd, Length: length,
			Offset: offset, Flags: flags, Mode: mode, Size: size,
		}
		enc, err := q.Encode()
		if err != nil {
			t.Fatalf("known verb %q does not encode: %v", q.Verb, err)
		}
		q2, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("encoding of %+v does not parse: %q: %v", q, enc, err)
		}
		if q2.Verb != q.Verb {
			t.Fatalf("verb changed in round trip: %q -> %q (line %q)", q.Verb, q2.Verb, enc)
		}
		enc2, err := q2.Encode()
		if err != nil {
			t.Fatalf("re-parse of %q does not re-encode: %v", enc, err)
		}
		if enc != enc2 {
			t.Fatalf("encoding not canonical:\nfirst  %q\nsecond %q", enc, enc2)
		}
	})
}

// FuzzEscape asserts the token escaping is lossless and that its output
// honors the tokenizer contract: never empty, never containing the
// separators asciiFields splits on.
func FuzzEscape(f *testing.F) {
	f.Add("")
	f.Add("/plain/path")
	f.Add("a b\tc\nd\re%f\x00g")
	f.Add("\xff\xfe")
	f.Fuzz(func(t *testing.T, s string) {
		esc := Escape(s)
		if esc == "" {
			t.Fatalf("Escape(%q) produced an empty token", s)
		}
		if fields := asciiFields(esc); len(fields) != 1 || fields[0] != esc {
			t.Fatalf("Escape(%q) = %q is not a single token", s, esc)
		}
		got, err := Unescape(esc)
		if err != nil {
			t.Fatalf("Unescape(Escape(%q)) failed: %v", s, err)
		}
		if got != s {
			t.Fatalf("escape round trip changed value: %q -> %q -> %q", s, esc, got)
		}
	})
}

// FuzzDigestTrailer covers both directions of the trailer codec. A
// parsed arbitrary line must re-marshal to a line that parses to the
// same (algo, sum); a trailer built from arbitrary inputs must parse
// back losslessly whenever the digest fits the protocol bound. The
// trailer rides directly after raw file bytes on the wire, so the
// parser seeing attacker-controlled garbage is the normal case, not
// the exception.
func FuzzDigestTrailer(f *testing.F) {
	f.Add("crc32c:0a1b2c3d")
	f.Add("sha256:" + strings.Repeat("ab", 32))
	f.Add("sha:512:" + strings.Repeat("ff", 64))
	f.Add("alg%20o:00")
	f.Add(":deadbeef")
	f.Add("crc32c:")
	f.Add("crc32c:xyz")
	f.Add("noseparator")
	f.Add("crc32c:" + strings.Repeat("00", 65))
	f.Fuzz(func(t *testing.T, line string) {
		algo, sum, err := ParseDigestTrailer(line)
		if err != nil {
			return
		}
		if len(sum) == 0 || len(sum) > MaxDigestLen {
			t.Fatalf("accepted digest of %d bytes from %q (bound %d)", len(sum), line, MaxDigestLen)
		}
		enc := MarshalDigestTrailer(algo, sum)
		algo2, sum2, err := ParseDigestTrailer(enc)
		if err != nil {
			t.Fatalf("re-marshal of %q does not parse: %q: %v", line, enc, err)
		}
		if algo2 != algo || !bytes.Equal(sum2, sum) {
			t.Fatalf("round trip changed trailer: %q -> (%q, %x) -> %q -> (%q, %x)",
				line, algo, sum, enc, algo2, sum2)
		}
	})
}
