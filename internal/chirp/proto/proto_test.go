package proto

import (
	"bufio"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"tss/internal/vfs"
)

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := Escape(s)
		if strings.ContainsAny(e, " \t\n\r\x00") {
			return false
		}
		u, err := Unescape(e)
		return err == nil && u == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"%", "%2", "%zz", "a%q1"} {
		if _, err := Unescape(bad); err == nil {
			t.Errorf("Unescape(%q) accepted malformed input", bad)
		}
	}
}

func TestStatRoundTrip(t *testing.T) {
	f := func(name string, size int64, mode uint32, mtime int64, inode uint64, isDir bool) bool {
		if size < 0 {
			size = -size
		}
		fi := vfs.FileInfo{Name: name, Size: size, Mode: mode & 0o7777, MTime: mtime, Inode: inode, IsDir: isDir}
		got, err := UnmarshalStat(MarshalStat(fi))
		return err == nil && got == fi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDirEntryRoundTrip(t *testing.T) {
	f := func(name string, isDir bool) bool {
		e := vfs.DirEntry{Name: name, IsDir: isDir}
		got, err := UnmarshalDirEntry(MarshalDirEntry(e))
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Every encodable request must parse back to an identical structure.
func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Verb: "open", Path: "/a file/x", Flags: 577, Mode: 0o644},
		{Verb: "pread", FD: 3, Length: 8192, Offset: 65536},
		{Verb: "pwrite", FD: 3, Length: 100, Offset: 0},
		{Verb: "fstat", FD: 9},
		{Verb: "fsync", FD: 9},
		{Verb: "ftruncate", FD: 9, Size: 12345},
		{Verb: "close", FD: 9},
		{Verb: "stat", Path: "/x"},
		{Verb: "unlink", Path: "/x y"},
		{Verb: "rename", Path: "/old name", Path2: "/new name"},
		{Verb: "mkdir", Path: "/d", Mode: 0o755},
		{Verb: "rmdir", Path: "/d"},
		{Verb: "getdir", Path: "/"},
		{Verb: "getfile", Path: "/big"},
		{Verb: "putfile", Path: "/big", Mode: 0o600, Length: 1 << 20},
		{Verb: "truncate", Path: "/f", Size: 77},
		{Verb: "chmod", Path: "/f", Mode: 0o700},
		{Verb: "getacl", Path: "/d"},
		{Verb: "setacl", Path: "/d", Subject: "hostname:*.nd.edu", Rights: "v(rwla)"},
		{Verb: "statfs"},
		{Verb: "whoami"},
	}
	for _, q := range reqs {
		line, err := q.Encode()
		if err != nil {
			t.Fatalf("encode %s: %v", q.Verb, err)
		}
		got, err := ParseRequest(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if !reflect.DeepEqual(q, got) {
			t.Errorf("round trip %s:\n in: %+v\nout: %+v\nline: %q", q.Verb, q, got, line)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	for _, bad := range []string{
		"", "bogus /x", "open /x", "open /x 1 2 3 4", "pread x y z",
		"stat", "rename /a", "setacl /d subj",
	} {
		if _, err := ParseRequest(bad); err == nil {
			t.Errorf("ParseRequest(%q) accepted malformed request", bad)
		}
	}
}

func TestRequestPathsWithSpacesSurvive(t *testing.T) {
	f := func(p1, p2 string) bool {
		q := &Request{Verb: "rename", Path: p1, Path2: p2}
		line, err := q.Encode()
		if err != nil {
			return false
		}
		got, err := ParseRequest(line)
		return err == nil && got.Path == p1 && got.Path2 == p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCode(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("42\n-13\nxyz\n"))
	if v, err := ReadCode(r); err != nil || v != 42 {
		t.Errorf("ReadCode = %d, %v", v, err)
	}
	if v, err := ReadCode(r); err != nil || v != -13 {
		t.Errorf("ReadCode = %d, %v", v, err)
	}
	if _, err := ReadCode(r); err == nil {
		t.Error("ReadCode accepted garbage")
	}
}

func TestErrnoWireMapping(t *testing.T) {
	if vfs.Code(nil) != 0 {
		t.Error("Code(nil) != 0")
	}
	if vfs.Code(vfs.ENOENT) != -2 {
		t.Errorf("Code(ENOENT) = %d", vfs.Code(vfs.ENOENT))
	}
	if err := vfs.FromCode(-2); err != vfs.ENOENT {
		t.Errorf("FromCode(-2) = %v", err)
	}
	if err := vfs.FromCode(5); err != nil {
		t.Errorf("FromCode(5) = %v, want nil", err)
	}
}
