package proto

import (
	"testing"

	"tss/internal/vfs"
)

var benchPread = Request{Verb: "pread", FD: 7, Length: 65536, Offset: 1 << 30}

var benchOpen = Request{Verb: "open", Path: "/data/experiment/run-0042/events.dat", Flags: 0x42, Mode: 0o644}

// BenchmarkEncodeDecode measures a full encode/parse round trip of a
// path-carrying request with a recycled encode buffer.
func BenchmarkEncodeDecode(b *testing.B) {
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = benchOpen.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseRequest(string(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreadRoundTrip measures the data-path hot verb: pread
// encode into a recycled buffer plus parse.
func BenchmarkPreadRoundTrip(b *testing.B) {
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = benchPread.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseRequest(string(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeString is the pre-append encoder kept for comparison:
// Encode allocates a fresh string (and scratch) per call.
func BenchmarkEncodeString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchOpen.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// The append-based encoders are the reason the client and server data
// paths stopped paying an allocation tax per RPC; pin the guarantee so
// a regression fails loudly rather than showing up as GC pressure.
func TestEncodeAllocationGuards(t *testing.T) {
	buf := make([]byte, 0, 256)

	// Integer-only verbs encode with zero heap allocations.
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = benchPread.AppendTo(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("pread AppendTo allocates %.1f/op, want 0", n)
	}

	// Clean (escape-free) paths also encode with zero allocations.
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = benchOpen.AppendTo(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("open AppendTo allocates %.1f/op, want 0", n)
	}

	// The string encoder necessarily allocates; the append path must
	// stay strictly cheaper (this is the pre/post comparison pinned).
	encAllocs := testing.AllocsPerRun(200, func() {
		if _, err := benchOpen.Encode(); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs < 1 {
		t.Fatalf("Encode allocates %.1f/op; comparison baseline lost", encAllocs)
	}

	// Stat marshalling on the server response path: zero with a
	// recycled buffer.
	fi := vfs.FileInfo{Name: "events.dat", Size: 1 << 30, Mode: 0o644, MTime: 1754400000, Inode: 424242}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendStat(buf[:0], fi)
	}); n != 0 {
		t.Errorf("AppendStat allocates %.1f/op, want 0", n)
	}

	// Escaping only pays when a byte actually needs escaping.
	if n := testing.AllocsPerRun(200, func() {
		if Escape("/plain/path/no-escapes") != "/plain/path/no-escapes" {
			t.Fatal("clean escape changed the string")
		}
	}); n != 0 {
		t.Errorf("clean Escape allocates %.1f/op, want 0", n)
	}
}
