package chirp

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// verifyClient dials with end-to-end digest verification enabled.
func (ts *testServer) verifyClient(t *testing.T, host string) *Client {
	t.Helper()
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom(host, "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// localDigest computes the reference digest the server should report.
func localDigest(t *testing.T, data []byte, algo string) string {
	t.Helper()
	h, err := vfs.NewHash(algo)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

func TestChecksumRPC(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	data := bytes.Repeat([]byte("digest me "), 1000)
	if err := vfs.WriteFile(c, "/f", data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"sha256", "crc32c"} {
		sum, err := c.Checksum("/f", algo)
		if err != nil {
			t.Fatalf("checksum %s: %v", algo, err)
		}
		if want := localDigest(t, data, algo); sum != want {
			t.Errorf("checksum %s = %s, want %s", algo, sum, want)
		}
	}
	if _, err := c.Checksum("/missing", "sha256"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("checksum of missing file = %v, want ENOENT", err)
	}
}

// TestVerifiedRoundTrip puts and gets through the digest-trailer verbs
// and confirms the client never falls back to the plain path against a
// digest-aware server.
func TestVerifiedRoundTrip(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.verifyClient(t, "owner.sim")
	data := bytes.Repeat([]byte("verified bulk transfer "), 4096)

	if err := vfs.PutReader(c, "/bulk", 0o644, int64(len(data)), bytes.NewReader(data)); err != nil {
		t.Fatalf("verified put: %v", err)
	}
	var got bytes.Buffer
	n, err := c.GetFile("/bulk", &got)
	if err != nil {
		t.Fatalf("verified get: %v", err)
	}
	if n != int64(len(data)) || !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("verified get returned %d bytes, mismatch=%v", n, !bytes.Equal(got.Bytes(), data))
	}
	if c.noSums.Load() {
		t.Error("client marked server digest-incapable after successful sum verbs")
	}
}

// TestLegacySumsFallback runs a verifying client against a server that
// answers EINVAL to every digest verb, as a pre-digest server would.
// Transfers must still succeed via the plain verbs, Checksum must fall
// back to hashing a plain getfile stream, and the client must remember
// the downgrade instead of renegotiating every call.
func TestLegacySumsFallback(t *testing.T) {
	ts := startServer(t, nil)
	ts.srv.legacySums.Store(true)
	c := ts.verifyClient(t, "owner.sim")
	data := bytes.Repeat([]byte("old server interop "), 2048)

	if err := vfs.PutReader(c, "/old", 0o644, int64(len(data)), bytes.NewReader(data)); err != nil {
		t.Fatalf("put against legacy server: %v", err)
	}
	var got bytes.Buffer
	if _, err := c.GetFile("/old", &got); err != nil {
		t.Fatalf("get against legacy server: %v", err)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("payload mismatch after legacy fallback")
	}
	sum, err := c.Checksum("/old", "sha256")
	if err != nil {
		t.Fatalf("client-side checksum fallback: %v", err)
	}
	if want := localDigest(t, data, "sha256"); sum != want {
		t.Errorf("fallback checksum = %s, want %s", sum, want)
	}
	if !c.noSums.Load() {
		t.Error("client did not remember the digest downgrade")
	}
}

// TestPutfilesumRejectsBadDigest drives the raw two-phase putfilesum
// exchange with a deliberately wrong trailer: the server must reject
// with EBADMSG and unlink the partial file rather than keep bytes it
// could not verify.
func TestPutfilesumRejectsBadDigest(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	data := []byte("these bytes will not match the digest")
	wrong := bytes.Repeat([]byte{0xab}, 32)

	err := c.putStream(
		&proto.Request{Verb: "putfilesum", Path: "/poison", Mode: 0o644,
			Length: int64(len(data)), Algo: "sha256"},
		int64(len(data)), bytes.NewReader(data), true,
		func(dst []byte) []byte {
			return append(proto.AppendDigestTrailer(dst, "sha256", wrong), '\n')
		})
	if vfs.AsErrno(err) != vfs.EBADMSG {
		t.Fatalf("bad-digest put = %v, want EBADMSG", err)
	}
	if _, err := c.Stat("/poison"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("server kept unverified file: stat = %v, want ENOENT", err)
	}
	// The connection survives the rejection: the stream is still framed.
	if err := vfs.WriteFile(c, "/after", []byte("ok"), 0o644); err != nil {
		t.Fatalf("connection unusable after rejected put: %v", err)
	}
}

// TestVerifiedPutErrnoClean checks that a verified put of an
// out-of-tree path fails with the server's errno, not a stream desync:
// phase one of putfilesum reports errors before the body moves.
func TestVerifiedPutErrnoClean(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.verifyClient(t, "owner.sim")
	err := vfs.PutReader(c, "/no/such/dir/f", 0o644, 4, bytes.NewReader([]byte("data")))
	if vfs.AsErrno(err) != vfs.ENOENT {
		t.Fatalf("put into missing dir = %v, want ENOENT", err)
	}
	if errors.Is(err, vfs.ErrIntegrity) {
		t.Error("plain ENOENT dressed up as an integrity failure")
	}
	// And the client did not misread the error as a digest downgrade.
	if c.noSums.Load() {
		t.Error("errno response marked server digest-incapable")
	}
}

// TestChecksumPooled exercises the pool's Checksum passthrough.
func TestChecksumPooled(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	data := []byte("pooled digest")
	if err := vfs.WriteFile(p, "/p", data, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := p.Checksum("/p", "sha256")
	if err != nil {
		t.Fatal(err)
	}
	if want := localDigest(t, data, "sha256"); sum != want {
		t.Errorf("pooled checksum = %s, want %s", sum, want)
	}
}

// TestChecksumAllFiles keeps the digest verbs honest across sizes that
// straddle the bulk-path buffer boundaries.
func TestVerifiedSizes(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.verifyClient(t, "owner.sim")
	for _, size := range []int{0, 1, 4095, 4096, 4097, 1 << 20} {
		p := fmt.Sprintf("/s%d", size)
		data := bytes.Repeat([]byte{byte(size % 251)}, size)
		if err := vfs.PutReader(c, p, 0o644, int64(size), bytes.NewReader(data)); err != nil {
			t.Fatalf("put %d bytes: %v", size, err)
		}
		var got bytes.Buffer
		if _, err := c.GetFile(p, &got); err != nil {
			t.Fatalf("get %d bytes: %v", size, err)
		}
		if !bytes.Equal(got.Bytes(), data) {
			t.Fatalf("%d-byte round trip mismatch", size)
		}
	}
}
