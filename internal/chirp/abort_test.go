package chirp

import (
	"net"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/netsim"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// TestAbortSeversClientsAndAllowsRestart exercises the crash/restart
// cycle the chaos engine drives: Abort kills a serving instance with
// no drain, clients see abrupt transport errors, and a fresh Server
// over the same root re-listens on the same simulated name with all
// data intact.
func TestAbortSeversClientsAndAllowsRestart(t *testing.T) {
	root := t.TempDir()
	cfg := ServerConfig{
		Name:      "fs.sim",
		Owner:     "hostname:owner.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	}
	boot := func(nw *netsim.Network) *Server {
		t.Helper()
		srv, err := NewServer(root, cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := nw.Listen("fs.sim")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv
	}

	nw := netsim.NewNetwork()
	srv := boot(nw)
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return nw.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := vfs.WriteFile(c, "/data", []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv.Abort()
	if srv.Stats.Aborts.Load() != 1 {
		t.Error("abort not counted")
	}
	// The severed client fails with a transport error, not a hang.
	if _, err := c.Stat("/data"); !resilient.TransportError(err) {
		t.Errorf("stat after abort = %v, want transport error", err)
	}
	// The dead instance refuses to serve again.
	if srv.Draining() != true {
		t.Error("aborted server not draining")
	}

	// Reboot: fresh instance, same root, same network name.
	srv2 := boot(nw)
	defer srv2.Abort()
	if err := c.Reconnect(); err != nil {
		t.Fatalf("reconnect after restart: %v", err)
	}
	data, err := vfs.ReadFile(c, "/data")
	if err != nil || string(data) != "durable" {
		t.Fatalf("read after restart = %q, %v", data, err)
	}
}
