package chirp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// Property: ParseRequest never panics and either returns a request or
// an error, for arbitrary input lines.
func TestParseRequestNeverPanics(t *testing.T) {
	f := func(line string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", line, r)
			}
		}()
		req, err := proto.ParseRequest(line)
		return (req == nil) != (err == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Verb-shaped garbage specifically.
	verbs := []string{"open", "pread", "pwrite", "stat", "rename", "setacl", "getdir", "putfile"}
	args := []string{"", " ", " x", " / 9 9 9 9", " -1 -1 -1", " %zz", " " + strings.Repeat("a", 1000)}
	for _, v := range verbs {
		for _, a := range args {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("panic on %q: %v", v+a, r)
					}
				}()
				proto.ParseRequest(v + a)
			}()
		}
	}
}

// A server fed protocol garbage after authentication must not crash,
// must answer each framed-but-invalid request with an error code, and
// must keep serving valid requests afterwards.
func TestServerSurvivesGarbage(t *testing.T) {
	ts := startServer(t, nil)
	conn, err := ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	// Authenticate by hand.
	fmt.Fprintf(conn, "auth hostname\n")
	if line, _ := br.ReadString('\n'); line != "yes\n" {
		t.Fatalf("auth offer answered %q", line)
	}
	verdict, _ := br.ReadString('\n')
	if !strings.HasPrefix(verdict, "ok ") {
		t.Fatalf("auth verdict %q", verdict)
	}
	garbage := []string{
		"bogusverb\n",
		"open\n",
		"open onlypath\n",
		"pread notanumber x y\n",
		"stat %zz\n",
		"close 99999\n",
		"setacl / subj\n",
		"pwrite -1 -5 -9\n", // negative sizes: fatal framing, below
	}
	for _, g := range garbage[:len(garbage)-1] {
		if _, err := io.WriteString(conn, g); err != nil {
			t.Fatal(err)
		}
		code, err := proto.ReadCode(br)
		if err != nil {
			t.Fatalf("after %q: %v", g, err)
		}
		if code >= 0 {
			t.Errorf("garbage %q accepted with code %d", g, code)
		}
	}
	// Still alive: a valid request works on the same connection.
	io.WriteString(conn, "whoami\n")
	code, err := proto.ReadCode(br)
	if err != nil || code != 0 {
		t.Fatalf("whoami after garbage = %d, %v", code, err)
	}
	if line, _ := br.ReadString('\n'); !strings.Contains(line, "owner.sim") {
		t.Errorf("whoami body = %q", line)
	}
}

// Concurrent clients hammering one server: the per-connection sessions
// must not interfere, and every client's data must be intact.
func TestManyConcurrentClients(t *testing.T) {
	ts := startServer(t, nil)
	const clients = 16
	const filesEach = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(ClientConfig{
				Dial: func() (net.Conn, error) {
					return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
				},
				Credentials: []auth.Credential{auth.HostnameCredential{}},
				Timeout:     10 * time.Second,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			dir := fmt.Sprintf("/client%02d", c)
			if err := cli.Mkdir(dir, 0o755); err != nil {
				errs <- fmt.Errorf("client %d mkdir: %w", c, err)
				return
			}
			for i := 0; i < filesEach; i++ {
				name := fmt.Sprintf("%s/f%02d", dir, i)
				content := []byte(fmt.Sprintf("client %d file %d", c, i))
				if err := vfs.WriteFile(cli, name, content, 0o644); err != nil {
					errs <- fmt.Errorf("client %d write: %w", c, err)
					return
				}
				got, err := vfs.ReadFile(cli, name)
				if err != nil || string(got) != string(content) {
					errs <- fmt.Errorf("client %d readback %s: %q, %v", c, name, got, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The server saw every directory.
	owner := ts.client(t, "owner.sim")
	ents, err := owner.ReadDir("/")
	if err != nil || len(ents) != clients {
		t.Fatalf("root has %d entries, %v", len(ents), err)
	}
}

// One client shared by goroutines: the protocol serializes on the
// connection; results must still be correct.
func TestClientConcurrencySafety(t *testing.T) {
	ts := startServer(t, nil)
	cli := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(cli, "/shared", []byte("0123456789abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := cli.Open("/shared", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 4)
			for i := 0; i < 50; i++ {
				off := int64((g*50 + i) % 13)
				n, err := f.Pread(buf, off)
				if err != nil || n != 4 {
					t.Errorf("goroutine %d pread: n=%d %v", g, n, err)
					return
				}
				want := "0123456789abcdef"[off : off+4]
				if string(buf) != want {
					t.Errorf("goroutine %d read %q at %d, want %q", g, buf, off, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// IdleTimeout severs clients that go quiet, freeing server state (§4's
// failure semantics applied to half-dead peers).
func TestIdleTimeoutDisconnects(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:        "fs.sim",
		Owner:       "hostname:owner.sim",
		Verifiers:   []auth.Verifier{&auth.HostnameVerifier{}},
		IdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, _ := nw.Listen("fs.sim")
	defer l.Close()
	go srv.Serve(l)
	cli, err := Dial(ClientConfig{
		Dial:        func() (net.Conn, error) { return nw.DialFrom("owner.sim", "fs.sim", netsim.Loopback) },
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Stat("/"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // stay idle past the timeout
	if _, err := cli.Stat("/"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("stat after idle disconnect = %v, want ENOTCONN", err)
	}
	// Reconnect restores service: recovery is the client's job.
	if err := cli.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stat("/"); err != nil {
		t.Errorf("stat after reconnect = %v", err)
	}
}

// getfile and putfile are subject to the same ACL checks as open.
func TestGetPutFileACL(t *testing.T) {
	rootACL := mustACL(t, "hostname:reader.sim", "rl")
	ts := startServer(t, rootACL)
	owner := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(owner, "/data", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	reader := ts.client(t, "reader.sim")
	var sink bytes.Buffer
	if _, err := reader.GetFile("/data", &sink); err != nil || sink.String() != "payload" {
		t.Errorf("reader getfile = %q, %v", sink.String(), err)
	}
	if err := reader.PutFile("/new", 0o644, 1, strings.NewReader("x")); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("reader putfile = %v, want EACCES", err)
	}
	stranger := ts.client(t, "evil.org")
	if _, err := stranger.GetFile("/data", &sink); vfs.AsErrno(err) != vfs.EACCES {
		t.Errorf("stranger getfile = %v, want EACCES", err)
	}
	// Crucially the connection survives the denied putfile: the data
	// phase was consumed even though the request failed.
	if _, err := reader.Stat("/data"); err != nil {
		t.Errorf("connection desynced after denied putfile: %v", err)
	}
}

func mustACL(t *testing.T, subject, spec string) *acl.List {
	t.Helper()
	rights, reserve, err := acl.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	l := &acl.List{}
	l.Set(subject, rights, reserve)
	return l
}

// OpenStat returns metadata consistent with a subsequent Fstat, in one
// round trip.
func TestOpenStatConsistency(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := ts.srv.Stats.Requests.Load()
	f, fi, err := c.OpenStat("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := ts.srv.Stats.Requests.Load() - before; got != 1 {
		t.Errorf("OpenStat cost %d RPCs, want 1", got)
	}
	if fi.Size != 5 || fi.Inode == 0 {
		t.Errorf("open stat = %+v", fi)
	}
	fi2, err := f.Fstat()
	if err != nil || fi2.Inode != fi.Inode || fi2.Size != fi.Size {
		t.Errorf("fstat = %+v vs openstat %+v, %v", fi2, fi, err)
	}
}

// Remaining per-fd and namespace RPCs, end to end.
func TestRemainingRPCSurface(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	// truncate (path), chmod (path).
	if err := c.Truncate("/f", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Chmod("/f", 0o600); err != nil {
		t.Fatal(err)
	}
	fi, err := c.Stat("/f")
	if err != nil || fi.Size != 4 || fi.Mode != 0o600 {
		t.Fatalf("after truncate+chmod: %+v, %v", fi, err)
	}
	// negative sizes rejected.
	if err := c.Truncate("/f", -1); vfs.AsErrno(err) != vfs.EINVAL {
		t.Errorf("negative truncate = %v", err)
	}
	// fd-level: ftruncate, fsync, fstat.
	f, err := c.Open("/f", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Ftruncate(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	ffi, err := f.Fstat()
	if err != nil || ffi.Size != 2 {
		t.Fatalf("fstat = %+v, %v", ffi, err)
	}
	if err := f.Ftruncate(-3); vfs.AsErrno(err) != vfs.EINVAL {
		t.Errorf("negative ftruncate = %v", err)
	}
	// getacl of a subdirectory inherits from the root.
	if err := vfs.MkdirAll(c, "/deep/nested", 0o755); err != nil {
		t.Fatal(err)
	}
	lines, err := c.GetACL("/deep/nested")
	if err != nil || len(lines) == 0 {
		t.Fatalf("getacl = %v, %v", lines, err)
	}
	// setacl with a malformed spec is EINVAL, and the connection lives.
	if err := c.SetACL("/deep", "unix:x", "zz"); vfs.AsErrno(err) != vfs.EINVAL {
		t.Errorf("bad setacl spec = %v", err)
	}
	if _, err := c.Stat("/f"); err != nil {
		t.Errorf("connection after bad setacl: %v", err)
	}
	// Revoking an entry with "n".
	if err := c.SetACL("/deep", "hostname:friend.org", "rl"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetACL("/deep", "hostname:friend.org", "n"); err != nil {
		t.Fatal(err)
	}
	lines, _ = c.GetACL("/deep")
	for _, l := range lines {
		if strings.Contains(l, "friend.org") {
			t.Errorf("revoked entry persists: %q", l)
		}
	}
}

// Unauthenticated connections cannot issue requests: the server
// requires the auth dialog first.
func TestNoRequestsBeforeAuth(t *testing.T) {
	ts := startServer(t, nil)
	conn, err := ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	io.WriteString(conn, "stat /\n") // not an auth line
	br := bufio.NewReader(conn)
	// The server treats it as a protocol error and drops us.
	if _, err := br.ReadString('\n'); err == nil {
		// Whatever came back, a subsequent valid request must fail:
		io.WriteString(conn, "whoami\n")
		if _, err := br.ReadString('\n'); err == nil {
			t.Error("server answered requests without authentication")
		}
	}
}
