package chirp

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"

	"tss/internal/acl"
	"tss/internal/chirp/proto"
	"tss/internal/pathutil"
	"tss/internal/vfs"
)

// The multipart transfer RPCs: putbegin/putpart/putcomplete and
// getpart. Parts are addressed by path and offset rather than by
// descriptor, so the chunks of one file can arrive on different
// connections — a pooled client fans them out — and each request is
// self-contained. putbegin creates the destination at its final path
// and full size (concurrent putparts then land in a fully allocated
// file, and an aborted transfer is cleaned up with a plain unlink);
// putcomplete checks the assembled size and, with an algo, the
// composed whole-file digest, removing the file on mismatch. Like the
// digest verbs these are separate verbs, not flags, so an old server
// answers EINVAL with its framing intact and clients can negotiate
// (putbegin carries no body, which makes it the put-side probe).

// handlePutbegin opens a multipart upload: create (or replace) the
// file and pre-size it, so offset writers never extend the file
// concurrently. No body follows the request line.
func (ss *session) handlePutbegin(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Size < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, uint32(req.Mode))
	if err != nil {
		return ss.respondErr(bw, err)
	}
	terr := f.Ftruncate(req.Size)
	cerr := f.Close()
	if terr == nil {
		terr = cerr
	}
	if terr != nil {
		ss.srv.fs.Unlink(path)
		return ss.respondErr(bw, terr)
	}
	ss.srv.breakLeases(path, pathutil.Dir(path))
	return respondCode(bw, 0)
}

// drainPart consumes a putpart body (and its digest trailer line, when
// the request named an algo) that cannot be applied, keeping the
// stream in sync for the error response.
func drainPart(br *bufio.Reader, req *proto.Request) error {
	if _, err := io.CopyN(io.Discard, br, req.Length); err != nil {
		return err
	}
	if req.Algo != "" {
		if _, err := proto.ReadLine(br); err != nil {
			return err
		}
	}
	return nil
}

// zeroPartRange overwrites [off, off+length) with zeros, restoring the
// pre-sized hole putbegin left there: a chunk that failed verification
// is discarded, not left as wrong bytes at rest.
func zeroPartRange(f vfs.File, off, length int64) {
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	for i := range buf {
		buf[i] = 0
	}
	for length > 0 {
		want := int64(len(buf))
		if length < want {
			want = length
		}
		if err := vfs.WriteAll(f, buf[:want], off); err != nil {
			return // best effort; putcomplete's composed digest still protects
		}
		off += want
		length -= want
	}
}

// handlePutpart stores one chunk at its offset. With an algo the body
// is followed by a digest trailer the server verifies; a mismatched
// chunk is zeroed back out and answered with EBADMSG — no other chunk
// is touched, so the client retries just this one. Without an algo the
// body streams over the zero-copy bulk path when the transport and
// file allow it, exactly like putfile.
func (ss *session) handlePutpart(req *proto.Request, conn net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	if req.Length < 0 || req.Offset < 0 {
		// Cannot honor the data phase safely; the stream is desynced.
		ss.respondErr(bw, vfs.EINVAL)
		return fmt.Errorf("putpart length or offset out of range")
	}
	path, err := normPath(req.Path)
	if err != nil {
		if derr := drainPart(br, req); derr != nil {
			return derr
		}
		return ss.respondErr(bw, err)
	}
	var h = (interface {
		io.Writer
		Sum([]byte) []byte
	})(nil)
	if req.Algo != "" {
		h, err = vfs.NewHash(req.Algo)
		if err != nil {
			if derr := drainPart(br, req); derr != nil {
				return derr
			}
			return ss.respondErr(bw, err)
		}
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		if derr := drainPart(br, req); derr != nil {
			return derr
		}
		return ss.respondErr(bw, err)
	}
	// No O_CREAT: the file must exist from putbegin, so a stray putpart
	// cannot conjure partial state outside a framed transfer.
	f, err := ss.srv.fs.Open(path, vfs.O_WRONLY, 0)
	if err != nil {
		if derr := drainPart(br, req); derr != nil {
			return derr
		}
		return ss.respondErr(bw, err)
	}
	// The chunk is about to land: break leases before any bytes change.
	ss.srv.breakLeases(path)
	if req.Algo == "" {
		if tcp := bulkConn(conn); tcp != nil {
			if osf := osFileOf(f); osf != nil {
				// Zero-copy chunk path: position the host file at the chunk
				// offset and splice the body straight from the socket, as
				// putfile does from offset zero.
				if _, err := osf.Seek(req.Offset, io.SeekStart); err != nil {
					f.Close()
					if derr := drainPart(br, req); derr != nil {
						return derr
					}
					return ss.respondErr(bw, err)
				}
				consumed, copyErr, transport := receiveBulk(osf, conn, br, req.Length)
				ss.srv.Stats.BytesWriten.Add(consumed)
				ss.srv.mBytesWritten.Add(consumed)
				ss.srv.mMultipartFast.Inc()
				if copyErr != nil {
					f.Close()
					if transport {
						return copyErr
					}
					// Write-side failure: resynchronize the stream by
					// draining the rest of the body, then report.
					if _, err := io.CopyN(io.Discard, br, req.Length-consumed); err != nil {
						return err
					}
					return ss.respondErr(bw, vfs.AsErrno(copyErr))
				}
				if consumed < req.Length {
					// The peer closed mid-body: nothing more will arrive.
					f.Close()
					return io.ErrUnexpectedEOF
				}
				if err := f.Close(); err != nil {
					return ss.respondErr(bw, err)
				}
				return respondCode(bw, req.Length)
			}
		}
	}
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	var done int64
	var writeErr error
	for done < req.Length {
		if ss.deadlineLapsed() {
			f.Close()
			return ss.abortStream()
		}
		want := int64(len(buf))
		if req.Length-done < want {
			want = req.Length - done
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			f.Close()
			return err
		}
		if h != nil {
			h.Write(buf[:want])
		}
		if writeErr == nil {
			// A failed write (disk full) stops writing but keeps draining
			// body and trailer: the stream must stay in sync.
			writeErr = vfs.WriteAll(f, buf[:want], req.Offset+done)
		}
		done += want
		ss.srv.Stats.BytesWriten.Add(want)
		ss.srv.mBytesWritten.Add(want)
	}
	if req.Algo != "" {
		line, err := proto.ReadLine(br)
		if err != nil {
			f.Close()
			return err
		}
		algo, sum, perr := proto.ParseDigestTrailer(line)
		if writeErr == nil && (perr != nil || algo != req.Algo || !bytes.Equal(sum, h.Sum(nil))) {
			zeroPartRange(f, req.Offset, req.Length)
			f.Close()
			return ss.respondErr(bw, vfs.EBADMSG)
		}
	}
	closeErr := f.Close()
	if writeErr == nil {
		writeErr = closeErr
	}
	if writeErr != nil {
		return ss.respondErr(bw, writeErr)
	}
	return respondCode(bw, req.Length)
}

// handlePutcomplete closes a multipart upload: the assembled file must
// have the promised size and — with an algo — hash to the composed
// whole-file digest the client folded from its chunk digests. Any
// mismatch removes the file and answers EBADMSG, so a torn multipart
// transfer never survives at rest.
func (ss *session) handlePutcomplete(req *proto.Request, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Size < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	if req.Algo != "" {
		if _, err := vfs.NewHash(req.Algo); err != nil {
			return ss.respondErr(bw, err)
		}
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.W); err != nil {
		return ss.respondErr(bw, err)
	}
	fi, err := ss.srv.fs.Stat(path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if fi.Size != req.Size {
		ss.srv.fs.Unlink(path)
		ss.srv.breakLeases(path, pathutil.Dir(path))
		return ss.respondErr(bw, vfs.EBADMSG)
	}
	if req.Algo != "" {
		sum, err := ss.srv.fs.Checksum(path, req.Algo)
		if err != nil {
			return ss.respondErr(bw, err)
		}
		if !strings.EqualFold(sum, req.Sum) {
			ss.srv.fs.Unlink(path)
			ss.srv.breakLeases(path, pathutil.Dir(path))
			return ss.respondErr(bw, vfs.EBADMSG)
		}
	}
	return respondCode(bw, 0)
}

// handleGetpart streams up to length bytes at the given offset,
// clamped at end of file, followed by a digest trailer when the
// request named an algo. Without an algo the chunk takes the zero-copy
// sendfile path when the transport and file allow it.
func (ss *session) handleGetpart(req *proto.Request, conn net.Conn, bw *bufio.Writer) error {
	path, err := normPath(req.Path)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	if req.Length < 0 || req.Offset < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	var h = (interface {
		io.Writer
		Sum([]byte) []byte
	})(nil)
	if req.Algo != "" {
		h, err = vfs.NewHash(req.Algo)
		if err != nil {
			return ss.respondErr(bw, err)
		}
	}
	if err := ss.srv.checkParent(ss.subject, path, acl.R); err != nil {
		return ss.respondErr(bw, err)
	}
	f, err := ss.srv.fs.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return ss.respondErr(bw, err)
	}
	defer f.Close()
	fi, err := f.Fstat()
	if err != nil {
		return ss.respondErr(bw, err)
	}
	n := int64(0)
	if req.Offset < fi.Size {
		n = fi.Size - req.Offset
		if n > req.Length {
			n = req.Length
		}
	}
	if err := respondCode(bw, n); err != nil {
		return err
	}
	// Exactly n bytes were promised; a concurrently shrinking file is
	// zero-padded (and the padding is hashed: the digest covers what was
	// sent, which is the contract).
	var sent int64
	if req.Algo == "" && n > 0 {
		if tcp := bulkConn(conn); tcp != nil {
			if osf := osFileOf(f); osf != nil {
				// Zero-copy chunk path: flush the status line, position the
				// host file, and hand it straight to the TCP stack
				// (TCPConn.ReadFrom → sendfile(2)).
				if _, err := osf.Seek(req.Offset, io.SeekStart); err != nil {
					return err
				}
				if err := bw.Flush(); err != nil {
					return err
				}
				sent, err = io.Copy(tcp, &io.LimitedReader{R: osf, N: n})
				ss.srv.Stats.BytesRead.Add(sent)
				ss.srv.mBytesRead.Add(sent)
				ss.srv.mMultipartFast.Inc()
				if err != nil {
					return err
				}
				// A shrunken file leaves sent < n: pad below.
			}
		}
	}
	bp := getIOBuf(256 << 10)
	defer putIOBuf(bp)
	buf := *bp
	for sent < n {
		if ss.deadlineLapsed() {
			return ss.abortStream()
		}
		want := int64(len(buf))
		if n-sent < want {
			want = n - sent
		}
		got, err := f.Pread(buf[:want], req.Offset+sent)
		if err != nil {
			return err
		}
		if got == 0 {
			for i := range buf[:want] {
				buf[i] = 0
			}
			got = int(want)
		}
		if h != nil {
			h.Write(buf[:got])
		}
		if _, err := bw.Write(buf[:got]); err != nil {
			return err
		}
		sent += int64(got)
		ss.srv.Stats.BytesRead.Add(int64(got))
		ss.srv.mBytesRead.Add(int64(got))
	}
	if req.Algo != "" {
		ss.scratch = append(proto.AppendDigestTrailer(ss.scratch[:0], req.Algo, h.Sum(nil)), '\n')
		if _, err := bw.Write(ss.scratch); err != nil {
			return err
		}
	}
	return nil
}
