package chirp

// Server-side deadline propagation (DESIGN.md §15). A client with a
// request timeout writes a pipelined "deadline <remaining_ms>" prefix
// line before the real request; the server arms it here and the
// dispatch loop fast-rejects the governed request with ETIMEDOUT once
// the budget lapses — before admission, after a queue wait, or midway
// through a bulk stream. Rejecting work nobody is waiting for is what
// keeps an overloaded server's remaining capacity pointed at requests
// that can still succeed.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"tss/internal/chirp/proto"
	"tss/internal/vfs"
)

// isDeadlinePrefix reports whether a raw request line is the pipelined
// deadline prefix, which annotates the request that follows rather than
// being an RPC of its own — the request counters skip it.
func isDeadlinePrefix(line string) bool {
	return line == "deadline" || strings.HasPrefix(line, "deadline ")
}

// handleDeadline arms the deadline for the next request on this
// session. The budget is relative (milliseconds remaining), so clock
// skew between client and server does not shift it.
func (ss *session) handleDeadline(req *proto.Request, bw *bufio.Writer) error {
	if req.Budget < 0 {
		return ss.respondErr(bw, vfs.EINVAL)
	}
	ss.armed = time.Now().Add(time.Duration(req.Budget) * time.Millisecond)
	return respondCode(bw, 0)
}

// deadlineLapsed reports whether the deadline governing the request in
// flight has passed. Bulk streaming loops poll it between chunks.
func (ss *session) deadlineLapsed() bool {
	return !ss.reqDeadline.IsZero() && time.Now().After(ss.reqDeadline)
}

// abortStream is the fatal error for a bulk transfer whose deadline
// lapsed mid-stream: the client's own timeout has already fired, so the
// connection is torn down rather than fed bytes nobody will read.
func (ss *session) abortStream() error {
	ss.srv.Stats.DeadlineRejects.Add(1)
	ss.srv.mDeadlineRejects.Inc()
	return fmt.Errorf("chirp: deadline lapsed mid-transfer")
}

// reject refuses a parsed request with err before its handler runs,
// keeping the stream in sync: the one-phase data verbs (pwrite,
// putfile, putpart) have already committed their body to the wire, so
// the body is drained before the status line is written. Two-phase
// verbs (putfilesum) and all read verbs carry no blind body.
func (ss *session) reject(req *proto.Request, br *bufio.Reader, bw *bufio.Writer, err error) error {
	switch req.Verb {
	case "pwrite", "putfile":
		if req.Length < 0 {
			ss.respondErr(bw, vfs.EINVAL)
			return fmt.Errorf("%s length out of range", req.Verb)
		}
		if _, derr := io.CopyN(io.Discard, br, req.Length); derr != nil {
			return derr
		}
	case "putpart":
		if req.Length < 0 {
			ss.respondErr(bw, vfs.EINVAL)
			return fmt.Errorf("putpart length out of range")
		}
		if derr := drainPart(br, req); derr != nil {
			return derr
		}
	}
	return ss.respondErr(bw, err)
}
