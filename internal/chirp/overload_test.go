package chirp

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// startServerCfg is startServer with the caller's admission knobs.
func startServerCfg(t *testing.T, cfg ServerConfig) *testServer {
	t.Helper()
	cfg.Name = "fs.sim"
	cfg.Owner = "hostname:owner.sim"
	cfg.Verifiers = []auth.Verifier{&auth.HostnameVerifier{}}
	srv, err := NewServer(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.NewNetwork()
	l, err := nw.Listen("fs.sim")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return &testServer{srv: srv, net: nw}
}

// queueDepth reports how many waiters sit in the admission queues.
func queueDepth(a *admission) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.high) + len(a.low)
}

func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for queueDepth(a) < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The admission gate sheds immediately when the class queue is full and
// bounds queue waits with its own timeout, both as EAGAIN.
func TestAdmissionShedAndQueueTimeout(t *testing.T) {
	a := newAdmission(1, 1, 30*time.Millisecond, nil, nil)
	if err := a.acquire(true); err != nil {
		t.Fatalf("first acquire = %v", err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(true) }()
	waitQueued(t, a, 1)
	// The bulk queue is full: the next bulk request is shed on the spot.
	if err := a.acquire(true); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Errorf("acquire with full queue = %v, want EAGAIN", err)
	}
	// The queued waiter's wait is bounded by the queue timeout.
	start := time.Now()
	if err := <-queued; vfs.AsErrno(err) != vfs.EAGAIN {
		t.Errorf("queued acquire = %v, want EAGAIN after timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queue timeout took %v", elapsed)
	}
	// Releasing the slot restores immediate admission.
	a.release()
	if err := a.acquire(false); err != nil {
		t.Errorf("acquire after release = %v", err)
	}
	a.release()
}

// Under pressure, control-plane waiters are granted before bulk
// waiters even when the bulk request arrived first.
func TestAdmissionControlPlanePriority(t *testing.T) {
	a := newAdmission(1, 4, 5*time.Second, nil, nil)
	// Fill the bulk slot and the reserved control headroom so both
	// classes are forced to queue.
	if err := a.acquire(true); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(false); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	go func() {
		if a.acquire(true) == nil {
			order <- "bulk"
		}
	}()
	waitQueued(t, a, 1)
	go func() {
		if a.acquire(false) == nil {
			order <- "control"
		}
	}()
	waitQueued(t, a, 2)
	a.release()
	if first := <-order; first != "control" {
		t.Errorf("first grant went to %s, want control", first)
	}
	// The bulk waiter needs total occupancy to drop below max=1: it is
	// granted only on the release that frees the last slot.
	a.release()
	a.release()
	if second := <-order; second != "bulk" {
		t.Errorf("second grant went to %s, want bulk", second)
	}
	a.release()
}

// Control-plane RPCs ride the reserved headroom: with every bulk slot
// streaming, a control request is admitted immediately instead of
// waiting out a bulk transfer — and the headroom itself is bounded, so
// a control-plane storm still sheds.
func TestAdmissionControlHeadroom(t *testing.T) {
	a := newAdmission(4, 4, 30*time.Millisecond, nil, nil)
	for i := 0; i < 4; i++ {
		if err := a.acquire(true); err != nil {
			t.Fatalf("bulk acquire %d = %v", i, err)
		}
	}
	// Bulk is at capacity; the next bulk waiter queues, but control is
	// admitted at once through the max/4 reserved slots.
	if err := a.acquire(false); err != nil {
		t.Fatalf("control acquire with bulk at capacity = %v", err)
	}
	// Headroom exhausted too: the next control request queues and is
	// shed when the queue timeout lapses with nothing releasing.
	if err := a.acquire(false); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Errorf("control acquire past headroom = %v, want EAGAIN", err)
	}
	for i := 0; i < 5; i++ {
		a.release()
	}
}

// A drain fails queued-but-unstarted waiters promptly with ESHUTDOWN —
// not after the queue timeout — while the admitted holder is untouched.
func TestAdmissionDrainFailsQueued(t *testing.T) {
	a := newAdmission(1, 4, 10*time.Second, nil, nil)
	if err := a.acquire(true); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(true) }()
	waitQueued(t, a, 1)
	start := time.Now()
	a.drain()
	if err := <-queued; vfs.AsErrno(err) != vfs.ESHUTDOWN {
		t.Errorf("queued acquire under drain = %v, want ESHUTDOWN", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("drain left the queued waiter hanging for %v", elapsed)
	}
	if err := a.acquire(false); vfs.AsErrno(err) != vfs.ESHUTDOWN {
		t.Errorf("acquire after drain = %v, want ESHUTDOWN", err)
	}
	a.release() // the holder finishes normally
}

// A server at MaxInflight sheds overflow with EAGAIN — explicit
// pushback, not a hang and not EIO — and recovers once the load passes.
func TestServerShedsWithEAGAIN(t *testing.T) {
	ts := startServerCfg(t, ServerConfig{
		MaxInflight:  1,
		QueueDepth:   1,
		QueueTimeout: 30 * time.Millisecond,
	})
	busy := ts.client(t, "owner.sim")
	probe := ts.client(t, "owner.sim")

	content := bytes.Repeat([]byte("x"), 64<<10)
	base := ts.srv.Stats.Requests.Load()
	putDone := make(chan error, 1)
	go func() {
		// 16 chunks x 15ms holds the only slot for ~240ms.
		putDone <- busy.PutFile("/slow", 0o644, int64(len(content)),
			&slowReader{data: content, chunk: 4 << 10, delay: 15 * time.Millisecond})
	}()
	for ts.srv.Stats.Requests.Load() == base {
		time.Sleep(time.Millisecond)
	}

	// A bulk probe queues behind the putfile and is shed when the queue
	// timeout lapses long before the slot frees.
	if _, err := probe.Checksum("/slow", ""); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Errorf("bulk checksum under overload = %v, want EAGAIN", err)
	}
	if ts.srv.Stats.Shed.Load() == 0 {
		t.Error("no shed was recorded")
	}
	// A control-plane probe rides the reserved headroom: it answers
	// while the only bulk slot is still streaming.
	if _, err := probe.Stat("/"); err != nil {
		t.Errorf("stat under bulk overload = %v, want success via control headroom", err)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("admitted putfile failed: %v", err)
	}
	// Pressure gone: the same connection serves bulk again.
	if _, err := probe.Checksum("/slow", ""); err != nil {
		t.Errorf("checksum after overload = %v", err)
	}
}

// Shutdown with a full admission queue rejects queued-but-unstarted
// RPCs with ESHUTDOWN promptly; the in-flight RPC still finishes and
// its bytes are durable (satellite: drain vs. admission queue).
func TestShutdownFailsQueuedRPCsPromptly(t *testing.T) {
	ts := startServerCfg(t, ServerConfig{
		MaxInflight:  1,
		QueueTimeout: 10 * time.Second,
	})
	busy := ts.client(t, "owner.sim")
	waiter := ts.client(t, "owner.sim")

	content := bytes.Repeat([]byte("drain me "), 8<<10)
	base := ts.srv.Stats.Requests.Load()
	putDone := make(chan error, 1)
	go func() {
		putDone <- busy.PutFile("/big", 0o644, int64(len(content)),
			&slowReader{data: content, chunk: 4 << 10, delay: 10 * time.Millisecond})
	}()
	for ts.srv.Stats.Requests.Load() == base {
		time.Sleep(time.Millisecond)
	}

	sumDone := make(chan error, 1)
	go func() {
		// Bulk, so it queues for the busy slot rather than riding the
		// control-plane headroom.
		_, err := waiter.Checksum("/big", "")
		sumDone <- err
	}()
	waitQueued(t, ts.srv.admission, 1)

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- ts.srv.Shutdown(ctx) }()

	// The queued checksum fails with ESHUTDOWN right away — it does not
	// sit out the 10s queue timeout, and it does not wait for the
	// putfile.
	if err := <-sumDone; vfs.AsErrno(err) != vfs.ESHUTDOWN {
		t.Errorf("queued checksum under shutdown = %v, want ESHUTDOWN", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queued checksum stalled %v into shutdown", elapsed)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("in-flight putfile aborted by shutdown: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	got, err := vfs.ReadFile(ts.srv.FS(), "/big")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("acked putfile lost: %d bytes, want %d (%v)", len(got), len(content), err)
	}
}

// MaxSessions is a hard bound: connection N+1 is refused at the door
// and counted, and a freed session admits a new one.
func TestServerSessionCap(t *testing.T) {
	ts := startServerCfg(t, ServerConfig{MaxSessions: 1})
	first := ts.client(t, "owner.sim")
	if _, err := first.Stat("/"); err != nil {
		t.Fatal(err)
	}
	_, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     2 * time.Second,
	})
	if err == nil {
		t.Fatal("second session admitted past MaxSessions")
	}
	if ts.srv.Stats.SessionsRefused.Load() == 0 {
		t.Error("refused session not counted")
	}
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := Dial(ClientConfig{
			Dial: func() (net.Conn, error) {
				return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
			},
			Credentials: []auth.Credential{auth.HostnameCredential{}},
			Timeout:     2 * time.Second,
		})
		if err == nil {
			c2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("freed session never readmitted: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// While a server is pushing back (EAGAIN), the pool must not dial new
// connections at it — growth would convert the shed into more offered
// load. When the window lapses, the same pressure grows the pool again.
func TestPoolPushbackSuppressesDial(t *testing.T) {
	ts := startServer(t, nil)
	p, err := NewPool(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     5 * time.Second,
		PoolSize:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.notePushback(vfs.EAGAIN)
	p.mu.Lock()
	p.members[0].inflight++ // the sole member is busy: pressure to grow
	p.mu.Unlock()
	m, err := p.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Conns(); got != 1 {
		t.Errorf("pool grew to %d connections during pushback window", got)
	}
	p.release(m)
	// Close the window; non-EAGAIN errors must not reopen it.
	p.mu.Lock()
	p.pushbackUntil = time.Time{}
	p.mu.Unlock()
	p.notePushback(vfs.ENOENT)
	p.mu.Lock()
	windowOpen := time.Now().Before(p.pushbackUntil)
	p.mu.Unlock()
	if windowOpen {
		t.Error("ENOENT opened the pushback window")
	}
	m2, err := p.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Conns(); got != 2 {
		t.Errorf("pool stuck at %d connections after pushback window", got)
	}
	p.release(m2)
	p.mu.Lock()
	p.members[0].inflight--
	p.mu.Unlock()
}

// An expired deadline budget fast-rejects the governed request with
// ETIMEDOUT before any work runs, and the connection stays framed.
func TestDeadlineExpiredFastReject(t *testing.T) {
	ts := startServer(t, nil)
	// Timeout 0: no automatic prefix, the test arms budgets by hand.
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.rpc(&proto.Request{Verb: "deadline", Budget: 0}, nil, nil); err != nil {
		t.Fatalf("arm deadline: %v", err)
	}
	if _, err := c.Stat("/"); vfs.AsErrno(err) != vfs.ETIMEDOUT {
		t.Errorf("stat with lapsed budget = %v, want ETIMEDOUT", err)
	}
	if got := ts.srv.Stats.DeadlineRejects.Load(); got != 1 {
		t.Errorf("deadline rejects = %d, want 1", got)
	}
	// The deadline governed exactly one request; the next one is clean.
	if _, err := c.Stat("/"); err != nil {
		t.Errorf("stat after reject = %v", err)
	}
	// A negative budget is a protocol error.
	if _, err := c.rpc(&proto.Request{Verb: "deadline", Budget: -5}, nil, nil); vfs.AsErrno(err) != vfs.EINVAL {
		t.Errorf("negative budget = %v, want EINVAL", err)
	}
}

// Rejecting a one-phase data verb drains its already-committed body so
// the stream stays in sync: the putfile fails with ETIMEDOUT, nothing
// lands at rest, and the very next RPC works.
func TestDeadlineExpiredDrainsPutBody(t *testing.T) {
	ts := startServer(t, nil)
	c, err := Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.rpc(&proto.Request{Verb: "deadline", Budget: 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("late"), 8<<10)
	err = c.putFilePlain("/late", 0o644, int64(len(body)), bytes.NewReader(body))
	if vfs.AsErrno(err) != vfs.ETIMEDOUT {
		t.Fatalf("late putfile = %v, want ETIMEDOUT", err)
	}
	if _, err := c.Stat("/late"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("rejected putfile left bytes at rest: %v", err)
	}
	if err := vfs.WriteFile(c, "/after", []byte("ok"), 0o644); err != nil {
		t.Fatalf("connection desynced after rejected putfile: %v", err)
	}
}

// A bulk stream whose deadline lapses mid-transfer is aborted: the
// server stops pumping bytes nobody is waiting for and tears the
// connection down rather than desync it.
func TestDeadlineAbortsMidStream(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "pipe.sim",
		Owner:     "hostname:peer",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{Resolve: func(string) string { return "peer" }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("streamed body "), 75<<10) // ~1 MiB
	if err := vfs.WriteFile(srv.FS(), "/big", content, 0o644); err != nil {
		t.Fatal(err)
	}
	cliConn, srvConn := net.Pipe()
	go srv.ServeConn(srvConn)
	c, err := Dial(ClientConfig{
		Dial:        func() (net.Conn, error) { return cliConn, nil },
		Credentials: []auth.Credential{auth.HostnameCredential{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.rpc(&proto.Request{Verb: "deadline", Budget: 50}, nil, nil); err != nil {
		t.Fatal(err)
	}
	// The slow sink keeps the body in flight past the 50ms budget; the
	// server's per-chunk deadline check must cut the stream off.
	var sink bytes.Buffer
	_, err = c.GetFile("/big", &slowWriter{w: &sink, delay: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("getfile past its deadline completed")
	}
	if srv.Stats.DeadlineRejects.Load() == 0 {
		t.Error("mid-stream abort not counted")
	}
	if sink.Len() >= len(content) {
		t.Error("full body delivered despite abort")
	}
}

// A client with a timeout pipelines the deadline prefix; an old server
// answers EINVAL with its framing intact, the client remembers the
// downgrade, and every RPC still works.
func TestLegacyDeadlinesFallback(t *testing.T) {
	ts := startServer(t, nil)
	ts.srv.legacyDeadlines.Store(true)
	c := ts.client(t, "owner.sim") // Timeout 5s: prefix on by default
	if err := vfs.WriteFile(c, "/old", []byte("interop"), 0o644); err != nil {
		t.Fatalf("write against legacy server: %v", err)
	}
	data, err := vfs.ReadFile(c, "/old")
	if err != nil || string(data) != "interop" {
		t.Fatalf("read against legacy server: %q, %v", data, err)
	}
	if !c.noDeadlines.Load() {
		t.Error("client did not remember the deadline downgrade")
	}
	if ts.srv.Stats.DeadlineRejects.Load() != 0 {
		t.Errorf("legacy downgrade produced %d deadline rejects", ts.srv.Stats.DeadlineRejects.Load())
	}
}

// Against a current server the prefix negotiates silently: RPCs
// succeed, the client keeps sending budgets, and nothing is rejected
// while the budgets are generous.
func TestDeadlinePrefixNegotiated(t *testing.T) {
	ts := startServer(t, nil)
	c := ts.client(t, "owner.sim")
	if err := vfs.WriteFile(c, "/f", []byte("budgeted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(c, "/f"); err != nil {
		t.Fatal(err)
	}
	if c.noDeadlines.Load() {
		t.Error("client downgraded against a deadline-capable server")
	}
	if got := ts.srv.Stats.DeadlineRejects.Load(); got != 0 {
		t.Errorf("generous budgets produced %d rejects", got)
	}
}
