package chirp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// ClientConfig configures a Chirp client.
type ClientConfig struct {
	// Dial establishes the transport connection. Required.
	Dial func() (net.Conn, error)
	// Credentials are offered in order during authentication.
	Credentials []auth.Credential
	// Timeout bounds each RPC round trip (0 = none).
	Timeout time.Duration
	// Metrics, when non-nil, receives round-trip latency histograms
	// ("chirp_client.rpc.<verb>") and reconnect/error counters. Nil
	// disables instrumentation at zero cost.
	Metrics *obs.Registry
	// PoolSize is the maximum number of concurrently open connections a
	// NewPool transport maintains to the server (default 1). Dial
	// ignores it: a Client is always exactly one connection.
	PoolSize int
	// IdleTimeout is how long a surplus pool connection may sit idle
	// before NewPool reaps it (0 = keep forever). Dial ignores it.
	IdleTimeout time.Duration
	// Verify enables end-to-end digest verification of whole-file
	// transfers: GetFile/PutFile use the getfilesum/putfilesum verbs,
	// which carry a digest trailer the receiving side checks. A server
	// that predates the verbs answers EINVAL before any data phase; the
	// client then falls back to the plain verbs and remembers, so old
	// peers interoperate at the cost of one probe round trip.
	Verify bool
	// ChecksumAlgo selects the digest for Verify and Checksum
	// (default vfs.DefaultAlgo, crc32c).
	ChecksumAlgo string
}

// Client speaks the Chirp protocol to one file server. It implements
// vfs.FileSystem, making a remote server interchangeable with a local
// directory — the recursive storage abstraction of §3.
//
// A Client is safe for concurrent use; requests are serialized on the
// single connection, exactly as the protocol requires.
type Client struct {
	cfg ClientConfig

	// Per-verb round-trip histograms and connection-health counters,
	// pre-resolved at Dial; all nil without a registry.
	rpcHist     map[string]*obs.Histogram
	mRPCErrors  *obs.Counter
	mReconnects *obs.Counter

	// extraHist holds lazily registered histograms for verbs outside
	// rpcVerbs, so an unlisted verb is still observed instead of
	// falling into a nil map entry.
	histMu    sync.Mutex
	extraHist map[string]*obs.Histogram

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	subject auth.Subject
	gen     uint64 // connection generation; stale fds are fenced by it

	// connected mirrors conn != nil without taking mu. The pool's
	// dispatcher consults liveness on every acquire; going through mu
	// would block behind whatever RPC currently holds the connection.
	connected atomic.Bool

	// noSums records that the server answered EINVAL to a digest verb:
	// it predates them, so verified transfers stop probing and use the
	// plain verbs for the rest of this client's life.
	noSums atomic.Bool

	// noLeases records that the server answered EINVAL to a lease verb:
	// it predates them, so the caching tier stops probing and falls
	// back to TTL-only expiry for the rest of this client's life.
	noLeases atomic.Bool

	// noDeadlines records that the server answered EINVAL to the
	// deadline verb: it predates deadline propagation, so RPCs stop
	// sending the pipelined prefix for the rest of this client's life.
	noDeadlines atomic.Bool
}

var (
	_ vfs.FileSystem  = (*Client)(nil)
	_ vfs.Closer      = (*Client)(nil)
	_ vfs.Reconnector = (*Client)(nil)
	_ vfs.FileGetter  = (*Client)(nil)
	_ vfs.FilePutter  = (*Client)(nil)
	_ vfs.OpenStater  = (*Client)(nil)
)

// Dial connects and authenticates a new client.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("chirp: ClientConfig.Dial is required")
	}
	c := &Client{cfg: cfg}
	if reg := cfg.Metrics; reg != nil {
		c.rpcHist = make(map[string]*obs.Histogram, len(rpcVerbs))
		for _, v := range rpcVerbs {
			c.rpcHist[v] = reg.Histogram("chirp_client.rpc." + v)
		}
		c.mRPCErrors = reg.Counter("chirp_client.rpc_errors")
		c.mReconnects = reg.Counter("chirp_client.reconnects")
	}
	if err := c.Reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

// observeRPC times one round trip into the per-verb histogram and
// counts failures. No-op when metrics are disabled.
func (c *Client) observeRPC(verb string, start time.Time, err error) {
	if c.rpcHist == nil {
		return
	}
	h, ok := c.rpcHist[verb]
	if !ok {
		// A verb missing from rpcVerbs used to index the map to a nil
		// histogram and silently drop the observation; register one on
		// first use instead.
		h = c.histFor(verb)
	}
	h.Observe(time.Since(start))
	if err != nil {
		c.mRPCErrors.Inc()
	}
}

// histFor lazily registers the round-trip histogram for a verb that is
// not in the pre-resolved set.
func (c *Client) histFor(verb string) *obs.Histogram {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	if h, ok := c.extraHist[verb]; ok {
		return h
	}
	h := c.cfg.Metrics.Histogram("chirp_client.rpc." + verb)
	if c.extraHist == nil {
		c.extraHist = make(map[string]*obs.Histogram)
	}
	c.extraHist[verb] = h
	return h
}

// DialTCP is a convenience for connecting over TCP.
func DialTCP(addr string, creds []auth.Credential, timeout time.Duration) (*Client, error) {
	return Dial(ClientConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		},
		Credentials: creds,
		Timeout:     timeout,
	})
}

// Reconnect (re-)establishes the transport and authenticates. Any file
// descriptors from a previous connection become invalid, returning
// ENOTCONN; the adapter layer is responsible for re-opening them.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.connected.Store(false)
	}
	conn, err := c.cfg.Dial()
	if err != nil {
		return vfs.ENOTCONN
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	//lint:ignore lockheld c.mu owns the connection being replaced; the auth dialog must finish before any RPC may use it
	subject, err := auth.Login(br, clientFlushWriter{bw}, c.cfg.Credentials...)
	if err != nil {
		conn.Close()
		return fmt.Errorf("chirp: authentication: %w", err)
	}
	c.conn = conn
	c.br = br
	c.bw = bw
	c.subject = subject
	c.connected.Store(true)
	c.gen++
	if c.gen > 1 {
		// The first connection is a dial; everything after is a repair.
		c.mReconnects.Inc()
	}
	return nil
}

type clientFlushWriter struct{ w *bufio.Writer }

func (f clientFlushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if err == nil {
		err = f.w.Flush()
	}
	return n, err
}

// Subject returns the subject granted at authentication.
func (c *Client) Subject() auth.Subject {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subject
}

// alive reports whether the client currently holds a live connection.
// The pool consults it on every dispatch and to repair only dead
// members on Reconnect; it deliberately reads the mirror flag rather
// than taking mu, which an in-flight RPC holds for its full round trip.
func (c *Client) alive() bool {
	return c.connected.Load()
}

// Close tears down the connection; the server releases all state.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.connected.Store(false)
	return err
}

// dropLocked abandons a desynchronized or failed connection.
// Caller holds c.mu.
func (c *Client) dropLocked() {
	if c.conn != nil {
		// Clear any per-RPC deadline before abandoning: the net.Conn
		// may be shared with in-flight readers that should see the
		// close, not a stale deadline error.
		c.conn.SetDeadline(time.Time{})
		c.conn.Close()
		c.conn = nil
	}
	c.connected.Store(false)
}

// failLocked abandons the connection after a transport error and fences
// every descriptor opened on it, so stale fds fail fast instead of
// being replayed against a future connection. The returned errno keeps
// the §6 failure vocabulary: an expired RPC deadline is ETIMEDOUT,
// everything else ENOTCONN. Caller holds c.mu.
func (c *Client) failLocked(err error) vfs.Errno {
	c.dropLocked()
	c.gen++
	if vfs.AsErrno(err) == vfs.ETIMEDOUT {
		return vfs.ETIMEDOUT
	}
	return vfs.ENOTCONN
}

// lineBufPool recycles request-line encoding buffers across RPCs and
// clients, so encoding a request allocates nothing in steady state.
var lineBufPool sync.Pool

func getLineBuf() *[]byte {
	v, _ := lineBufPool.Get().(*[]byte)
	if v == nil {
		v = new([]byte)
	}
	return v
}

func putLineBuf(v *[]byte) { lineBufPool.Put(v) }

// appendDeadlinePrefix encodes the pipelined "deadline <remaining_ms>"
// prefix ahead of a request line, exporting the client's RPC timeout to
// the server so work whose waiter has already given up is shed instead
// of served (DESIGN.md §15). The budget is relative milliseconds, so
// clock skew does not shift it. Returns the extended buffer and whether
// the prefix was added — the caller then reads one extra status line.
// No prefix is sent without a timeout, or once the server is known to
// predate the verb.
func (c *Client) appendDeadlinePrefix(dst []byte) ([]byte, bool) {
	if c.cfg.Timeout <= 0 || c.noDeadlines.Load() {
		return dst, false
	}
	ms := c.cfg.Timeout.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	out, err := (&proto.Request{Verb: "deadline", Budget: ms}).AppendTo(dst)
	if err != nil {
		return dst, false
	}
	return append(out, '\n'), true
}

// readDeadlineCode consumes the status line the deadline prefix earned.
// The verb has no data phase, so any refusal arrives with the stream in
// sync and the governed request proceeds regardless; EINVAL from an old
// server is memoized so this client stops probing. Caller holds c.mu.
func (c *Client) readDeadlineCode() error {
	code, err := proto.ReadCode(c.br)
	if err != nil {
		return err
	}
	if vfs.FromCode(int(code)) == vfs.EINVAL {
		c.noDeadlines.Store(true)
	}
	return nil
}

// rpc sends one request and reads the status line while holding the
// connection. payload, when non-nil, is sent after the request line.
// The handler, when non-nil, consumes any post-status response body;
// it runs with the lock held and must fully drain the body.
func (c *Client) rpc(req *proto.Request, payload []byte, handler func(code int64, br *bufio.Reader) error) (_ int64, rpcErr error) {
	if c.rpcHist != nil {
		defer func(start time.Time) { c.observeRPC(req.Verb, start, rpcErr) }(time.Now())
	}
	lb := getLineBuf()
	defer putLineBuf(lb)
	line, withDeadline := c.appendDeadlinePrefix((*lb)[:0])
	line, err := req.AppendTo(line)
	if err != nil {
		return 0, vfs.EINVAL
	}
	line = append(line, '\n')
	*lb = line
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, vfs.ENOTCONN
	}
	if c.cfg.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	if _, err := c.bw.Write(line); err != nil {
		return 0, c.failLocked(err)
	}
	if payload != nil {
		if _, err := c.bw.Write(payload); err != nil {
			return 0, c.failLocked(err)
		}
	}
	//lint:ignore lockheld the protocol serializes RPCs on one connection; c.mu is the connection owner for the whole round trip
	if err := c.bw.Flush(); err != nil {
		return 0, c.failLocked(err)
	}
	if withDeadline {
		if err := c.readDeadlineCode(); err != nil {
			return 0, c.failLocked(err)
		}
	}
	//lint:ignore lockheld the response must be read under the same critical section that wrote the request
	code, err := proto.ReadCode(c.br)
	if err != nil {
		return 0, c.failLocked(err)
	}
	if handler != nil {
		if err := handler(code, c.br); err != nil {
			return 0, c.failLocked(err)
		}
	}
	if code < 0 {
		return 0, vfs.FromCode(int(code))
	}
	return code, nil
}

// Open opens the named file on the server.
func (c *Client) Open(path string, flags int, mode uint32) (vfs.File, error) {
	f, _, err := c.OpenStat(path, flags, mode)
	return f, err
}

// OpenStat opens the named file and returns its metadata from the same
// round trip — the open response carries a stat line, so the adapter's
// inode bookkeeping costs nothing extra (vfs.OpenStater).
func (c *Client) OpenStat(path string, flags int, mode uint32) (vfs.File, vfs.FileInfo, error) {
	var fi vfs.FileInfo
	fd, err := c.rpc(&proto.Request{Verb: "open", Path: path, Flags: int64(flags), Mode: int64(mode)}, nil,
		func(code int64, br *bufio.Reader) error {
			if code < 0 {
				return nil
			}
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			fi, err = proto.UnmarshalStat(line)
			return err
		})
	if err != nil {
		return nil, fi, err
	}
	c.mu.Lock()
	gen := c.gen
	c.mu.Unlock()
	return &clientFile{c: c, fd: fd, gen: gen, name: path}, fi, nil
}

// Stat returns metadata for the named file.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	_, err := c.rpc(&proto.Request{Verb: "stat", Path: path}, nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		fi, err = proto.UnmarshalStat(line)
		return err
	})
	return fi, err
}

// Unlink removes the named file.
func (c *Client) Unlink(path string) error {
	_, err := c.rpc(&proto.Request{Verb: "unlink", Path: path}, nil, nil)
	return err
}

// Rename renames a file or directory.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.rpc(&proto.Request{Verb: "rename", Path: oldPath, Path2: newPath}, nil, nil)
	return err
}

// Mkdir creates a directory; in a directory where the caller holds
// only the V right this performs the reservation of §4.
func (c *Client) Mkdir(path string, mode uint32) error {
	_, err := c.rpc(&proto.Request{Verb: "mkdir", Path: path, Mode: int64(mode)}, nil, nil)
	return err
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	_, err := c.rpc(&proto.Request{Verb: "rmdir", Path: path}, nil, nil)
	return err
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	_, err := c.rpc(&proto.Request{Verb: "getdir", Path: path}, nil, func(code int64, br *bufio.Reader) error {
		for i := int64(0); i < code; i++ {
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			e, err := proto.UnmarshalDirEntry(line)
			if err != nil {
				return err
			}
			ents = append(ents, e)
		}
		return nil
	})
	return ents, err
}

// Truncate changes the length of the named file.
func (c *Client) Truncate(path string, size int64) error {
	_, err := c.rpc(&proto.Request{Verb: "truncate", Path: path, Size: size}, nil, nil)
	return err
}

// Chmod changes permission bits of the named file.
func (c *Client) Chmod(path string, mode uint32) error {
	_, err := c.rpc(&proto.Request{Verb: "chmod", Path: path, Mode: int64(mode)}, nil, nil)
	return err
}

// StatFS reports server capacity.
func (c *Client) StatFS() (vfs.FSInfo, error) {
	var info vfs.FSInfo
	_, err := c.rpc(&proto.Request{Verb: "statfs"}, nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		_, err = fmt.Sscanf(line, "%d %d", &info.TotalBytes, &info.FreeBytes)
		return err
	})
	return info, err
}

// Whoami asks the server which subject this session authenticated as.
func (c *Client) Whoami() (auth.Subject, error) {
	var s auth.Subject
	_, err := c.rpc(&proto.Request{Verb: "whoami"}, nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		u, err := proto.Unescape(line)
		s = auth.Subject(u)
		return err
	})
	return s, err
}

// GetACL fetches the effective ACL of a directory, one entry per line.
func (c *Client) GetACL(path string) ([]string, error) {
	var lines []string
	_, err := c.rpc(&proto.Request{Verb: "getacl", Path: path}, nil, func(code int64, br *bufio.Reader) error {
		for i := int64(0); i < code; i++ {
			line, err := proto.ReadLine(br)
			if err != nil {
				return err
			}
			lines = append(lines, line)
		}
		return nil
	})
	return lines, err
}

// SetACL grants subject the given rights spec (e.g. "rwl", "v(rwla)",
// "n" to revoke) on a directory.
func (c *Client) SetACL(path, subject, rights string) error {
	_, err := c.rpc(&proto.Request{Verb: "setacl", Path: path, Subject: subject, Rights: rights}, nil, nil)
	return err
}

// getFilePlain streams the whole named file to w (the getfile RPC):
// one round trip regardless of size, on the same connection as
// control. GetFile (client_sum.go) routes here unless verification is
// on.
func (c *Client) getFilePlain(path string, w io.Writer) (int64, error) {
	var copied int64
	var copyErr error
	_, err := c.rpc(&proto.Request{Verb: "getfile", Path: path}, nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		copied, copyErr = io.CopyN(w, br, code)
		if copyErr != nil && copied < code {
			// Stream broken mid-body: connection is desynced.
			return copyErr
		}
		return nil
	})
	if err != nil {
		return copied, err
	}
	return copied, copyErr
}

// putStream writes one put-style request and streams its body on the
// serialized connection: the shared core of putfile and putfilesum.
// When twoPhase is set the server answers a ready line before the data
// phase, so a refusal — notably EINVAL from a server that predates the
// verb — arrives with the stream in sync and not one byte consumed
// from r, which is what makes blind negotiation safe. trailer, when
// non-nil, appends a final protocol line after the body.
func (c *Client) putStream(req *proto.Request, size int64, r io.Reader, twoPhase bool, trailer func([]byte) []byte) (rpcErr error) {
	if c.rpcHist != nil {
		defer func(start time.Time) { c.observeRPC(req.Verb, start, rpcErr) }(time.Now())
	}
	lb := getLineBuf()
	defer putLineBuf(lb)
	line, withDeadline := c.appendDeadlinePrefix((*lb)[:0])
	line, err := req.AppendTo(line)
	if err != nil {
		return vfs.EINVAL
	}
	line = append(line, '\n')
	*lb = line
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return vfs.ENOTCONN
	}
	if c.cfg.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	if _, err := c.bw.Write(line); err != nil {
		return c.failLocked(err)
	}
	if twoPhase {
		//lint:ignore lockheld the ready line must be read before the body is streamed, under the same connection-owning critical section
		if err := c.bw.Flush(); err != nil {
			return c.failLocked(err)
		}
		if withDeadline {
			if err := c.readDeadlineCode(); err != nil {
				return c.failLocked(err)
			}
			withDeadline = false
		}
		//lint:ignore lockheld the ready line must be read before the body is streamed, under the same connection-owning critical section
		ready, err := proto.ReadCode(c.br)
		if err != nil {
			return c.failLocked(err)
		}
		if ready < 0 {
			return vfs.FromCode(int(ready))
		}
	}
	if _, err := io.CopyN(c.bw, r, size); err != nil {
		return c.failLocked(err)
	}
	if trailer != nil {
		if _, err := c.bw.Write(trailer(nil)); err != nil {
			return c.failLocked(err)
		}
	}
	//lint:ignore lockheld putfile streams request and response on the one serialized connection; c.mu owns it end to end
	if err := c.bw.Flush(); err != nil {
		return c.failLocked(err)
	}
	if withDeadline {
		// One-phase put: the deadline status was pipelined behind the
		// blind body, so it is read here, ahead of the final status.
		if err := c.readDeadlineCode(); err != nil {
			return c.failLocked(err)
		}
	}
	//lint:ignore lockheld the response must be read under the same critical section that streamed the body
	code, err := proto.ReadCode(c.br)
	if err != nil {
		return c.failLocked(err)
	}
	if code < 0 {
		return vfs.FromCode(int(code))
	}
	return nil
}

// putFilePlain streams size bytes from r into the named file (putfile
// RPC): one round trip regardless of size (vfs.FilePutter), symmetric
// with getFilePlain.
func (c *Client) putFilePlain(path string, mode uint32, size int64, r io.Reader) error {
	return c.putStream(&proto.Request{Verb: "putfile", Path: path, Mode: int64(mode), Length: size},
		size, r, false, nil)
}

// clientFile is an open remote file. The fd is valid only for the
// connection generation it was opened on (§4: a descriptor is scoped
// to its connection).
type clientFile struct {
	c    *Client
	fd   int64
	gen  uint64
	name string
}

func (f *clientFile) checkGen() error {
	f.c.mu.Lock()
	ok := f.gen == f.c.gen && f.c.conn != nil
	f.c.mu.Unlock()
	if !ok {
		return vfs.ENOTCONN
	}
	return nil
}

func (f *clientFile) Pread(p []byte, off int64) (int, error) {
	if err := f.checkGen(); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > proto.MaxIOSize {
			chunk = proto.MaxIOSize
		}
		var got int64
		_, err := f.c.rpc(&proto.Request{Verb: "pread", FD: f.fd, Length: int64(chunk), Offset: off + int64(total)}, nil,
			func(code int64, br *bufio.Reader) error {
				if code < 0 {
					return nil
				}
				got = code
				_, err := io.ReadFull(br, p[total:total+int(code)])
				return err
			})
		if err != nil {
			return total, err
		}
		if got == 0 {
			break // EOF
		}
		total += int(got)
		if got < int64(chunk) {
			break
		}
	}
	return total, nil
}

func (f *clientFile) Pwrite(p []byte, off int64) (int, error) {
	if err := f.checkGen(); err != nil {
		return 0, err
	}
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > proto.MaxIOSize {
			chunk = proto.MaxIOSize
		}
		n, err := f.c.rpc(&proto.Request{Verb: "pwrite", FD: f.fd, Length: int64(chunk), Offset: off + int64(total)},
			p[total:total+chunk], nil)
		if err != nil {
			return total, err
		}
		total += int(n)
		if int(n) < chunk {
			break
		}
	}
	return total, nil
}

func (f *clientFile) Fstat() (vfs.FileInfo, error) {
	if err := f.checkGen(); err != nil {
		return vfs.FileInfo{}, err
	}
	var fi vfs.FileInfo
	_, err := f.c.rpc(&proto.Request{Verb: "fstat", FD: f.fd}, nil, func(code int64, br *bufio.Reader) error {
		if code < 0 {
			return nil
		}
		line, err := proto.ReadLine(br)
		if err != nil {
			return err
		}
		fi, err = proto.UnmarshalStat(line)
		return err
	})
	return fi, err
}

func (f *clientFile) Ftruncate(size int64) error {
	if err := f.checkGen(); err != nil {
		return err
	}
	_, err := f.c.rpc(&proto.Request{Verb: "ftruncate", FD: f.fd, Size: size}, nil, nil)
	return err
}

func (f *clientFile) Sync() error {
	if err := f.checkGen(); err != nil {
		return err
	}
	_, err := f.c.rpc(&proto.Request{Verb: "fsync", FD: f.fd}, nil, nil)
	return err
}

func (f *clientFile) Close() error {
	if err := f.checkGen(); err != nil {
		// The connection that owned this descriptor is gone; the
		// server has already released it.
		return nil
	}
	_, err := f.c.rpc(&proto.Request{Verb: "close", FD: f.fd}, nil, nil)
	return err
}
