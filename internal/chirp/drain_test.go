package chirp

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/auth"
	"tss/internal/chirp/proto"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

// slowReader feeds data in small chunks with a delay per chunk, to
// hold a putfile data phase open while a drain begins.
type slowReader struct {
	data  []byte
	chunk int
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// Shutdown lets an in-flight request finish — the putfile's data phase
// streams to completion and the response comes back — while idle
// connections are released and new ones refused.
func TestShutdownDrainsInFlightRequest(t *testing.T) {
	ts := startServer(t, nil)
	busy := ts.client(t, "owner.sim")
	idle := ts.client(t, "owner.sim")
	if _, err := idle.Stat("/"); err != nil {
		t.Fatal(err)
	}

	content := bytes.Repeat([]byte("drain me "), 8<<10) // ~72 KiB
	base := ts.srv.Stats.Requests.Load()
	putDone := make(chan error, 1)
	go func() {
		putDone <- busy.PutFile("/big", 0o644, int64(len(content)),
			&slowReader{data: content, chunk: 4 << 10, delay: 2 * time.Millisecond})
	}()
	// Wait until the putfile is in flight on the server.
	for ts.srv.Stats.Requests.Load() == base {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("in-flight putfile aborted by drain: %v", err)
	}
	got, err := vfs.ReadFile(ts.srv.FS(), "/big")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("drained putfile stored %d bytes, want %d (%v)", len(got), len(content), err)
	}
	if ts.srv.Stats.Drains.Load() != 1 {
		t.Errorf("drains = %d, want 1", ts.srv.Stats.Drains.Load())
	}
	if ts.srv.Stats.DrainForced.Load() != 0 {
		t.Errorf("drain force-closed %d connections", ts.srv.Stats.DrainForced.Load())
	}

	// The idle connection was released; the busy one got this request as
	// its last. Both now fail fast.
	if _, err := idle.Stat("/"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("idle client after drain = %v, want ENOTCONN", err)
	}
	if _, err := busy.Stat("/"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("busy client after drain = %v, want ENOTCONN", err)
	}
	// New connections are refused: the listener is closed and ServeConn
	// turns late arrivals away.
	if _, err := ts.net.DialFrom("owner.sim", "fs.sim", netsim.Loopback); err == nil {
		c2, c1 := net.Pipe()
		go ts.srv.ServeConn(c1)
		buf := make([]byte, 1)
		c2.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := c2.Read(buf); err == nil {
			t.Error("draining server still serves new connections")
		}
		c2.Close()
	}
}

// slowWriter delays each write and counts bytes, so a getfile body
// stays in flight (the server blocks on the synchronous pipe) while a
// drain begins.
type slowWriter struct {
	w     io.Writer
	delay time.Duration
	n     atomic.Int64
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	n, err := s.w.Write(p)
	s.n.Add(int64(n))
	return n, err
}

// A getfile mid-stream when Shutdown begins runs to completion: the
// drain waits for the full body and the client sees every byte. Uses
// net.Pipe rather than netsim because the drain must observe real
// write backpressure to catch the server mid-stream.
func TestShutdownDrainsInFlightGetfile(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerConfig{
		Name:      "pipe.sim",
		Owner:     "hostname:peer",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{Resolve: func(string) string { return "peer" }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("streamed body "), 32<<10) // ~448 KiB
	if err := vfs.WriteFile(srv.FS(), "/big", content, 0o644); err != nil {
		t.Fatal(err)
	}
	cliConn, srvConn := net.Pipe()
	go srv.ServeConn(srvConn)
	c, err := Dial(ClientConfig{
		Dial:        func() (net.Conn, error) { return cliConn, nil },
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sink bytes.Buffer
	sw := &slowWriter{w: &sink, delay: time.Millisecond}
	getDone := make(chan error, 1)
	go func() {
		_, err := c.GetFile("/big", sw)
		getDone <- err
	}()
	// Wait until the body is actually streaming.
	for sw.n.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := <-getDone; err != nil {
		t.Fatalf("in-flight getfile aborted by drain: %v", err)
	}
	if !bytes.Equal(sink.Bytes(), content) {
		t.Fatalf("drained getfile delivered %d bytes, want %d", sink.Len(), len(content))
	}
	if srv.Stats.DrainForced.Load() != 0 {
		t.Errorf("drain force-closed %d connections", srv.Stats.DrainForced.Load())
	}
}

// A drain with an expired context force-closes connections that will
// not finish, instead of hanging forever.
func TestShutdownForceClosesOnContextExpiry(t *testing.T) {
	ts := startServer(t, nil)
	busy := ts.client(t, "owner.sim")
	content := bytes.Repeat([]byte("x"), 64<<10)
	base := ts.srv.Stats.Requests.Load()
	putDone := make(chan error, 1)
	go func() {
		// 16 chunks x 50ms: far longer than the drain budget below.
		putDone <- busy.PutFile("/slow", 0o644, int64(len(content)),
			&slowReader{data: content, chunk: 4 << 10, delay: 50 * time.Millisecond})
	}()
	for ts.srv.Stats.Requests.Load() == base {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := ts.srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if ts.srv.Stats.DrainForced.Load() == 0 {
		t.Error("no connection was force-closed")
	}
	if err := <-putDone; err == nil {
		t.Error("putfile survived a force-close")
	}
}

// stallServer speaks just enough protocol over a pipe to authenticate
// a hostname client and serve scripted responses, then goes silent —
// the half-dead server that §6's timeouts exist for.
func stallServer(t *testing.T, conn net.Conn, script func(br *bufio.Reader, w net.Conn)) {
	t.Helper()
	go func() {
		br := bufio.NewReader(conn)
		line, err := br.ReadString('\n')
		if err != nil || line != "auth hostname\n" {
			return
		}
		io.WriteString(conn, "yes\n")
		io.WriteString(conn, "ok hostname:peer\n")
		if script != nil {
			script(br, conn)
		}
		// Fall silent: never answer again, never close.
	}()
}

// An expired RPC deadline surfaces as ETIMEDOUT — not EIO, not a hang —
// and fences every descriptor opened on the dead connection.
func TestClientDeadlineMapsToTimedout(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	stallServer(t, srvConn, func(br *bufio.Reader, w net.Conn) {
		// Serve exactly one open (acknowledging its pipelined deadline
		// prefix), then stall.
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "deadline") {
				io.WriteString(w, "0\n")
				continue
			}
			fmt.Fprintf(w, "1\n%s\n", proto.MarshalStat(vfs.FileInfo{Name: "f", Size: 5, Mode: 0o644, Inode: 7}))
			return
		}
	})
	c, err := Dial(ClientConfig{
		Dial:        func() (net.Conn, error) { return cliConn, nil },
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The server has fallen silent: the next RPC must time out.
	start := time.Now()
	_, err = c.Stat("/f")
	if vfs.AsErrno(err) != vfs.ETIMEDOUT {
		t.Fatalf("stat on stalled server = %v, want ETIMEDOUT", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The descriptor from the dead connection is fenced: no RPC is even
	// attempted for it (ENOTCONN immediately, not another timeout).
	start = time.Now()
	if _, err := f.Pread(make([]byte, 4), 0); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("fenced fd pread = %v, want ENOTCONN", err)
	}
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Errorf("fenced fd still touched the network (%v)", elapsed)
	}
}
