package chirp

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/auth"
	"tss/internal/vfs"
)

// Pool is a multi-connection Chirp transport to one file server. It
// implements vfs.FileSystem — exactly like Client — so every
// abstraction above it (mirror, stripe, adapter, resilience policies,
// instrumentation) inherits connection parallelism unchanged.
//
// A single Client serializes all RPCs on its one connection, so the
// goroutine fan-out the upper layers already have collapses to one
// in-flight RPC per server. The pool keeps up to PoolSize authenticated
// connections and restores that concurrency:
//
//   - Stateless RPCs (stat, getdir, unlink, getfile, putfile, ...) are
//     dispatched to the least-loaded connection, dialing a new one
//     lazily while the pool may still grow.
//   - File-descriptor RPCs (pread, pwrite, fstat, ftruncate, fsync,
//     close) are pinned to the connection that performed the open:
//     Chirp descriptors are connection-scoped (§4), so affinity is a
//     correctness requirement, not an optimization. The open itself is
//     a least-loaded placement choice.
//
// Failure isolation is per connection: each member keeps its own
// generation fence, so a member dropping mid-read invalidates only the
// descriptors opened on that member (they return ENOTCONN) while I/O on
// the other members proceeds undisturbed. Reconnect repairs exactly the
// dead members. Surplus members idle beyond ClientConfig.IdleTimeout
// are reaped opportunistically; the pool never shrinks below one
// connection.
type Pool struct {
	cfg  ClientConfig
	size int

	mu      sync.Mutex
	members []*member
	dialing int // members being dialed outside the lock, counted toward size
	closed  bool

	// pushbackUntil marks the end of the server's pushback window: an
	// RPC answered EAGAIN, meaning the server is shedding load
	// (DESIGN.md §15). While the window is open the pool stops growing —
	// dialing extra connections at a server that just asked for room
	// would convert its pushback into more offered load. Existing
	// members keep serving; the window is per pool because every member
	// speaks to the same server.
	pushbackUntil time.Time
}

// poolPushbackWindow is how long one EAGAIN suppresses lazy pool
// growth. Matches the order of a retry backoff, so the pool does not
// expand in the middle of the very burst being shed.
const poolPushbackWindow = time.Second

// member is one pooled connection with its load accounting; counts are
// guarded by Pool.mu.
type member struct {
	c        *Client
	inflight int // RPCs currently dispatched on this connection
	openFDs  int // live descriptors owned by this connection
	lastUsed time.Time
}

var (
	_ vfs.FileSystem  = (*Pool)(nil)
	_ vfs.Closer      = (*Pool)(nil)
	_ vfs.Reconnector = (*Pool)(nil)
	_ vfs.FileGetter  = (*Pool)(nil)
	_ vfs.FilePutter  = (*Pool)(nil)
	_ vfs.OpenStater  = (*Pool)(nil)
	_ vfs.Checksummer = (*Pool)(nil)
	_ vfs.PartGetter  = (*Pool)(nil)
	_ vfs.PartPutter  = (*Pool)(nil)
	_ vfs.Leaser      = (*Pool)(nil)
)

// NewPool connects and authenticates the first pool connection and
// returns the pool. cfg.PoolSize bounds the number of connections
// (default 1); additional connections are dialed lazily under load.
func NewPool(cfg ClientConfig) (*Pool, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("chirp: ClientConfig.Dial is required")
	}
	size := cfg.PoolSize
	if size < 1 {
		size = 1
	}
	p := &Pool{cfg: cfg, size: size}
	c, err := Dial(cfg)
	if err != nil {
		return nil, err
	}
	p.members = []*member{{c: c, lastUsed: time.Now()}}
	return p, nil
}

// loadOf is the placement cost of a member: RPCs in flight plus the
// descriptors pinned to it (each descriptor predicts future fd RPCs
// that have no choice of connection).
func loadOf(m *member) int { return m.inflight + m.openFDs }

// leastLoadedLocked returns the best dispatch target, preferring live
// connections; a dead member is returned only when nothing is alive, so
// the caller surfaces ENOTCONN and the recovery protocol takes over.
// Caller holds p.mu.
func (p *Pool) leastLoadedLocked() *member {
	var best, bestDead *member
	for _, m := range p.members {
		if !m.c.alive() {
			if bestDead == nil || loadOf(m) < loadOf(bestDead) {
				bestDead = m
			}
			continue
		}
		if best == nil || loadOf(m) < loadOf(best) {
			best = m
		}
	}
	if best == nil {
		return bestDead
	}
	return best
}

// acquire reserves a connection for one RPC: the least-loaded member,
// or a lazily dialed new one when every member is busy and the pool may
// still grow. The dial happens outside the pool lock so dispatch never
// blocks behind connection setup.
func (p *Pool) acquire() (*member, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, vfs.ENOTCONN
	}
	best := p.leastLoadedLocked()
	if best != nil && loadOf(best) == 0 && best.c.alive() {
		best.inflight++
		p.mu.Unlock()
		return best, nil
	}
	if len(p.members)+p.dialing < p.size && time.Now().After(p.pushbackUntil) {
		p.dialing++
		p.mu.Unlock()
		c, err := Dial(p.cfg)
		p.mu.Lock()
		p.dialing--
		if err == nil {
			if p.closed {
				p.mu.Unlock()
				c.Close()
				return nil, vfs.ENOTCONN
			}
			m := &member{c: c, inflight: 1, lastUsed: time.Now()}
			p.members = append(p.members, m)
			p.mu.Unlock()
			return m, nil
		}
		// The dial failed; share the least-loaded existing connection.
		best = p.leastLoadedLocked()
	}
	if best == nil {
		p.mu.Unlock()
		return nil, vfs.ENOTCONN
	}
	best.inflight++
	p.mu.Unlock()
	return best, nil
}

// release returns a connection after one RPC and opportunistically
// reaps surplus idle members.
func (p *Pool) release(m *member) {
	p.mu.Lock()
	m.inflight--
	m.lastUsed = time.Now()
	p.mu.Unlock()
	if p.cfg.IdleTimeout > 0 {
		p.reap()
	}
}

// reap closes surplus members that have sat idle beyond IdleTimeout
// with no descriptors and no RPC in flight. The pool keeps at least one
// member so Reconnect always has a connection to repair. Closes happen
// outside the pool lock.
func (p *Pool) reap() {
	cutoff := time.Now().Add(-p.cfg.IdleTimeout)
	var dead []*member
	p.mu.Lock()
	kept := p.members[:0]
	for _, m := range p.members {
		surplus := len(p.members)-len(dead) > 1
		if surplus && m.inflight == 0 && m.openFDs == 0 && m.lastUsed.Before(cutoff) {
			dead = append(dead, m)
			continue
		}
		kept = append(kept, m)
	}
	p.members = kept
	p.mu.Unlock()
	for _, m := range dead {
		m.c.Close()
	}
}

// notePushback opens the pushback window when an RPC was answered with
// EAGAIN: the server is shedding, so the pool must not grow into it.
func (p *Pool) notePushback(err error) {
	if vfs.AsErrno(err) != vfs.EAGAIN {
		return
	}
	p.mu.Lock()
	p.pushbackUntil = time.Now().Add(poolPushbackWindow)
	p.mu.Unlock()
}

// withConn runs one stateless RPC on an acquired connection.
func (p *Pool) withConn(fn func(*Client) error) error {
	m, err := p.acquire()
	if err != nil {
		return err
	}
	err = fn(m.c)
	p.release(m)
	p.notePushback(err)
	return err
}

// Conns reports the number of live pooled connections.
func (p *Pool) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, m := range p.members {
		if m.c.alive() {
			n++
		}
	}
	return n
}

// Subject returns the subject the pool authenticated as.
func (p *Pool) Subject() auth.Subject {
	p.mu.Lock()
	c := p.members[0].c
	p.mu.Unlock()
	return c.Subject()
}

// Reconnect repairs exactly the dead members, leaving live connections
// — and the descriptors pinned to them — untouched (vfs.Reconnector).
func (p *Pool) Reconnect() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return vfs.ENOTCONN
	}
	ms := append([]*member(nil), p.members...)
	p.mu.Unlock()
	var firstErr error
	for _, m := range ms {
		if m.c.alive() {
			continue
		}
		if err := m.c.Reconnect(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close tears down every pooled connection; the server releases all
// per-connection state.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ms := append([]*member(nil), p.members...)
	p.mu.Unlock()
	var firstErr error
	for _, m := range ms {
		if err := m.c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Open opens the named file on the least-loaded connection; all
// subsequent descriptor RPCs stay pinned to it.
func (p *Pool) Open(path string, flags int, mode uint32) (vfs.File, error) {
	f, _, err := p.OpenStat(path, flags, mode)
	return f, err
}

// OpenStat opens and stats in one round trip (vfs.OpenStater); the
// placement of the descriptor is the pool's only choice — every later
// RPC on it must use the same connection.
func (p *Pool) OpenStat(path string, flags int, mode uint32) (vfs.File, vfs.FileInfo, error) {
	m, err := p.acquire()
	if err != nil {
		return nil, vfs.FileInfo{}, err
	}
	f, fi, err := m.c.OpenStat(path, flags, mode)
	p.mu.Lock()
	m.inflight--
	m.lastUsed = time.Now()
	if err == nil {
		m.openFDs++
	}
	p.mu.Unlock()
	if err != nil {
		p.notePushback(err)
		return nil, fi, err
	}
	return &poolFile{File: f, p: p, m: m}, fi, nil
}

// Stat returns metadata for the named file.
func (p *Pool) Stat(path string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	err := p.withConn(func(c *Client) error {
		var e error
		fi, e = c.Stat(path)
		return e
	})
	return fi, err
}

// Unlink removes the named file.
func (p *Pool) Unlink(path string) error {
	return p.withConn(func(c *Client) error { return c.Unlink(path) })
}

// Rename renames a file or directory.
func (p *Pool) Rename(oldPath, newPath string) error {
	return p.withConn(func(c *Client) error { return c.Rename(oldPath, newPath) })
}

// Mkdir creates a directory.
func (p *Pool) Mkdir(path string, mode uint32) error {
	return p.withConn(func(c *Client) error { return c.Mkdir(path, mode) })
}

// Rmdir removes an empty directory.
func (p *Pool) Rmdir(path string) error {
	return p.withConn(func(c *Client) error { return c.Rmdir(path) })
}

// ReadDir lists a directory.
func (p *Pool) ReadDir(path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := p.withConn(func(c *Client) error {
		var e error
		ents, e = c.ReadDir(path)
		return e
	})
	return ents, err
}

// Truncate changes the length of the named file.
func (p *Pool) Truncate(path string, size int64) error {
	return p.withConn(func(c *Client) error { return c.Truncate(path, size) })
}

// Chmod changes permission bits of the named file.
func (p *Pool) Chmod(path string, mode uint32) error {
	return p.withConn(func(c *Client) error { return c.Chmod(path, mode) })
}

// StatFS reports server capacity.
func (p *Pool) StatFS() (vfs.FSInfo, error) {
	var info vfs.FSInfo
	err := p.withConn(func(c *Client) error {
		var e error
		info, e = c.StatFS()
		return e
	})
	return info, err
}

// GetFile streams the whole named file to w (vfs.FileGetter). The
// transfer occupies one pooled connection end to end; other RPCs keep
// flowing on the rest of the pool.
func (p *Pool) GetFile(path string, w io.Writer) (int64, error) {
	var n int64
	err := p.withConn(func(c *Client) error {
		var e error
		n, e = c.GetFile(path, w)
		return e
	})
	return n, err
}

// PutFile streams size bytes from r into the named file
// (vfs.FilePutter).
func (p *Pool) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	return p.withConn(func(c *Client) error { return c.PutFile(path, mode, size, r) })
}

// GetPart streams one chunk of the named file (vfs.PartGetter). Each
// chunk is a self-contained round trip on the least-loaded connection,
// which is exactly what lets the multipart engine fan the chunks of
// one file out across the whole pool.
func (p *Pool) GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error) {
	var n int64
	var sum string
	err := p.withConn(func(c *Client) error {
		var e error
		n, sum, e = c.GetPart(path, off, length, algo, w)
		return e
	})
	return n, sum, err
}

// PutBegin opens a multipart upload (vfs.PartPutter). Support is
// server-wide, so one successful putbegin on any pooled connection
// proves the verb family for all of them.
func (p *Pool) PutBegin(path string, mode uint32, size int64) error {
	return p.withConn(func(c *Client) error { return c.PutBegin(path, mode, size) })
}

// PutPart stores one chunk at its offset (vfs.PartPutter), on the
// least-loaded connection.
func (p *Pool) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	var sum string
	err := p.withConn(func(c *Client) error {
		var e error
		sum, e = c.PutPart(path, off, length, algo, r)
		return e
	})
	return sum, err
}

// PutComplete closes a multipart upload (vfs.PartPutter).
func (p *Pool) PutComplete(path string, size int64, algo, sum string) error {
	return p.withConn(func(c *Client) error { return c.PutComplete(path, size, algo, sum) })
}

// Checksum computes a remote file digest server-side (vfs.Checksummer).
func (p *Pool) Checksum(path, algo string) (string, error) {
	var sum string
	err := p.withConn(func(c *Client) error {
		var e error
		sum, e = c.Checksum(path, algo)
		return e
	})
	return sum, err
}

// Lease acquires a read lease on the least-loaded connection
// (vfs.Leaser). Lease IDs are server-wide and release is checked
// against the authenticated subject — the same for every member — so
// the grant and the break are free to travel different connections.
func (p *Pool) Lease(path string) (vfs.Lease, error) {
	var l vfs.Lease
	err := p.withConn(func(c *Client) error {
		var e error
		l, e = c.Lease(path)
		return e
	})
	return l, err
}

// LeaseBreak releases a lease over any pooled connection (vfs.Leaser).
func (p *Pool) LeaseBreak(id int64) error {
	return p.withConn(func(c *Client) error { return c.LeaseBreak(id) })
}

// Whoami asks the server which subject this session authenticated as.
func (p *Pool) Whoami() (auth.Subject, error) {
	var s auth.Subject
	err := p.withConn(func(c *Client) error {
		var e error
		s, e = c.Whoami()
		return e
	})
	return s, err
}

// GetACL fetches the effective ACL of a directory.
func (p *Pool) GetACL(path string) ([]string, error) {
	var lines []string
	err := p.withConn(func(c *Client) error {
		var e error
		lines, e = c.GetACL(path)
		return e
	})
	return lines, err
}

// SetACL grants subject the given rights spec on a directory.
func (p *Pool) SetACL(path, subject, rights string) error {
	return p.withConn(func(c *Client) error { return c.SetACL(path, subject, rights) })
}

// poolFile is an open file pinned to the pool member that created it.
// The embedded clientFile already routes every descriptor RPC to the
// owning connection and fences the descriptor by that connection's
// generation; the wrapper only maintains the member's placement load.
type poolFile struct {
	vfs.File
	p        *Pool
	m        *member
	released atomic.Bool
}

// Close releases the descriptor and its load accounting. The
// accounting is released exactly once even if Close is called again.
func (f *poolFile) Close() error {
	err := f.File.Close()
	if !f.released.Swap(true) {
		f.p.mu.Lock()
		f.m.openFDs--
		f.m.lastUsed = time.Now()
		f.p.mu.Unlock()
	}
	return err
}
