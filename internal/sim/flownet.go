package sim

import (
	"fmt"
	"math"
	"time"
)

// FlowNet models bandwidth sharing: flows of bytes traverse sets of
// finite-capacity resources (disks, NIC ports, a switch backplane) and
// receive max-min fair rates, recomputed whenever a flow starts or
// finishes. This is the standard fluid model of TCP-like sharing, and
// it is what produces the saturation plateaus of Figures 6-8: one
// 100 MB/s port caps one server, the 300 MB/s backplane caps the whole
// switch, and 10 MB/s disks cap cache-miss traffic.
type FlowNet struct {
	sim   *Sim
	flows []*Flow // insertion order: deterministic iteration
	timer *Timer
}

// Resource is one capacity-limited element (bytes per second).
type Resource struct {
	name     string
	capacity float64
	served   float64 // total bytes carried, for utilization reports
}

// NewResource creates a resource with the given capacity in bytes/s.
func NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q needs positive capacity", name))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the configured capacity in bytes/s.
func (r *Resource) Capacity() float64 { return r.capacity }

// Served returns the total bytes this resource has carried.
func (r *Resource) Served() float64 { return r.served }

// Flow is one in-flight transfer.
type Flow struct {
	remaining  float64
	rate       float64
	resources  []*Resource
	done       *Event
	lastUpdate time.Duration
	finished   bool
}

// Done returns the event fired when the flow completes.
func (f *Flow) Done() *Event { return f.done }

// Rate returns the current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the last
// recomputation.
func (f *Flow) Remaining() float64 { return f.remaining }

// NewFlowNet creates a flow network bound to a simulation.
func NewFlowNet(s *Sim) *FlowNet {
	return &FlowNet{sim: s}
}

// Start injects a flow of the given size across the listed resources
// and returns it. A flow crossing no resources completes immediately.
// Rates of all flows are recomputed max-min fairly.
func (fn *FlowNet) Start(bytes float64, resources ...*Resource) *Flow {
	f := &Flow{
		remaining:  bytes,
		resources:  resources,
		done:       fn.sim.NewEvent(),
		lastUpdate: fn.sim.Now(),
	}
	if bytes <= 0 || len(resources) == 0 {
		for _, r := range resources {
			r.served += bytes
		}
		f.finished = true
		f.done.Fire()
		return f
	}
	fn.flows = append(fn.flows, f)
	fn.rebalance()
	return f
}

// Transfer is the blocking convenience: start a flow and wait for it.
func (fn *FlowNet) Transfer(p *Proc, bytes float64, resources ...*Resource) {
	f := fn.Start(bytes, resources...)
	p.WaitEvent(f.done)
}

// settle charges elapsed time against every active flow's remaining
// bytes and the resources it crosses.
func (fn *FlowNet) settle() {
	now := fn.sim.Now()
	for _, f := range fn.flows {
		dt := (now - f.lastUpdate).Seconds()
		if dt > 0 && f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, r := range f.resources {
				r.served += moved
			}
		}
		f.lastUpdate = now
	}
}

// completionEpsilon treats flows with less than this many bytes left
// as finished, absorbing floating point drift.
const completionEpsilon = 1e-6

// rebalance settles progress, completes finished flows, recomputes
// max-min fair rates, and schedules the next completion.
func (fn *FlowNet) rebalance() {
	fn.settle()

	// Complete flows that have drained.
	live := fn.flows[:0]
	for _, f := range fn.flows {
		if f.remaining <= completionEpsilon {
			f.remaining = 0
			f.finished = true
			f.done.Fire()
			continue
		}
		live = append(live, f)
	}
	for i := len(live); i < len(fn.flows); i++ {
		fn.flows[i] = nil
	}
	fn.flows = live

	fn.computeRates()

	// Schedule the next completion.
	if fn.timer != nil {
		fn.timer.Cancel()
		fn.timer = nil
	}
	next := math.Inf(1)
	for _, f := range fn.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < next {
				next = t
			}
		}
	}
	if !math.IsInf(next, 1) {
		fn.timer = fn.sim.After(time.Duration(next*float64(time.Second))+time.Nanosecond, fn.rebalance)
	}
}

// computeRates performs max-min fair allocation (progressive filling):
// repeatedly find the most contended resource, freeze its flows at the
// equal share, and subtract.
func (fn *FlowNet) computeRates() {
	type rstate struct {
		capLeft float64
		count   int
	}
	states := make(map[*Resource]*rstate)
	resOrder := make([]*Resource, 0, 8) // deterministic scan order
	for _, f := range fn.flows {
		f.rate = -1 // unfrozen marker
		for _, r := range f.resources {
			st, ok := states[r]
			if !ok {
				st = &rstate{capLeft: r.capacity}
				states[r] = st
				resOrder = append(resOrder, r)
			}
			st.count++
		}
	}
	unfrozen := len(fn.flows)
	for unfrozen > 0 {
		var bottleneck *Resource
		best := math.Inf(1)
		for _, r := range resOrder {
			st := states[r]
			if st.count == 0 {
				continue
			}
			share := st.capLeft / float64(st.count)
			if share < best {
				best = share
				bottleneck = r
			}
		}
		if bottleneck == nil {
			// Remaining flows cross only exhausted-entry resources;
			// cannot happen with positive capacities, but guard by
			// giving them the smallest share found so far.
			for _, f := range fn.flows {
				if f.rate < 0 {
					f.rate = 0
				}
			}
			return
		}
		if best < 0 {
			best = 0
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, f := range fn.flows {
			if f.rate >= 0 {
				continue
			}
			crosses := false
			for _, r := range f.resources {
				if r == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = best
			unfrozen--
			for _, r := range f.resources {
				st := states[r]
				st.capLeft -= best
				if st.capLeft < 0 {
					st.capLeft = 0
				}
				st.count--
			}
		}
	}
}

// ActiveFlows returns the number of in-flight flows.
func (fn *FlowNet) ActiveFlows() int { return len(fn.flows) }
