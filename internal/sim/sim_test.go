package sim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestClockAdvancesWithWaits(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var times []time.Duration
	s.Spawn("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Wait(10 * time.Millisecond)
		times = append(times, p.Now())
		p.Wait(5 * time.Millisecond)
		times = append(times, p.Now())
	})
	s.Run()
	want := []time.Duration{0, 10 * time.Millisecond, 15 * time.Millisecond}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		defer s.Shutdown()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Wait(time.Millisecond)
				}
			})
		}
		s.Run()
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic order at %d: %v vs %v", j, first, again)
			}
		}
	}
	// Same-time events run in spawn order.
	if first[0] != "a" || first[1] != "b" || first[2] != "c" {
		t.Errorf("spawn order not preserved: %v", first)
	}
}

func TestEventsWakeWaiters(t *testing.T) {
	s := New()
	defer s.Shutdown()
	e := s.NewEvent()
	var woke []time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			p.WaitEvent(e)
			woke = append(woke, p.Now())
		})
	}
	s.Spawn("firer", func(p *Proc) {
		p.Wait(7 * time.Millisecond)
		e.Fire()
	})
	s.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v", woke)
	}
	for _, w := range woke {
		if w != 7*time.Millisecond {
			t.Errorf("waiter woke at %v", w)
		}
	}
	// Waiting on a fired event returns immediately.
	done := false
	s2 := New()
	defer s2.Shutdown()
	e2 := s2.NewEvent()
	e2.Fire()
	s2.Spawn("late", func(p *Proc) {
		p.WaitEvent(e2)
		done = true
	})
	s2.Run()
	if !done {
		t.Error("late waiter never resumed")
	}
}

func TestTimersAndCancel(t *testing.T) {
	s := New()
	defer s.Shutdown()
	var fired []string
	s.After(5*time.Millisecond, func() { fired = append(fired, "a") })
	tm := s.After(3*time.Millisecond, func() { fired = append(fired, "b") })
	tm.Cancel()
	s.At(time.Millisecond, func() { fired = append(fired, "c") })
	s.Run()
	if len(fired) != 2 || fired[0] != "c" || fired[1] != "a" {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntilBounds(t *testing.T) {
	s := New()
	defer s.Shutdown()
	count := 0
	s.Spawn("ticker", func(p *Proc) {
		for {
			p.Wait(time.Second)
			count++
		}
	})
	s.RunUntil(10 * time.Second)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("now = %v", s.Now())
	}
	s.RunUntil(15 * time.Second)
	if count != 15 {
		t.Errorf("ticks after resume = %d, want 15", count)
	}
}

func TestClockIsMonotonicProperty(t *testing.T) {
	s := New()
	defer s.Shutdown()
	rng := rand.New(rand.NewSource(1))
	last := time.Duration(-1)
	violations := 0
	for i := 0; i < 50; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Wait(time.Duration(rng.Intn(1000)) * time.Microsecond)
				if p.Now() < last {
					violations++
				}
				last = p.Now()
			}
		})
	}
	s.Run()
	if violations > 0 {
		t.Errorf("clock went backwards %d times", violations)
	}
}

// --- FlowNet ---

const MB = 1 << 20

func TestSingleFlowUsesFullCapacity(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("link", 100*MB)
	var done time.Duration
	s.Spawn("xfer", func(p *Proc) {
		net.Transfer(p, 200*MB, link)
		done = p.Now()
	})
	s.Run()
	want := 2 * time.Second
	if diff := (done - want).Abs(); diff > 50*time.Millisecond {
		t.Errorf("200MB over 100MB/s took %v, want ~%v", done, want)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("link", 100*MB)
	var t1, t2 time.Duration
	s.Spawn("a", func(p *Proc) {
		net.Transfer(p, 100*MB, link)
		t1 = p.Now()
	})
	s.Spawn("b", func(p *Proc) {
		net.Transfer(p, 100*MB, link)
		t2 = p.Now()
	})
	s.Run()
	// Both share 50 MB/s and finish together at ~2s.
	for _, d := range []time.Duration{t1, t2} {
		if diff := (d - 2*time.Second).Abs(); diff > 100*time.Millisecond {
			t.Errorf("fair share completion at %v, want ~2s", d)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("link", 100*MB)
	var tLong time.Duration
	s.Spawn("long", func(p *Proc) {
		net.Transfer(p, 150*MB, link)
		tLong = p.Now()
	})
	s.Spawn("short", func(p *Proc) {
		net.Transfer(p, 50*MB, link)
	})
	s.Run()
	// Phase 1: both at 50 MB/s until short finishes at t=1s (50MB each).
	// Phase 2: long alone at 100 MB/s for remaining 100MB -> 1s more.
	want := 2 * time.Second
	if diff := (tLong - want).Abs(); diff > 100*time.Millisecond {
		t.Errorf("long flow done at %v, want ~%v", tLong, want)
	}
}

func TestBottleneckAcrossResources(t *testing.T) {
	// Two flows from different servers (own 100MB/s ports) through a
	// shared 150MB/s backplane: each gets 75MB/s (backplane-bound).
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	portA := NewResource("portA", 100*MB)
	portB := NewResource("portB", 100*MB)
	backplane := NewResource("bp", 150*MB)
	var tA time.Duration
	s.Spawn("a", func(p *Proc) {
		net.Transfer(p, 75*MB, portA, backplane)
		tA = p.Now()
	})
	s.Spawn("b", func(p *Proc) {
		net.Transfer(p, 75*MB, portB, backplane)
	})
	s.Run()
	if diff := (tA - time.Second).Abs(); diff > 100*time.Millisecond {
		t.Errorf("backplane-bound flow done at %v, want ~1s", tA)
	}
}

// Max-min property: no resource exceeds capacity, and a flow's rate is
// limited by at least one saturated resource (otherwise it could take
// more — not max-min).
func TestMaxMinInvariants(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	rng := rand.New(rand.NewSource(99))
	var resources []*Resource
	for i := 0; i < 5; i++ {
		resources = append(resources, NewResource("r", float64(10+rng.Intn(100))*MB))
	}
	var flows []*Flow
	for i := 0; i < 20; i++ {
		// Random subset of resources.
		var rs []*Resource
		for _, r := range resources {
			if rng.Intn(2) == 0 {
				rs = append(rs, r)
			}
		}
		if len(rs) == 0 {
			rs = append(rs, resources[0])
		}
		flows = append(flows, net.Start(1e12, rs...)) // huge: stays active
	}
	// Check the allocation computed right now.
	usage := map[*Resource]float64{}
	for _, f := range flows {
		if f.rate < 0 {
			t.Fatal("unallocated flow")
		}
		for _, r := range f.resources {
			usage[r] += f.rate
		}
	}
	for _, r := range resources {
		if usage[r] > r.capacity*(1+1e-9) {
			t.Errorf("resource over capacity: %.2f > %.2f", usage[r], r.capacity)
		}
	}
	for _, f := range flows {
		bottlenecked := false
		for _, r := range f.resources {
			if usage[r] >= r.capacity*(1-1e-6) {
				bottlenecked = true
			}
		}
		if !bottlenecked {
			t.Errorf("flow with rate %.2f crosses no saturated resource", f.rate)
		}
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("l", MB)
	f := net.Start(0, link)
	if !f.Done().Fired() {
		t.Error("zero-byte flow did not complete")
	}
	f2 := net.Start(100)
	if !f2.Done().Fired() {
		t.Error("resource-free flow did not complete")
	}
}

func TestServedAccounting(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("l", 10*MB)
	s.Spawn("x", func(p *Proc) {
		net.Transfer(p, 25*MB, link)
	})
	s.Run()
	if math.Abs(link.Served()-25*MB) > 1 {
		t.Errorf("served = %.0f, want %d", link.Served(), 25*MB)
	}
}

func TestManyFlowsConvergeAndFinish(t *testing.T) {
	s := New()
	defer s.Shutdown()
	net := NewFlowNet(s)
	link := NewResource("l", 100*MB)
	finished := 0
	for i := 0; i < 50; i++ {
		size := float64((i + 1) * MB)
		s.Spawn("f", func(p *Proc) {
			net.Transfer(p, size, link)
			finished++
		})
	}
	s.Run()
	if finished != 50 {
		t.Errorf("finished = %d, want 50", finished)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("active flows remain: %d", net.ActiveFlows())
	}
	// Total = sum 1..50 MB = 1275 MB at 100MB/s -> 12.75s regardless of
	// interleaving (work conservation).
	want := 12750 * time.Millisecond
	if diff := (s.Now() - want).Abs(); diff > 200*time.Millisecond {
		t.Errorf("makespan = %v, want ~%v (work conservation)", s.Now(), want)
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	s := New()
	e := s.NewEvent()
	s.Spawn("stuck", func(p *Proc) {
		p.WaitEvent(e) // never fires
	})
	s.Run() // returns despite the stuck proc
	s.Shutdown()
	// Nothing to assert beyond "does not deadlock"; the goroutine
	// exits via the killed channel.
}
