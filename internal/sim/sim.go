// Package sim is a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, and cooperatively scheduled
// processes written as ordinary Go functions.
//
// The DSFS scalability experiments of the paper (Figures 6-8) measure
// hardware saturation on a 32-node cluster — disk throughput, NIC
// ports, and the switch backplane. Package cluster rebuilds that
// hardware as a model on top of this kernel, so an experiment that ran
// for minutes on the physical cluster completes in milliseconds of
// wall time, deterministically.
//
// Determinism comes from two rules: exactly one process executes at a
// time (the scheduler hands control to a process and waits for it to
// block or finish before touching the next event), and simultaneous
// events fire in schedule order. No wall-clock time or map iteration
// order influences execution.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Sim is one simulation universe.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    int64
	yield  chan struct{} // a running process signals it has blocked/finished
	killed chan struct{} // closed at Shutdown to release blocked processes
	// nprocs is atomic: Shutdown releases every parked process at
	// once, and their exit paths decrement it concurrently.
	nprocs atomic.Int64 // live process count (diagnostics)
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{
		yield:  make(chan struct{}),
		killed: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// event is one heap entry: either a process resumption or a callback.
type event struct {
	at       time.Duration
	seq      int64
	proc     *Proc  // non-nil: resume this process
	fn       func() // non-nil: run this callback inline
	canceled *bool  // timers: skip if set
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (s *Sim) schedule(e *event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
}

// Proc is a simulated process. Its function runs on a dedicated
// goroutine but only ever one at a time, under scheduler control.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.sim.now }

// Spawn creates a process that starts at the current virtual time.
func (s *Sim) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nprocs.Add(1)
	go func() {
		defer func() {
			s.nprocs.Add(-1)
			// Returning (or Goexit after kill) must hand control
			// back to the scheduler exactly once.
			select {
			case s.yield <- struct{}{}:
			case <-s.killed:
			}
		}()
		p.block()
		fn(p)
	}()
	s.schedule(&event{at: s.now, proc: p})
	return p
}

// block parks the calling process until the scheduler resumes it.
// If the simulation is shut down first, the goroutine exits.
func (p *Proc) block() {
	select {
	case <-p.resume:
	case <-p.sim.killed:
		runtime.Goexit()
	}
}

// yieldToScheduler hands control back to the scheduler.
func (p *Proc) yieldToScheduler() {
	select {
	case p.sim.yield <- struct{}{}:
	case <-p.sim.killed:
		runtime.Goexit()
	}
}

// Wait suspends the process for d of virtual time.
func (p *Proc) Wait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(&event{at: p.sim.now + d, proc: p})
	p.yieldToScheduler()
	p.block()
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// The returned Timer can be canceled.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	canceled := new(bool)
	s.schedule(&event{at: t, fn: fn, canceled: canceled})
	return &Timer{canceled: canceled}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Timer is a cancelable scheduled callback.
type Timer struct {
	canceled *bool
}

// Cancel prevents the callback from running if it has not yet fired.
func (t *Timer) Cancel() {
	if t != nil && t.canceled != nil {
		*t.canceled = true
	}
}

// Event is a broadcast signal processes can wait on.
type Event struct {
	sim     *Sim
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func (s *Sim) NewEvent() *Event { return &Event{sim: s} }

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire wakes every waiter at the current virtual time. Firing twice is
// a no-op.
func (e *Event) Fire() {
	if e.fired {
		return
	}
	e.fired = true
	for _, p := range e.waiters {
		e.sim.schedule(&event{at: e.sim.now, proc: p})
	}
	e.waiters = nil
}

// WaitEvent suspends the process until the event fires. It returns
// immediately if the event already fired.
func (p *Proc) WaitEvent(e *Event) {
	if e.fired {
		return
	}
	e.waiters = append(e.waiters, p)
	p.yieldToScheduler()
	p.block()
}

// step executes the earliest pending event. It reports false when the
// queue is empty or the earliest event lies beyond limit (limit < 0
// means no bound).
func (s *Sim) step(limit time.Duration) bool {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.canceled != nil && *e.canceled {
			heap.Pop(&s.events)
			continue
		}
		if limit >= 0 && e.at > limit {
			return false
		}
		heap.Pop(&s.events)
		if e.at > s.now {
			s.now = e.at
		}
		if e.fn != nil {
			e.fn()
			return true
		}
		// Hand control to the process; regain it when the process
		// blocks or finishes.
		e.proc.resume <- struct{}{}
		<-s.yield
		return true
	}
	return false
}

// Run executes events until none remain. Processes blocked on events
// that never fire do not stop Run from returning.
func (s *Sim) Run() {
	for s.step(-1) {
	}
}

// RunUntil executes all events at or before t, then advances the clock
// to exactly t.
func (s *Sim) RunUntil(t time.Duration) {
	for s.step(t) {
	}
	if t > s.now {
		s.now = t
	}
}

// Shutdown releases every parked process goroutine. The simulation
// must not be used afterwards.
func (s *Sim) Shutdown() {
	close(s.killed)
}

// Pending returns the number of queued events (diagnostics).
func (s *Sim) Pending() int { return len(s.events) }

// String describes the simulation state.
func (s *Sim) String() string {
	return fmt.Sprintf("sim(t=%v, events=%d, procs=%d)", s.now, len(s.events), s.nprocs.Load())
}
