package faultfs

import (
	"testing"

	"tss/internal/vfs"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return New(l)
}

func TestPassThroughWhenHealthy(t *testing.T) {
	f := newFS(t)
	if err := vfs.WriteFile(f, "/x", []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(f, "/x")
	if err != nil || string(data) != "ok" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if f.Ops() == 0 {
		t.Error("ops not counted")
	}
}

func TestSetDownAndRecover(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("ok"), 0o644)
	f.SetDown(true)
	if _, err := f.Stat("/x"); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("down stat = %v", err)
	}
	f.SetDown(false)
	if _, err := f.Stat("/x"); err != nil {
		t.Errorf("recovered stat = %v", err)
	}
}

func TestFailAfterBudget(t *testing.T) {
	f := newFS(t)
	f.FailAfter(3)
	var errs int
	for i := 0; i < 6; i++ {
		if _, err := f.StatFS(); err != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Errorf("errors = %d, want 3 (budget of 3 then permanent failure)", errs)
	}
}

func TestOpenFileSeveredByCrash(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("content"), 0o644)
	file, err := f.Open("/x", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f.SetDown(true)
	buf := make([]byte, 4)
	if _, err := file.Pread(buf, 0); vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Errorf("read through crashed fs = %v", err)
	}
}

func TestRandomFaultsAreDeterministic(t *testing.T) {
	run := func() []bool {
		f := newFS(t)
		f.FailRandomly(0.5, 99)
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := f.StatFS()
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule not deterministic at op %d", i)
		}
	}
}

func TestCustomError(t *testing.T) {
	f := newFS(t)
	f.SetError(vfs.EIO)
	f.SetDown(true)
	if _, err := f.Stat("/"); vfs.AsErrno(err) != vfs.EIO {
		t.Errorf("custom error = %v", err)
	}
}

// Every gated method injects; spot-check the full surface.
func TestAllMethodsGated(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("abc"), 0o644)
	f.Mkdir("/d", 0o755)
	file, err := f.Open("/x", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	f.SetDown(true)
	checks := map[string]error{
		"stat":    errOf(func() error { _, e := f.Stat("/x"); return e }),
		"unlink":  f.Unlink("/x"),
		"rename":  f.Rename("/x", "/y"),
		"mkdir":   f.Mkdir("/e", 0o755),
		"rmdir":   f.Rmdir("/d"),
		"readdir": errOf(func() error { _, e := f.ReadDir("/"); return e }),
		"trunc":   f.Truncate("/x", 1),
		"chmod":   f.Chmod("/x", 0o600),
		"statfs":  errOf(func() error { _, e := f.StatFS(); return e }),
		"open":    errOf(func() error { _, e := f.Open("/x", vfs.O_RDONLY, 0); return e }),
		"pwrite":  errOf(func() error { _, e := file.Pwrite([]byte("z"), 0); return e }),
		"fstat":   errOf(func() error { _, e := file.Fstat(); return e }),
		"ftrunc":  file.Ftruncate(1),
		"fsync":   file.Sync(),
	}
	for name, err := range checks {
		if vfs.AsErrno(err) != vfs.ENOTCONN {
			t.Errorf("%s while down = %v, want ENOTCONN", name, err)
		}
	}
	// Close still reaches the inner file even when down.
	if err := file.Close(); err != nil {
		t.Errorf("close while down = %v", err)
	}
	// Recovery restores everything.
	f.SetDown(false)
	if _, err := f.ReadDir("/"); err != nil {
		t.Errorf("readdir after recovery = %v", err)
	}
}

func errOf(fn func() error) error { return fn() }
