package faultfs

import (
	"bytes"
	"io"
	"testing"

	"tss/internal/vfs"
)

// newCorruptPair returns a faultfs over a LocalFS plus the inner
// LocalFS, so tests can compare the corrupted view with the truth.
func newCorruptPair(t *testing.T) (*FS, *vfs.LocalFS) {
	t.Helper()
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return New(l), l
}

// getterFS gives a LocalFS a bulk GetFile, so tests can reach the
// corruptingWriter path that normally only fires over a transport.
type getterFS struct{ *vfs.LocalFS }

func (g getterFS) GetFile(path string, w io.Writer) (int64, error) {
	f, err := g.Open(path, vfs.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	buf := make([]byte, 32<<10)
	var off int64
	for {
		n, err := f.Pread(buf, off)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return off, werr
			}
			off += int64(n)
		}
		if err != nil {
			return off, err
		}
		if n == 0 {
			return off, nil
		}
	}
}

func TestCorruptRandomlyDeterministic(t *testing.T) {
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := getterFS{l}
	f := New(inner)
	data := bytes.Repeat([]byte("stable payload "), 4096)
	if err := vfs.WriteFile(f, "/x", data, 0o644); err != nil {
		t.Fatal(err)
	}
	f.CorruptRandomly(1e-3, 7)

	first, err := vfs.ReadFile(f, "/x")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, data) {
		t.Fatal("corruption armed but payload unchanged")
	}
	if f.Flips() == 0 {
		t.Error("no flips counted")
	}
	// Same seed, same path, same offsets: every read sees the same rot.
	second, err := vfs.ReadFile(f, "/x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("corruption is not deterministic across reads")
	}
	// The bulk GetFile path must corrupt identically to open/pread.
	var bulk bytes.Buffer
	if g := vfs.Capabilities(f).FileGetter; g != nil {
		if _, err := g.GetFile("/x", &bulk); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bulk.Bytes(), first) {
			t.Error("GetFile and Pread disagree on the corrupted view")
		}
	} else {
		t.Fatal("faultfs over LocalFS should offer FileGetter")
	}
	// The bytes at rest are untouched: this is read-path rot.
	atRest, err := vfs.ReadFile(inner, "/x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(atRest, data) {
		t.Error("corruption modified the underlying file")
	}
}

func TestCorruptZeroProbability(t *testing.T) {
	f, _ := newCorruptPair(t)
	data := bytes.Repeat([]byte("clean "), 1000)
	vfs.WriteFile(f, "/x", data, 0o644)
	f.CorruptRandomly(0, 1)
	got, err := vfs.ReadFile(f, "/x")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("p=0 read corrupted or failed: %v", err)
	}
}

// TestCorruptChecksumLiesConsistently: the replica's own digest must
// describe the bytes it would serve — i.e. the corrupted view — so a
// cross-replica comparison catches it. A replica that digested its
// clean at-rest bytes would pass every audit while serving garbage.
func TestCorruptChecksumLiesConsistently(t *testing.T) {
	f, inner := newCorruptPair(t)
	data := bytes.Repeat([]byte("digest view "), 4096)
	vfs.WriteFile(f, "/x", data, 0o644)
	f.CorruptRandomly(1e-3, 3)

	corruptSum, err := vfs.ChecksumFile(f, "/x", vfs.AlgoSHA256)
	if err != nil {
		t.Fatal(err)
	}
	cleanSum, err := vfs.ChecksumFile(inner, "/x", vfs.AlgoSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if corruptSum == cleanSum {
		t.Fatal("corrupt replica digest matches clean digest")
	}
	// And the digest matches what a reader actually receives.
	served, err := vfs.HashFile(f, "/x", vfs.AlgoSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if served != corruptSum {
		t.Error("Checksum does not describe the served bytes")
	}
}

// TestCorruptRewriteClean: overwriting a corrupted path marks it clean
// — freshly written data is what a repaired replica holds, and it must
// read back intact or a scrub could never converge.
func TestCorruptRewriteClean(t *testing.T) {
	f, _ := newCorruptPair(t)
	data := bytes.Repeat([]byte("original "), 4096)
	vfs.WriteFile(f, "/x", data, 0o644)
	f.CorruptRandomly(1e-3, 9)
	if got, _ := vfs.ReadFile(f, "/x"); bytes.Equal(got, data) {
		t.Fatal("corruption did not take")
	}
	repaired := bytes.Repeat([]byte("repaired "), 4096)
	if err := vfs.PutReader(f, "/x", 0o644, int64(len(repaired)), bytes.NewReader(repaired)); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(f, "/x")
	if err != nil || !bytes.Equal(got, repaired) {
		t.Fatalf("rewritten file still corrupted (err=%v)", err)
	}
	// Untouched siblings stay corrupted.
	vfs.WriteFile(f, "/y", data, 0o644)
	f.CorruptRandomly(1e-3, 9)
	if got, _ := vfs.ReadFile(f, "/y"); bytes.Equal(got, data) {
		t.Fatal("re-arming did not reset clean set")
	}
}

func TestTornWrite(t *testing.T) {
	f, inner := newCorruptPair(t)
	f.TornWrite(10)
	data := []byte("0123456789abcdefghij")
	// The write reports full success — the loss is silent.
	if err := vfs.PutReader(f, "/torn", 0o644, int64(len(data)), bytes.NewReader(data)); err != nil {
		t.Fatalf("torn write surfaced an error: %v", err)
	}
	atRest, err := vfs.ReadFile(inner, "/torn")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(atRest, data[:10]) {
		t.Fatalf("at rest = %q, want first 10 bytes", atRest)
	}
}

func TestSilentTruncate(t *testing.T) {
	f, inner := newCorruptPair(t)
	data := []byte("0123456789abcdefghij")
	vfs.WriteFile(f, "/t", data, 0o644)
	f.SilentTruncate(5)

	fi, err := f.Stat("/t")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len(data))-5 {
		t.Errorf("stat size = %d, want %d", fi.Size, len(data)-5)
	}
	got, err := vfs.ReadFile(f, "/t")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:len(data)-5]) {
		t.Errorf("read = %q, want %q", got, data[:len(data)-5])
	}
	// Reads past the hidden tail hit EOF like a genuinely short file.
	file, err := f.Open("/t", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	buf := make([]byte, 8)
	if n, err := file.Pread(buf, int64(len(data))-5); n != 0 || err != nil {
		t.Errorf("pread past hidden tail = %d, %v, want 0, nil (end of file)", n, err)
	}
	// The file at rest is whole.
	if atRest, _ := vfs.ReadFile(inner, "/t"); !bytes.Equal(atRest, data) {
		t.Error("silent truncate modified the file at rest")
	}
}
