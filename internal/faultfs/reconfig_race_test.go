package faultfs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/vfs"
)

// TestRuntimeReconfigRace hammers every fault knob from one goroutine
// while others read and write through the filesystem — the shape of
// the chaos engine flipping faults mid-run. Run under -race; the test
// asserts nothing beyond "no data race, no panic, operations keep
// completing".
func TestRuntimeReconfigRace(t *testing.T) {
	f := newFS(t)
	if err := vfs.WriteFile(f, "/x", []byte("steady state bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.SetSleep(func(time.Duration) {}) // don't pay injected latency

	var clk stepClock
	f.SetClock(clk.now)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops atomic.Int64

	// Reconfigurer: flips every knob, including the windowed schedule.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			clk.set(i)
			f.CorruptRandomly(0.01, i)
			f.TornWrite(i % 3)
			f.SilentTruncate(i % 2)
			f.SetLatency(time.Duration(i%2) * time.Millisecond)
			f.SetLatencyJitter(time.Duration(i%3)*time.Millisecond, i)
			f.FailRandomly(0.1, i)
			f.FailNext(i % 2)
			f.SetDown(i%7 == 0)
			f.SetDown(false)
			f.CorruptDuring(Window{From: i, To: i + 2}, 0.02, i)
			f.TornDuring(Window{From: i, To: i + 1}, 2)
			f.DownDuring(Window{From: i + 100, To: i + 101})
			f.FlakyDuring(Window{From: i, To: i + 1}, 0.2, i)
			f.LatencyDuring(Window{From: i, To: i + 1}, time.Millisecond)
			if i%16 == 15 {
				f.ClearSchedule()
			}
		}
	}()

	// Workers: reads, writes, stats, checksums racing the flips.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch w % 4 {
				case 0:
					vfs.ReadFile(f, "/x")
				case 1:
					vfs.WriteFile(f, "/x", buf, 0o644)
				case 2:
					f.Stat("/x")
					f.Checksum("/x", "crc32c")
				case 3:
					if file, err := f.Open("/x", vfs.O_RDWR, 0o644); err == nil {
						file.Pread(buf, 0)
						file.Pwrite(buf[:8], 0)
						file.Close()
					}
				}
				ops.Add(1)
			}
		}(w)
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if ops.Load() == 0 {
		t.Fatal("workers made no progress")
	}
}
