package faultfs

import (
	"math/rand"
	"time"
)

// Scheduled (time-windowed) faults. The chaos engine drives every
// wrapped replica from one virtual step clock: faults arm and disarm
// themselves as the clock passes their window, with no goroutines and
// no wall-clock coupling, so a timeline replays identically from its
// seed. Windows layer on top of the static knobs (SetDown,
// CorruptRandomly, ...) — while a window is active it takes precedence
// for its fault class; outside it the static setting applies.

// Window is a half-open interval [From, To) of virtual steps. To <= 0
// means the window never closes.
type Window struct {
	From, To int64
}

// Contains reports whether the window covers step. A negative step
// (the value used when no clock is installed) is outside every window.
func (w Window) Contains(step int64) bool {
	return step >= 0 && step >= w.From && (w.To <= 0 || step < w.To)
}

type flakyWindow struct {
	win  Window
	prob float64
	rng  *rand.Rand
}

type latencyWindow struct {
	win Window
	d   time.Duration
}

type corruptWindow struct {
	win       Window
	threshold uint64
	seed      int64
}

type tornWindow struct {
	win Window
	n   int64
}

// SetClock installs the virtual step clock that activates scheduled
// windows. The clock is consulted with the filesystem's internal lock
// held, so it must be fast, non-blocking, and must not call back into
// this filesystem — an atomic counter read is the intended shape. A
// nil clock deactivates every window.
func (f *FS) SetClock(clock func() int64) {
	f.mu.Lock()
	f.clock = clock
	f.mu.Unlock()
}

// DownDuring schedules a full outage: while the clock is inside w,
// every operation fails with the configured error.
func (f *FS) DownDuring(w Window) {
	f.mu.Lock()
	f.downWins = append(f.downWins, w)
	f.mu.Unlock()
}

// FlakyDuring schedules probabilistic failures: while the clock is
// inside w, each operation fails with probability p, drawn from a
// dedicated stream seeded by seed.
func (f *FS) FlakyDuring(w Window, p float64, seed int64) {
	f.mu.Lock()
	f.flakyWins = append(f.flakyWins, &flakyWindow{win: w, prob: p, rng: rand.New(rand.NewSource(seed))})
	f.mu.Unlock()
}

// LatencyDuring schedules extra per-operation delay for the window, on
// top of any SetLatency baseline. Overlapping windows accumulate.
func (f *FS) LatencyDuring(w Window, d time.Duration) {
	f.mu.Lock()
	f.latWins = append(f.latWins, latencyWindow{win: w, d: d})
	f.mu.Unlock()
}

// CorruptDuring schedules read-path bit flips for the window, with the
// same (seed, path, offset) determinism as CorruptRandomly. Entering
// the window clears the clean set — everything at rest becomes suspect
// — while files written during the window (scrub repairs included)
// read back clean. Outside the window any static CorruptRandomly
// setting applies again.
func (f *FS) CorruptDuring(w Window, p float64, seed int64) {
	f.mu.Lock()
	f.corruptWins = append(f.corruptWins, corruptWindow{win: w, threshold: uint64(p * 1e9), seed: seed})
	f.mu.Unlock()
}

// TornDuring schedules torn writes for the window: while active, every
// Pwrite and PutFile silently drops its last n bytes but reports full
// success, overriding any static TornWrite setting.
func (f *FS) TornDuring(w Window, n int64) {
	f.mu.Lock()
	f.tornWins = append(f.tornWins, tornWindow{win: w, n: n})
	f.mu.Unlock()
}

// ClearSchedule removes every scheduled window. The clock stays
// installed.
func (f *FS) ClearSchedule() {
	f.mu.Lock()
	f.downWins, f.flakyWins, f.latWins = nil, nil, nil
	f.corruptWins, f.tornWins = nil, nil
	f.corruptWinIdx = -1
	f.mu.Unlock()
}

// stepLocked reads the virtual clock, or -1 when none is installed.
// Caller holds f.mu.
func (f *FS) stepLocked() int64 {
	if f.clock == nil {
		return -1
	}
	return f.clock()
}

// scheduledFailLocked reports whether a windowed availability fault
// claims this operation. Caller holds f.mu.
func (f *FS) scheduledFailLocked(step int64) bool {
	for _, w := range f.downWins {
		if w.Contains(step) {
			return true
		}
	}
	for _, fw := range f.flakyWins {
		if fw.win.Contains(step) && fw.rng.Float64() < fw.prob {
			return true
		}
	}
	return false
}

// scheduledLatencyLocked sums the windowed latency for this step.
// Caller holds f.mu.
func (f *FS) scheduledLatencyLocked(step int64) time.Duration {
	var d time.Duration
	for _, lw := range f.latWins {
		if lw.win.Contains(step) {
			d += lw.d
		}
	}
	return d
}

// corruptParamsLocked resolves the corruption parameters for this
// step: the first active window, or the static CorruptRandomly
// setting. Entering a window resets the clean set once. Caller holds
// f.mu.
func (f *FS) corruptParamsLocked(step int64) (threshold uint64, seed int64) {
	for i, cw := range f.corruptWins {
		if cw.win.Contains(step) {
			if i != f.corruptWinIdx {
				f.corruptWinIdx = i
				f.cleanPaths = make(map[string]bool)
			}
			return cw.threshold, cw.seed
		}
	}
	f.corruptWinIdx = -1
	return f.corruptThreshold, f.corruptSeed
}

// tornParamsLocked resolves the torn-write amount for this step.
// Caller holds f.mu.
func (f *FS) tornParamsLocked(step int64) int64 {
	for _, tw := range f.tornWins {
		if tw.win.Contains(step) {
			return tw.n
		}
	}
	return f.tornBytes
}
