package faultfs

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/vfs"
)

// stepClock is the intended clock shape: an atomic counter the test
// (or chaos engine) advances between phases.
type stepClock struct{ v atomic.Int64 }

func (c *stepClock) now() int64  { return c.v.Load() }
func (c *stepClock) set(n int64) { c.v.Store(n) }

func TestDownDuringWindow(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("ok"), 0o644)
	var clk stepClock
	f.SetClock(clk.now)
	f.DownDuring(Window{From: 2, To: 4})

	for step, wantDown := range map[int64]bool{0: false, 2: true, 3: true, 4: false, 9: false} {
		clk.set(step)
		_, err := f.Stat("/x")
		if gotDown := err != nil; gotDown != wantDown {
			t.Errorf("step %d: stat err = %v, want down=%v", step, err, wantDown)
		}
	}
}

func TestFlakyDuringWindow(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("ok"), 0o644)
	var clk stepClock
	f.SetClock(clk.now)
	f.FlakyDuring(Window{From: 1, To: 2}, 1.0, 7) // p=1: every op in window fails

	if _, err := f.Stat("/x"); err != nil {
		t.Errorf("step 0 stat = %v, want ok", err)
	}
	clk.set(1)
	if _, err := f.Stat("/x"); err == nil {
		t.Error("step 1 stat succeeded inside p=1 flaky window")
	}
	clk.set(2)
	if _, err := f.Stat("/x"); err != nil {
		t.Errorf("step 2 stat = %v, want ok", err)
	}
}

func TestLatencyDuringWindow(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("ok"), 0o644)
	var slept atomic.Int64
	f.SetSleep(func(d time.Duration) { slept.Add(int64(d)) })
	var clk stepClock
	f.SetClock(clk.now)
	f.LatencyDuring(Window{From: 1, To: 2}, 25*time.Millisecond)

	f.Stat("/x")
	if got := slept.Load(); got != 0 {
		t.Errorf("latency outside window: %v", time.Duration(got))
	}
	clk.set(1)
	f.Stat("/x")
	if got := time.Duration(slept.Load()); got != 25*time.Millisecond {
		t.Errorf("latency inside window = %v, want 25ms", got)
	}
}

func TestCorruptDuringWindow(t *testing.T) {
	f := newFS(t)
	payload := bytes.Repeat([]byte("tactical storage "), 64)
	vfs.WriteFile(f, "/x", payload, 0o644)
	var clk stepClock
	f.SetClock(clk.now)
	f.CorruptDuring(Window{From: 5, To: 10}, 0.05, 42)

	// Before the window: clean.
	if data, _ := vfs.ReadFile(f, "/x"); !bytes.Equal(data, payload) {
		t.Fatal("corrupt before window opened")
	}
	// Inside: data at rest reads corrupt, deterministically.
	clk.set(5)
	c1, _ := vfs.ReadFile(f, "/x")
	if bytes.Equal(c1, payload) {
		t.Fatal("window active but read came back clean")
	}
	c2, _ := vfs.ReadFile(f, "/x")
	if !bytes.Equal(c1, c2) {
		t.Error("windowed corruption not stable across reads")
	}
	// A file written during the window reads back clean (repairs land).
	vfs.WriteFile(f, "/y", payload, 0o644)
	if data, _ := vfs.ReadFile(f, "/y"); !bytes.Equal(data, payload) {
		t.Error("file written during window did not read back clean")
	}
	// After the window closes: clean again (no static corruption armed).
	clk.set(10)
	if data, _ := vfs.ReadFile(f, "/x"); !bytes.Equal(data, payload) {
		t.Error("corruption persisted past window close")
	}
	if f.Flips() == 0 {
		t.Error("no flips recorded")
	}
}

func TestTornDuringWindow(t *testing.T) {
	f := newFS(t)
	var clk stepClock
	f.SetClock(clk.now)
	f.TornDuring(Window{From: 1, To: 2}, 4)

	if err := vfs.WriteFile(f, "/a", []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fi, _ := f.Stat("/a"); fi.Size != 8 {
		t.Errorf("outside window: size = %d, want 8", fi.Size)
	}
	clk.set(1)
	if err := vfs.WriteFile(f, "/b", []byte("12345678"), 0o644); err != nil {
		t.Fatal(err) // torn writes report success
	}
	if fi, _ := f.Stat("/b"); fi.Size != 4 {
		t.Errorf("inside window: size = %d, want 4 (torn)", fi.Size)
	}
}

func TestClearSchedule(t *testing.T) {
	f := newFS(t)
	vfs.WriteFile(f, "/x", []byte("ok"), 0o644)
	var clk stepClock
	f.SetClock(clk.now)
	f.DownDuring(Window{From: 0}) // open-ended outage
	if _, err := f.Stat("/x"); err == nil {
		t.Fatal("open-ended window not active")
	}
	f.ClearSchedule()
	if _, err := f.Stat("/x"); err != nil {
		t.Errorf("stat after ClearSchedule = %v", err)
	}
}
