package faultfs

import (
	"io"

	"tss/internal/vfs"
)

// Data-integrity faults. Unlike the availability faults in faultfs.go
// (which make operations fail loudly), these make operations SUCCEED
// with wrong data — the silent corruption that checksums, verify-on-read
// and scrub exist to catch:
//
//   - CorruptRandomly: bit flips on the read path, deterministic at
//     rest — the same byte of the same file is always corrupted the
//     same way, like a bad sector. A replica wrapped this way "lies
//     consistently": its Checksum reflects its corrupted view, so
//     cross-replica digest comparison detects the divergence.
//   - TornWrite: the tail of every write is silently dropped — the
//     partial write of a crashed or lying server.
//   - SilentTruncate: every file reads as if it were shorter than it
//     is — metadata loss that per-transfer digests alone cannot pin on
//     a specific replica, but cross-replica comparison can.

// CorruptRandomly arms read-path bit flips: each byte read flips one
// bit with probability p, decided purely by (seed, path, offset) so
// the corruption is deterministic and stable across reads. Arming
// (or re-arming) clears the clean set: everything at rest becomes
// suspect, while any file written afterwards — including a scrub
// repair — reads back clean. p = 0 disarms.
func (f *FS) CorruptRandomly(p float64, seed int64) {
	f.mu.Lock()
	f.corruptThreshold = uint64(p * 1e9)
	f.corruptSeed = seed
	f.cleanPaths = make(map[string]bool)
	f.mu.Unlock()
}

// TornWrite arms silent short writes: every Pwrite and PutFile drops
// its last n bytes but reports full success. n = 0 disarms.
func (f *FS) TornWrite(n int64) {
	f.mu.Lock()
	f.tornBytes = n
	f.mu.Unlock()
}

// SilentTruncate makes every file read as n bytes shorter than it is:
// Stat and Fstat under-report the size and reads stop early. n = 0
// disarms.
func (f *FS) SilentTruncate(n int64) {
	f.mu.Lock()
	f.truncBytes = n
	f.mu.Unlock()
}

// Flips returns the number of bits flipped by CorruptRandomly so far —
// the experiment's proof that corruption actually happened.
func (f *FS) Flips() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flips
}

// Checksum hashes the file exactly as this filesystem serves it —
// through any armed corruption or truncation (vfs.Checksummer). This
// is deliberate: a corrupt replica must vouch for its own wrong bytes,
// so that digest comparison across replicas exposes it. The underlying
// read path applies the usual fault gate.
func (f *FS) Checksum(path, algo string) (string, error) {
	return vfs.HashFile(f, path, algo)
}

// FNV-1a with a splitmix-style finalizer: cheap, stateless, and good
// enough to spread single-bit offset changes across the whole word.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashPath(seed int64, path string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h = (h ^ (uint64(seed) >> (8 * i) & 0xff)) * fnvPrime
	}
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * fnvPrime
	}
	return h
}

func byteHash(pathHash uint64, off int64) uint64 {
	h := pathHash
	for i := 0; i < 8; i++ {
		h = (h ^ (uint64(off) >> (8 * i) & 0xff)) * fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// corruptionFor returns the corruption parameters for one path, or
// (0, 0) when the path reads clean.
func (f *FS) corruptionFor(path string) (pathHash, threshold uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	th, seed := f.corruptParamsLocked(f.stepLocked())
	if th == 0 || f.cleanPaths[path] {
		return 0, 0
	}
	return hashPath(seed, path), th
}

// corruptSpan flips bits in buf, which holds file bytes starting at
// off, and returns how many were flipped.
func corruptSpan(pathHash, threshold uint64, buf []byte, off int64) int64 {
	var flipped int64
	for i := range buf {
		h := byteHash(pathHash, off+int64(i))
		if h%1_000_000_000 < threshold {
			buf[i] ^= 1 << ((h >> 32) % 8)
			flipped++
		}
	}
	return flipped
}

// corruptInPlace applies the armed corruption to a freshly read span.
func (f *FS) corruptInPlace(path string, buf []byte, off int64) {
	ph, th := f.corruptionFor(path)
	if th == 0 {
		return
	}
	n := corruptSpan(ph, th, buf, off)
	if n > 0 {
		f.mu.Lock()
		f.flips += n
		f.mu.Unlock()
	}
}

// markClean records that path now holds freshly written bytes, which
// read back uncorrupted (the bad-sector model: new writes relocate).
func (f *FS) markClean(path string) {
	f.mu.Lock()
	if f.cleanPaths != nil {
		f.cleanPaths[path] = true
	}
	f.mu.Unlock()
}

func (f *FS) tornAmount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tornParamsLocked(f.stepLocked())
}

func (f *FS) truncAmount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.truncBytes
}

// hideTail applies SilentTruncate to a FileInfo.
func (f *FS) hideTail(fi vfs.FileInfo) vfs.FileInfo {
	if t := f.truncAmount(); t > 0 && !fi.IsDir {
		fi.Size -= t
		if fi.Size < 0 {
			fi.Size = 0
		}
	}
	return fi
}

// corruptingWriter rewrites a GetFile stream through the corruption
// schedule. Bytes are copied before flipping — the inner transport owns
// (and reuses) the buffers it hands to Write.
type corruptingWriter struct {
	f        *FS
	w        io.Writer
	path     string
	off      int64
	pathHash uint64
	thresh   uint64
	scratch  []byte
}

func (cw *corruptingWriter) Write(p []byte) (int, error) {
	if cw.thresh == 0 {
		n, err := cw.w.Write(p)
		cw.off += int64(n)
		return n, err
	}
	if cap(cw.scratch) < len(p) {
		cw.scratch = make([]byte, len(p))
	}
	buf := cw.scratch[:len(p)]
	copy(buf, p)
	flipped := corruptSpan(cw.pathHash, cw.thresh, buf, cw.off)
	if flipped > 0 {
		cw.f.mu.Lock()
		cw.f.flips += flipped
		cw.f.mu.Unlock()
	}
	n, err := cw.w.Write(buf)
	cw.off += int64(n)
	return n, err
}

// limitWriter forwards at most n bytes and silently discards the rest —
// the reader's view of a silently truncated file.
type limitWriter struct {
	w       io.Writer
	n       int64
	written int64
}

func (lw *limitWriter) Write(p []byte) (int, error) {
	take := int64(len(p))
	if take > lw.n {
		take = lw.n
	}
	if take > 0 {
		n, err := lw.w.Write(p[:take])
		lw.n -= int64(n)
		lw.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}
