// Package faultfs wraps any vfs.FileSystem with deterministic fault
// injection, for testing the failure coherence that §3 demands of
// every TSS component: servers that vanish mid-operation, probabilistic
// transport errors, and operation budgets that expire at the worst
// moment.
package faultfs

import (
	"io"
	"math/rand"
	"sync"
	"time"

	"tss/internal/vfs"
)

// FS wraps an inner filesystem and injects faults according to its
// configuration. All methods are safe for concurrent use.
type FS struct {
	inner vfs.FileSystem

	mu        sync.Mutex
	down      bool
	failAfter int64 // remaining ops before permanent failure; <0 = never
	flakyLeft int64 // remaining ops of the current flaky window
	rng       *rand.Rand
	failProb  float64
	err       error
	opCount   int64
	callCount int64
	latency   time.Duration
	latJitter time.Duration
	latRng    *rand.Rand
	sleep     func(time.Duration)

	// Integrity faults (see corrupt.go).
	corruptThreshold uint64 // per-byte flip threshold out of 1e9; 0 = off
	corruptSeed      int64
	cleanPaths       map[string]bool // written since corruption was armed
	tornBytes        int64           // tail bytes silently dropped per write
	truncBytes       int64           // tail bytes silently hidden per file
	flips            int64

	// Scheduled, clock-driven faults (see schedule.go).
	clock         func() int64
	downWins      []Window
	flakyWins     []*flakyWindow
	latWins       []latencyWindow
	corruptWins   []corruptWindow
	tornWins      []tornWindow
	corruptWinIdx int // corrupt window last seen active; -1 = none
}

var (
	_ vfs.FileSystem  = (*FS)(nil)
	_ vfs.Capabler    = (*FS)(nil)
	_ vfs.Checksummer = (*FS)(nil)
)

// New wraps inner with no faults armed.
func New(inner vfs.FileSystem) *FS {
	return &FS{inner: inner, failAfter: -1, err: vfs.ENOTCONN, sleep: time.Sleep, corruptWinIdx: -1}
}

// SetDown makes every operation fail (true) or restores service
// (false) — a server crash and restart.
func (f *FS) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// FailAfter arranges for the filesystem to go down permanently after n
// more operations succeed — the mid-sequence crash.
func (f *FS) FailAfter(n int64) {
	f.mu.Lock()
	f.failAfter = n
	f.mu.Unlock()
}

// FailNext arranges a "flaky window": the next n operations fail, then
// service recovers on its own — the transient brown-out that drives a
// circuit breaker open and lets half-open probes re-admit the backend
// without any test choreography around SetDown.
func (f *FS) FailNext(n int64) {
	f.mu.Lock()
	f.flakyLeft = n
	f.mu.Unlock()
}

// FailRandomly makes each operation fail with probability p, using a
// deterministic seed.
func (f *FS) FailRandomly(p float64, seed int64) {
	f.mu.Lock()
	f.failProb = p
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// SetLatency delays every operation (including failing ones: a dead
// server charges its timeout) by d. Breaker and hedging tests use this
// to put a deterministic price on touching a given backend without
// shaping a real network path.
func (f *FS) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// SetLatencyJitter adds up to j of extra, deterministically seeded
// delay per operation on top of SetLatency.
func (f *FS) SetLatencyJitter(j time.Duration, seed int64) {
	f.mu.Lock()
	f.latJitter = j
	f.latRng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// SetSleep replaces the sleep function used for latency injection
// (tests that count delays rather than pay them).
func (f *FS) SetSleep(sleep func(time.Duration)) {
	f.mu.Lock()
	if sleep == nil {
		sleep = time.Sleep
	}
	f.sleep = sleep
	f.mu.Unlock()
}

// SetError selects the error injected (default ENOTCONN).
func (f *FS) SetError(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// Ops returns the number of operations that have reached the inner
// filesystem.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

// Calls returns the number of operations attempted against this
// filesystem, whether or not a fault swallowed them. Breaker tests use
// it to assert that an open circuit stops traffic from even arriving.
func (f *FS) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.callCount
}

// gate decides whether this operation fails, charging any configured
// latency either way. The sleep happens outside the lock so concurrent
// operations (hedged reads racing two replicas) do not serialize.
func (f *FS) gate() error {
	f.mu.Lock()
	f.callCount++
	step := f.stepLocked()
	delay := f.latency + f.scheduledLatencyLocked(step)
	if f.latJitter > 0 && f.latRng != nil {
		delay += time.Duration(f.latRng.Int63n(int64(f.latJitter)))
	}
	sleep := f.sleep
	err := f.decideLocked(step)
	f.mu.Unlock()
	if delay > 0 {
		sleep(delay)
	}
	return err
}

// decideLocked applies the fault schedule. Caller holds f.mu.
func (f *FS) decideLocked(step int64) error {
	if f.down {
		return f.err
	}
	if f.scheduledFailLocked(step) {
		return f.err
	}
	if f.flakyLeft > 0 {
		f.flakyLeft--
		return f.err
	}
	if f.failAfter == 0 {
		f.down = true
		return f.err
	}
	if f.failAfter > 0 {
		f.failAfter--
	}
	if f.rng != nil && f.rng.Float64() < f.failProb {
		return f.err
	}
	f.opCount++
	return nil
}

// Open injects faults, then delegates. Files from a wrapped filesystem
// also gate each I/O call, so a crash severs open handles too.
func (f *FS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	if flags&vfs.O_TRUNC != 0 {
		f.markClean(path)
	}
	return &faultFile{fs: f, inner: file, path: path}, nil
}

// Stat injects faults, then delegates; SilentTruncate hides the tail.
func (f *FS) Stat(path string) (vfs.FileInfo, error) {
	if err := f.gate(); err != nil {
		return vfs.FileInfo{}, err
	}
	fi, err := f.inner.Stat(path)
	if err != nil {
		return fi, err
	}
	return f.hideTail(fi), nil
}

// Unlink injects faults, then delegates.
func (f *FS) Unlink(path string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Unlink(path)
}

// Rename injects faults, then delegates.
func (f *FS) Rename(oldPath, newPath string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Mkdir injects faults, then delegates.
func (f *FS) Mkdir(path string, mode uint32) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Mkdir(path, mode)
}

// Rmdir injects faults, then delegates.
func (f *FS) Rmdir(path string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Rmdir(path)
}

// ReadDir injects faults, then delegates.
func (f *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

// Truncate injects faults, then delegates. The rewritten file reads
// back clean of any armed corruption.
func (f *FS) Truncate(path string, size int64) error {
	if err := f.gate(); err != nil {
		return err
	}
	err := f.inner.Truncate(path, size)
	if err == nil {
		f.markClean(path)
	}
	return err
}

// Chmod injects faults, then delegates.
func (f *FS) Chmod(path string, mode uint32) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Chmod(path, mode)
}

// StatFS injects faults, then delegates.
func (f *FS) StatFS() (vfs.FSInfo, error) {
	if err := f.gate(); err != nil {
		return vfs.FSInfo{}, err
	}
	return f.inner.StatFS()
}

// Capabilities forwards the inner filesystem's optional fast paths,
// each behind the same fault gate as a regular operation: a layer that
// probes vfs.Capabilities sees exactly the capabilities — and the
// failures — of the wrapped backend. Absent inner capabilities stay
// absent. Close is forwarded ungated, matching faultFile.Close:
// resources are released even on a "down" server.
func (f *FS) Capabilities() vfs.Capability {
	inner := vfs.Capabilities(f.inner)
	var c vfs.Capability
	if inner.OpenStater != nil {
		c.OpenStater = &faultOpenStater{fs: f, inner: inner.OpenStater}
	}
	if inner.FileGetter != nil {
		c.FileGetter = &faultFileGetter{fs: f, inner: inner.FileGetter}
	}
	if inner.FilePutter != nil {
		c.FilePutter = &faultFilePutter{fs: f, inner: inner.FilePutter}
	}
	if inner.PartGetter != nil {
		c.PartGetter = &faultPartGetter{fs: f, inner: inner.PartGetter}
	}
	if inner.PartPutter != nil {
		c.PartPutter = &faultPartPutter{fs: f, inner: inner.PartPutter}
	}
	if inner.Leaser != nil {
		c.Leaser = &faultLeaser{fs: f, inner: inner.Leaser}
	}
	if inner.Reconnector != nil {
		c.Reconnector = &faultReconnector{fs: f, inner: inner.Reconnector}
	}
	// The checksummer is always this layer's own (corrupt.go): a digest
	// must describe the bytes this replica would actually serve, so it
	// is computed through the corrupted read view, never delegated to
	// the pristine inner filesystem.
	c.Checksummer = f
	c.Closer = inner.Closer
	return c
}

type faultOpenStater struct {
	fs    *FS
	inner vfs.OpenStater
}

func (o *faultOpenStater) OpenStat(path string, flags int, mode uint32) (vfs.File, vfs.FileInfo, error) {
	if err := o.fs.gate(); err != nil {
		return nil, vfs.FileInfo{}, err
	}
	file, fi, err := o.inner.OpenStat(path, flags, mode)
	if err != nil {
		return nil, fi, err
	}
	if flags&vfs.O_TRUNC != 0 {
		o.fs.markClean(path)
	}
	return &faultFile{fs: o.fs, inner: file, path: path}, o.fs.hideTail(fi), nil
}

type faultFileGetter struct {
	fs    *FS
	inner vfs.FileGetter
}

func (g *faultFileGetter) GetFile(path string, w io.Writer) (int64, error) {
	if err := g.fs.gate(); err != nil {
		return 0, err
	}
	ph, th := g.fs.corruptionFor(path)
	cw := &corruptingWriter{f: g.fs, w: w, path: path, pathHash: ph, thresh: th}
	if t := g.fs.truncAmount(); t > 0 {
		fi, err := g.fs.inner.Stat(path)
		if err != nil {
			return 0, err
		}
		lim := fi.Size - t
		if lim < 0 {
			lim = 0
		}
		lw := &limitWriter{w: cw, n: lim}
		if _, err := g.inner.GetFile(path, lw); err != nil {
			return lw.written, err
		}
		return lw.written, nil
	}
	return g.inner.GetFile(path, cw)
}

type faultFilePutter struct {
	fs    *FS
	inner vfs.FilePutter
}

func (p *faultFilePutter) PutFile(path string, mode uint32, size int64, r io.Reader) error {
	if err := p.fs.gate(); err != nil {
		return err
	}
	if torn := p.fs.tornAmount(); torn > 0 {
		keep := size - torn
		if keep < 0 {
			keep = 0
		}
		err := p.inner.PutFile(path, mode, keep, io.LimitReader(r, keep))
		if err != nil {
			return err
		}
		// Drain what the caller believes was stored; report full success.
		io.Copy(io.Discard, io.LimitReader(r, size-keep))
		p.fs.markClean(path)
		return nil
	}
	err := p.inner.PutFile(path, mode, size, r)
	if err == nil {
		p.fs.markClean(path)
	}
	return err
}

type faultLeaser struct {
	fs    *FS
	inner vfs.Leaser
}

func (l *faultLeaser) Lease(path string) (vfs.Lease, error) {
	if err := l.fs.gate(); err != nil {
		return vfs.Lease{}, err
	}
	return l.inner.Lease(path)
}

func (l *faultLeaser) LeaseBreak(id int64) error {
	if err := l.fs.gate(); err != nil {
		return err
	}
	return l.inner.LeaseBreak(id)
}

type faultPartGetter struct {
	fs    *FS
	inner vfs.PartGetter
}

func (g *faultPartGetter) GetPart(path string, off, length int64, algo string, w io.Writer) (int64, string, error) {
	if err := g.fs.gate(); err != nil {
		return 0, "", err
	}
	// Corruption flips bits by absolute file offset, so a corrupted chunk
	// reads the same wrong bytes on every retry — a bad sector, not noise.
	ph, th := g.fs.corruptionFor(path)
	cw := &corruptingWriter{f: g.fs, w: w, path: path, off: off, pathHash: ph, thresh: th}
	return g.inner.GetPart(path, off, length, algo, cw)
}

type faultPartPutter struct {
	fs    *FS
	inner vfs.PartPutter
}

func (p *faultPartPutter) PutBegin(path string, mode uint32, size int64) error {
	if err := p.fs.gate(); err != nil {
		return err
	}
	err := p.inner.PutBegin(path, mode, size)
	if err == nil {
		p.fs.markClean(path)
	}
	return err
}

// PutPart tears the tail off a chunk when a torn-write fault is armed:
// the inner layer streams (and digests) only the kept prefix, so the
// per-chunk trailer verifies and the tear stays silent until the
// composed whole-file digest at putcomplete — exactly the failure the
// completion check exists to catch (the pre-sized file keeps a zero
// hole where the tail should have been).
func (p *faultPartPutter) PutPart(path string, off, length int64, algo string, r io.Reader) (string, error) {
	if err := p.fs.gate(); err != nil {
		return "", err
	}
	if torn := p.fs.tornAmount(); torn > 0 {
		keep := length - torn
		if keep < 0 {
			keep = 0
		}
		sum, err := p.inner.PutPart(path, off, keep, algo, io.LimitReader(r, keep))
		if err != nil {
			return "", err
		}
		// Drain what the caller believes was stored; report full success.
		io.Copy(io.Discard, io.LimitReader(r, length-keep))
		return sum, nil
	}
	return p.inner.PutPart(path, off, length, algo, r)
}

func (p *faultPartPutter) PutComplete(path string, size int64, algo, sum string) error {
	if err := p.fs.gate(); err != nil {
		return err
	}
	return p.inner.PutComplete(path, size, algo, sum)
}

type faultReconnector struct {
	fs    *FS
	inner vfs.Reconnector
}

func (r *faultReconnector) Reconnect() error {
	if err := r.fs.gate(); err != nil {
		return err
	}
	return r.inner.Reconnect()
}

type faultFile struct {
	fs    *FS
	inner vfs.File
	path  string
}

func (ff *faultFile) Pread(p []byte, off int64) (int, error) {
	if err := ff.fs.gate(); err != nil {
		return 0, err
	}
	if t := ff.fs.truncAmount(); t > 0 {
		fi, err := ff.inner.Fstat()
		if err != nil {
			return 0, err
		}
		lim := fi.Size - t
		if off >= lim {
			return 0, nil // end of the visible file (vfs.File contract)
		}
		if off+int64(len(p)) > lim {
			p = p[:lim-off]
		}
	}
	n, err := ff.inner.Pread(p, off)
	if n > 0 {
		ff.fs.corruptInPlace(ff.path, p[:n], off)
	}
	return n, err
}

func (ff *faultFile) Pwrite(p []byte, off int64) (int, error) {
	if err := ff.fs.gate(); err != nil {
		return 0, err
	}
	if torn := ff.fs.tornAmount(); torn > 0 {
		keep := int64(len(p)) - torn
		if keep < 0 {
			keep = 0
		}
		if _, err := ff.inner.Pwrite(p[:keep], off); err != nil {
			return 0, err
		}
		ff.fs.markClean(ff.path)
		// The tail vanished, but the writer is told it all landed.
		return len(p), nil
	}
	n, err := ff.inner.Pwrite(p, off)
	if err == nil {
		ff.fs.markClean(ff.path)
	}
	return n, err
}

func (ff *faultFile) Fstat() (vfs.FileInfo, error) {
	if err := ff.fs.gate(); err != nil {
		return vfs.FileInfo{}, err
	}
	fi, err := ff.inner.Fstat()
	if err != nil {
		return fi, err
	}
	return ff.fs.hideTail(fi), nil
}

func (ff *faultFile) Ftruncate(size int64) error {
	if err := ff.fs.gate(); err != nil {
		return err
	}
	err := ff.inner.Ftruncate(size)
	if err == nil {
		ff.fs.markClean(ff.path)
	}
	return err
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.gate(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close always reaches the inner file: resources are released even
	// on a "down" server (the kernel closes descriptors of dead
	// connections too).
	return ff.inner.Close()
}
