package adapter

import (
	"runtime"
	"sync"
)

// TrapEmulator charges file operations the cost of ptrace-style
// system call interposition, so Figure 3 can be reproduced honestly.
//
// Under Parrot, every system call of the traced application stops the
// process, switches to the adapter process, runs the replacement
// implementation, copies data between address spaces, and switches
// back. A library-level adapter pays none of that, so this emulator
// re-introduces the two costs that dominate:
//
//   - scheduling: each Trap performs a synchronous round trip to a
//     dedicated service goroutine over unbuffered channels — two real
//     context switches through the scheduler, the analog of the
//     debugger stop/resume pair;
//   - the extra data copy: the service goroutine copies n bytes
//     through an intermediate buffer, the analog of moving I/O data
//     through the adapter's address space.
type TrapEmulator struct {
	req  chan int
	done chan struct{}

	mu  sync.Mutex
	buf []byte

	src []byte // source data for the emulated copy
}

// NewTrapEmulator starts the service goroutine.
func NewTrapEmulator() *TrapEmulator {
	t := &TrapEmulator{
		req:  make(chan int), // unbuffered: forces a handoff
		done: make(chan struct{}),
		src:  make([]byte, 64<<10),
	}
	go t.serve()
	return t
}

func (t *TrapEmulator) serve() {
	// Pin the service to its own OS thread: each handoff then costs a
	// genuine thread context switch, like the tracer/tracee switch
	// under ptrace, rather than a cheap same-thread goroutine swap.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for n := range t.req {
		if n > 0 {
			t.mu.Lock()
			if cap(t.buf) < n {
				t.buf = make([]byte, n)
			}
			b := t.buf[:n]
			for off := 0; off < n; off += len(t.src) {
				c := n - off
				if c > len(t.src) {
					c = len(t.src)
				}
				copy(b[off:off+c], t.src[:c])
			}
			t.mu.Unlock()
		}
		t.done <- struct{}{}
	}
}

// Trap charges one interposed call that moves n bytes of data. Under
// ptrace a system call stops the tracee twice — at entry and at exit —
// so two full round trips to the service thread are charged; the data
// copy is charged once, with the entry stop.
func (t *TrapEmulator) Trap(n int) {
	t.req <- n // entry stop, with data copy
	<-t.done
	t.req <- 0 // exit stop
	<-t.done
}

// Close stops the service goroutine.
func (t *TrapEmulator) Close() {
	close(t.req)
}
