package adapter

import (
	"sync/atomic"
	"testing"
	"time"

	"tss/internal/obs"
	"tss/internal/vfs"
)

// shedFS fails the next N Stat calls with EAGAIN and counts Reconnect
// attempts, modeling a server that is shedding load while its
// transport stays perfectly healthy.
type shedFS struct {
	vfs.FileSystem
	fails      atomic.Int32
	reconnects atomic.Int32
}

func (s *shedFS) Stat(path string) (vfs.FileInfo, error) {
	if s.fails.Add(-1) >= 0 {
		return vfs.FileInfo{}, vfs.EAGAIN
	}
	return s.FileSystem.Stat(path)
}

func (s *shedFS) Reconnect() error {
	s.reconnects.Add(1)
	return nil
}

// EAGAIN is pushback, not a dead connection: the adapter must back
// off and retry in place, never reconnect (dialing at a shedding
// server only adds load).
func TestPushbackRetriedWithoutReconnect(t *testing.T) {
	fs := &shedFS{FileSystem: localFS(t)}
	var sleeps atomic.Int32
	a := New(Config{MaxRetries: 5, Sleep: func(time.Duration) { sleeps.Add(1) }})
	if err := a.MountFS("/srv", fs); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.fails.Store(2)
	if _, err := a.Stat("/srv/f"); err != nil {
		t.Fatalf("stat through pushback = %v, want success after retries", err)
	}
	if got := sleeps.Load(); got != 2 {
		t.Errorf("slept %d times, want 2 (one backoff per shed reply)", got)
	}
	if got := fs.reconnects.Load(); got != 0 {
		t.Errorf("pushback provoked %d reconnects, want 0", got)
	}
	if got := a.Stats.Reconnects.Load(); got != 0 {
		t.Errorf("Stats.Reconnects = %d, want 0", got)
	}
}

// When retries run out with the server still shedding, EAGAIN itself
// surfaces — mapping it to ETIMEDOUT would hide the overload signal
// from callers (DESIGN.md §6).
func TestPushbackExhaustionSurfacesEAGAIN(t *testing.T) {
	fs := &shedFS{FileSystem: localFS(t)}
	a := New(Config{MaxRetries: 3, Sleep: noSleep})
	if err := a.MountFS("/srv", fs); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.fails.Store(100)
	if _, err := a.Stat("/srv/f"); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Fatalf("exhausted pushback = %v, want EAGAIN", err)
	}
	if got := a.Stats.GaveUp.Load(); got != 1 {
		t.Errorf("Stats.GaveUp = %d, want 1", got)
	}
}

// The retry budget caps aggregate retry volume below MaxRetries: once
// the bucket is empty the loop stops immediately and the exhaustion
// is counted in stats and the resilient.budget_exhausted metric.
func TestRetryBudgetBoundsRetryVolume(t *testing.T) {
	fs := &shedFS{FileSystem: localFS(t)}
	reg := obs.NewRegistry()
	var sleeps atomic.Int32
	a := New(Config{
		MaxRetries:  8,
		RetryTokens: 2,
		Sleep:       func(time.Duration) { sleeps.Add(1) },
		Metrics:     reg,
	})
	if err := a.MountFS("/srv", fs); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.fails.Store(100)
	if _, err := a.Stat("/srv/f"); vfs.AsErrno(err) != vfs.EAGAIN {
		t.Fatalf("budget-capped pushback = %v, want EAGAIN", err)
	}
	if got := sleeps.Load(); got != 2 {
		t.Errorf("slept %d times, want 2 (budget of 2 tokens)", got)
	}
	if got := a.Stats.BudgetExhausted.Load(); got != 1 {
		t.Errorf("Stats.BudgetExhausted = %d, want 1", got)
	}
	if got := reg.Counter("resilient.budget_exhausted").Value(); got != 1 {
		t.Errorf("resilient.budget_exhausted = %d, want 1", got)
	}
	// Successes refill the bucket: after the window of shedding ends,
	// operations succeed and slowly earn back retry allowance.
	fs.fails.Store(0)
	if _, err := a.Stat("/srv/f"); err != nil {
		t.Fatalf("stat after shedding = %v", err)
	}
	if tokens := a.RetryBudgetTokens(); tokens <= 0 {
		t.Errorf("budget tokens after success = %v, want > 0", tokens)
	}
}
