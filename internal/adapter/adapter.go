// Package adapter implements the TSS adapter of §6 — the component the
// paper realizes as Parrot, which traps an unmodified application's
// system calls and redirects them to storage abstractions.
//
// Substitution note (documented in DESIGN.md): Parrot interposes via
// the ptrace debugging interface; a Go library cannot usefully ptrace
// itself, so this adapter interposes at the library boundary instead —
// it *is* a vfs.FileSystem whose namespace is assembled from mounted
// abstractions. Everything architectural survives the substitution:
//
//   - the namespace model: each abstraction appears under a top-level
//     scheme entry (/chirp/<host>/..., /nfs/<host>/...) plus an
//     explicit mountlist mapping logical names to abstractions;
//   - the recovery protocol: on a lost connection the adapter
//     reconnects with exponential backoff, re-opens files, and checks
//     the inode number — a changed inode yields ESTALE, as in NFS;
//   - the synchronous-write switch: O_SYNC transparently appended to
//     every open;
//   - the cost model: an optional trap emulator charges every call the
//     price of the context-switch pair and extra data copy that ptrace
//     interposition pays (Figure 3).
package adapter

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/cache"
	"tss/internal/obs"
	"tss/internal/pathutil"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// Config configures an adapter.
type Config struct {
	// Sync appends O_SYNC to all opens (§6's command-line switch).
	Sync bool
	// MaxRetries bounds reconnection attempts per operation (§6: users
	// may place an upper limit on retries). Default 5.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles per attempt
	// (§6: "exponentially increasing delay"). Default 10 ms.
	RetryBase time.Duration
	// RetryJitter > 0 enables full-jitter backoff: each delay is drawn
	// uniformly from [0, backoff), so a fleet of recovering clients
	// does not reconnect in lockstep. Default 0 (deterministic).
	RetryJitter float64
	// RetryBudget caps the total wall-clock time one operation may
	// spend retrying; once the next backoff would cross it, recovery
	// gives up with ETIMEDOUT. 0 means attempts alone bound recovery.
	RetryBudget time.Duration
	// RetryTokens > 0 installs a token-bucket retry budget shared by
	// every operation through this adapter (DESIGN.md §15): the bucket
	// starts with this many tokens, each retry spends one, and each
	// success earns a fraction back. When the bucket runs dry, retrying
	// stops until successes refill it — which is what caps a retry storm
	// at a bounded amplification of offered load instead of a multiple
	// of it. 0 disables the budget (attempts alone bound retries).
	RetryTokens float64
	// Resolve maps a default-namespace entry (/<scheme>/<host>/...) to
	// a filesystem; nil disables the default namespace.
	Resolve func(scheme, host string) (vfs.FileSystem, error)
	// Trap, when non-nil, charges each operation the interposition
	// cost (see TrapEmulator).
	Trap *TrapEmulator
	// Sleep replaces time.Sleep in backoff loops (tests). Nil means
	// time.Sleep.
	Sleep func(time.Duration)
	// Metrics, when non-nil, shadows Stats into registry counters
	// ("adapter.ops", "adapter.retries", "adapter.reconnects",
	// "adapter.stale", "adapter.gave_up") so per-process syscall counts
	// appear on /metrics. Nil disables instrumentation at zero cost.
	Metrics *obs.Registry
	// Cache, when non-nil, wraps every abstraction entering the
	// namespace — explicit mounts and default-namespace resolutions —
	// in a client cache tier (internal/cache) with these options. The
	// Sync switch composes: O_SYNC opens write through the cache.
	Cache *cache.Options
}

// Mount binds a logical path prefix to an abstraction.
type Mount struct {
	Prefix string
	FS     vfs.FileSystem
}

// Stats counts adapter activity; all fields are safe to read
// concurrently. The paper's users distrust transparent layers (§3) —
// counters make this one observable.
type Stats struct {
	// Ops counts operations entering the adapter.
	Ops atomic.Int64
	// Reconnects counts successful reconnections during recovery.
	Reconnects atomic.Int64
	// Stale counts operations that ended in ESTALE.
	Stale atomic.Int64
	// GaveUp counts operations that exhausted their retry budget.
	GaveUp atomic.Int64
	// Retries counts individual retry attempts across all operations.
	Retries atomic.Int64
	// BudgetExhausted counts retries refused because the token-bucket
	// retry budget (Config.RetryTokens) was empty.
	BudgetExhausted atomic.Int64
}

// Adapter assembles abstractions into one namespace and transparently
// recovers from server disconnections. It implements vfs.FileSystem.
type Adapter struct {
	cfg Config

	// Registry counters shadowing Stats; all nil without a registry.
	mOps             *obs.Counter
	mRetries         *obs.Counter
	mReconnects      *obs.Counter
	mStale           *obs.Counter
	mGaveUp          *obs.Counter
	mBudgetExhausted *obs.Counter

	// budget is the shared token-bucket retry budget, nil (unlimited)
	// unless Config.RetryTokens is set.
	budget *resilient.RetryBudget

	// Stats exposes operation and recovery counters.
	Stats Stats

	mu       sync.Mutex
	mounts   []Mount // sorted by descending prefix length
	resolved map[string]vfs.FileSystem
}

var _ vfs.FileSystem = (*Adapter)(nil)

// New returns an adapter with the given configuration.
func New(cfg Config) *Adapter {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	a := &Adapter{cfg: cfg, resolved: make(map[string]vfs.FileSystem)}
	if reg := cfg.Metrics; reg != nil {
		a.mOps = reg.Counter("adapter.ops")
		a.mRetries = reg.Counter("adapter.retries")
		a.mReconnects = reg.Counter("adapter.reconnects")
		a.mStale = reg.Counter("adapter.stale")
		a.mGaveUp = reg.Counter("adapter.gave_up")
		a.mBudgetExhausted = reg.Counter("resilient.budget_exhausted")
	}
	if cfg.RetryTokens > 0 {
		a.budget = resilient.NewRetryBudget(cfg.RetryTokens, 0)
		a.budget.OnExhausted = func() {
			a.Stats.BudgetExhausted.Add(1)
			a.mBudgetExhausted.Inc()
		}
	}
	return a
}

// RetryBudgetTokens reports the tokens remaining in the shared retry
// budget, or -1 when no budget is configured.
func (a *Adapter) RetryBudgetTokens() float64 {
	if a.budget == nil {
		return -1
	}
	return a.budget.Tokens()
}

// MountFS binds prefix to fs; longer prefixes shadow shorter ones.
// With Config.Cache set, fs is mounted behind a cache tier.
func (a *Adapter) MountFS(prefix string, fs vfs.FileSystem) error {
	if a.cfg.Cache != nil {
		fs = cache.New(fs, *a.cfg.Cache)
	}
	return a.addMount(prefix, fs)
}

// addMount binds prefix to fs exactly as given — the uncached seam for
// mountlist targets, which resolve through abstractions that are
// already cache-wrapped.
func (a *Adapter) addMount(prefix string, fs vfs.FileSystem) error {
	n, err := pathutil.Norm(prefix)
	if err != nil {
		return vfs.EINVAL
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.mounts {
		if m.Prefix == n {
			return vfs.EEXIST
		}
	}
	a.mounts = append(a.mounts, Mount{Prefix: n, FS: fs})
	sort.Slice(a.mounts, func(i, j int) bool {
		return len(a.mounts[i].Prefix) > len(a.mounts[j].Prefix)
	})
	return nil
}

// Unmount removes the mount at prefix.
func (a *Adapter) Unmount(prefix string) error {
	n, err := pathutil.Norm(prefix)
	if err != nil {
		return vfs.EINVAL
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, m := range a.mounts {
		if m.Prefix == n {
			a.mounts = append(a.mounts[:i], a.mounts[i+1:]...)
			return nil
		}
	}
	return vfs.ENOENT
}

// Mounts returns the current mount table.
func (a *Adapter) Mounts() []Mount {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Mount, len(a.mounts))
	copy(out, a.mounts)
	return out
}

// ParseMountlist parses the §6 mountlist format: one "logical target"
// pair per line, '#' comments.
func ParseMountlist(text string) ([][2]string, error) {
	var out [][2]string
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("adapter: mountlist line %d: want \"logical target\"", ln+1)
		}
		out = append(out, [2]string{f[0], f[1]})
	}
	return out, nil
}

// ApplyMountlist resolves each target through the adapter's namespace
// and mounts it at the logical name, creating the private namespace of
// §6 (e.g. "/data -> /chirp/archive.cse.nd.edu/data").
func (a *Adapter) ApplyMountlist(text string) error {
	pairs, err := ParseMountlist(text)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		fs, rest, err := a.resolve(p[1])
		if err != nil {
			return fmt.Errorf("adapter: mountlist target %q: %w", p[1], err)
		}
		view, err := vfs.Subtree(fs, rest)
		if err != nil {
			return err
		}
		if err := a.addMount(p[0], view); err != nil {
			return fmt.Errorf("adapter: mounting %q: %w", p[0], err)
		}
	}
	return nil
}

// resolve maps a logical path to (filesystem, remaining path). Mounts
// win over the default /<scheme>/<host>/ namespace.
func (a *Adapter) resolve(path string) (vfs.FileSystem, string, error) {
	n, err := pathutil.Norm(path)
	if err != nil {
		return nil, "", vfs.EINVAL
	}
	a.mu.Lock()
	for _, m := range a.mounts {
		if rest, ok := pathutil.Rebase(m.Prefix, n); ok {
			a.mu.Unlock()
			return m.FS, rest, nil
		}
	}
	a.mu.Unlock()

	if a.cfg.Resolve != nil {
		comps := pathutil.Split(n)
		if len(comps) >= 2 {
			scheme, host := comps[0], comps[1]
			key := scheme + "/" + host
			a.mu.Lock()
			fs, ok := a.resolved[key]
			a.mu.Unlock()
			if !ok {
				fs, err = a.cfg.Resolve(scheme, host)
				if err != nil {
					return nil, "", err
				}
				if a.cfg.Cache != nil {
					fs = cache.New(fs, *a.cfg.Cache)
				}
				a.mu.Lock()
				a.resolved[key] = fs
				a.mu.Unlock()
			}
			return fs, pathutil.Join(comps[2:]...), nil
		}
	}
	return nil, "", vfs.ENOENT
}

// trap charges the interposition overhead for one call moving n bytes,
// and counts the operation.
func (a *Adapter) trap(n int) {
	a.Stats.Ops.Add(1)
	a.mOps.Inc()
	if a.cfg.Trap != nil {
		a.cfg.Trap.Trap(n)
	}
}

// policy builds the shared retry policy (internal/resilient) from the
// adapter configuration: §6's "exponentially increasing delay", bounded
// by attempts and optionally by wall-clock budget.
func (a *Adapter) policy() resilient.Policy {
	return resilient.Policy{
		Attempts:    a.cfg.MaxRetries,
		Base:        a.cfg.RetryBase,
		Jitter:      a.cfg.RetryJitter,
		Budget:      a.cfg.RetryBudget,
		RetryBudget: a.budget,
		Sleep:       a.cfg.Sleep,
		OnRetry: func(int, error) {
			a.Stats.Retries.Add(1)
			a.mRetries.Inc()
		},
	}
}

// giveUp maps an exhausted retry loop to the caller-visible errno:
// ETIMEDOUT for abandoned recovery (§6), except that standing pushback
// stays EAGAIN — the server said "not now", and masking that as a
// timeout would make the caller's own pushback handling (backoff,
// rerouting) impossible.
func (a *Adapter) giveUp(err error) error {
	a.Stats.GaveUp.Add(1)
	a.mGaveUp.Inc()
	if resilient.Pushback(err) {
		return vfs.EAGAIN
	}
	return vfs.ETIMEDOUT
}

// retry runs op, driving the §6 recovery protocol when the abstraction
// reports a lost or timed-out connection: backoff, reconnect, retry.
func (a *Adapter) retry(fs vfs.FileSystem, op func() error) error {
	rc := vfs.Capabilities(fs).Reconnector
	if rc == nil {
		// No recovery path: one shot, errors surface unchanged.
		return op()
	}
	var lastErr error
	wrapped := func() error {
		lastErr = op()
		return lastErr
	}
	prepare := func() error {
		if resilient.Pushback(lastErr) {
			// EAGAIN is not a dead connection: the server answered and
			// asked for room. Reconnecting would aim dial load at the
			// very server that is shedding — back off and retry as-is.
			return nil
		}
		if rerr := rc.Reconnect(); rerr != nil {
			return rerr
		}
		a.Stats.Reconnects.Add(1)
		a.mReconnects.Inc()
		return nil
	}
	err, exhausted := a.policy().Do(wrapped, prepare, resilient.RetryableOrPushback)
	if exhausted {
		return a.giveUp(err)
	}
	return err
}

// Open opens a file anywhere in the assembled namespace. The returned
// file transparently survives server disconnections; if the underlying
// file was replaced while disconnected, operations fail with ESTALE
// (§6's stale file handle semantics).
func (a *Adapter) Open(path string, flags int, mode uint32) (vfs.File, error) {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		return nil, err
	}
	if a.cfg.Sync {
		flags |= vfs.O_SYNC
	}
	var f vfs.File
	var inode uint64
	opener := vfs.Capabilities(fs).OpenStater
	hasOpenStat := opener != nil
	err = a.retry(fs, func() error {
		var e error
		if hasOpenStat {
			var fi vfs.FileInfo
			f, fi, e = opener.OpenStat(rest, flags, mode)
			inode = fi.Inode
		} else {
			f, e = fs.Open(rest, flags, mode)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	af := &adapterFile{a: a, fs: fs, rest: rest, flags: flags, mode: mode, f: f, inode: inode}
	if !hasOpenStat {
		if fi, err := f.Fstat(); err == nil {
			af.inode = fi.Inode
		}
	}
	return af, nil
}

// isNamespacePoint reports whether the normalized path lies strictly
// above some mount: such paths exist synthetically in the adapter's
// namespace, like the automount directories of §6.
func (a *Adapter) isNamespacePoint(n string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range a.mounts {
		if n != m.Prefix && pathutil.Within(n, m.Prefix) {
			return true
		}
	}
	return false
}

// Stat resolves and stats. Namespace points above the mounts stat as
// synthetic directories.
func (a *Adapter) Stat(path string) (vfs.FileInfo, error) {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		if n, nerr := pathutil.Norm(path); nerr == nil && a.isNamespacePoint(n) {
			return vfs.FileInfo{Name: pathutil.Base(n), Mode: 0o555, IsDir: true}, nil
		}
		return vfs.FileInfo{}, err
	}
	var fi vfs.FileInfo
	err = a.retry(fs, func() error {
		var e error
		fi, e = fs.Stat(rest)
		return e
	})
	return fi, err
}

// Unlink removes a file.
func (a *Adapter) Unlink(path string) error {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		return err
	}
	return a.retry(fs, func() error { return fs.Unlink(rest) })
}

// Rename renames within a single abstraction; crossing mounts is
// rejected (as with Unix EXDEV semantics, simplified to EINVAL).
func (a *Adapter) Rename(oldPath, newPath string) error {
	a.trap(0)
	ofs, orest, err := a.resolve(oldPath)
	if err != nil {
		return err
	}
	nfs, nrest, err := a.resolve(newPath)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return vfs.EINVAL
	}
	return a.retry(ofs, func() error { return ofs.Rename(orest, nrest) })
}

// Mkdir creates a directory. Namespace points above the mounts already
// exist synthetically, so creating them reports EEXIST (which lets
// MkdirAll walk through them).
func (a *Adapter) Mkdir(path string, mode uint32) error {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		if n, nerr := pathutil.Norm(path); nerr == nil && a.isNamespacePoint(n) {
			return vfs.EEXIST
		}
		return err
	}
	return a.retry(fs, func() error { return fs.Mkdir(rest, mode) })
}

// Rmdir removes a directory. Namespace points cannot be removed.
func (a *Adapter) Rmdir(path string) error {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		if n, nerr := pathutil.Norm(path); nerr == nil && a.isNamespacePoint(n) {
			return vfs.EBUSY
		}
		return err
	}
	return a.retry(fs, func() error { return fs.Rmdir(rest) })
}

// ReadDir lists a directory. Listing a point above all mounts shows
// the mounted names, so the namespace is explorable from "/".
func (a *Adapter) ReadDir(path string) ([]vfs.DirEntry, error) {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err == nil {
		var ents []vfs.DirEntry
		err = a.retry(fs, func() error {
			var e error
			ents, e = fs.ReadDir(rest)
			return e
		})
		return ents, err
	}
	// Synthesize listings for namespace points above the mounts.
	n, nerr := pathutil.Norm(path)
	if nerr != nil {
		return nil, vfs.EINVAL
	}
	seen := map[string]bool{}
	var ents []vfs.DirEntry
	for _, m := range a.Mounts() {
		if rest, ok := pathutil.Rebase(n, m.Prefix); ok && rest != "/" {
			name := pathutil.Split(rest)[0]
			if !seen[name] {
				seen[name] = true
				ents = append(ents, vfs.DirEntry{Name: name, IsDir: true})
			}
		}
	}
	if len(ents) == 0 {
		return nil, err
	}
	return ents, nil
}

// Truncate truncates a file.
func (a *Adapter) Truncate(path string, size int64) error {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		return err
	}
	return a.retry(fs, func() error { return fs.Truncate(rest, size) })
}

// Chmod changes permissions.
func (a *Adapter) Chmod(path string, mode uint32) error {
	a.trap(0)
	fs, rest, err := a.resolve(path)
	if err != nil {
		return err
	}
	return a.retry(fs, func() error { return fs.Chmod(rest, mode) })
}

// StatFS reports capacity of the filesystem behind "/" or the first
// mount.
func (a *Adapter) StatFS() (vfs.FSInfo, error) {
	a.trap(0)
	mounts := a.Mounts()
	if len(mounts) == 0 {
		return vfs.FSInfo{}, vfs.ENOENT
	}
	return mounts[len(mounts)-1].FS.StatFS()
}

// adapterFile wraps an open file with the §6 recovery protocol.
type adapterFile struct {
	a     *Adapter
	fs    vfs.FileSystem
	rest  string
	flags int
	mode  uint32

	mu    sync.Mutex
	f     vfs.File
	inode uint64
	stale bool
}

// recoverFile re-opens the file after a reconnect and verifies, via
// the inode number, that it is the same file as before. A different
// inode means the file was renamed or deleted while disconnected: the
// handle becomes permanently stale (ESTALE), as in NFS.
func (af *adapterFile) recoverFile() error {
	// Never O_TRUNC or O_CREAT on re-open: recovery must not mutate.
	flags := af.flags &^ (vfs.O_TRUNC | vfs.O_CREAT | vfs.O_EXCL)
	f, err := af.fs.Open(af.rest, flags, af.mode)
	if err != nil {
		if vfs.AsErrno(err) == vfs.ENOENT {
			af.stale = true
			return vfs.ESTALE
		}
		return err
	}
	fi, err := f.Fstat()
	if err != nil {
		f.Close()
		return err
	}
	if af.inode != 0 && fi.Inode != af.inode {
		f.Close()
		af.stale = true
		return vfs.ESTALE
	}
	af.f = f
	return nil
}

// do runs one file operation under the recovery protocol.
func (af *adapterFile) do(op func(f vfs.File) error) error {
	af.mu.Lock()
	defer af.mu.Unlock()
	if af.stale {
		return vfs.ESTALE
	}
	rc := vfs.Capabilities(af.fs).Reconnector
	var lastErr error
	prepare := func() error {
		if resilient.Pushback(lastErr) {
			// Pushback means the connection and the descriptor are both
			// fine; the server is just shedding. Retry in place.
			return nil
		}
		if rc != nil {
			if rerr := rc.Reconnect(); rerr != nil {
				return rerr
			}
			af.a.Stats.Reconnects.Add(1)
			af.a.mReconnects.Inc()
		}
		if rerr := af.recoverFile(); rerr != nil {
			if rerr == vfs.ESTALE {
				af.a.Stats.Stale.Add(1)
				af.a.mStale.Inc()
				// A stale handle is unrecoverable: abort the loop.
				return resilient.Permanent(vfs.ESTALE)
			}
			return rerr
		}
		return nil
	}
	err, exhausted := af.a.policy().Do(func() error {
		lastErr = op(af.f)
		return lastErr
	}, prepare, resilient.RetryableOrPushback)
	if exhausted {
		return af.a.giveUp(err)
	}
	return err
}

func (af *adapterFile) Pread(p []byte, off int64) (int, error) {
	af.a.trap(len(p))
	var n int
	err := af.do(func(f vfs.File) error {
		var e error
		n, e = f.Pread(p, off)
		return e
	})
	return n, err
}

func (af *adapterFile) Pwrite(p []byte, off int64) (int, error) {
	af.a.trap(len(p))
	var n int
	err := af.do(func(f vfs.File) error {
		var e error
		n, e = f.Pwrite(p, off)
		return e
	})
	return n, err
}

func (af *adapterFile) Fstat() (vfs.FileInfo, error) {
	af.a.trap(0)
	var fi vfs.FileInfo
	err := af.do(func(f vfs.File) error {
		var e error
		fi, e = f.Fstat()
		return e
	})
	return fi, err
}

func (af *adapterFile) Ftruncate(size int64) error {
	af.a.trap(0)
	return af.do(func(f vfs.File) error { return f.Ftruncate(size) })
}

func (af *adapterFile) Sync() error {
	af.a.trap(0)
	return af.do(func(f vfs.File) error { return f.Sync() })
}

func (af *adapterFile) Close() error {
	af.a.trap(0)
	af.mu.Lock()
	defer af.mu.Unlock()
	if af.stale || af.f == nil {
		return nil
	}
	err := af.f.Close()
	af.f = nil
	af.stale = true
	return err
}
