package adapter

import (
	"fmt"
	"net"

	"sync/atomic"
	"testing"
	"time"
	"tss/internal/abstraction"

	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/vfs"
)

func localFS(t *testing.T) *vfs.LocalFS {
	t.Helper()
	l, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func noSleep(time.Duration) {}

func TestMountResolutionLongestPrefix(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	outer := localFS(t)
	inner := localFS(t)
	if err := a.MountFS("/data", outer); err != nil {
		t.Fatal(err)
	}
	if err := a.MountFS("/data/hot", inner); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/data/f", []byte("outer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/data/hot/f", []byte("inner"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := vfs.ReadFile(outer, "/f"); string(got) != "outer" {
		t.Errorf("outer got %q", got)
	}
	if got, _ := vfs.ReadFile(inner, "/f"); string(got) != "inner" {
		t.Errorf("inner got %q", got)
	}
	// Outer must not see the inner file.
	if vfs.Exists(outer, "/hot/f") {
		t.Error("longest-prefix resolution leaked into outer fs")
	}
}

func TestMountDuplicateAndUnmount(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	fs := localFS(t)
	if err := a.MountFS("/m", fs); err != nil {
		t.Fatal(err)
	}
	if err := a.MountFS("/m", fs); vfs.AsErrno(err) != vfs.EEXIST {
		t.Errorf("duplicate mount = %v", err)
	}
	if err := a.Unmount("/m"); err != nil {
		t.Fatal(err)
	}
	if err := a.Unmount("/m"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("double unmount = %v", err)
	}
	if _, err := a.Stat("/m/x"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("stat after unmount = %v", err)
	}
}

func TestDefaultNamespaceResolver(t *testing.T) {
	backend := localFS(t)
	var calls atomic.Int32
	a := New(Config{
		Sleep: noSleep,
		Resolve: func(scheme, host string) (vfs.FileSystem, error) {
			calls.Add(1)
			if scheme != "chirp" || host != "shared.cse.nd.edu" {
				return nil, vfs.ENOENT
			}
			return backend, nil
		},
	})
	if err := a.Mkdir("/chirp/shared.cse.nd.edu/software", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a, "/chirp/shared.cse.nd.edu/software/pkg", []byte("bin"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(backend, "/software/pkg")
	if err != nil || string(data) != "bin" {
		t.Fatalf("backend content: %q, %v", data, err)
	}
	// Resolution is cached: one resolve per (scheme, host).
	a.Stat("/chirp/shared.cse.nd.edu/software")
	if calls.Load() != 1 {
		t.Errorf("resolver called %d times, want 1 (cached)", calls.Load())
	}
	if _, err := a.Stat("/chirp/unknown.host/x"); err == nil {
		t.Error("unknown host resolved")
	}
	if _, err := a.Stat("/nowhere"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("unmounted path = %v", err)
	}
}

// The §6 mountlist example: logical names mapping to abstractions.
func TestMountlist(t *testing.T) {
	backend := localFS(t)
	if err := vfs.MkdirAll(backend, "/software", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(backend, "/software/tool", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := New(Config{
		Sleep: noSleep,
		Resolve: func(scheme, host string) (vfs.FileSystem, error) {
			return backend, nil
		},
	})
	err := a.ApplyMountlist(`
# private namespace for the application
/usr/local /chirp/shared.cse.nd.edu/software
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := vfs.ReadFile(a, "/usr/local/tool")
	if err != nil || string(data) != "x" {
		t.Fatalf("through mountlist: %q, %v", data, err)
	}
}

func TestMountlistParseErrors(t *testing.T) {
	if _, err := ParseMountlist("/only-one-field"); err == nil {
		t.Error("malformed mountlist accepted")
	}
	pairs, err := ParseMountlist("# just a comment\n\n")
	if err != nil || len(pairs) != 0 {
		t.Errorf("comment-only mountlist: %v, %v", pairs, err)
	}
}

func TestReadDirSynthesizesNamespace(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	a.MountFS("/cfs/hostA", localFS(t))
	a.MountFS("/cfs/hostB", localFS(t))
	a.MountFS("/dsfs/vol1", localFS(t))
	ents, err := a.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("root listing = %+v", ents)
	}
	ents, err = a.ReadDir("/cfs")
	if err != nil || len(ents) != 2 {
		t.Fatalf("/cfs listing = %+v, %v", ents, err)
	}
}

func TestSyncFlagAppended(t *testing.T) {
	fs := &flagRecorder{FileSystem: localFS(t)}
	a := New(Config{Sync: true, Sleep: noSleep})
	a.MountFS("/m", fs)
	f, err := a.Open("/m/f", vfs.O_WRONLY|vfs.O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if fs.lastFlags&vfs.O_SYNC == 0 {
		t.Error("O_SYNC not appended to open flags")
	}
}

type flagRecorder struct {
	vfs.FileSystem
	lastFlags int
}

func (r *flagRecorder) Open(path string, flags int, mode uint32) (vfs.File, error) {
	r.lastFlags = flags
	return r.FileSystem.Open(path, flags, mode)
}

// --- recovery protocol over a real Chirp server ---

type bouncer struct {
	t    *testing.T
	nw   *netsim.Network
	srv  *chirp.Server
	name string
	lis  *netsim.Listener
}

func startBouncer(t *testing.T) *bouncer {
	b := &bouncer{t: t, nw: netsim.NewNetwork(), name: "fs.sim"}
	srv, err := chirp.NewServer(t.TempDir(), chirp.ServerConfig{
		Name:      b.name,
		Owner:     "hostname:client.sim",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.srv = srv
	b.up()
	return b
}

func (b *bouncer) up() {
	l, err := b.nw.Listen(b.name)
	if err != nil {
		b.t.Fatal(err)
	}
	b.lis = l
	go b.srv.Serve(l)
}

func (b *bouncer) down() { b.lis.Close() }

func (b *bouncer) client() *chirp.Client {
	c, err := chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return b.nw.DialFrom("client.sim", b.name, netsim.Loopback)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     2 * time.Second,
	})
	if err != nil {
		b.t.Fatal(err)
	}
	return c
}

func TestRecoveryReopensAfterReconnect(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/srv", cli)

	if err := vfs.WriteFile(a, "/srv/f", []byte("persistent"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := a.Open("/srv/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate server restart: drop the connection underneath the
	// open file. The adapter must reconnect, re-open, verify the
	// inode, and retry transparently.
	cli.Close() // hard-drop the transport
	buf := make([]byte, 10)
	n, err := f.Pread(buf, 0)
	if err != nil || string(buf[:n]) != "persistent" {
		t.Fatalf("read after reconnect = %q, %v", buf[:n], err)
	}
}

// If the file was replaced while disconnected, the inode check must
// yield ESTALE — the §6 stale file handle.
func TestRecoveryDetectsReplacedFile(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/srv", cli)

	if err := vfs.WriteFile(a, "/srv/f", []byte("version one"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := a.Open("/srv/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	// Replace the file server-side (unlink + recreate = new inode).
	if err := b.srv.FS().Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(b.srv.FS(), "/f", []byte("version two"), 0o644); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := f.Pread(buf, 0); vfs.AsErrno(err) != vfs.ESTALE {
		t.Fatalf("read of replaced file = %v, want ESTALE", err)
	}
	// The handle stays stale forever.
	if _, err := f.Pread(buf, 0); vfs.AsErrno(err) != vfs.ESTALE {
		t.Errorf("second read = %v, want ESTALE", err)
	}
}

// If the file was deleted while disconnected, recovery also yields a
// stale handle.
func TestRecoveryDetectsDeletedFile(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/srv", cli)
	if err := vfs.WriteFile(a, "/srv/f", []byte("doomed"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := a.Open("/srv/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := b.srv.FS().Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.Pread(buf, 0); vfs.AsErrno(err) != vfs.ESTALE {
		t.Fatalf("read of deleted file = %v, want ESTALE", err)
	}
}

// When the server never comes back, retries are bounded (§6: "users
// may place an upper limit on these retries").
func TestRecoveryGivesUpAfterMaxRetries(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	var sleeps atomic.Int32
	a := New(Config{
		MaxRetries: 3,
		Sleep:      func(time.Duration) { sleeps.Add(1) },
	})
	a.MountFS("/srv", cli)
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := a.Open("/srv/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.down() // server gone for good
	cli.Close()
	buf := make([]byte, 1)
	if _, err := f.Pread(buf, 0); vfs.AsErrno(err) != vfs.ETIMEDOUT {
		t.Fatalf("read with dead server = %v, want ETIMEDOUT", err)
	}
	if sleeps.Load() != 3 {
		t.Errorf("slept %d times, want 3 (bounded retries)", sleeps.Load())
	}
}

// Backoff doubles per attempt — exponentially increasing delay (§6).
func TestBackoffIsExponential(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	var delays []time.Duration
	a := New(Config{
		MaxRetries: 4,
		RetryBase:  10 * time.Millisecond,
		Sleep:      func(d time.Duration) { delays = append(delays, d) },
	})
	a.MountFS("/srv", cli)
	b.down()
	cli.Close()
	a.Stat("/srv/f") // fails through all retries
	if len(delays) != 4 {
		t.Fatalf("delays = %v", delays)
	}
	for i := 1; i < len(delays); i++ {
		if delays[i] != delays[i-1]*2 {
			t.Errorf("delay %d = %v, want double of %v", i, delays[i], delays[i-1])
		}
	}
}

// Path-level ops (stat, unlink, ...) also recover via client reconnect.
func TestPathOpsRecover(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/srv", cli)
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	fi, err := a.Stat("/srv/f")
	if err != nil || fi.Size != 1 {
		t.Fatalf("stat after drop = %+v, %v", fi, err)
	}
}

func TestRenameAcrossMountsRejected(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	a.MountFS("/a", localFS(t))
	a.MountFS("/b", localFS(t))
	if err := vfs.WriteFile(a, "/a/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Rename("/a/f", "/b/f"); vfs.AsErrno(err) != vfs.EINVAL {
		t.Errorf("cross-mount rename = %v, want EINVAL", err)
	}
}

func TestTrapEmulatorRoundTrip(t *testing.T) {
	tr := NewTrapEmulator()
	defer tr.Close()
	// Must not deadlock or race under parallel use from the adapter.
	for i := 0; i < 1000; i++ {
		tr.Trap(0)
		tr.Trap(8192)
	}
}

func TestTrapChargedPerOperation(t *testing.T) {
	tr := NewTrapEmulator()
	defer tr.Close()
	a := New(Config{Sleep: noSleep, Trap: tr})
	a.MountFS("/m", localFS(t))
	if err := vfs.WriteFile(a, "/m/f", make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	// Sanity: operations still work with the trap active; the latency
	// effect itself is measured in the Figure 3 benchmark.
	fi, err := a.Stat("/m/f")
	if err != nil || fi.Size != 8192 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
}

func TestAdapterStatFSAndErrors(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	if _, err := a.StatFS(); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("statfs with no mounts = %v", err)
	}
	a.MountFS("/m", localFS(t))
	if _, err := a.StatFS(); err != nil {
		t.Errorf("statfs = %v", err)
	}
	if _, err := a.Open("/m/\x00bad", vfs.O_RDONLY, 0); err == nil {
		t.Error("malformed path accepted")
	}
	if _, err := a.ReadDir("/nothing/here"); vfs.AsErrno(err) != vfs.ENOENT {
		t.Errorf("readdir unmounted = %v", err)
	}
}

func TestAdapterWorksThroughDSFSStyleStack(t *testing.T) {
	// adapter -> subtree -> local: three layers of the same interface,
	// demonstrating recursion without a network.
	base := localFS(t)
	if err := vfs.MkdirAll(base, "/vol/data", 0o755); err != nil {
		t.Fatal(err)
	}
	sub, err := vfs.Subtree(base, "/vol")
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Sleep: noSleep})
	a.MountFS("/data", sub)
	if err := vfs.WriteFile(a, "/data/data/f", []byte("deep"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(base, "/vol/data/f")
	if err != nil || string(got) != "deep" {
		t.Fatalf("stacked read = %q, %v", got, err)
	}
}

func TestSeqFileThroughAdapter(t *testing.T) {
	a := New(Config{Sleep: noSleep})
	a.MountFS("/m", localFS(t))
	f, err := a.Open("/m/f", vfs.O_RDWR|vfs.O_CREAT, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sf := vfs.NewSeqFile(f)
	fmt.Fprintf(sf, "line one\n")
	fmt.Fprintf(sf, "line two\n")
	if _, err := sf.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := sf.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "line one\n" {
		t.Errorf("seq read = %q", buf)
	}
	if off, _ := sf.Seek(0, 2); off != 18 {
		t.Errorf("seek end = %d", off)
	}
	sf.Close()
}

// The recovery protocol works through a whole DSFS mount: dropping the
// chirp connections under the abstraction heals transparently because
// the Dist delegates Reconnect to its members.
func TestRecoveryThroughDSFSMount(t *testing.T) {
	b := startBouncer(t)
	metaCli := b.client()
	defer metaCli.Close()
	dataCli := b.client()
	defer dataCli.Close()
	d, err := abstraction.NewDSFS(metaCli, "/tree", []abstraction.DataServer{
		{Name: "fs.sim", FS: dataCli, Dir: "/vol"},
	}, abstraction.Options{ClientID: "rec"})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/dsfs", d)

	if err := vfs.WriteFile(a, "/dsfs/f", []byte("durable"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := a.Open("/dsfs/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sever both connections under the abstraction.
	metaCli.Close()
	dataCli.Close()
	buf := make([]byte, 7)
	n, err := f.Pread(buf, 0)
	if err != nil || string(buf[:n]) != "durable" {
		t.Fatalf("read through healed DSFS = %q, %v", buf[:n], err)
	}
	// Path-level ops heal too.
	metaCli.Close()
	if _, err := a.Stat("/dsfs/f"); err != nil {
		t.Errorf("stat through healed DSFS: %v", err)
	}
}

// Adapter counters make the transparent layer observable.
func TestAdapterStatsCounters(t *testing.T) {
	b := startBouncer(t)
	cli := b.client()
	defer cli.Close()
	a := New(Config{Sleep: noSleep, MaxRetries: 8})
	a.MountFS("/srv", cli)
	if err := vfs.WriteFile(a, "/srv/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Ops.Load() == 0 {
		t.Error("ops not counted")
	}
	// Force one recovery.
	cli.Close()
	if _, err := a.Stat("/srv/f"); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Reconnects.Load() == 0 {
		t.Error("reconnects not counted")
	}
	// Force an ESTALE.
	f, err := a.Open("/srv/f", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	b.srv.FS().Unlink("/f")
	buf := make([]byte, 1)
	f.Pread(buf, 0)
	if a.Stats.Stale.Load() == 0 {
		t.Error("stale handles not counted")
	}
	// Force a give-up.
	b.down()
	cli.Close()
	a.Stat("/srv/f")
	if a.Stats.GaveUp.Load() == 0 {
		t.Error("give-ups not counted")
	}
}
