package adapter

import (
	"sync/atomic"
	"testing"

	"tss/internal/vfs"
)

// countFS wraps a FileSystem and counts descriptor opens and closes,
// so tests can assert that every handle a code path acquires is
// released — the invariant the reslifetime checker enforces statically
// and these tests pin dynamically on the paths the repo sweep
// examined.
type countFS struct {
	vfs.FileSystem
	opens  atomic.Int64
	closes atomic.Int64
}

func (c *countFS) Open(path string, flags int, mode uint32) (vfs.File, error) {
	f, err := c.FileSystem.Open(path, flags, mode)
	if err != nil {
		return nil, err
	}
	c.opens.Add(1)
	return &countFile{File: f, fs: c}, nil
}

func (c *countFS) live() int64 { return c.opens.Load() - c.closes.Load() }

type countFile struct {
	vfs.File
	fs *countFS
}

func (f *countFile) Close() error {
	f.fs.closes.Add(1)
	return f.File.Close()
}

// TestRecoverFileClosesOnInodeMismatch pins the recovery protocol's
// descriptor lifetime: when the re-opened file turns out to be a
// different inode (renamed or replaced while disconnected), the fresh
// handle must be closed before the ESTALE verdict — a leaked fd per
// stale handle would bleed the server dry across reconnect storms.
func TestRecoverFileClosesOnInodeMismatch(t *testing.T) {
	fs := &countFS{FileSystem: localFS(t)}
	if err := vfs.WriteFile(fs, "/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	af := &adapterFile{fs: fs, rest: "/f", flags: vfs.O_RDONLY, inode: fi.Inode + 1}
	if err := af.recoverFile(); vfs.AsErrno(err) != vfs.ESTALE {
		t.Fatalf("recoverFile with mismatched inode = %v, want ESTALE", err)
	}
	if !af.stale {
		t.Error("handle not marked stale after inode mismatch")
	}
	if n := fs.live(); n != 0 {
		t.Errorf("%d descriptor(s) still open after ESTALE recovery", n)
	}
}

// TestRecoverFileKeepsMatchingHandle is the success-path complement:
// a same-inode re-open installs the new handle (exactly one live
// descriptor) instead of leaking or closing it.
func TestRecoverFileKeepsMatchingHandle(t *testing.T) {
	fs := &countFS{FileSystem: localFS(t)}
	if err := vfs.WriteFile(fs, "/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	af := &adapterFile{fs: fs, rest: "/f", flags: vfs.O_RDONLY, inode: fi.Inode}
	if err := af.recoverFile(); err != nil {
		t.Fatalf("recoverFile with matching inode = %v", err)
	}
	if af.f == nil {
		t.Fatal("recovered handle not installed")
	}
	if n := fs.live(); n != 1 {
		t.Errorf("live descriptors = %d, want exactly the recovered handle", n)
	}
	if err := af.f.Close(); err != nil {
		t.Fatal(err)
	}
	if n := fs.live(); n != 0 {
		t.Errorf("%d descriptor(s) leaked after close", n)
	}
}
