package resilient

import (
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int32

const (
	// Closed: the backend is believed healthy; traffic flows.
	Closed State = iota
	// Open: the backend is believed down; traffic is refused until the
	// re-probe timer expires.
	Open
	// HalfOpen: one probe is in flight to test the backend; regular
	// traffic is still refused until the probe reports.
	HalfOpen
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig configures a circuit breaker. The zero value picks the
// defaults noted on each field.
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that
	// trips the breaker open (default 3).
	Threshold int
	// ReprobeBase is the first open→probe delay (default 1s). Each
	// failed probe doubles it, up to ReprobeMax.
	ReprobeBase time.Duration
	// ReprobeMax caps the re-probe delay (default 30s).
	ReprobeMax time.Duration
	// Jitter randomizes each re-probe delay by ±Jitter fraction, so a
	// fleet of clients does not re-probe a recovering server in
	// lockstep (default 0.1; negative disables).
	Jitter float64
	// Now replaces time.Now (tests).
	Now func() time.Time
	// Rand is a uniform [0,1) source for jitter (tests).
	Rand func() float64
	// OnStateChange, when non-nil, observes every state transition.
	// It is called after the breaker's lock is released, in the
	// goroutine that caused the transition; implementations may call
	// back into the breaker. Observability layers hang state gauges
	// here.
	OnStateChange func(from, to State)
}

// Breaker is a per-backend circuit breaker keyed on transport errors.
// All methods are safe for concurrent use.
//
// Lifecycle: Closed → (Threshold consecutive transport failures) →
// Open → (re-probe delay elapses, TryProbe) → HalfOpen → probe
// succeeds → Closed, or probe fails → Open with doubled delay.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	fails     int           // consecutive transport failures while Closed
	interval  time.Duration // current (pre-jitter) re-probe delay
	reprobeAt time.Time     // when the next probe may run
	trips     int64
	probes    int64
	readmits  int64
}

// NewBreaker returns a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.ReprobeBase <= 0 {
		cfg.ReprobeBase = time.Second
	}
	if cfg.ReprobeMax <= 0 {
		cfg.ReprobeMax = 30 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil && cfg.Jitter > 0 {
		cfg.Rand = lockedRand()
	}
	return &Breaker{cfg: cfg}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Ready reports whether regular traffic may be routed to the backend:
// true only in the Closed state. While Open or HalfOpen the caller
// should skip this backend (and call TryProbe to arrange re-admission).
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == Closed
}

// Record observes the outcome of a regular (non-probe) operation
// against the backend. A success — or any semantic error — resets the
// failure count and closes the breaker; a transport failure counts
// toward Threshold and may trip it. It returns true when this call
// tripped the breaker open.
func (b *Breaker) Record(err error) (tripped bool) {
	transport := TransportError(err)
	b.mu.Lock()
	from := b.state
	if !transport {
		// The backend answered; whatever it said, it is reachable.
		b.fails = 0
		if b.state != Closed {
			b.state = Closed
			b.readmits++
		}
	} else {
		switch b.state {
		case Closed:
			b.fails++
			if b.fails >= b.cfg.Threshold {
				b.trip()
				tripped = true
			}
		case HalfOpen:
			// A straggling regular operation failed while a probe is in
			// flight; treat it like a failed probe.
			b.reopen()
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
	return tripped
}

// TryProbe reports whether the caller has won the right to probe the
// backend: true at most once per re-probe interval, transitioning the
// breaker to HalfOpen. The caller must follow up with RecordProbe.
func (b *Breaker) TryProbe() bool {
	b.mu.Lock()
	if b.state != Open || b.cfg.Now().Before(b.reprobeAt) {
		b.mu.Unlock()
		return false
	}
	b.state = HalfOpen
	b.probes++
	b.mu.Unlock()
	b.notify(Open, HalfOpen)
	return true
}

// RecordProbe reports a probe outcome won via TryProbe. Success (or a
// semantic error: the backend answered) closes the breaker and
// re-admits the backend; a transport failure re-opens it with a doubled
// re-probe delay. It returns true when the backend was re-admitted.
func (b *Breaker) RecordProbe(err error) (readmitted bool) {
	transport := TransportError(err)
	b.mu.Lock()
	if b.state != HalfOpen {
		b.mu.Unlock()
		return false
	}
	if transport {
		b.interval *= 2
		if b.interval > b.cfg.ReprobeMax {
			b.interval = b.cfg.ReprobeMax
		}
		b.reopen()
		b.mu.Unlock()
		b.notify(HalfOpen, Open)
		return false
	}
	b.state = Closed
	b.fails = 0
	b.interval = 0
	b.readmits++
	b.mu.Unlock()
	b.notify(HalfOpen, Closed)
	return true
}

// notify reports a state transition to the configured observer. Caller
// must not hold b.mu.
func (b *Breaker) notify(from, to State) {
	if from != to && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// trip moves Closed→Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.interval = b.cfg.ReprobeBase
	b.reprobeAt = b.cfg.Now().Add(jittered(b.interval, b.cfg.Jitter, b.cfg.Rand))
	b.trips++
}

// reopen moves HalfOpen→Open after a failed probe, keeping the current
// interval (already adjusted by the caller). Caller holds b.mu.
func (b *Breaker) reopen() {
	b.state = Open
	if b.interval <= 0 {
		b.interval = b.cfg.ReprobeBase
	}
	b.reprobeAt = b.cfg.Now().Add(jittered(b.interval, b.cfg.Jitter, b.cfg.Rand))
}

// BreakerStats is a snapshot of a breaker's counters.
type BreakerStats struct {
	State    State
	Trips    int64 // Closed→Open transitions
	Probes   int64 // half-open probes granted
	Readmits int64 // Open/HalfOpen→Closed transitions
}

// Stats returns a consistent snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, Trips: b.trips, Probes: b.probes, Readmits: b.readmits}
}
