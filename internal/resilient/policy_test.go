package resilient

import (
	"testing"
	"time"

	"tss/internal/obs"
	"tss/internal/vfs"
)

func TestNewPolicyDefaults(t *testing.T) {
	p, err := NewPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if p.Attempts != DefaultAttempts || p.Base != DefaultBase || p.Max != DefaultMax || p.Jitter != DefaultJitter {
		t.Errorf("defaults = %+v", p)
	}
}

func TestNewPolicyOptions(t *testing.T) {
	var seen int
	p, err := NewPolicy(
		WithAttempts(7),
		WithBase(5*time.Millisecond),
		WithMax(time.Second),
		WithJitter(0.5),
		WithBudget(10*time.Second),
		WithOnRetry(func(int, error) { seen++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.Attempts != 7 || p.Base != 5*time.Millisecond || p.Max != time.Second || p.Jitter != 0.5 || p.Budget != 10*time.Second {
		t.Errorf("options not applied: %+v", p)
	}
	p.OnRetry(1, nil)
	if seen != 1 {
		t.Error("OnRetry not installed")
	}
}

func TestNewPolicyValidation(t *testing.T) {
	bad := [][]PolicyOption{
		{WithAttempts(-1)},
		{WithBase(0)},
		{WithBase(-time.Second)},
		{WithMax(-time.Second)},
		{WithJitter(-0.1)},
		{WithJitter(1.0)},
		{WithBudget(-time.Second)},
		{WithBase(time.Second), WithMax(time.Millisecond)}, // max below base
	}
	for i, opts := range bad {
		if _, err := NewPolicy(opts...); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	// WithMax(0) means uncapped and must pass the cross-check.
	if _, err := NewPolicy(WithMax(0)); err != nil {
		t.Errorf("WithMax(0): %v", err)
	}
}

func TestMustPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPolicy with invalid options must panic")
		}
	}()
	MustPolicy(WithAttempts(-1))
}

func TestZeroValuePolicyStillRetriesNothing(t *testing.T) {
	calls := 0
	err, exhausted := (Policy{}).Do(func() error {
		calls++
		return vfs.ENOTCONN
	}, nil, Retryable)
	if calls != 1 || !exhausted || err == nil {
		t.Errorf("zero policy: calls=%d exhausted=%v err=%v, want 1/true/non-nil", calls, exhausted, err)
	}
}

// TestBreakerStateChangeGauge walks a breaker through the full
// closed→open→half-open→closed lifecycle and checks that an
// OnStateChange observer wiring an obs.Gauge sees every transition —
// the hookup the mirror uses for "<layer>.replica<i>.breaker_state".
func TestBreakerStateChangeGauge(t *testing.T) {
	reg := obs.NewRegistry()
	gauge := reg.Gauge("replica0.breaker_state")
	var transitions [][2]State
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Threshold:   2,
		ReprobeBase: time.Second,
		Jitter:      -1,
		Now:         clk.now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, [2]State{from, to})
			gauge.Set(int64(to))
		},
	})

	if gauge.Value() != int64(Closed) {
		t.Fatalf("initial gauge = %d", gauge.Value())
	}
	// Two consecutive transport failures trip the breaker.
	b.Record(vfs.ENOTCONN)
	if gauge.Value() != int64(Closed) {
		t.Fatal("gauge moved before threshold")
	}
	if !b.Record(vfs.ENOTCONN) {
		t.Fatal("threshold failure did not trip")
	}
	if gauge.Value() != int64(Open) {
		t.Fatalf("gauge after trip = %d, want %d (open)", gauge.Value(), Open)
	}

	// The re-probe delay elapses; winning the probe is half-open.
	clk.advance(2 * time.Second)
	if !b.TryProbe() {
		t.Fatal("probe not granted after re-probe delay")
	}
	if gauge.Value() != int64(HalfOpen) {
		t.Fatalf("gauge during probe = %d, want %d (half-open)", gauge.Value(), HalfOpen)
	}

	// A failed probe re-opens with a doubled delay...
	b.RecordProbe(vfs.ENOTCONN)
	if gauge.Value() != int64(Open) {
		t.Fatalf("gauge after failed probe = %d, want %d (open)", gauge.Value(), Open)
	}
	// ...and a successful probe after the next window re-admits.
	clk.advance(3 * time.Second)
	if !b.TryProbe() {
		t.Fatal("second probe not granted")
	}
	if !b.RecordProbe(nil) {
		t.Fatal("successful probe did not re-admit")
	}
	if gauge.Value() != int64(Closed) {
		t.Fatalf("gauge after re-admit = %d, want %d (closed)", gauge.Value(), Closed)
	}

	want := [][2]State{
		{Closed, Open},
		{Open, HalfOpen},
		{HalfOpen, Open},
		{Open, HalfOpen},
		{HalfOpen, Closed},
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

// TestBreakerObserverMayReenter guards the documented contract that
// OnStateChange runs outside the breaker's lock.
func TestBreakerObserverMayReenter(t *testing.T) {
	var b *Breaker
	b = NewBreaker(BreakerConfig{
		Threshold: 1,
		OnStateChange: func(from, to State) {
			_ = b.State() // would deadlock if called under the lock
		},
	})
	b.Record(vfs.ENOTCONN)
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
}
