package resilient

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"tss/internal/vfs"
)

// fakeClock is a manually advanced clock for deterministic breaker and
// budget tests — no real time on any code path.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTransportClassification(t *testing.T) {
	for _, err := range []error{vfs.ENOTCONN, vfs.ETIMEDOUT, vfs.EIO} {
		if !TransportError(err) {
			t.Errorf("TransportError(%v) = false", err)
		}
	}
	for _, err := range []error{nil, vfs.ENOENT, vfs.EACCES, vfs.EEXIST, vfs.ESTALE} {
		if TransportError(err) {
			t.Errorf("TransportError(%v) = true", err)
		}
	}
	if Retryable(vfs.EIO) {
		t.Error("EIO must not be retryable against the same backend")
	}
	if !Retryable(vfs.ENOTCONN) || !Retryable(vfs.ETIMEDOUT) {
		t.Error("ENOTCONN/ETIMEDOUT must be retryable")
	}
}

func newTestBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Threshold:   3,
		ReprobeBase: time.Second,
		ReprobeMax:  8 * time.Second,
		Jitter:      -1, // deterministic schedule
		Now:         clk.now,
	})
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	if !b.Ready() || b.State() != Closed {
		t.Fatal("fresh breaker not closed")
	}
	b.Record(vfs.ENOTCONN)
	b.Record(vfs.ENOTCONN)
	if !b.Ready() {
		t.Fatal("breaker tripped below threshold")
	}
	if tripped := b.Record(vfs.ENOTCONN); !tripped {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.Ready() || b.State() != Open {
		t.Fatal("tripped breaker still ready")
	}
	if got := b.Stats().Trips; got != 1 {
		t.Errorf("trips = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	b.Record(vfs.ENOTCONN)
	b.Record(vfs.ENOTCONN)
	b.Record(nil) // backend answered: count resets
	b.Record(vfs.ENOTCONN)
	b.Record(vfs.ENOTCONN)
	if !b.Ready() {
		t.Error("breaker tripped despite an intervening success")
	}
	// A semantic error also proves reachability.
	b.Record(vfs.ENOENT)
	b.Record(vfs.ENOTCONN)
	b.Record(vfs.ENOTCONN)
	if !b.Ready() {
		t.Error("semantic error did not reset the failure count")
	}
}

func TestBreakerProbeSchedule(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(vfs.ENOTCONN)
	}
	// Open, re-probe due at +1s: no probe before then.
	if b.TryProbe() {
		t.Fatal("probe granted before the re-probe delay elapsed")
	}
	clk.advance(time.Second)
	if !b.TryProbe() {
		t.Fatal("probe not granted after the re-probe delay")
	}
	if b.TryProbe() {
		t.Fatal("second concurrent probe granted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	// Failed probe: doubled delay.
	b.RecordProbe(vfs.ENOTCONN)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.advance(time.Second)
	if b.TryProbe() {
		t.Fatal("probe granted before the doubled delay elapsed")
	}
	clk.advance(time.Second)
	if !b.TryProbe() {
		t.Fatal("probe not granted after the doubled delay")
	}
	// Successful probe: closed, re-admitted.
	if readmitted := b.RecordProbe(nil); !readmitted {
		t.Fatal("successful probe did not re-admit")
	}
	if !b.Ready() {
		t.Fatal("breaker not ready after re-admission")
	}
	st := b.Stats()
	if st.Probes != 2 || st.Readmits != 1 {
		t.Errorf("stats = %+v, want 2 probes, 1 readmit", st)
	}
}

func TestBreakerReprobeDelayCapped(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Record(vfs.ENOTCONN)
	}
	// Fail probes until the delay caps at ReprobeMax (8s): 1,2,4,8,8...
	delays := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second}
	for i, d := range delays {
		clk.advance(d - time.Millisecond)
		if b.TryProbe() {
			t.Fatalf("probe %d granted %v early", i, time.Millisecond)
		}
		clk.advance(time.Millisecond)
		if !b.TryProbe() {
			t.Fatalf("probe %d not granted after %v", i, d)
		}
		b.RecordProbe(vfs.ETIMEDOUT)
	}
}

func TestPolicyBackoffShape(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestPolicyDoRetriesAndSucceeds(t *testing.T) {
	fails := 3
	ops, prepares := 0, 0
	p := Policy{Attempts: 5, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	err, exhausted := p.Do(func() error {
		ops++
		if fails > 0 {
			fails--
			return vfs.ENOTCONN
		}
		return nil
	}, func() error { prepares++; return nil }, Retryable)
	if err != nil || exhausted {
		t.Fatalf("Do = %v, exhausted=%v", err, exhausted)
	}
	if ops != 4 || prepares != 3 {
		t.Errorf("ops=%d prepares=%d, want 4/3", ops, prepares)
	}
}

func TestPolicyDoExhaustsBudget(t *testing.T) {
	var retries []int
	p := Policy{
		Attempts: 3,
		Base:     time.Millisecond,
		Sleep:    func(time.Duration) {},
		OnRetry:  func(attempt int, err error) { retries = append(retries, attempt) },
	}
	err, exhausted := p.Do(func() error { return vfs.ENOTCONN }, nil, Retryable)
	if vfs.AsErrno(err) != vfs.ENOTCONN || !exhausted {
		t.Fatalf("Do = %v, exhausted=%v; want ENOTCONN, true", err, exhausted)
	}
	if len(retries) != 3 {
		t.Errorf("OnRetry fired %d times, want 3", len(retries))
	}
}

func TestPolicyDoSemanticErrorStopsImmediately(t *testing.T) {
	ops := 0
	p := Policy{Attempts: 5, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	err, exhausted := p.Do(func() error { ops++; return vfs.ENOENT }, nil, Retryable)
	if vfs.AsErrno(err) != vfs.ENOENT || exhausted || ops != 1 {
		t.Errorf("Do = %v exhausted=%v ops=%d; want ENOENT, false, 1", err, exhausted, ops)
	}
}

func TestPolicyDoPrepareFailureConsumesAttempt(t *testing.T) {
	ops, prepares := 0, 0
	p := Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	err, exhausted := p.Do(
		func() error { ops++; return vfs.ENOTCONN },
		func() error { prepares++; return vfs.ENOTCONN },
		Retryable)
	if vfs.AsErrno(err) != vfs.ENOTCONN || !exhausted {
		t.Fatalf("Do = %v, exhausted=%v", err, exhausted)
	}
	// Failed prepares never re-ran the op.
	if ops != 1 || prepares != 3 {
		t.Errorf("ops=%d prepares=%d, want 1/3", ops, prepares)
	}
}

func TestPolicyDoPermanentAborts(t *testing.T) {
	ops := 0
	p := Policy{Attempts: 5, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	err, exhausted := p.Do(
		func() error { ops++; return vfs.ENOTCONN },
		func() error { return Permanent(vfs.ESTALE) },
		Retryable)
	if vfs.AsErrno(err) != vfs.ESTALE || exhausted || ops != 1 {
		t.Errorf("Do = %v exhausted=%v ops=%d; want ESTALE, false, 1", err, exhausted, ops)
	}
}

func TestPolicyDoDeadlineBudget(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var slept time.Duration
	p := Policy{
		Attempts: 100,
		Base:     100 * time.Millisecond,
		Max:      100 * time.Millisecond,
		Budget:   350 * time.Millisecond,
		Now:      clk.now,
		Sleep:    func(d time.Duration) { slept += d; clk.advance(d) },
	}
	err, exhausted := p.Do(func() error { return vfs.ENOTCONN }, nil, Retryable)
	if !exhausted || vfs.AsErrno(err) != vfs.ENOTCONN {
		t.Fatalf("Do = %v, exhausted=%v", err, exhausted)
	}
	// 3 sleeps of 100ms fit in 350ms; the 4th would cross the budget.
	if slept != 300*time.Millisecond {
		t.Errorf("slept %v, want 300ms", slept)
	}
}

func TestPolicyFullJitterBounds(t *testing.T) {
	// Full jitter: each delay is uniform over [0, backoff), so the rand
	// sequence maps directly onto fractions of the 100ms backoff.
	seq := []float64{0, 0.5, 1 - 1e-9}
	i := 0
	p := Policy{
		Attempts: 3,
		Base:     100 * time.Millisecond,
		Max:      100 * time.Millisecond,
		Jitter:   0.5,
		Rand:     func() float64 { v := seq[i%len(seq)]; i++; return v },
	}
	var delays []time.Duration
	p.Sleep = func(d time.Duration) { delays = append(delays, d) }
	p.Do(func() error { return vfs.ENOTCONN }, nil, Retryable)
	if len(delays) != 3 {
		t.Fatalf("delays = %v", delays)
	}
	for _, d := range delays {
		if d < 0 || d >= 100*time.Millisecond {
			t.Errorf("full-jittered delay %v outside [0, 100ms)", d)
		}
	}
	if delays[0] != 0 {
		t.Errorf("rand=0 should give a zero delay under full jitter, got %v", delays[0])
	}
	if delays[1] != 50*time.Millisecond {
		t.Errorf("rand=0.5 should give 50ms, got %v", delays[1])
	}
}

func TestPushbackClassification(t *testing.T) {
	if !Pushback(vfs.EAGAIN) {
		t.Error("Pushback(EAGAIN) = false")
	}
	for _, err := range []error{nil, vfs.ENOTCONN, vfs.ETIMEDOUT, vfs.EIO, vfs.ENOENT} {
		if Pushback(err) {
			t.Errorf("Pushback(%v) = true", err)
		}
	}
	// A busy server is healthy: pushback must not feed the breaker or
	// the mirror's unreachable accounting.
	if TransportError(vfs.EAGAIN) {
		t.Error("EAGAIN must not classify as a transport error")
	}
	if Retryable(vfs.EAGAIN) {
		t.Error("EAGAIN is not reconnect-curable; plain Retryable must exclude it")
	}
	if !RetryableOrPushback(vfs.EAGAIN) || !RetryableOrPushback(vfs.ENOTCONN) {
		t.Error("RetryableOrPushback must admit both EAGAIN and ENOTCONN")
	}
	if RetryableOrPushback(vfs.ENOENT) {
		t.Error("RetryableOrPushback must reject semantic errors")
	}
}

// TestFullJitterDecorrelates drives N concurrent retriers against one
// "recovering" server and checks their first-retry delays spread over
// the backoff window instead of re-spiking in lockstep — the property
// the thundering-herd fix exists for.
func TestFullJitterDecorrelates(t *testing.T) {
	const n = 16
	delays := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i + 1)))
			fails := 1 // the server recovers after one failure
			p := Policy{
				Attempts: 3,
				Base:     100 * time.Millisecond,
				Max:      100 * time.Millisecond,
				Jitter:   1, // full jitter
				Rand:     r.Float64,
				Sleep: func(d time.Duration) {
					if delays[i] == 0 {
						delays[i] = d
					}
				},
			}
			err, _ := p.Do(func() error {
				if fails > 0 {
					fails--
					return vfs.EAGAIN
				}
				return nil
			}, nil, RetryableOrPushback)
			if err != nil {
				t.Errorf("retrier %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	distinct := make(map[time.Duration]struct{}, n)
	var min, max time.Duration = time.Hour, 0
	for _, d := range delays {
		distinct[d] = struct{}{}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if len(distinct) < n/2 {
		t.Errorf("only %d distinct delays among %d retriers — lockstep", len(distinct), n)
	}
	if max-min < 30*time.Millisecond {
		t.Errorf("delay spread %v too narrow for a 100ms window", max-min)
	}
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	exhausted := 0
	b := NewRetryBudget(2, 0.5)
	b.OnExhausted = func() { exhausted++ }
	// Starts full: two withdrawals succeed, the third is refused.
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("fresh budget refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("empty budget allowed a withdrawal")
	}
	if exhausted != 1 || b.Exhausted() != 1 {
		t.Errorf("exhausted hook=%d counter=%d, want 1/1", exhausted, b.Exhausted())
	}
	// Two successes earn one token back; deposits cap at capacity.
	b.Success()
	if b.Withdraw() {
		t.Fatal("half a token must not fund a retry")
	}
	b.Success()
	if !b.Withdraw() {
		t.Fatal("earned token refused")
	}
	for i := 0; i < 10; i++ {
		b.Success()
	}
	if got := b.Tokens(); got != 2 {
		t.Errorf("tokens after overflow deposits = %v, want capped at 2", got)
	}
	// A nil budget is unlimited.
	var nilB *RetryBudget
	if !nilB.Withdraw() {
		t.Error("nil budget must allow withdrawals")
	}
	nilB.Success() // must not panic
}

func TestPolicyDoChargesRetryBudget(t *testing.T) {
	b := NewRetryBudget(2, 0.1)
	ops := 0
	p := Policy{
		Attempts:    10,
		Base:        time.Millisecond,
		Sleep:       func(time.Duration) {},
		RetryBudget: b,
	}
	err, exhausted := p.Do(func() error { ops++; return vfs.EAGAIN }, nil, RetryableOrPushback)
	if vfs.AsErrno(err) != vfs.EAGAIN || !exhausted {
		t.Fatalf("Do = %v, exhausted=%v; want EAGAIN, true", err, exhausted)
	}
	// 1 initial try + 2 budgeted retries; the 3rd retry was refused.
	if ops != 3 {
		t.Errorf("ops = %d, want 3 (budget capped the loop before Attempts)", ops)
	}
	if b.Exhausted() != 1 {
		t.Errorf("budget exhaustions = %d, want 1", b.Exhausted())
	}
}

func TestPolicyDoSuccessEarnsBudget(t *testing.T) {
	b := NewRetryBudget(2, 1)
	b.Withdraw()
	b.Withdraw() // empty
	p := Policy{Attempts: 3, Base: time.Millisecond, Sleep: func(time.Duration) {}, RetryBudget: b}
	if err, _ := p.Do(func() error { return nil }, nil, RetryableOrPushback); err != nil {
		t.Fatal(err)
	}
	if !b.Withdraw() {
		t.Error("a successful Do must deposit into the budget")
	}
}
