package resilient

import (
	"errors"
	"time"
)

// Policy is the shared retry policy: a budget of attempts, a jittered
// exponential backoff between them, and an optional wall-clock budget
// that caps the total time spent retrying. The zero value retries
// nothing (Do runs the operation exactly once).
//
// A Policy value is immutable once configured and safe to share.
type Policy struct {
	// Attempts is the number of retries after the first try.
	Attempts int
	// Base is the delay before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the (pre-jitter) backoff delay; 0 means uncapped.
	Max time.Duration
	// Jitter > 0 enables full-jitter backoff: each delay is drawn
	// uniformly from [0, Backoff(attempt)), so concurrent retriers
	// against one recovering backend decorrelate instead of re-spiking
	// in lockstep. Non-positive disables randomization (deterministic
	// schedule). The magnitude is kept for configuration compatibility
	// but does not scale the delay — full jitter always spans the whole
	// backoff window, which is what kills the thundering herd.
	Jitter float64
	// Budget caps the total wall-clock time spent on retries; once the
	// next backoff would cross it, Do gives up. 0 means no time cap.
	Budget time.Duration
	// RetryBudget, when non-nil, is the shared token bucket charged one
	// token per retry; an empty bucket stops the loop with the current
	// error standing (reported as exhausted). Pushback retries draw
	// from the same bucket, which is what caps a retry storm.
	RetryBudget *RetryBudget
	// OnRetry, when non-nil, observes each retry about to be made: the
	// 0-based retry index and the error that provoked it.
	OnRetry func(attempt int, err error)
	// Sleep replaces time.Sleep (tests). Nil means time.Sleep.
	Sleep func(time.Duration)
	// Now replaces time.Now for the Budget clock (tests).
	Now func() time.Time
	// Rand is a uniform [0,1) source for jitter. Nil picks a private
	// seeded source on first use with jitter enabled.
	Rand func() float64
}

// permanentError aborts a retry loop from inside a prepare func.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so that a prepare function can abort Do: the
// loop stops immediately and Do returns the wrapped error.
func Permanent(err error) error { return &permanentError{err: err} }

// Backoff returns the (pre-jitter) delay before retry i: Base doubled
// i times, capped at Max.
func (p Policy) Backoff(i int) time.Duration {
	d := p.Base
	for ; i > 0 && (p.Max <= 0 || d < p.Max); i-- {
		d *= 2
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// Do runs op under the policy. While retryable(err) holds and budget
// remains, it sleeps the backoff for the attempt, then calls prepare
// (when non-nil) and re-runs op. prepare is the recovery step —
// typically a reconnect; a prepare error consumes the attempt without
// re-running op, except a Permanent error, which aborts the loop and
// is returned unwrapped.
//
// Do returns the final error and whether the loop gave up with a
// retryable error still standing (budget exhausted). Callers map
// exhaustion to their layer's error — the adapter, mirror, and stripe
// all use ETIMEDOUT, the value §6 gives for abandoned recovery.
func (p Policy) Do(op func() error, prepare func() error, retryable func(error) bool) (err error, exhausted bool) {
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	now := p.Now
	if now == nil {
		now = time.Now
	}
	rnd := p.Rand
	if rnd == nil && p.Jitter > 0 {
		rnd = lockedRand()
	}
	var deadline time.Time
	if p.Budget > 0 {
		deadline = now().Add(p.Budget)
	}
	err = op()
	for attempt := 0; attempt < p.Attempts && retryable(err); attempt++ {
		delay := p.Backoff(attempt)
		if p.Jitter > 0 {
			delay = fullJittered(delay, rnd)
		}
		if !deadline.IsZero() && now().Add(delay).After(deadline) {
			return err, true
		}
		if !p.RetryBudget.Withdraw() {
			return err, true
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		sleep(delay)
		if prepare != nil {
			if perr := prepare(); perr != nil {
				var pe *permanentError
				if errors.As(perr, &pe) {
					return pe.err, false
				}
				continue
			}
		}
		err = op()
	}
	if err == nil {
		p.RetryBudget.Success()
	}
	return err, retryable(err)
}
