// Package resilient is the health layer shared by every component of
// the tactical storage system: a per-backend circuit breaker, a common
// retry policy, and the transport-error classification they both key
// on.
//
// The paper's §3 "failure coherence" requirement says every TSS layer
// must present failures the same way the Unix interface does. The seed
// implementation honored that for error *values* but not for error
// *behavior*: only the adapter retried, the mirror re-probed a dead
// replica on every read, and nothing remembered that a backend was
// down. This package centralizes that memory so the adapter, the
// mirror, and the stripe all recover the same way:
//
//   - Transport failures (ENOTCONN, ETIMEDOUT, EIO) mean "the backend,
//     not the request, failed" — they are candidates for retry,
//     failover, and breaker accounting. Semantic errors (ENOENT,
//     EACCES, EEXIST, ...) always surface unchanged.
//   - A Breaker watches consecutive transport failures per backend and
//     trips open, so callers stop paying a dead backend's timeout on
//     every operation. It re-admits the backend through half-open
//     probes on a jittered exponential schedule.
//   - A Policy bounds retries by attempt count and by wall-clock
//     budget, with jittered exponential backoff between attempts.
package resilient

import (
	"math/rand"
	"sync"
	"time"

	"tss/internal/vfs"
)

// TransportError reports whether err indicates the backend (not the
// request) failed: the errnos a lost server produces. These are the
// errors the circuit breaker counts and the mirror fails over on.
func TransportError(err error) bool {
	switch vfs.AsErrno(err) {
	case vfs.ENOTCONN, vfs.ETIMEDOUT, vfs.EIO:
		return true
	}
	return false
}

// Retryable reports whether an operation that failed with err may be
// re-driven against the same backend after reconnecting. It is the
// subset of TransportError that excludes EIO: a hard I/O error from a
// reachable server is not cured by retrying, while a severed or
// timed-out connection may be.
func Retryable(err error) bool {
	switch vfs.AsErrno(err) {
	case vfs.ENOTCONN, vfs.ETIMEDOUT:
		return true
	}
	return false
}

// jittered perturbs d by ±frac, using the given uniform [0,1) source.
// A nil source or zero fraction returns d unchanged.
func jittered(d time.Duration, frac float64, rnd func() float64) time.Duration {
	if frac <= 0 || rnd == nil || d <= 0 {
		return d
	}
	f := 1 + frac*(2*rnd()-1)
	out := time.Duration(float64(d) * f)
	if out < 0 {
		return 0
	}
	return out
}

// lockedRand returns a mutex-guarded uniform [0,1) source seeded from
// the global generator; math/rand.Rand is not safe for concurrent use.
func lockedRand() func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(rand.Int63()))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}
