// Package resilient is the health layer shared by every component of
// the tactical storage system: a per-backend circuit breaker, a common
// retry policy, and the transport-error classification they both key
// on.
//
// The paper's §3 "failure coherence" requirement says every TSS layer
// must present failures the same way the Unix interface does. The seed
// implementation honored that for error *values* but not for error
// *behavior*: only the adapter retried, the mirror re-probed a dead
// replica on every read, and nothing remembered that a backend was
// down. This package centralizes that memory so the adapter, the
// mirror, and the stripe all recover the same way:
//
//   - Transport failures (ENOTCONN, ETIMEDOUT, EIO) mean "the backend,
//     not the request, failed" — they are candidates for retry,
//     failover, and breaker accounting. Semantic errors (ENOENT,
//     EACCES, EEXIST, ...) always surface unchanged.
//   - A Breaker watches consecutive transport failures per backend and
//     trips open, so callers stop paying a dead backend's timeout on
//     every operation. It re-admits the backend through half-open
//     probes on a jittered exponential schedule.
//   - A Policy bounds retries by attempt count, by wall-clock budget,
//     and (when configured) by a shared token-bucket RetryBudget, with
//     full-jitter exponential backoff between attempts.
//   - Overload pushback (EAGAIN) is its own class: retryable after
//     backoff and charged to the RetryBudget, but never breaker fuel —
//     a busy backend is not a dead one.
package resilient

import (
	"math/rand"
	"sync"
	"time"

	"tss/internal/vfs"
)

// TransportError reports whether err indicates the backend (not the
// request) failed: the errnos a lost server produces. These are the
// errors the circuit breaker counts and the mirror fails over on.
func TransportError(err error) bool {
	switch vfs.AsErrno(err) {
	case vfs.ENOTCONN, vfs.ETIMEDOUT, vfs.EIO:
		return true
	}
	return false
}

// Retryable reports whether an operation that failed with err may be
// re-driven against the same backend after reconnecting. It is the
// subset of TransportError that excludes EIO: a hard I/O error from a
// reachable server is not cured by retrying, while a severed or
// timed-out connection may be.
func Retryable(err error) bool {
	switch vfs.AsErrno(err) {
	case vfs.ENOTCONN, vfs.ETIMEDOUT:
		return true
	}
	return false
}

// Pushback reports whether err is an explicit overload signal (EAGAIN):
// the backend is healthy but shedding load. Pushback is deliberately
// NOT a TransportError — a busy server must not trip breakers or count
// as unreachable — but it is retryable after backing off, and every
// such retry is charged to the caller's RetryBudget so aggregate retry
// pressure stays capped while the backend drains (DESIGN.md §15).
func Pushback(err error) bool {
	return vfs.AsErrno(err) == vfs.EAGAIN
}

// RetryableOrPushback is the retry predicate for callers that honor
// overload pushback: the reconnect-curable transport errors plus
// EAGAIN. Hedging layers must still treat pushback differently from
// transport loss (back off rather than fail over).
func RetryableOrPushback(err error) bool {
	return Retryable(err) || Pushback(err)
}

// fullJittered implements the "full jitter" backoff scheme: the delay
// is drawn uniformly from [0, d), so concurrent retriers against one
// recovering backend decorrelate instead of re-spiking in lockstep —
// the classic thundering-herd fix. A nil source or non-positive d
// returns d unchanged (deterministic schedule for tests).
func fullJittered(d time.Duration, rnd func() float64) time.Duration {
	if rnd == nil || d <= 0 {
		return d
	}
	return time.Duration(rnd() * float64(d))
}

// jittered perturbs d by ±frac, using the given uniform [0,1) source.
// A nil source or zero fraction returns d unchanged. The breaker's
// re-probe schedule uses this bounded form — a probe should happen
// near its scheduled time, just not in fleet lockstep — while Policy
// retry delays use fullJittered.
func jittered(d time.Duration, frac float64, rnd func() float64) time.Duration {
	if frac <= 0 || rnd == nil || d <= 0 {
		return d
	}
	f := 1 + frac*(2*rnd()-1)
	out := time.Duration(float64(d) * f)
	if out < 0 {
		return 0
	}
	return out
}

// lockedRand returns a mutex-guarded uniform [0,1) source seeded from
// the global generator; math/rand.Rand is not safe for concurrent use.
func lockedRand() func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(rand.Int63()))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}
