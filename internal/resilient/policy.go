package resilient

import (
	"fmt"
	"time"
)

// Default policy knobs applied by NewPolicy. The zero-value Policy{}
// literal still retries nothing — these defaults exist only behind the
// constructor, so struct-literal call sites (and tests) keep their
// exact semantics.
const (
	// DefaultAttempts is the retry budget after the first try.
	DefaultAttempts = 3
	// DefaultBase is the first backoff delay.
	DefaultBase = 50 * time.Millisecond
	// DefaultMax caps the (pre-jitter) backoff delay.
	DefaultMax = 2 * time.Second
	// DefaultJitter is the ± randomization fraction per delay.
	DefaultJitter = 0.2
)

// PolicyOption adjusts one knob of a policy under construction.
type PolicyOption func(*Policy) error

// WithAttempts sets the number of retries after the first try. Zero is
// legal ("run once"); negative is rejected.
func WithAttempts(n int) PolicyOption {
	return func(p *Policy) error {
		if n < 0 {
			return fmt.Errorf("resilient: attempts must be >= 0, got %d", n)
		}
		p.Attempts = n
		return nil
	}
}

// WithBase sets the first backoff delay; it must be positive.
func WithBase(d time.Duration) PolicyOption {
	return func(p *Policy) error {
		if d <= 0 {
			return fmt.Errorf("resilient: base delay must be > 0, got %v", d)
		}
		p.Base = d
		return nil
	}
}

// WithMax caps the pre-jitter backoff delay; zero means uncapped.
func WithMax(d time.Duration) PolicyOption {
	return func(p *Policy) error {
		if d < 0 {
			return fmt.Errorf("resilient: max delay must be >= 0, got %v", d)
		}
		p.Max = d
		return nil
	}
}

// WithJitter sets the jitter knob, in [0, 1). Any positive value
// enables full-jitter backoff (delays drawn uniformly from the whole
// backoff window); see Policy.Jitter.
func WithJitter(f float64) PolicyOption {
	return func(p *Policy) error {
		if f < 0 || f >= 1 {
			return fmt.Errorf("resilient: jitter must be in [0, 1), got %v", f)
		}
		p.Jitter = f
		return nil
	}
}

// WithBudget caps the total wall-clock time spent on retries; zero
// means attempts alone bound the loop.
func WithBudget(d time.Duration) PolicyOption {
	return func(p *Policy) error {
		if d < 0 {
			return fmt.Errorf("resilient: budget must be >= 0, got %v", d)
		}
		p.Budget = d
		return nil
	}
}

// WithOnRetry installs an observer for each retry about to be made.
func WithOnRetry(f func(attempt int, err error)) PolicyOption {
	return func(p *Policy) error {
		p.OnRetry = f
		return nil
	}
}

// WithRetryBudget installs the shared token bucket charged one token
// per retry; nil removes any budget (unlimited retries within the
// attempt and wall-clock bounds).
func WithRetryBudget(b *RetryBudget) PolicyOption {
	return func(p *Policy) error {
		p.RetryBudget = b
		return nil
	}
}

// NewPolicy builds a retry policy from sane defaults (DefaultAttempts
// retries, DefaultBase backoff doubling to DefaultMax, DefaultJitter
// randomization) adjusted by the given options, validating each one.
// It exists because the zero-value Policy{} means "0 attempts": callers
// that forget to configure a literal silently retry nothing, while
// NewPolicy() can never hand back a policy that does less than it says.
// Struct literals remain fully supported for tests and callers that
// want exact control.
func NewPolicy(opts ...PolicyOption) (Policy, error) {
	p := Policy{
		Attempts: DefaultAttempts,
		Base:     DefaultBase,
		Max:      DefaultMax,
		Jitter:   DefaultJitter,
	}
	for _, opt := range opts {
		if err := opt(&p); err != nil {
			return Policy{}, err
		}
	}
	if p.Max > 0 && p.Max < p.Base {
		return Policy{}, fmt.Errorf("resilient: max delay %v is below base delay %v", p.Max, p.Base)
	}
	return p, nil
}

// MustPolicy is NewPolicy for statically known options; it panics on a
// validation error.
func MustPolicy(opts ...PolicyOption) Policy {
	p, err := NewPolicy(opts...)
	if err != nil {
		panic(err)
	}
	return p
}
