package resilient

import "sync"

// Default retry-budget knobs applied by NewRetryBudget.
const (
	// DefaultBudgetTokens is the bucket capacity: the largest retry
	// burst a freshly healthy client may emit.
	DefaultBudgetTokens = 10.0
	// DefaultBudgetEarn is the fraction of a token deposited per
	// successful operation, so sustained retry rate is capped at
	// DefaultBudgetEarn retries per success (10%) once the initial
	// burst allowance is spent.
	DefaultBudgetEarn = 0.1
)

// RetryBudget is a token-bucket cap on aggregate retry volume, shared
// by every operation of one client stack. Successes deposit a fraction
// of a token; each retry withdraws a whole token; when the bucket is
// empty, retries are refused and the original error surfaces.
//
// This is the client half of the overload contract (DESIGN.md §15):
// the server sheds with EAGAIN, and the budget guarantees that a fleet
// of retrying clients amplifies offered load by at most (1 + earn)
// once the burst allowance is gone — a retry storm cannot sustain
// itself, because storms spend tokens without earning any.
//
// All methods are safe for concurrent use and on a nil receiver: a nil
// budget is unlimited, so wiring it through call sites needs no
// branches.
type RetryBudget struct {
	mu        sync.Mutex
	tokens    float64
	capacity  float64
	earn      float64
	exhausted int64

	// OnExhausted, when non-nil, observes each refused withdrawal —
	// observability layers hang the resilient.budget_exhausted counter
	// here. Called without the budget lock held.
	OnExhausted func()
}

// NewRetryBudget returns a full bucket holding capacity tokens that
// earns earnPerSuccess per successful operation. Non-positive
// arguments take the package defaults.
func NewRetryBudget(capacity, earnPerSuccess float64) *RetryBudget {
	if capacity <= 0 {
		capacity = DefaultBudgetTokens
	}
	if earnPerSuccess <= 0 {
		earnPerSuccess = DefaultBudgetEarn
	}
	return &RetryBudget{tokens: capacity, capacity: capacity, earn: earnPerSuccess}
}

// Success deposits the per-success earning, capped at capacity. Safe
// on a nil receiver (no-op).
func (b *RetryBudget) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// Withdraw spends one token for a retry, reporting whether the retry
// is allowed. Safe on a nil receiver (always allowed: nil means no
// budget configured).
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	} else {
		b.exhausted++
	}
	b.mu.Unlock()
	if !ok && b.OnExhausted != nil {
		b.OnExhausted()
	}
	return ok
}

// Tokens returns the current balance. Safe on a nil receiver (+Inf is
// not representable in a useful way here, so nil reports 0; callers
// should treat a nil budget as unlimited instead of reading this).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Exhausted returns how many retries the budget has refused.
func (b *RetryBudget) Exhausted() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}
