package auth

import (
	"crypto/ed25519"
	"testing"
	"time"
)

func TestTicketAuth(t *testing.T) {
	issuer, err := NewTicketIssuer()
	if err != nil {
		t.Fatal(err)
	}
	ticket, key, err := issuer.Issue("visitor-42", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cli, srv, cerr, serr := runHandshake(t,
		[]Credential{&TicketCredential{Ticket: ticket, Key: key}},
		[]Verifier{&TicketVerifier{Issuers: []ed25519.PublicKey{issuer.PublicKey()}}},
		PeerInfo{})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != "ticket:visitor-42" || srv != cli {
		t.Errorf("subjects: %q / %q", cli, srv)
	}
}

func TestTicketRejectsUnknownIssuer(t *testing.T) {
	issuer, _ := NewTicketIssuer()
	rogue, _ := NewTicketIssuer()
	ticket, key, _ := rogue.Issue("mallory", time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&TicketCredential{Ticket: ticket, Key: key}},
		[]Verifier{&TicketVerifier{Issuers: []ed25519.PublicKey{issuer.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("rogue-issued ticket accepted")
	}
}

func TestTicketRejectsExpired(t *testing.T) {
	issuer, _ := NewTicketIssuer()
	ticket, key, _ := issuer.Issue("late", -time.Minute)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&TicketCredential{Ticket: ticket, Key: key}},
		[]Verifier{&TicketVerifier{Issuers: []ed25519.PublicKey{issuer.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("expired ticket accepted")
	}
}

func TestTicketRejectsStolenTicketWithoutKey(t *testing.T) {
	issuer, _ := NewTicketIssuer()
	ticket, _, _ := issuer.Issue("victim", time.Hour)
	_, wrongKey, _ := issuer.Issue("thief", time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&TicketCredential{Ticket: ticket, Key: wrongKey}},
		[]Verifier{&TicketVerifier{Issuers: []ed25519.PublicKey{issuer.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("ticket without matching key accepted")
	}
}

func TestTicketSubjectCannotBeTampered(t *testing.T) {
	issuer, _ := NewTicketIssuer()
	ticket, key, _ := issuer.Issue("lowly", time.Hour)
	ticket.Subject = "admin" // tamper: escalate
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&TicketCredential{Ticket: ticket, Key: key}},
		[]Verifier{&TicketVerifier{Issuers: []ed25519.PublicKey{issuer.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("tampered subject accepted")
	}
}
