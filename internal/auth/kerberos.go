package auth

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// The kerberos method simulates the Kerberos flow: a key distribution
// center shares a long-term key with each service; a client obtains a
// ticket (sealed with the service key) and a session key, then proves
// itself to the service with an authenticator MACed under the session
// key. HMAC-SHA256 stands in for DES/AES sealing; the protocol shape —
// third-party KDC, ticket + authenticator, expiry — is preserved.

// Ticket is the sealed credential a client presents to a service.
type Ticket struct {
	User       string `json:"user"`    // principal, e.g. "alice@ND.EDU"
	Service    string `json:"service"` // e.g. "host/fileserver@ND.EDU"
	Expiry     int64  `json:"expiry"`  // Unix seconds
	SessionKey []byte `json:"session_key"`
}

// KDC is a simulated key distribution center.
type KDC struct {
	mu          sync.Mutex
	serviceKeys map[string][]byte
	// Now supplies the clock; nil means time.Now.
	Now func() time.Time
}

// NewKDC returns an empty key distribution center.
func NewKDC() *KDC {
	return &KDC{serviceKeys: make(map[string][]byte)}
}

func (k *KDC) now() time.Time {
	if k.Now != nil {
		return k.Now()
	}
	return time.Now()
}

// RegisterService creates and returns a fresh long-term key for the
// named service principal. The service installs this key in its
// KerberosVerifier.
func (k *KDC) RegisterService(service string) ([]byte, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.serviceKeys[service] = key
	k.mu.Unlock()
	return key, nil
}

func sealTicket(t *Ticket, serviceKey []byte) (string, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, serviceKey)
	mac.Write(body)
	return base64.StdEncoding.EncodeToString(body) + "." + hex.EncodeToString(mac.Sum(nil)), nil
}

// OpenTicket validates a sealed ticket with the service's key.
func OpenTicket(wire string, serviceKey []byte, now time.Time) (*Ticket, error) {
	dot := strings.IndexByte(wire, '.')
	if dot < 0 {
		return nil, fmt.Errorf("auth/krb: malformed ticket")
	}
	body, err := base64.StdEncoding.DecodeString(wire[:dot])
	if err != nil {
		return nil, fmt.Errorf("auth/krb: malformed ticket body: %w", err)
	}
	wantMAC, err := hex.DecodeString(wire[dot+1:])
	if err != nil {
		return nil, fmt.Errorf("auth/krb: malformed ticket MAC: %w", err)
	}
	mac := hmac.New(sha256.New, serviceKey)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), wantMAC) {
		return nil, fmt.Errorf("auth/krb: ticket MAC invalid")
	}
	var t Ticket
	if err := json.Unmarshal(body, &t); err != nil {
		return nil, fmt.Errorf("auth/krb: malformed ticket JSON: %w", err)
	}
	if now.Unix() > t.Expiry {
		return nil, fmt.Errorf("auth/krb: ticket expired")
	}
	return &t, nil
}

// IssueTicket returns a sealed ticket for user to talk to service,
// together with the session key (delivered to the client over the
// in-process "secure channel" that stands in for the AS exchange).
func (k *KDC) IssueTicket(user, service string, lifetime time.Duration) (wire string, sessionKey []byte, err error) {
	k.mu.Lock()
	svcKey, ok := k.serviceKeys[service]
	k.mu.Unlock()
	if !ok {
		return "", nil, fmt.Errorf("auth/krb: unknown service %q", service)
	}
	sessionKey = make([]byte, 32)
	if _, err := rand.Read(sessionKey); err != nil {
		return "", nil, err
	}
	t := &Ticket{
		User:       user,
		Service:    service,
		Expiry:     k.now().Add(lifetime).Unix(),
		SessionKey: sessionKey,
	}
	wire, err = sealTicket(t, svcKey)
	return wire, sessionKey, err
}

// KerberosCredential is the client side of the kerberos method.
type KerberosCredential struct {
	TicketWire string
	SessionKey []byte
}

// Method returns "kerberos".
func (*KerberosCredential) Method() string { return "kerberos" }

// Prove sends the ticket and an authenticator over the server nonce.
func (c *KerberosCredential) Prove(r *bufio.Reader, w io.Writer) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "nonce ") {
		return fmt.Errorf("auth/krb: expected nonce, got %q", line)
	}
	nonce, err := hex.DecodeString(line[len("nonce "):])
	if err != nil {
		return fmt.Errorf("auth/krb: bad nonce: %w", err)
	}
	if _, err := fmt.Fprintf(w, "ticket %s\n", c.TicketWire); err != nil {
		return err
	}
	mac := hmac.New(sha256.New, c.SessionKey)
	mac.Write(nonce)
	_, err = fmt.Fprintf(w, "authn %s\n", hex.EncodeToString(mac.Sum(nil)))
	return err
}

// KerberosVerifier is the server side of the kerberos method.
type KerberosVerifier struct {
	Service    string
	ServiceKey []byte
	// Now supplies the clock; nil means time.Now.
	Now func() time.Time
}

// Method returns "kerberos".
func (*KerberosVerifier) Method() string { return "kerberos" }

// Verify issues a nonce, validates the presented ticket and
// authenticator, and returns the ticket's user principal.
func (v *KerberosVerifier) Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (string, error) {
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(w, "nonce %s\n", hex.EncodeToString(nonce[:])); err != nil {
		return "", err
	}
	tline, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(tline, "ticket ") {
		return "", fmt.Errorf("auth/krb: expected ticket, got %q", tline)
	}
	aline, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(aline, "authn ") {
		return "", fmt.Errorf("auth/krb: expected authenticator, got %q", aline)
	}
	now := time.Now
	if v.Now != nil {
		now = v.Now
	}
	ticket, err := OpenTicket(tline[len("ticket "):], v.ServiceKey, now())
	if err != nil {
		return "", err
	}
	if ticket.Service != v.Service {
		return "", fmt.Errorf("auth/krb: ticket for wrong service %q", ticket.Service)
	}
	wantMAC, err := hex.DecodeString(aline[len("authn "):])
	if err != nil {
		return "", fmt.Errorf("auth/krb: malformed authenticator")
	}
	mac := hmac.New(sha256.New, ticket.SessionKey)
	mac.Write(nonce[:])
	if !hmac.Equal(mac.Sum(nil), wantMAC) {
		return "", fmt.Errorf("auth/krb: authenticator invalid")
	}
	return ticket.User, nil
}
