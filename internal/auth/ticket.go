package auth

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// The ticket method lets a storage owner mint bearer credentials for
// collaborators who have no common authentication infrastructure at
// all — the fully self-contained sharing model of a TSS. The owner
// holds an issuing keypair whose public half is installed in the
// server; a ticket binds a chosen subject name and expiry to a fresh
// client keypair, signed by the issuer. Login presents the ticket and
// proves possession of the client key by signing a server nonce.
//
// (Chirp grew an equivalent ticket mechanism for exactly this purpose;
// the paper's "flexible system for authentication" is the hook.)

// TicketIssuer mints tickets. Create one with NewTicketIssuer and
// install PublicKey on the server's TicketVerifier.
type TicketIssuer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewTicketIssuer generates a fresh issuing keypair.
func NewTicketIssuer() (*TicketIssuer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &TicketIssuer{pub: pub, priv: priv}, nil
}

// PublicKey returns the verification key servers trust.
func (ti *TicketIssuer) PublicKey() ed25519.PublicKey { return ti.pub }

// issuerFile is the serialized form of an issuer keypair.
type issuerFile struct {
	Public  string `json:"public"`
	Private string `json:"private"`
}

// Export serializes the issuer keypair for storage in a key file.
// Guard the result like a private key.
func (ti *TicketIssuer) Export() ([]byte, error) {
	return json.MarshalIndent(issuerFile{
		Public:  hex.EncodeToString(ti.pub),
		Private: hex.EncodeToString(ti.priv),
	}, "", "  ")
}

// ImportTicketIssuer loads an issuer keypair exported by Export.
func ImportTicketIssuer(data []byte) (*TicketIssuer, error) {
	var f issuerFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("auth/ticket: bad issuer file: %w", err)
	}
	pub, err := hex.DecodeString(f.Public)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("auth/ticket: bad issuer public key")
	}
	priv, err := hex.DecodeString(f.Private)
	if err != nil || len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("auth/ticket: bad issuer private key")
	}
	return &TicketIssuer{pub: pub, priv: priv}, nil
}

// ParseIssuerPublicKey decodes the hex verification key that servers
// configure (the public half alone; servers never hold issuer private
// keys).
func ParseIssuerPublicKey(hexKey string) (ed25519.PublicKey, error) {
	pub, err := hex.DecodeString(strings.TrimSpace(hexKey))
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("auth/ticket: bad issuer public key")
	}
	return pub, nil
}

// bearerFile is the serialized form a ticket holder carries.
type bearerFile struct {
	Ticket *AuthTicket `json:"ticket"`
	Key    string      `json:"key"`
}

// ExportBearer serializes a ticket plus its private key for the
// holder's ticket file.
func ExportBearer(t *AuthTicket, key ed25519.PrivateKey) ([]byte, error) {
	return json.MarshalIndent(bearerFile{Ticket: t, Key: hex.EncodeToString(key)}, "", "  ")
}

// ImportBearer loads a ticket file into a usable credential.
func ImportBearer(data []byte) (*TicketCredential, error) {
	var f bearerFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("auth/ticket: bad ticket file: %w", err)
	}
	key, err := hex.DecodeString(f.Key)
	if err != nil || len(key) != ed25519.PrivateKeySize || f.Ticket == nil {
		return nil, fmt.Errorf("auth/ticket: bad ticket file contents")
	}
	return &TicketCredential{Ticket: f.Ticket, Key: key}, nil
}

// AuthTicket is a signed bearer credential.
type AuthTicket struct {
	Subject   string `json:"subject"` // name granted, without method prefix
	PublicKey []byte `json:"public_key"`
	NotAfter  int64  `json:"not_after"`
	Signature []byte `json:"signature"`
}

func ticketSignedBytes(subject string, pub []byte, notAfter int64) []byte {
	return []byte(fmt.Sprintf("ticket\x00%s\x00%x\x00%d", subject, pub, notAfter))
}

// Issue mints a ticket naming subject, valid for lifetime, returning
// the ticket and the private key the bearer proves possession of.
func (ti *TicketIssuer) Issue(subject string, lifetime time.Duration) (*AuthTicket, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	notAfter := time.Now().Add(lifetime).Unix()
	t := &AuthTicket{
		Subject:   subject,
		PublicKey: pub,
		NotAfter:  notAfter,
		Signature: ed25519.Sign(ti.priv, ticketSignedBytes(subject, pub, notAfter)),
	}
	return t, priv, nil
}

// TicketCredential is the client side of the ticket method.
type TicketCredential struct {
	Ticket *AuthTicket
	Key    ed25519.PrivateKey
}

// Method returns "ticket".
func (*TicketCredential) Method() string { return "ticket" }

// Prove sends the ticket and a nonce signature.
func (c *TicketCredential) Prove(r *bufio.Reader, w io.Writer) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "nonce ") {
		return fmt.Errorf("auth/ticket: expected nonce, got %q", line)
	}
	nonce, err := hex.DecodeString(line[len("nonce "):])
	if err != nil {
		return fmt.Errorf("auth/ticket: bad nonce: %w", err)
	}
	body, err := json.Marshal(c.Ticket)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "ticket %s\n", body); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "sig %s\n", hex.EncodeToString(ed25519.Sign(c.Key, nonce)))
	return err
}

// TicketVerifier is the server side of the ticket method. Tickets
// signed by any key in Issuers are accepted.
type TicketVerifier struct {
	Issuers []ed25519.PublicKey
	// Now supplies the clock for expiry checks; nil means time.Now.
	Now func() time.Time
}

// Method returns "ticket".
func (*TicketVerifier) Method() string { return "ticket" }

// Verify issues a nonce, checks the ticket signature, expiry, and the
// bearer's possession proof, and returns the ticket subject.
func (v *TicketVerifier) Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (string, error) {
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(w, "nonce %s\n", hex.EncodeToString(nonce[:])); err != nil {
		return "", err
	}
	tline, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(tline, "ticket ") {
		return "", fmt.Errorf("auth/ticket: expected ticket, got %q", tline)
	}
	var t AuthTicket
	if err := json.Unmarshal([]byte(tline[len("ticket "):]), &t); err != nil {
		return "", fmt.Errorf("auth/ticket: bad ticket: %w", err)
	}
	sline, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(sline, "sig ") {
		return "", fmt.Errorf("auth/ticket: expected sig, got %q", sline)
	}
	sig, err := hex.DecodeString(sline[len("sig "):])
	if err != nil {
		return "", fmt.Errorf("auth/ticket: bad signature: %w", err)
	}
	if len(t.PublicKey) != ed25519.PublicKeySize {
		return "", fmt.Errorf("auth/ticket: bad bearer key")
	}
	now := time.Now
	if v.Now != nil {
		now = v.Now
	}
	if now().Unix() > t.NotAfter {
		return "", fmt.Errorf("auth/ticket: ticket expired")
	}
	signed := ticketSignedBytes(t.Subject, t.PublicKey, t.NotAfter)
	trusted := false
	for _, issuer := range v.Issuers {
		if ed25519.Verify(issuer, signed, t.Signature) {
			trusted = true
			break
		}
	}
	if !trusted {
		return "", fmt.Errorf("auth/ticket: issuer not trusted")
	}
	if !ed25519.Verify(ed25519.PublicKey(t.PublicKey), nonce[:], sig) {
		return "", fmt.Errorf("auth/ticket: possession proof invalid")
	}
	return t.Subject, nil
}
