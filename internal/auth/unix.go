package auth

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"os/user"
	"path/filepath"
	"strings"
	"syscall"
)

// The unix method is a challenge/response within a filesystem shared by
// client and server (classically /tmp on the same machine): the server
// asks the client to create a specific file, then infers the client's
// identity from the owner of the file that appears. Possession of a
// local account is thereby proven without the server being root.

// UnixCredential is the client side of the unix method.
type UnixCredential struct{}

// Method returns "unix".
func (UnixCredential) Method() string { return "unix" }

// Prove responds to the server's challenge by creating the named file.
func (UnixCredential) Prove(r *bufio.Reader, w io.Writer) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "challenge ") {
		return fmt.Errorf("auth/unix: expected challenge, got %q", line)
	}
	path := line[len("challenge "):]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		// Still inform the server so the dialog stays in sync.
		fmt.Fprintf(w, "failed\n")
		return err
	}
	f.Close()
	_, err = fmt.Fprintf(w, "touched\n")
	return err
}

// UnixVerifier is the server side of the unix method. ChallengeDir is
// the directory in which challenge files are created; it must be
// writable by legitimate clients (the paper uses /tmp).
type UnixVerifier struct {
	ChallengeDir string
}

// Method returns "unix".
func (*UnixVerifier) Method() string { return "unix" }

// Verify issues a challenge file name, waits for the client to create
// it, and derives the subject name from the file's owner.
func (v *UnixVerifier) Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (string, error) {
	dir := v.ChallengeDir
	if dir == "" {
		dir = os.TempDir()
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ".chirp-challenge-"+hex.EncodeToString(nonce[:]))
	defer os.Remove(path)
	if _, err := fmt.Fprintf(w, "challenge %s\n", path); err != nil {
		return "", err
	}
	resp, err := readLine(r)
	if err != nil {
		return "", err
	}
	if resp != "touched" {
		return "", fmt.Errorf("auth/unix: client could not touch challenge")
	}
	st, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("auth/unix: challenge file missing: %w", err)
	}
	sys, ok := st.Sys().(*syscall.Stat_t)
	if !ok {
		return "", fmt.Errorf("auth/unix: cannot determine file owner")
	}
	u, err := user.LookupId(fmt.Sprint(sys.Uid))
	if err != nil {
		return fmt.Sprintf("uid%d", sys.Uid), nil
	}
	return u.Username, nil
}
