package auth

import (
	"bufio"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// The globus method simulates the Grid Security Infrastructure used by
// the paper's prototype: a certificate authority signs user
// certificates binding a distinguished name to a public key, and login
// proves possession of the private key by signing a server nonce.
// Ed25519 stands in for RSA/X.509; the trust structure — third-party
// CA, DN-style names matched by ACL wildcards such as
// "globus:/O=Notre_Dame/*" — is identical.

// CA is a mini certificate authority.
type CA struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewCA generates a fresh certificate authority.
func NewCA() (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &CA{pub: pub, priv: priv}, nil
}

// PublicKey returns the CA verification key, which servers trust.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.pub }

// Cert binds a distinguished name to a user public key, signed by a CA.
type Cert struct {
	Subject   string `json:"subject"` // DN, e.g. "/O=NotreDame/CN=alice"
	PublicKey []byte `json:"public_key"`
	NotAfter  int64  `json:"not_after"` // Unix seconds
	Signature []byte `json:"signature"` // CA signature over signedBytes
}

func certSignedBytes(subject string, pub []byte, notAfter int64) []byte {
	return []byte(fmt.Sprintf("cert\x00%s\x00%x\x00%d", subject, pub, notAfter))
}

// Issue creates a certificate for subject valid for the given lifetime
// and returns it together with the user's private key.
func (ca *CA) Issue(subject string, lifetime time.Duration) (*Cert, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	notAfter := time.Now().Add(lifetime).Unix()
	cert := &Cert{
		Subject:   subject,
		PublicKey: pub,
		NotAfter:  notAfter,
		Signature: ed25519.Sign(ca.priv, certSignedBytes(subject, pub, notAfter)),
	}
	return cert, priv, nil
}

// VerifyCert checks a certificate against a trusted CA key and the
// current time.
func VerifyCert(caKey ed25519.PublicKey, c *Cert, now time.Time) error {
	if len(c.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("auth/gsi: bad public key length")
	}
	if !ed25519.Verify(caKey, certSignedBytes(c.Subject, c.PublicKey, c.NotAfter), c.Signature) {
		return fmt.Errorf("auth/gsi: certificate signature invalid")
	}
	if now.Unix() > c.NotAfter {
		return fmt.Errorf("auth/gsi: certificate expired")
	}
	return nil
}

// GSICredential is the client side of the globus method.
type GSICredential struct {
	Cert *Cert
	Key  ed25519.PrivateKey
}

// Method returns "globus".
func (*GSICredential) Method() string { return "globus" }

// Prove sends the certificate and a signature over the server's nonce.
func (c *GSICredential) Prove(r *bufio.Reader, w io.Writer) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(line, "nonce ") {
		return fmt.Errorf("auth/gsi: expected nonce, got %q", line)
	}
	nonce, err := hex.DecodeString(line[len("nonce "):])
	if err != nil {
		return fmt.Errorf("auth/gsi: bad nonce: %w", err)
	}
	certJSON, err := json.Marshal(c.Cert)
	if err != nil {
		return err
	}
	sig := ed25519.Sign(c.Key, nonce)
	if _, err := fmt.Fprintf(w, "cert %s\n", certJSON); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "sig %s\n", hex.EncodeToString(sig))
	return err
}

// GSIVerifier is the server side of the globus method. It trusts
// certificates signed by any key in TrustedCAs.
type GSIVerifier struct {
	TrustedCAs []ed25519.PublicKey
	// Now supplies the clock for expiry checks; nil means time.Now.
	Now func() time.Time
}

// Method returns "globus".
func (*GSIVerifier) Method() string { return "globus" }

// Verify issues a nonce, receives the certificate and nonce signature,
// and returns the certified distinguished name.
func (v *GSIVerifier) Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (string, error) {
	var nonce [32]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return "", err
	}
	if _, err := fmt.Fprintf(w, "nonce %s\n", hex.EncodeToString(nonce[:])); err != nil {
		return "", err
	}
	certLine, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(certLine, "cert ") {
		return "", fmt.Errorf("auth/gsi: expected cert, got %q", certLine)
	}
	var cert Cert
	if err := json.Unmarshal([]byte(certLine[len("cert "):]), &cert); err != nil {
		return "", fmt.Errorf("auth/gsi: bad certificate: %w", err)
	}
	sigLine, err := readLine(r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(sigLine, "sig ") {
		return "", fmt.Errorf("auth/gsi: expected sig, got %q", sigLine)
	}
	sig, err := hex.DecodeString(sigLine[len("sig "):])
	if err != nil {
		return "", fmt.Errorf("auth/gsi: bad signature encoding: %w", err)
	}
	now := time.Now
	if v.Now != nil {
		now = v.Now
	}
	var verifyErr error
	for _, caKey := range v.TrustedCAs {
		if verifyErr = VerifyCert(caKey, &cert, now()); verifyErr == nil {
			break
		}
	}
	if len(v.TrustedCAs) == 0 {
		verifyErr = fmt.Errorf("auth/gsi: no trusted CAs configured")
	}
	if verifyErr != nil {
		return "", verifyErr
	}
	if !ed25519.Verify(ed25519.PublicKey(cert.PublicKey), nonce[:], sig) {
		return "", fmt.Errorf("auth/gsi: nonce signature invalid")
	}
	return cert.Subject, nil
}
