package auth

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
)

// HostnameCredential authenticates by the connecting host's domain
// name. There is no dialog: the server derives the name from the
// connection itself, so the client merely offers the method.
type HostnameCredential struct{}

// Method returns "hostname".
func (HostnameCredential) Method() string { return "hostname" }

// Prove is a no-op; the hostname method has no client dialog.
func (HostnameCredential) Prove(r *bufio.Reader, w io.Writer) error { return nil }

// HostnameVerifier resolves the peer address to a host name. Resolve
// may be overridden (e.g. in tests or on simulated networks); the
// default strips the port and maps loopback addresses to "localhost".
type HostnameVerifier struct {
	// Resolve maps a peer network address to a hostname. Returning ""
	// rejects the connection.
	Resolve func(addr string) string
}

// Method returns "hostname".
func (*HostnameVerifier) Method() string { return "hostname" }

// Verify derives the subject name from the peer address.
func (v *HostnameVerifier) Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (string, error) {
	if peer.Host != "" {
		return peer.Host, nil
	}
	resolve := v.Resolve
	if resolve == nil {
		resolve = DefaultResolve
	}
	name := resolve(peer.Addr)
	if name == "" {
		return "", errors.New("auth: cannot resolve peer hostname")
	}
	return name, nil
}

// DefaultResolve is the default peer-address-to-hostname mapping: the
// port is stripped and loopback addresses become "localhost".
func DefaultResolve(addr string) string {
	host := addr
	if h, _, err := net.SplitHostPort(addr); err == nil {
		host = h
	}
	if host == "127.0.0.1" || host == "::1" {
		return "localhost"
	}
	if host == "" {
		return ""
	}
	// Simulated networks use symbolic addresses already.
	return strings.Trim(host, "[]")
}
