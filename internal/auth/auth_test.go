package auth

import (
	"bufio"
	"crypto/ed25519"
	"net"
	"strings"
	"testing"
	"time"
)

func TestSubjectParts(t *testing.T) {
	s := MakeSubject("globus", "/O=ND/CN=alice")
	if s != "globus:/O=ND/CN=alice" {
		t.Errorf("subject = %q", s)
	}
	if s.Method() != "globus" {
		t.Errorf("method = %q", s.Method())
	}
	if s.Name() != "/O=ND/CN=alice" {
		t.Errorf("name = %q", s.Name())
	}
	bare := Subject("noprefix")
	if bare.Method() != "noprefix" || bare.Name() != "" {
		t.Error("bare subject parsing wrong")
	}
}

// runHandshake runs Login/Accept over an in-memory connection pair.
func runHandshake(t *testing.T, creds []Credential, verifiers []Verifier, peer PeerInfo) (client, server Subject, cliErr, srvErr error) {
	t.Helper()
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, srvErr = Accept(bufio.NewReader(sc), sc, peer, verifiers...)
	}()
	client, cliErr = Login(bufio.NewReader(cc), cc, creds...)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handshake deadlock")
	}
	return
}

func TestHostnameAuth(t *testing.T) {
	cli, srv, cerr, serr := runHandshake(t,
		[]Credential{HostnameCredential{}},
		[]Verifier{&HostnameVerifier{}},
		PeerInfo{Host: "laptop.cse.nd.edu"})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != "hostname:laptop.cse.nd.edu" || srv != cli {
		t.Errorf("subjects: client=%q server=%q", cli, srv)
	}
}

func TestHostnameResolveDefault(t *testing.T) {
	if got := DefaultResolve("127.0.0.1:4567"); got != "localhost" {
		t.Errorf("loopback resolve = %q", got)
	}
	if got := DefaultResolve("node5.cluster:9094"); got != "node5.cluster" {
		t.Errorf("named resolve = %q", got)
	}
	if got := DefaultResolve("sim-host"); got != "sim-host" {
		t.Errorf("symbolic resolve = %q", got)
	}
}

func TestUnixAuth(t *testing.T) {
	dir := t.TempDir()
	cli, srv, cerr, serr := runHandshake(t,
		[]Credential{UnixCredential{}},
		[]Verifier{&UnixVerifier{ChallengeDir: dir}},
		PeerInfo{})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != srv || cli.Method() != "unix" || cli.Name() == "" {
		t.Errorf("subjects: client=%q server=%q", cli, srv)
	}
}

func TestGSIAuth(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, key, err := ca.Issue("/O=Notre_Dame/CN=alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cli, srv, cerr, serr := runHandshake(t,
		[]Credential{&GSICredential{Cert: cert, Key: key}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != "globus:/O=Notre_Dame/CN=alice" || srv != cli {
		t.Errorf("subjects: %q / %q", cli, srv)
	}
}

func TestGSIRejectsUntrustedCA(t *testing.T) {
	ca, _ := NewCA()
	rogue, _ := NewCA()
	cert, key, _ := rogue.Issue("/O=Evil/CN=mallory", time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&GSICredential{Cert: cert, Key: key}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("rogue CA certificate accepted")
	}
}

func TestGSIRejectsExpiredCert(t *testing.T) {
	ca, _ := NewCA()
	cert, key, _ := ca.Issue("/O=ND/CN=alice", -time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&GSICredential{Cert: cert, Key: key}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("expired certificate accepted")
	}
}

func TestGSIRejectsWrongKey(t *testing.T) {
	ca, _ := NewCA()
	cert, _, _ := ca.Issue("/O=ND/CN=alice", time.Hour)
	_, wrongKey, _ := ca.Issue("/O=ND/CN=bob", time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&GSICredential{Cert: cert, Key: wrongKey}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("nonce signature with wrong key accepted")
	}
}

func TestKerberosAuth(t *testing.T) {
	kdc := NewKDC()
	svcKey, err := kdc.RegisterService("host/fileserver@ND.EDU")
	if err != nil {
		t.Fatal(err)
	}
	wire, session, err := kdc.IssueTicket("alice@ND.EDU", "host/fileserver@ND.EDU", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cli, srv, cerr, serr := runHandshake(t,
		[]Credential{&KerberosCredential{TicketWire: wire, SessionKey: session}},
		[]Verifier{&KerberosVerifier{Service: "host/fileserver@ND.EDU", ServiceKey: svcKey}},
		PeerInfo{})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != "kerberos:alice@ND.EDU" || srv != cli {
		t.Errorf("subjects: %q / %q", cli, srv)
	}
}

func TestKerberosRejectsForgedTicket(t *testing.T) {
	kdc := NewKDC()
	svcKey, _ := kdc.RegisterService("host/a@R")
	wire, session, _ := kdc.IssueTicket("alice@R", "host/a@R", time.Hour)
	// Tamper with the ticket body.
	forged := "x" + wire[1:]
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&KerberosCredential{TicketWire: forged, SessionKey: session}},
		[]Verifier{&KerberosVerifier{Service: "host/a@R", ServiceKey: svcKey}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("forged ticket accepted")
	}
}

func TestKerberosRejectsWrongService(t *testing.T) {
	kdc := NewKDC()
	kdc.RegisterService("host/a@R")
	bKey, _ := kdc.RegisterService("host/b@R")
	wire, session, _ := kdc.IssueTicket("alice@R", "host/a@R", time.Hour)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&KerberosCredential{TicketWire: wire, SessionKey: session}},
		[]Verifier{&KerberosVerifier{Service: "host/b@R", ServiceKey: bKey}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("ticket for service a accepted by service b")
	}
}

func TestKerberosExpiredTicket(t *testing.T) {
	kdc := NewKDC()
	svcKey, _ := kdc.RegisterService("host/a@R")
	wire, session, _ := kdc.IssueTicket("alice@R", "host/a@R", -time.Minute)
	_, _, cerr, serr := runHandshake(t,
		[]Credential{&KerberosCredential{TicketWire: wire, SessionKey: session}},
		[]Verifier{&KerberosVerifier{Service: "host/a@R", ServiceKey: svcKey}},
		PeerInfo{})
	if cerr == nil && serr == nil {
		t.Fatal("expired ticket accepted")
	}
}

// The client should fall through methods the server does not support
// and succeed with the first mutually supported one (§4: "a client may
// attempt any number of authentication methods in any order").
func TestMethodNegotiation(t *testing.T) {
	ca, _ := NewCA()
	cert, key, _ := ca.Issue("/O=ND/CN=carol", time.Hour)
	cli, _, cerr, serr := runHandshake(t,
		[]Credential{&KerberosCredential{TicketWire: "junk", SessionKey: nil}, HostnameCredential{}, &GSICredential{Cert: cert, Key: key}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{Host: "h"})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if cli != "globus:/O=ND/CN=carol" {
		t.Errorf("negotiated subject = %q", cli)
	}
}

func TestAllMethodsRejected(t *testing.T) {
	_, _, cerr, serr := runHandshake(t,
		[]Credential{HostnameCredential{}},
		nil, // server supports nothing
		PeerInfo{Host: "h"})
	if cerr != ErrRejected {
		t.Errorf("client error = %v, want ErrRejected", cerr)
	}
	if serr != ErrRejected {
		t.Errorf("server error = %v, want ErrRejected", serr)
	}
}

// A failed verification should let the client retry with another
// credential on the same connection.
func TestRetryAfterFailedVerify(t *testing.T) {
	ca, _ := NewCA()
	rogue, _ := NewCA()
	badCert, badKey, _ := rogue.Issue("/O=Evil/CN=m", time.Hour)
	goodCert, goodKey, _ := ca.Issue("/O=ND/CN=alice", time.Hour)
	cli, _, cerr, serr := runHandshake(t,
		[]Credential{&GSICredential{Cert: badCert, Key: badKey}, &GSICredential{Cert: goodCert, Key: goodKey}},
		[]Verifier{&GSIVerifier{TrustedCAs: []ed25519.PublicKey{ca.PublicKey()}}},
		PeerInfo{})
	if cerr != nil || serr != nil {
		t.Fatalf("errors: client=%v server=%v", cerr, serr)
	}
	if !strings.Contains(string(cli), "alice") {
		t.Errorf("subject = %q, want the good credential", cli)
	}
}
