// Package auth implements the virtual user space of the tactical
// storage system (§4 of the paper).
//
// Identity is fully independent of the local account database: a client
// authenticates by one of several methods and receives a free-form
// subject name of the form "method:name", which the server's ACLs match
// against. One user may hold several credentials, but only one is used
// per session — the first method both sides support and that succeeds.
//
// Methods provided, mirroring the paper:
//
//	hostname — the client is identified by the domain name of the
//	           connecting host (no dialog).
//	unix     — a challenge/response within a shared local filesystem:
//	           the server challenges the client to create a file and
//	           infers identity from the created file.
//	globus   — a simulated Grid Security Infrastructure: an Ed25519
//	           mini-CA signs user certificates; login proves possession
//	           of the certified key by signing a server nonce.
//	kerberos — a simulated KDC issues tickets sealed with a service
//	           key; login presents the ticket plus an authenticator
//	           MACed with the ticket's session key.
package auth

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Subject is a virtual-user-space identity, "method:name".
type Subject string

// Method returns the authentication method portion of the subject.
func (s Subject) Method() string {
	if i := strings.IndexByte(string(s), ':'); i >= 0 {
		return string(s[:i])
	}
	return string(s)
}

// Name returns the name portion of the subject.
func (s Subject) Name() string {
	if i := strings.IndexByte(string(s), ':'); i >= 0 {
		return string(s[i+1:])
	}
	return ""
}

// MakeSubject builds a subject from a method and name.
func MakeSubject(method, name string) Subject {
	return Subject(method + ":" + name)
}

// PeerInfo describes the remote endpoint of a connection, as seen by
// the server. Host is the resolved peer hostname (used by the hostname
// method); Addr is the raw network address.
type PeerInfo struct {
	Addr string
	Host string
}

// Credential is the client side of one authentication method.
type Credential interface {
	// Method returns the wire name of the method.
	Method() string
	// Prove runs the client half of the dialog after the server has
	// agreed to attempt this method.
	Prove(r *bufio.Reader, w io.Writer) error
}

// Verifier is the server side of one authentication method.
type Verifier interface {
	Method() string
	// Verify runs the server half of the dialog and returns the
	// authenticated name (without the method prefix).
	Verify(r *bufio.Reader, w io.Writer, peer PeerInfo) (name string, err error)
}

// ErrRejected reports that the server refused every offered credential.
var ErrRejected = errors.New("auth: all authentication methods rejected")

const maxLine = 64 << 10

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLine {
		return "", fmt.Errorf("auth: line too long")
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// Login authenticates the client end of a connection, attempting each
// credential in order and returning the subject granted by the server.
func Login(r *bufio.Reader, w io.Writer, creds ...Credential) (Subject, error) {
	for _, c := range creds {
		if _, err := fmt.Fprintf(w, "auth %s\n", c.Method()); err != nil {
			return "", err
		}
		resp, err := readLine(r)
		if err != nil {
			return "", err
		}
		if resp != "yes" {
			continue // server has no verifier for this method
		}
		if err := c.Prove(r, w); err != nil {
			// The dialog failed mid-way; the server ends with a
			// verdict line we must consume before trying the next
			// method — but a broken dialog may have desynchronized
			// the stream, so give up.
			return "", fmt.Errorf("auth: %s dialog: %w", c.Method(), err)
		}
		verdict, err := readLine(r)
		if err != nil {
			return "", err
		}
		if strings.HasPrefix(verdict, "ok ") {
			return Subject(verdict[3:]), nil
		}
		// "fail": try the next credential.
	}
	if _, err := fmt.Fprintf(w, "auth done\n"); err != nil {
		return "", err
	}
	return "", ErrRejected
}

// Accept authenticates the server end of a connection against the given
// verifiers and returns the established subject.
func Accept(r *bufio.Reader, w io.Writer, peer PeerInfo, verifiers ...Verifier) (Subject, error) {
	byMethod := make(map[string]Verifier, len(verifiers))
	for _, v := range verifiers {
		byMethod[v.Method()] = v
	}
	for {
		line, err := readLine(r)
		if err != nil {
			return "", err
		}
		if !strings.HasPrefix(line, "auth ") {
			return "", fmt.Errorf("auth: protocol error: expected auth request, got %q", line)
		}
		method := line[5:]
		if method == "done" {
			return "", ErrRejected
		}
		v, ok := byMethod[method]
		if !ok {
			if _, err := io.WriteString(w, "no\n"); err != nil {
				return "", err
			}
			continue
		}
		if _, err := io.WriteString(w, "yes\n"); err != nil {
			return "", err
		}
		name, err := v.Verify(r, w, peer)
		if err != nil {
			if _, werr := io.WriteString(w, "fail\n"); werr != nil {
				return "", werr
			}
			continue
		}
		subject := MakeSubject(method, name)
		if _, err := fmt.Fprintf(w, "ok %s\n", subject); err != nil {
			return "", err
		}
		return subject, nil
	}
}
