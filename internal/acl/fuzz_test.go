package acl

import (
	"bytes"
	"testing"
)

// FuzzACLParse feeds arbitrary bytes to the ACL file parser. The parser
// must never panic, and any list it accepts must re-encode to a stable
// canonical form: Encode -> Parse -> Encode is a fixed point, and the
// reparsed list must grant exactly the same rights.
func FuzzACLParse(f *testing.F) {
	f.Add([]byte("unix:alice rwla\n"))
	f.Add([]byte("hostname:*.cse.nd.edu rl\nunix:btovar v(rwla)\n"))
	f.Add([]byte("# comment\n\nunix:%20odd rwldav\n"))
	f.Add([]byte("subject v()\n"))
	f.Add([]byte("unix:alice q\n"))
	f.Add([]byte("unix:alice v(rwla"))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Parse(data)
		if err != nil {
			return
		}
		enc := l.Encode()
		l2, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %q: %v", enc, err)
		}
		enc2 := l2.Encode()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical:\nfirst  %q\nsecond %q", enc, enc2)
		}
		for _, e := range l.Entries {
			r1, v1 := l.RightsFor(e.Subject)
			r2, v2 := l2.RightsFor(e.Subject)
			if r1 != r2 || v1 != v2 {
				t.Fatalf("rights for %q changed in round trip: %v/%v -> %v/%v",
					e.Subject, r1, v1, r2, v2)
			}
		}
	})
}
