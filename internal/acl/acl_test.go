package acl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseRights(t *testing.T) {
	cases := []struct {
		in   string
		want Rights
	}{
		{"r", R}, {"w", W}, {"l", L}, {"d", D}, {"a", A}, {"v", V},
		{"rwl", R | W | L},
		{"rwldav", AllRights | V},
		{"n", 0},
		{"-", 0},
	}
	for _, c := range cases {
		got, err := ParseRights(c.in)
		if err != nil {
			t.Fatalf("ParseRights(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseRights(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseRights("rx"); err == nil {
		t.Error("ParseRights accepted unknown right")
	}
}

func TestParseSpecReserveForm(t *testing.T) {
	rights, reserve, err := ParseSpec("v(rwla)")
	if err != nil {
		t.Fatal(err)
	}
	if rights != V {
		t.Errorf("rights = %v, want V", rights)
	}
	if reserve != R|W|L|A {
		t.Errorf("reserve = %v", reserve)
	}

	rights, reserve, err = ParseSpec("rlv(rwl)")
	if err != nil {
		t.Fatal(err)
	}
	if rights != R|L|V || reserve != R|W|L {
		t.Errorf("combined spec: rights=%v reserve=%v", rights, reserve)
	}

	for _, bad := range []string{"(rwl)", "v(rwl", "x(r)", "v(v)", "rw(l)"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed spec", bad)
		}
	}
}

func TestEntrySpecRoundTrip(t *testing.T) {
	f := func(r uint8, hasV bool, sub uint8) bool {
		e := Entry{Subject: "hostname:x", Rights: Rights(r) & AllRights}
		if hasV {
			e.Rights |= V
			e.ReserveRights = Rights(sub) & AllRights
		}
		rights, reserve, err := ParseSpec(e.Spec())
		if err != nil {
			return false
		}
		return rights == e.Rights && reserve == e.ReserveRights
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		pat, sub string
		want     bool
	}{
		{"hostname:*.cse.nd.edu", "hostname:laptop.cse.nd.edu", true},
		{"hostname:*.cse.nd.edu", "hostname:laptop.cse.nd.eduX", false},
		{"globus:/O=Notre_Dame/*", "globus:/O=Notre_Dame/CN=alice", true},
		{"globus:/O=Notre_Dame/*", "globus:/O=Wisconsin/CN=bob", false},
		{"*", "anything:at all", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a**b", "a-x-b", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := Match(c.pat, c.sub); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pat, c.sub, got, c.want)
		}
	}
}

// Property: a literal pattern matches exactly itself (when it has no '*').
func TestMatchLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		for _, c := range s {
			if c == '*' {
				return true
			}
		}
		return Match(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Paper example: root ACL granting campus machines read/write/list.
func TestPaperExampleACL(t *testing.T) {
	data := []byte("hostname:*.cse.nd.edu rwl\nglobus:/O=Notre_Dame/* rwl\n")
	l, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Allows("hostname:laptop.cse.nd.edu", R|W|L) {
		t.Error("campus host denied")
	}
	if l.Allows("hostname:evil.org", R) {
		t.Error("off-campus host allowed")
	}
	if !l.Allows("globus:/O=Notre_Dame/CN=alice", R|W|L) {
		t.Error("campus GSI user denied")
	}
	if l.Allows("hostname:laptop.cse.nd.edu", A) {
		t.Error("admin right granted without being listed")
	}
}

// Paper example: reservation rights in the v(...) form.
func TestPaperReserveACL(t *testing.T) {
	data := []byte("hostname:*.cse.nd.edu v(rwl)\nglobus:/O=Notre_Dame/* v(rwla)\n")
	l, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	rights, reserve := l.RightsFor("hostname:laptop.cse.nd.edu")
	if rights != V {
		t.Errorf("rights = %v, want V only", rights)
	}
	if reserve != R|W|L {
		t.Errorf("reserve = %v, want rwl (no admin!)", reserve)
	}
	_, reserve = l.RightsFor("globus:/O=Notre_Dame/CN=alice")
	if reserve != R|W|L|A {
		t.Errorf("GSI reserve = %v, want rwla", reserve)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	subjects := []string{
		"hostname:a.b.c", "unix:alice", "globus:/O=ND/CN=a b", "kerberos:x@Y.Z", "sub with spaces",
	}
	for i := 0; i < 200; i++ {
		l := &List{}
		n := rnd.Intn(5) + 1
		for j := 0; j < n; j++ {
			e := Entry{
				Subject: subjects[rnd.Intn(len(subjects))] + string(rune('a'+j)),
				Rights:  Rights(rnd.Intn(64)),
			}
			if e.Rights&V != 0 {
				e.ReserveRights = Rights(rnd.Intn(32))
			}
			if e.Rights == 0 && e.ReserveRights == 0 {
				e.Rights = R
			}
			l.Entries = append(l.Entries, e)
		}
		got, err := Parse(l.Encode())
		if err != nil {
			t.Fatalf("round trip parse: %v\n%s", err, l.Encode())
		}
		if !reflect.DeepEqual(l.Entries, got.Entries) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", l.Entries, got.Entries)
		}
	}
}

func TestRightsForUnion(t *testing.T) {
	l := &List{}
	l.Set("unix:alice", R, 0)
	l.Set("unix:*", L, 0)
	rights, _ := l.RightsFor("unix:alice")
	if rights != R|L {
		t.Errorf("union rights = %v, want rl", rights)
	}
}

func TestSetReplaceAndRevoke(t *testing.T) {
	l := &List{}
	l.Set("unix:alice", R|W, 0)
	l.Set("unix:alice", R, 0)
	if len(l.Entries) != 1 || l.Entries[0].Rights != R {
		t.Errorf("Set did not replace: %+v", l.Entries)
	}
	l.Set("unix:alice", 0, 0)
	if len(l.Entries) != 0 {
		t.Errorf("Set did not revoke: %+v", l.Entries)
	}
	l.Set("unix:bob", 0, 0)
	if len(l.Entries) != 0 {
		t.Error("revoking a missing entry added one")
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	l, err := Parse([]byte("# comment\n\nunix:alice rwl\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Entries) != 1 {
		t.Fatalf("entries = %d", len(l.Entries))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"onlysubject", "a b c", "unix:x zz"} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed ACL", bad)
		}
	}
}

func TestHas(t *testing.T) {
	r := R | W
	if !r.Has(R) || !r.Has(R|W) || r.Has(R|L) || r.Has(A) {
		t.Error("Has wrong")
	}
	var zero Rights
	if !zero.Has(0) {
		t.Error("zero.Has(0) should be true")
	}
}

func TestSubjectEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return UnescapeSubject(EscapeSubject(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	l := &List{}
	l.Set("unix:alice", R, 0)
	c := l.Clone()
	c.Set("unix:alice", W, 0)
	if r, _ := l.RightsFor("unix:alice"); r != R {
		t.Error("Clone is not a deep copy")
	}
}
