// Package acl implements the per-directory access control lists of the
// Chirp file server (§4 of the paper).
//
// Each directory carries a list of entries mapping a subject pattern to
// a set of rights. Rights are: R (read files), W (write/create files),
// L (list the directory), D (delete files), A (administer the ACL) and
// V (reserve: the right to mkdir a fresh, privately-owned namespace).
// The V right carries its own parenthesized sub-rights — v(rwla) —
// which become the creator's rights in the reserved directory.
//
// Subjects are free-form virtual-user-space names of the form
// "method:name" (e.g. "hostname:laptop.cse.nd.edu",
// "globus:/O=NotreDame/CN=alice"); patterns may use '*' wildcards.
package acl

import (
	"fmt"
	"strings"
)

// Rights is a bit set of access rights.
type Rights uint8

// Individual rights.
const (
	R Rights = 1 << iota // read file contents
	W                    // write and create files, mkdir
	L                    // list directory contents, stat
	D                    // delete files (but not modify)
	A                    // read and modify the ACL
	V                    // reserve: create a privately-owned subdirectory
)

// AllRights is every right except V.
const AllRights = R | W | L | D | A

var rightLetters = []struct {
	r Rights
	c byte
}{
	{R, 'r'},
	{W, 'w'},
	{L, 'l'},
	{D, 'd'},
	{A, 'a'},
}

// Has reports whether r contains every right in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// String renders rights in canonical order, e.g. "rwl". Reserve renders
// as a bare 'v'; use Entry.String for the v(...) form with sub-rights.
func (r Rights) String() string {
	var b strings.Builder
	for _, rl := range rightLetters {
		if r&rl.r != 0 {
			b.WriteByte(rl.c)
		}
	}
	if r&V != 0 {
		b.WriteByte('v')
	}
	if b.Len() == 0 {
		return "n" // explicit "no rights"
	}
	return b.String()
}

// ParseRights parses a rights string such as "rwl", "n", or "rwlv".
// It does not accept the parenthesized reserve form; see ParseSpec.
func ParseRights(s string) (Rights, error) {
	var r Rights
	if s == "n" || s == "-" {
		return 0, nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'r':
			r |= R
		case 'w':
			r |= W
		case 'l':
			r |= L
		case 'd':
			r |= D
		case 'a':
			r |= A
		case 'v':
			r |= V
		default:
			return 0, fmt.Errorf("acl: unknown right %q in %q", s[i], s)
		}
	}
	return r, nil
}

// Entry grants rights to every subject matching Subject. ReserveRights
// holds the sub-rights of the V right: they are the rights granted to a
// creator inside a directory reserved via mkdir.
type Entry struct {
	Subject       string
	Rights        Rights
	ReserveRights Rights
}

// String renders the entry as "subject spec", using the v(...) form
// when reserve sub-rights are present.
func (e Entry) String() string {
	return EscapeSubject(e.Subject) + " " + e.Spec()
}

// Spec renders just the rights specification of the entry.
func (e Entry) Spec() string {
	base := e.Rights &^ V
	var b strings.Builder
	if base != 0 {
		b.WriteString(base.String())
	}
	if e.Rights&V != 0 {
		b.WriteByte('v')
		if e.ReserveRights != 0 {
			b.WriteByte('(')
			b.WriteString(e.ReserveRights.String())
			b.WriteByte(')')
		}
	}
	if b.Len() == 0 {
		return "n"
	}
	return b.String()
}

// ParseSpec parses a rights specification that may include the
// parenthesized reserve form, e.g. "rwl", "v(rwla)", "rlv(rwl)".
func ParseSpec(s string) (rights, reserve Rights, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		r, err := ParseRights(s)
		return r, 0, err
	}
	if !strings.HasSuffix(s, ")") || open == 0 || s[open-1] != 'v' {
		return 0, 0, fmt.Errorf("acl: malformed rights spec %q", s)
	}
	inner := s[open+1 : len(s)-1]
	reserve, err = ParseRights(inner)
	if err != nil {
		return 0, 0, err
	}
	if reserve&V != 0 {
		return 0, 0, fmt.Errorf("acl: reserve sub-rights may not include v: %q", s)
	}
	rights, err = ParseRights(s[:open]) // includes the trailing 'v'
	if err != nil {
		return 0, 0, err
	}
	return rights, reserve, nil
}

// EscapeSubject escapes whitespace in a subject so entries remain
// one-line, space-separated records.
func EscapeSubject(s string) string {
	r := strings.NewReplacer("%", "%25", " ", "%20", "\t", "%09", "\n", "%0A")
	return r.Replace(s)
}

// UnescapeSubject reverses EscapeSubject.
func UnescapeSubject(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			switch s[i : i+3] {
			case "%25":
				b.WriteByte('%')
				i += 2
				continue
			case "%20":
				b.WriteByte(' ')
				i += 2
				continue
			case "%09":
				b.WriteByte('\t')
				i += 2
				continue
			case "%0A":
				b.WriteByte('\n')
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Match reports whether subject matches pattern. Patterns are literal
// except for '*', which matches any (possibly empty) run of characters.
// This is the wildcard form used in the paper's examples, e.g.
// "hostname:*.cse.nd.edu" or "globus:/O=Notre_Dame/*".
func Match(pattern, subject string) bool {
	// Iterative glob match restricted to '*'.
	var px, sx int
	star, mark := -1, 0
	for sx < len(subject) {
		switch {
		case px < len(pattern) && (pattern[px] == subject[sx]):
			px++
			sx++
		case px < len(pattern) && pattern[px] == '*':
			star = px
			mark = sx
			px++
		case star >= 0:
			px = star + 1
			mark++
			sx = mark
		default:
			return false
		}
	}
	for px < len(pattern) && pattern[px] == '*' {
		px++
	}
	return px == len(pattern)
}

// List is an ordered access control list.
type List struct {
	Entries []Entry
}

// asciiFields splits on runs of ASCII space and tab only, so escaped
// subjects containing exotic Unicode whitespace survive parsing.
func asciiFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// Parse reads an ACL in its serialized form: one entry per line,
// "subject spec". Blank lines and lines starting with '#' are ignored.
func Parse(data []byte) (*List, error) {
	l := &List{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := asciiFields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("acl: line %d: want \"subject rights\", got %q", ln+1, line)
		}
		rights, reserve, err := ParseSpec(fields[1])
		if err != nil {
			return nil, fmt.Errorf("acl: line %d: %v", ln+1, err)
		}
		l.Entries = append(l.Entries, Entry{
			Subject:       UnescapeSubject(fields[0]),
			Rights:        rights,
			ReserveRights: reserve,
		})
	}
	return l, nil
}

// Encode serializes the list in the form accepted by Parse.
func (l *List) Encode() []byte {
	var b strings.Builder
	for _, e := range l.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// RightsFor returns the union of rights granted to subject by all
// matching entries, and the union of reserve sub-rights.
func (l *List) RightsFor(subject string) (rights, reserve Rights) {
	for _, e := range l.Entries {
		if Match(e.Subject, subject) {
			rights |= e.Rights
			reserve |= e.ReserveRights
		}
	}
	return rights, reserve
}

// Allows reports whether subject holds every right in want.
func (l *List) Allows(subject string, want Rights) bool {
	r, _ := l.RightsFor(subject)
	return r.Has(want)
}

// Set grants subject exactly the given rights, replacing any existing
// entry with the same (literal) subject. Granting no rights removes
// the entry.
func (l *List) Set(subject string, rights, reserve Rights) {
	for i, e := range l.Entries {
		if e.Subject == subject {
			if rights == 0 && reserve == 0 {
				l.Entries = append(l.Entries[:i], l.Entries[i+1:]...)
				return
			}
			l.Entries[i].Rights = rights
			l.Entries[i].ReserveRights = reserve
			return
		}
	}
	if rights == 0 && reserve == 0 {
		return
	}
	l.Entries = append(l.Entries, Entry{Subject: subject, Rights: rights, ReserveRights: reserve})
}

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	c := &List{Entries: make([]Entry, len(l.Entries))}
	copy(c.Entries, l.Entries)
	return c
}
