// Package workload provides the synthetic application workloads used
// by the benchmark harness.
//
// SP5 models the BaBar simulation component of §8. The real SP5 is a
// collection of scripts, executables, and dynamic libraries whose
// configuration and output data live behind a commercial I/O library;
// what matters for the paper's table is its *phase structure*:
//
//   - an initialization phase dominated by metadata traffic — the
//     dynamic linker and script interpreters search many paths and
//     open many small files, so init time is governed by per-operation
//     latency and explodes by an order of magnitude on any remote
//     filesystem (446 s locally vs ~4500 s on LAN in the paper);
//   - an event loop dominated by compute with bounded I/O per event,
//     so per-event time suffers only a small factor (64 s vs 113 s).
//
// This package reproduces that structure at an adjustable scale.
package workload

import (
	"fmt"
	"time"

	"tss/internal/vfs"
)

// SP5Config scales the synthetic SP5.
type SP5Config struct {
	// Libraries is the number of shared objects and scripts the init
	// phase loads.
	Libraries int
	// LibSize is the size of each library in bytes.
	LibSize int
	// SearchMisses is the number of failed path probes per library
	// (the dynamic linker searching its path list).
	SearchMisses int
	// ConfigFiles is the number of small configuration/lock files read
	// at init (the commercial I/O library's configuration database).
	ConfigFiles int
	// Events is the number of simulation events to process.
	Events int
	// EventRead and EventWrite are the bytes of input read and output
	// written per event.
	EventRead  int
	EventWrite int
	// EventCompute is the pure computation time per event.
	EventCompute time.Duration
}

// DefaultSP5 is the scale used by the benchmark harness: large enough
// that latency structure dominates timing noise, small enough to run
// in seconds.
func DefaultSP5() SP5Config {
	return SP5Config{
		Libraries:    120,
		LibSize:      16 << 10,
		SearchMisses: 4,
		ConfigFiles:  60,
		Events:       30,
		EventRead:    16 << 10,
		EventWrite:   8 << 10,
		EventCompute: 4 * time.Millisecond,
	}
}

// SP5Result reports one run.
type SP5Result struct {
	InitTime     time.Duration
	TimePerEvent time.Duration
}

// String renders the result like the paper's table rows.
func (r SP5Result) String() string {
	return fmt.Sprintf("init %v, %v/event", r.InitTime.Round(time.Millisecond), r.TimePerEvent.Round(time.Millisecond))
}

// SetupSP5 builds the application install tree on fs: the library
// directory, the scripts, and the configuration database. It also
// creates the event input data.
func SetupSP5(fs vfs.FileSystem, cfg SP5Config) error {
	for _, dir := range []string{"/sp5", "/sp5/lib", "/sp5/etc", "/sp5/data", "/sp5/out"} {
		if err := vfs.MkdirAll(fs, dir, 0o755); err != nil {
			return err
		}
	}
	lib := make([]byte, cfg.LibSize)
	for i := range lib {
		lib[i] = byte(i)
	}
	for i := 0; i < cfg.Libraries; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/sp5/lib/lib%03d.so", i), lib, 0o755); err != nil {
			return err
		}
	}
	conf := []byte("# sp5 configuration fragment\nkey value\n")
	for i := 0; i < cfg.ConfigFiles; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/sp5/etc/conf%03d", i), conf, 0o644); err != nil {
			return err
		}
	}
	input := make([]byte, cfg.EventRead)
	for i := range input {
		input[i] = byte(i * 13)
	}
	return vfs.WriteFile(fs, "/sp5/data/events.in", input, 0o644)
}

// spin burns CPU for roughly d, standing in for the event physics.
// A sleep would be descheduled identically under every filesystem, so
// spinning keeps the compute share honest across configurations.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(end) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 0.0000001
		}
	}
	_ = x
}

// RunSP5 executes the synthetic application against fs, which must
// have been prepared by SetupSP5, and reports the phase timings.
func RunSP5(fs vfs.FileSystem, cfg SP5Config) (SP5Result, error) {
	var res SP5Result

	// --- Initialization: the metadata storm. ---
	start := time.Now()
	buf := make([]byte, 64<<10)
	for i := 0; i < cfg.Libraries; i++ {
		// The linker probes SearchMisses wrong directories first.
		for m := 0; m < cfg.SearchMisses; m++ {
			fs.Stat(fmt.Sprintf("/sp5/searchpath%d/lib%03d.so", m, i))
		}
		path := fmt.Sprintf("/sp5/lib/lib%03d.so", i)
		if _, err := fs.Stat(path); err != nil {
			return res, fmt.Errorf("sp5 init: %s: %w", path, err)
		}
		f, err := fs.Open(path, vfs.O_RDONLY, 0)
		if err != nil {
			return res, fmt.Errorf("sp5 init: %s: %w", path, err)
		}
		var off int64
		for {
			n, err := f.Pread(buf, off)
			if err != nil {
				f.Close()
				return res, err
			}
			if n == 0 {
				break
			}
			off += int64(n)
		}
		f.Close()
	}
	for i := 0; i < cfg.ConfigFiles; i++ {
		if _, err := vfs.ReadFile(fs, fmt.Sprintf("/sp5/etc/conf%03d", i)); err != nil {
			return res, fmt.Errorf("sp5 init: conf%03d: %w", i, err)
		}
	}
	res.InitTime = time.Since(start)

	// --- Event loop: compute plus bounded I/O. ---
	in, err := fs.Open("/sp5/data/events.in", vfs.O_RDONLY, 0)
	if err != nil {
		return res, err
	}
	defer in.Close()
	out, err := fs.Open("/sp5/out/events.out", vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, 0o644)
	if err != nil {
		return res, err
	}
	defer out.Close()

	readBuf := make([]byte, cfg.EventRead)
	writeBuf := make([]byte, cfg.EventWrite)
	evStart := time.Now()
	for ev := 0; ev < cfg.Events; ev++ {
		if err := vfs.ReadFull(in, readBuf, 0); err != nil {
			return res, fmt.Errorf("sp5 event %d read: %w", ev, err)
		}
		spin(cfg.EventCompute)
		for i := range writeBuf {
			writeBuf[i] = readBuf[i%len(readBuf)] ^ byte(ev)
		}
		if err := vfs.WriteAll(out, writeBuf, int64(ev)*int64(cfg.EventWrite)); err != nil {
			return res, fmt.Errorf("sp5 event %d write: %w", ev, err)
		}
	}
	if cfg.Events > 0 {
		res.TimePerEvent = time.Since(evStart) / time.Duration(cfg.Events)
	}
	return res, nil
}
