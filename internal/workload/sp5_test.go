package workload

import (
	"testing"
	"time"

	"tss/internal/vfs"
)

func smallCfg() SP5Config {
	return SP5Config{
		Libraries:    10,
		LibSize:      4 << 10,
		SearchMisses: 2,
		ConfigFiles:  5,
		Events:       4,
		EventRead:    4 << 10,
		EventWrite:   2 << 10,
		EventCompute: 200 * time.Microsecond,
	}
}

func TestSetupCreatesInstallTree(t *testing.T) {
	fs, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	if err := SetupSP5(fs, cfg); err != nil {
		t.Fatal(err)
	}
	libs, err := fs.ReadDir("/sp5/lib")
	if err != nil || len(libs) != cfg.Libraries {
		t.Fatalf("libs = %d, %v", len(libs), err)
	}
	confs, err := fs.ReadDir("/sp5/etc")
	if err != nil || len(confs) != cfg.ConfigFiles {
		t.Fatalf("confs = %d, %v", len(confs), err)
	}
	fi, err := fs.Stat("/sp5/data/events.in")
	if err != nil || fi.Size != int64(cfg.EventRead) {
		t.Fatalf("input = %+v, %v", fi, err)
	}
}

func TestRunProducesOutput(t *testing.T) {
	fs, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	if err := SetupSP5(fs, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := RunSP5(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitTime <= 0 {
		t.Error("init time not measured")
	}
	if res.TimePerEvent < cfg.EventCompute {
		t.Errorf("time/event %v below pure compute %v", res.TimePerEvent, cfg.EventCompute)
	}
	fi, err := fs.Stat("/sp5/out/events.out")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Events * cfg.EventWrite)
	if fi.Size != want {
		t.Errorf("output size = %d, want %d", fi.Size, want)
	}
	if res.String() == "" {
		t.Error("empty render")
	}
}

func TestRunFailsWithoutSetup(t *testing.T) {
	fs, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSP5(fs, smallCfg()); err == nil {
		t.Error("run without setup succeeded")
	}
}

func TestDefaultSP5IsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("default scale takes seconds")
	}
	fs, err := vfs.NewLocalFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSP5()
	cfg.Events = 2
	if err := SetupSP5(fs, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSP5(fs, cfg); err != nil {
		t.Fatal(err)
	}
}
