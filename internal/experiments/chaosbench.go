package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"tss/internal/chaos"
)

// ChaosBenchConfig sizes the chaos experiment: every canned fault
// timeline is executed against the full stack (chirp servers on a
// simulated network, fault-wrapped pooled clients, quorum mirror with
// verify-on-read) under Seeds distinct seeds each, with the engine's
// whole-stack invariant checkers armed.
type ChaosBenchConfig struct {
	// Seeds is how many distinct seeds each timeline runs under.
	Seeds int
	// BaseSeed anchors the seed sequence; every run's exact seed is
	// recorded in its result so violations replay.
	BaseSeed int64
	// StepPause is the wall time granted to each virtual step (0 means
	// the engine default).
	StepPause time.Duration
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// DefaultChaosBench returns the full-size configuration; quick shrinks
// the sweep to one seed per timeline for a fast pass.
func DefaultChaosBench(quick bool) ChaosBenchConfig {
	cfg := ChaosBenchConfig{Seeds: 2, BaseSeed: 1}
	if quick {
		cfg.Seeds = 1
		cfg.Quick = true
	}
	return cfg
}

// ChaosBenchReport records every timeline run and the violation total.
// The contract is zero violations: each run's result embeds the seed,
// timeline, and step coordinates needed to replay any failure.
type ChaosBenchReport struct {
	Name      string `json:"name"`
	Quick     bool   `json:"quick"`
	Seeds     int    `json:"seeds"`
	Timelines int    `json:"timelines"`
	// Runs holds one engine result per (timeline, seed) pair, violations
	// included verbatim.
	Runs []*chaos.Result `json:"runs"`
	// TotalOps counts workload operations that succeeded across all runs.
	TotalOps int64 `json:"total_ops"`
	// TotalViolations is the invariant-violation count across all runs.
	// The published guarantee is zero.
	TotalViolations int `json:"total_violations"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *ChaosBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the report as a table.
func (r *ChaosBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos bench: %d timelines × %d seeds, invariants armed (%d violations)\n",
		r.Timelines, r.Seeds, r.TotalViolations)
	fmt.Fprintf(&b, "%-22s %5s %6s %6s %6s %6s %6s %6s %7s %5s\n",
		"TIMELINE", "SEED", "OPS", "ERRS", "ACKED", "TRIPS", "READM", "FLIPS", "REPAIR", "VIOL")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-22s %5d %6d %6d %6d %6d %6d %6d %7d %5d\n",
			run.Timeline, run.Seed, run.Ops, run.OpErrors, run.AckedWrites,
			run.Trips, run.Readmits, run.Flips, run.ScrubRepair, len(run.Violations))
	}
	for _, run := range r.Runs {
		for _, v := range run.Violations {
			fmt.Fprintf(&b, "VIOLATION %s\n", v)
		}
	}
	return b.String()
}

// RunChaosBench executes every canned chaos timeline under Seeds
// distinct seeds and aggregates the engine results. Harness failures
// (a run that could not even assemble its stack) abort the sweep;
// invariant violations do not — they are the measurement, reported
// with replay coordinates.
func RunChaosBench(cfg ChaosBenchConfig) (*ChaosBenchReport, error) {
	if cfg.Seeds < 1 {
		cfg.Seeds = 1
	}
	timelines := chaos.Timelines()
	rep := &ChaosBenchReport{
		Name:      "chaos-invariants",
		Quick:     cfg.Quick,
		Seeds:     cfg.Seeds,
		Timelines: len(timelines),
	}
	for s := 0; s < cfg.Seeds; s++ {
		for ti, tl := range timelines {
			seed := cfg.BaseSeed + int64(s)*int64(len(timelines)) + int64(ti)
			res, err := chaos.Run(chaos.Config{
				Seed:      seed,
				StepPause: cfg.StepPause,
			}, tl)
			if err != nil {
				return nil, fmt.Errorf("timeline %s seed %d: %w", tl.Name, seed, err)
			}
			rep.Runs = append(rep.Runs, res)
			rep.TotalOps += res.Ops
			rep.TotalViolations += len(res.Violations)
		}
	}
	return rep, nil
}
