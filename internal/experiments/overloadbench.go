package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/acl"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/obs"
	"tss/internal/resilient"
	"tss/internal/vfs"
)

// The overload benchmark is the admission-control ablation of
// DESIGN.md §15: the same 4x-capacity closed-loop fleet runs twice
// against the same bounded-capacity server — once with the admission
// queue bounded and shedding (EAGAIN), once with the queue effectively
// unbounded and never shedding (the pre-armor behavior). The workload
// uses the two-phase putfilesum verb over a bandwidth-shaped uplink,
// so an admitted write holds its admission slot for payload/bandwidth
// of real time; capacity is therefore a property of the simulation,
// not of the host CPU.
//
// Without shedding, queue delay grows past the client deadline:
// clients abandon and retry, the server spends its scarce slots
// streaming bodies for clients that have already hung up, and goodput
// collapses. With admission control the queue stays short, excess is
// refused in microseconds, and budgeted full-jitter retries convert
// the refusals into backpressure instead of amplification.

// RequiredOverloadMetrics are the observability series the overload
// armor exports; RunOverloadBench fails if any is missing from the
// registry snapshot embedded in the JSON artifact.
var RequiredOverloadMetrics = []string{
	"chirp_server.inflight",
	"chirp_server.queue_depth",
	"chirp_server.shed_total",
	"resilient.budget_exhausted",
}

// OverloadBenchConfig sizes the ablation.
type OverloadBenchConfig struct {
	// Workers is the closed-loop fleet size; MaxInflight is the server's
	// slot count. Workers = 4 * MaxInflight is the canonical 4x load.
	Workers     int
	MaxInflight int
	// Payload and Bandwidth fix the per-write slot-hold time at
	// Payload/Bandwidth of wall time.
	Payload   int
	Bandwidth int64
	// ClientTimeout is the per-RPC deadline the clients run (and
	// propagate to the server as a deadline budget).
	ClientTimeout time.Duration
	// BudgetTokens is the shared client retry budget per arm.
	BudgetTokens float64
	// Unloaded, Warmup, and Measure are the phase durations: unloaded
	// control-plane baseline, load warm-up (excluded from goodput), and
	// the measured window.
	Unloaded time.Duration
	Warmup   time.Duration
	Measure  time.Duration
	// Seed drives workload content.
	Seed  int64
	Quick bool
}

// DefaultOverloadBench returns the standard ablation configuration;
// quick shrinks the measured window for a fast pass.
func DefaultOverloadBench(quick bool) OverloadBenchConfig {
	cfg := OverloadBenchConfig{
		Workers:       16,
		MaxInflight:   4,
		Payload:       48 << 10,
		Bandwidth:     1 << 20, // 48ms of slot hold per write
		ClientTimeout: 150 * time.Millisecond,
		BudgetTokens:  20,
		Unloaded:      250 * time.Millisecond,
		Warmup:        300 * time.Millisecond,
		Measure:       2 * time.Second,
		Seed:          1,
	}
	if quick {
		cfg.Measure = 1200 * time.Millisecond
		cfg.Quick = true
	}
	return cfg
}

// OverloadArm is one side of the ablation.
type OverloadArm struct {
	Name            string  `json:"name"`
	GoodputOps      int64   `json:"goodput_ops"`
	GoodputPerSec   float64 `json:"goodput_per_sec"`
	OpErrors        int64   `json:"op_errors"`
	Retries         int64   `json:"retries"`
	Shed            int64   `json:"shed"`
	DeadlineRejects int64   `json:"deadline_rejects"`
	BudgetExhausted int64   `json:"budget_exhausted"`
	ControlP99Ms    float64 `json:"control_p99_ms"`
	ProbeFailures   int64   `json:"probe_failures"`
}

// OverloadBenchReport is the ablation result for BENCH_chirp.json.
type OverloadBenchReport struct {
	Name        string `json:"name"`
	Quick       bool   `json:"quick"`
	Workers     int    `json:"workers"`
	MaxInflight int    `json:"max_inflight"`
	// UnloadedControlP99Ms is the control-plane p99 against the
	// admission-controlled server with no bulk load offered.
	UnloadedControlP99Ms float64      `json:"unloaded_control_p99_ms"`
	WithAdmission        *OverloadArm `json:"with_admission"`
	WithoutAdmission     *OverloadArm `json:"without_admission"`
	// GoodputRatio is with/without; the armor's bar is >= 2.
	GoodputRatio float64 `json:"goodput_ratio"`
	// ControlP99Ratio is with-admission-under-pressure / unloaded; the
	// armor's bar is <= 5.
	ControlP99Ratio float64 `json:"control_p99_ratio"`
	// Metrics is the merged registry snapshot (admission-arm server +
	// client side), so the exported overload series land in the JSON
	// artifact; MetricNames lists the asserted-present series.
	Metrics     obs.Snapshot `json:"metrics"`
	MetricNames []string     `json:"metric_names"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *OverloadBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the ablation table.
func (r *OverloadBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload ablation: %d workers vs %d slots (4x load), unloaded control p99 %.2fms\n",
		r.Workers, r.MaxInflight, r.UnloadedControlP99Ms)
	fmt.Fprintf(&b, "%-18s %8s %9s %8s %8s %9s %8s %11s\n",
		"ARM", "GOODPUT", "OPS/S", "ERRS", "RETRIES", "SHED", "DDLREJ", "CTRL-P99MS")
	for _, arm := range []*OverloadArm{r.WithAdmission, r.WithoutAdmission} {
		fmt.Fprintf(&b, "%-18s %8d %9.1f %8d %8d %9d %8d %11.2f\n",
			arm.Name, arm.GoodputOps, arm.GoodputPerSec, arm.OpErrors,
			arm.Retries, arm.Shed, arm.DeadlineRejects, arm.ControlP99Ms)
	}
	goodputBar := "PASS"
	if r.GoodputRatio < 2 {
		goodputBar = "FAIL"
	}
	p99Bar := "PASS"
	if r.ControlP99Ratio > 5 {
		p99Bar = "FAIL"
	}
	fmt.Fprintf(&b, "goodput ratio (with/without) %.2fx (bar >= 2x): %s\n", r.GoodputRatio, goodputBar)
	fmt.Fprintf(&b, "control p99 ratio (pressure/unloaded) %.2fx (bar <= 5x): %s\n", r.ControlP99Ratio, p99Bar)
	return b.String()
}

// Bars reports whether both published bars hold.
func (r *OverloadBenchReport) Bars() error {
	if r.GoodputRatio < 2 {
		return fmt.Errorf("goodput with admission is only %.2fx the without-admission arm (bar >= 2x)", r.GoodputRatio)
	}
	if r.ControlP99Ratio > 5 {
		return fmt.Errorf("control-plane p99 under pressure is %.2fx unloaded (bar <= 5x)", r.ControlP99Ratio)
	}
	return nil
}

const (
	overloadServerName = "srv.bench"
	overloadLoadHost   = "load.bench"
	overloadProbeHost  = "probe.bench"
)

// overloadProbe samples control-plane Stat latency on its own
// unshaped connection, bucketing by the current phase label.
type overloadProbe struct {
	c     *chirp.Client
	phase atomic.Value
	fail  atomic.Int64
	mu    sync.Mutex
	lat   map[string][]time.Duration
}

func (p *overloadProbe) run(stop <-chan struct{}) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		name, _ := p.phase.Load().(string)
		if name == "" {
			continue
		}
		t0 := time.Now()
		if _, err := p.c.Stat("/"); err != nil {
			p.fail.Add(1)
			continue
		}
		d := time.Since(t0)
		p.mu.Lock()
		p.lat[name] = append(p.lat[name], d)
		p.mu.Unlock()
	}
}

func (p *overloadProbe) p99Ms(phase string) float64 {
	p.mu.Lock()
	lat := append([]time.Duration(nil), p.lat[phase]...)
	p.mu.Unlock()
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(lat[len(lat)*99/100]) / float64(time.Millisecond)
}

// runOverloadArm executes one side of the ablation and returns the arm
// result, the server+client registry snapshots, and the unloaded
// control-plane p99 measured before load was offered.
func runOverloadArm(cfg OverloadBenchConfig, admission bool) (*OverloadArm, obs.Snapshot, obs.Snapshot, float64, error) {
	nw := netsim.NewNetwork()
	root, err := os.MkdirTemp("", "tss-overload-")
	if err != nil {
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	defer os.RemoveAll(root)

	rootACL := &acl.List{}
	rootACL.Set("hostname:"+overloadLoadHost, acl.AllRights, 0)
	rootACL.Set("hostname:"+overloadProbeHost, acl.AllRights, 0)
	serverReg := obs.NewRegistry()
	srvCfg := chirp.ServerConfig{
		Name:        overloadServerName,
		Owner:       auth.Subject("hostname:" + overloadLoadHost),
		Verifiers:   []auth.Verifier{&auth.HostnameVerifier{}},
		RootACL:     rootACL,
		Metrics:     serverReg,
		MaxInflight: cfg.MaxInflight,
	}
	if admission {
		srvCfg.QueueDepth = cfg.MaxInflight
		srvCfg.QueueTimeout = 25 * time.Millisecond
	} else {
		// The ablated arm keeps the same scarce capacity but never
		// sheds: an effectively unbounded FIFO with an effectively
		// infinite queue timeout — the pre-armor server.
		srvCfg.QueueDepth = 1 << 20
		srvCfg.QueueTimeout = 10 * time.Minute
	}
	srv, err := chirp.NewServer(root, srvCfg)
	if err != nil {
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	l, err := nw.Listen(overloadServerName)
	if err != nil {
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	go srv.Serve(l)
	defer srv.Abort()
	nw.SetLinkProfileOneWay(overloadLoadHost, overloadServerName, netsim.LinkProfile{Bandwidth: cfg.Bandwidth})
	// The probe crosses a realistic LAN link in both directions, so its
	// p99 measures admission queueing on top of a real RTT rather than
	// scheduler jitter on top of zero.
	probeLink := netsim.LinkProfile{Latency: 2 * time.Millisecond}
	nw.SetLinkProfileOneWay(overloadProbeHost, overloadServerName, probeLink)
	nw.SetLinkProfileOneWay(overloadServerName, overloadProbeHost, probeLink)

	dial := func(host string, timeout time.Duration, verify bool) (*chirp.Client, error) {
		return chirp.Dial(chirp.ClientConfig{
			Dial: func() (net.Conn, error) {
				return nw.DialFrom(host, overloadServerName, netsim.Loopback)
			},
			Credentials: []auth.Credential{auth.HostnameCredential{}},
			Timeout:     timeout,
			Verify:      verify,
		})
	}

	setup, err := dial(overloadProbeHost, 5*time.Second, false)
	if err != nil {
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	if err := setup.Mkdir("/data", 0o755); err != nil {
		setup.Close()
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	setup.Close()

	clientReg := obs.NewRegistry()
	mExhausted := clientReg.Counter("resilient.budget_exhausted")
	budget := resilient.NewRetryBudget(cfg.BudgetTokens, 0.1)
	budget.OnExhausted = mExhausted.Inc

	arm := &OverloadArm{Name: "with-admission"}
	if !admission {
		arm.Name = "without-admission"
	}
	var goodput atomic.Int64
	var measuring, stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(id int) {
		defer wg.Done()
		c, err := dial(overloadLoadHost, cfg.ClientTimeout, true)
		if err != nil {
			return
		}
		defer c.Close()
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id+1)*7919))
		content := make([]byte, cfg.Payload)
		rng.Read(content)
		policy := resilient.Policy{
			Attempts: 5, Base: 2 * time.Millisecond, Max: 40 * time.Millisecond,
			Jitter: 1, RetryBudget: budget,
			OnRetry: func(int, error) {
				if measuring.Load() {
					atomic.AddInt64(&arm.Retries, 1)
				}
			},
		}
		var lastErr error
		prepare := func() error {
			if resilient.Pushback(lastErr) {
				return nil
			}
			return c.Reconnect()
		}
		for seq := 0; !stop.Load(); seq++ {
			path := fmt.Sprintf("/data/w%02d-%06d", id, seq)
			// Restamp the head so every write is distinct without paying
			// for a full payload's worth of fresh randomness per op.
			rng.Read(content[:16])
			err, _ := policy.Do(func() error {
				//lint:ignore copyapi the closed loop issues bare single-shot writes on purpose
				lastErr = vfs.PutReader(c, path, 0o644, int64(len(content)), bytes.NewReader(content))
				return lastErr
			}, prepare, resilient.RetryableOrPushback)
			if !measuring.Load() {
				continue
			}
			if err == nil {
				goodput.Add(1)
			} else {
				atomic.AddInt64(&arm.OpErrors, 1)
			}
		}
	}

	probeClient, err := dial(overloadProbeHost, 2*time.Second, false)
	if err != nil {
		return nil, obs.Snapshot{}, obs.Snapshot{}, 0, err
	}
	pb := &overloadProbe{c: probeClient, lat: make(map[string][]time.Duration)}
	pb.phase.Store("unloaded")
	probeStop := make(chan struct{})
	go pb.run(probeStop)
	//lint:ignore sleepseam bench phase window: the unloaded baseline is a wall-clock measurement interval
	time.Sleep(cfg.Unloaded)
	pb.phase.Store("")

	for id := 0; id < cfg.Workers; id++ {
		wg.Add(1)
		go worker(id)
	}
	//lint:ignore sleepseam bench phase window: warm-up excluded from the measured window
	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	pb.phase.Store("loaded")
	//lint:ignore sleepseam bench phase window: goodput is counted over this wall-clock interval
	time.Sleep(cfg.Measure)
	measuring.Store(false)
	pb.phase.Store("")
	stop.Store(true)
	wg.Wait()
	close(probeStop)
	probeClient.Close()

	arm.GoodputOps = goodput.Load()
	arm.GoodputPerSec = float64(arm.GoodputOps) / cfg.Measure.Seconds()
	arm.Shed = srv.Stats.Shed.Load()
	arm.DeadlineRejects = srv.Stats.DeadlineRejects.Load()
	arm.BudgetExhausted = budget.Exhausted()
	arm.ControlP99Ms = pb.p99Ms("loaded")
	arm.ProbeFailures = pb.fail.Load()
	return arm, serverReg.Snapshot(), clientReg.Snapshot(), pb.p99Ms("unloaded"), nil
}

// RunOverloadBench executes both ablation arms and asserts that the
// overload metrics are present in the embedded registry snapshot. The
// published bars (goodput ratio, control-plane p99 ratio) are recorded
// in the report; callers decide whether to enforce them via Bars.
func RunOverloadBench(cfg OverloadBenchConfig) (*OverloadBenchReport, error) {
	withArm, serverSnap, clientSnap, unloadedP99, err := runOverloadArm(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("with-admission arm: %w", err)
	}
	withoutArm, _, _, _, err := runOverloadArm(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("without-admission arm: %w", err)
	}
	serverSnap.Merge(clientSnap)
	rep := &OverloadBenchReport{
		Name:                 "overload-ablation",
		Quick:                cfg.Quick,
		Workers:              cfg.Workers,
		MaxInflight:          cfg.MaxInflight,
		UnloadedControlP99Ms: unloadedP99,
		WithAdmission:        withArm,
		WithoutAdmission:     withoutArm,
		Metrics:              serverSnap,
		MetricNames:          RequiredOverloadMetrics,
	}
	if withoutArm.GoodputPerSec > 0 {
		rep.GoodputRatio = withArm.GoodputPerSec / withoutArm.GoodputPerSec
	} else if withArm.GoodputPerSec > 0 {
		rep.GoodputRatio = 1000 // total collapse without admission
	}
	if unloadedP99 > 0 {
		rep.ControlP99Ratio = withArm.ControlP99Ms / unloadedP99
	}
	var missing []string
	for _, name := range RequiredOverloadMetrics {
		if _, ok := rep.Metrics.Counters[name]; ok {
			continue
		}
		if _, ok := rep.Metrics.Gauges[name]; ok {
			continue
		}
		missing = append(missing, name)
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("overload metrics missing from the registry snapshot: %s", strings.Join(missing, ", "))
	}
	return rep, nil
}
