package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/netsim"
	"tss/internal/vfs"
	"tss/internal/workload"
)

// §8 table — SP5 deployment configurations. The paper's rows:
//
//	1  Unix       init  446 s   64 s/event
//	2  LAN / NFS  init 4464 s  113 s/event
//	3  LAN / TSS  init 4505 s  113 s/event
//	4  WAN / TSS  init 6275 s   88 s/event
//
// Shapes to reproduce: initialization blows up by an order of
// magnitude on *any* remote filesystem (it is metadata-latency bound);
// LAN/TSS is on par with LAN/NFS; per-event time stays within a small
// factor of local because events are compute-bound; WAN further
// inflates init. (The paper's WAN row has *faster* events only because
// that grid site had a faster CPU — heterogeneity we do not model.)

// SP5Row is one configuration's result.
type SP5Row struct {
	Config string
	Result workload.SP5Result
}

// SP5TableResult is the full table.
type SP5TableResult struct {
	Rows []SP5Row
}

// SP5Links selects the network conditions; zero values take the
// paper's profiles (100 Mb/s LAN, ~100 Mb/s transatlantic WAN). Tests
// shrink the WAN latency so the run completes quickly — the *shape*
// (WAN init > LAN init > local init) is latency-scale invariant.
type SP5Links struct {
	LAN netsim.LinkProfile
	WAN netsim.LinkProfile
}

// RunSP5Table runs the synthetic SP5 in the four configurations.
func RunSP5Table(cfg workload.SP5Config, links SP5Links) (*SP5TableResult, error) {
	if links.LAN == (netsim.LinkProfile{}) {
		links.LAN = netsim.Fast100
	}
	if links.WAN == (netsim.LinkProfile{}) {
		links.WAN = netsim.WAN100
	}
	env := NewEnv()
	defer env.Close()

	run := func(name string, fs vfs.FileSystem) (SP5Row, error) {
		if err := workload.SetupSP5(fs, cfg); err != nil {
			return SP5Row{}, fmt.Errorf("sp5 %s setup: %w", name, err)
		}
		res, err := workload.RunSP5(fs, cfg)
		if err != nil {
			return SP5Row{}, fmt.Errorf("sp5 %s: %w", name, err)
		}
		return SP5Row{Config: name, Result: res}, nil
	}

	res := &SP5TableResult{}

	// 1: Unix — data on a local filesystem.
	local, err := env.LocalFS()
	if err != nil {
		return nil, err
	}
	row, err := run("Unix", local)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 2: LAN / NFS — 100 Mb/s Ethernet.
	nfs, err := env.StartNFS("nfs.lan", links.LAN)
	if err != nil {
		return nil, err
	}
	row, err = run("LAN / NFS", nfs)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 3: LAN / TSS — adapter + CFS over the same LAN.
	lanChirp, _, err := env.StartChirp("chirp.lan", links.LAN)
	if err != nil {
		return nil, err
	}
	lanTSS := env.AdapterOn(lanChirp, true)
	lanView, err := vfs.Subtree(lanTSS, "/m")
	if err != nil {
		return nil, err
	}
	row, err = run("LAN / TSS", lanView)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	// 4: WAN / TSS — the ~100 Mb/s transatlantic link. (No WAN/NFS row:
	// "this configuration is both socially and technically impossible".)
	wanChirp, _, err := env.StartChirp("chirp.wan", links.WAN)
	if err != nil {
		return nil, err
	}
	wanTSS := env.AdapterOn(wanChirp, true)
	wanView, err := vfs.Subtree(wanTSS, "/m")
	if err != nil {
		return nil, err
	}
	row, err = run("WAN / TSS", wanView)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)

	return res, nil
}

// Render prints the table like the paper's.
func (r *SP5TableResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 8 table: SP5 high energy physics simulation\n")
	b.WriteString("paper shape: init ~10x slower on any remote fs; LAN/TSS ~ LAN/NFS; events within ~2x of local\n")
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "CONFIG", "INIT TIME", "TIME/EVENT")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %14s %14s\n",
			row.Config, fmtDur(row.Result.InitTime), fmtDur(row.Result.TimePerEvent))
	}
	return b.String()
}

// QuickWAN is a reduced-latency WAN profile for fast passes: the
// WAN-vs-LAN ordering is latency-scale invariant, so quick runs keep
// the shape while finishing in seconds.
var QuickWAN = netsim.LinkProfile{Latency: 5 * time.Millisecond, Bandwidth: 12_500_000}
