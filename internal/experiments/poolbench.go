package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tss/internal/netsim"
	"tss/internal/vfs"
)

// PoolBenchConfig sizes the transport-pool parallel-load benchmark: the
// same concurrent read workload driven first through one shared
// connection, then through a connection pool, against the same server.
type PoolBenchConfig struct {
	// Clients is the number of concurrent reader goroutines.
	Clients int
	// PoolSize is the connection budget of the pooled transport.
	PoolSize int
	// Files is the number of files seeded on the server.
	Files int
	// FileSize is the size of each file in bytes.
	FileSize int
	// Reads is the number of whole-file reads per client goroutine.
	Reads int
	// Link shapes each client↔server connection.
	Link netsim.LinkProfile
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// PoolLink is the link profile the pool benchmark runs over: gigabit
// bandwidth with a campus-area 5 ms one-way latency. Transport pooling
// pays off by overlapping round trips, so the benchmark is deliberately
// latency-bound; the 5 ms latency also sits above netsim's 2 ms
// spin threshold, so concurrent links wait on timers instead of
// busy-yielding — on a single-CPU CI machine, spinning links contend
// for the core and the simulation itself would serialize.
var PoolLink = netsim.LinkProfile{Latency: 5 * time.Millisecond, Bandwidth: 125 << 20}

// DefaultPoolBench returns the full-size configuration for the given
// client count (0 = default 8); quick shrinks the workload for a fast
// pass.
func DefaultPoolBench(quick bool, clients int) PoolBenchConfig {
	if clients <= 0 {
		clients = 8
	}
	cfg := PoolBenchConfig{
		Clients:  clients,
		PoolSize: 4,
		Files:    8,
		FileSize: 64 << 10,
		Reads:    32,
		Link:     PoolLink,
	}
	if quick {
		cfg.FileSize, cfg.Reads = 16<<10, 8
		cfg.Quick = true
	}
	return cfg
}

// PoolBenchRow is one transport's aggregate result.
type PoolBenchRow struct {
	Transport string  `json:"transport"` // "single" or "pool"
	Conns     int     `json:"conns"`     // live connections used
	Reads     int     `json:"reads"`     // total whole-file reads
	Bytes     int64   `json:"bytes"`
	ElapsedMS float64 `json:"elapsed_ms"`
	MBps      float64 `json:"aggregate_mbps"`
}

// PoolBenchReport compares aggregate read throughput of a
// single-connection client against a connection pool under the same
// concurrent load.
type PoolBenchReport struct {
	Name     string         `json:"name"`
	Quick    bool           `json:"quick"`
	Clients  int            `json:"clients"`
	PoolSize int            `json:"pool_size"`
	Files    int            `json:"files"`
	FileSize int            `json:"file_size"`
	ReadsPer int            `json:"reads_per_client"`
	Rows     []PoolBenchRow `json:"rows"`
	// Speedup is pooled aggregate MB/s over single-connection MB/s.
	Speedup float64 `json:"speedup"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *PoolBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the comparison as a table.
func (r *PoolBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transport-pool bench: %d clients × %d reads × %d B (pool size %d)\n",
		r.Clients, r.ReadsPer, r.FileSize, r.PoolSize)
	fmt.Fprintf(&b, "%-10s %6s %7s %12s %12s\n", "TRANSPORT", "CONNS", "READS", "ELAPSED", "AGG MB/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %6d %7d %10.1fms %12.1f\n",
			row.Transport, row.Conns, row.Reads, row.ElapsedMS, row.MBps)
	}
	fmt.Fprintf(&b, "speedup: %.2fx\n", r.Speedup)
	return b.String()
}

// drivePoolReads fans Reads whole-file fetches per goroutine across
// clients goroutines against one transport, returning total bytes moved
// and wall time.
func drivePoolReads(g vfs.FileGetter, clients, readsPer, files int) (int64, time.Duration, error) {
	var wg sync.WaitGroup
	var total atomic.Int64
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				p := fmt.Sprintf("/f%04d", (c*readsPer+i)%files)
				n, err := g.GetFile(p, io.Discard)
				if err != nil {
					errs[c] = fmt.Errorf("client %d read %d: %w", c, i, err)
					return
				}
				total.Add(n)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	return total.Load(), elapsed, nil
}

// RunPoolBench measures what the transport pool buys under concurrent
// load: N goroutines hammer whole-file reads first through a single
// shared connection (every RPC serialized on one socket — the pre-pool
// deployment) and then through a Pool of PoolSize connections against
// the same server and files. The ratio of aggregate throughput is the
// speedup the pool delivers to the abstractions stacked above it.
func RunPoolBench(cfg PoolBenchConfig) (*PoolBenchReport, error) {
	env := NewEnv()
	defer env.Close()

	single, _, err := env.StartChirp("pool-bench", cfg.Link)
	if err != nil {
		return nil, err
	}
	pool, err := env.DialChirpPool("pool-bench", cfg.Link, cfg.PoolSize)
	if err != nil {
		return nil, err
	}

	payload := bytes.Repeat([]byte("tactical-storage "), cfg.FileSize/17+1)[:cfg.FileSize]
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("/f%04d", i)
		//lint:ignore copyapi benchmark seeding measures the raw single-stream baseline
		if err := vfs.PutReader(single, p, 0o644, int64(cfg.FileSize), bytes.NewReader(payload)); err != nil {
			return nil, fmt.Errorf("seed %s: %w", p, err)
		}
	}

	rep := &PoolBenchReport{
		Name:     "chirp-transport-pool",
		Quick:    cfg.Quick,
		Clients:  cfg.Clients,
		PoolSize: cfg.PoolSize,
		Files:    cfg.Files,
		FileSize: cfg.FileSize,
		ReadsPer: cfg.Reads,
	}
	totalReads := cfg.Clients * cfg.Reads

	nb, elapsed, err := drivePoolReads(single, cfg.Clients, cfg.Reads, cfg.Files)
	if err != nil {
		return nil, fmt.Errorf("single-connection run: %w", err)
	}
	singleMBps := mbps(nb, elapsed)
	rep.Rows = append(rep.Rows, PoolBenchRow{
		Transport: "single", Conns: 1, Reads: totalReads, Bytes: nb,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6, MBps: singleMBps,
	})

	nb, elapsed, err = drivePoolReads(pool, cfg.Clients, cfg.Reads, cfg.Files)
	if err != nil {
		return nil, fmt.Errorf("pooled run: %w", err)
	}
	poolMBps := mbps(nb, elapsed)
	rep.Rows = append(rep.Rows, PoolBenchRow{
		Transport: "pool", Conns: pool.Conns(), Reads: totalReads, Bytes: nb,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6, MBps: poolMBps,
	})

	if singleMBps > 0 {
		rep.Speedup = poolMBps / singleMBps
	}
	return rep, nil
}
