package experiments

import (
	"fmt"
	"strings"
	"time"

	"tss/internal/netsim"
	"tss/internal/vfs"
)

// Figure 5 — Single Client Bandwidth: write 16 MB in varying block
// sizes to four targets. The shapes to reproduce:
//
//   - Unix (direct local I/O) is fastest — memory-speed ceiling;
//   - Parrot (adapter, local) loses a constant factor to the extra
//     data copy but stays far above network speeds;
//   - Parrot+CFS rides up to a large fraction of the gigabit link,
//     because Chirp uses variable-sized messages on one TCP stream;
//   - Unix+NFS plateaus an order of magnitude below the link, stuck
//     at 4 KB-per-round-trip no matter the application block size.

// Fig5Row is the bandwidth of each system at one block size.
type Fig5Row struct {
	BlockSize  int
	UnixMBps   float64
	ParrotMBps float64
	CFSMBps    float64
	NFSMBps    float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Rows []Fig5Row
}

// DefaultFig5Blocks is the block size sweep of the figure.
var DefaultFig5Blocks = []int{512, 4 << 10, 32 << 10, 256 << 10, 1 << 20, 8 << 20}

// fig5TotalBytes is the copy size of the figure.
const fig5TotalBytes = 16 << 20

// measureCopy returns the best bandwidth of three trials: host page
// cache writeback stalls hit trials asymmetrically, and the paper's
// figure likewise reports maximum achieved bandwidth.
func measureCopy(fs vfs.FileSystem, path string, block int, total int64) (float64, error) {
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		v, err := measureCopyOnce(fs, path, block, total)
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

func measureCopyOnce(fs vfs.FileSystem, path string, block int, total int64) (float64, error) {
	const maxOps = 2048
	ops := total / int64(block)
	if ops > maxOps {
		ops = maxOps
	}
	if ops == 0 {
		ops = 1
	}
	moved := ops * int64(block)
	payload := make([]byte, block)
	f, err := fs.Open(path, vfs.O_WRONLY|vfs.O_CREAT|vfs.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var off int64
	for i := int64(0); i < ops; i++ {
		if err := vfs.WriteAll(f, payload, off); err != nil {
			f.Close()
			return 0, err
		}
		off += int64(block)
	}
	elapsed := time.Since(start)
	if err := f.Close(); err != nil {
		return 0, err
	}
	return mbps(moved, elapsed), nil
}

// RunFig5 sweeps block sizes over the four systems.
func RunFig5(blocks []int) (*Fig5Result, error) {
	if len(blocks) == 0 {
		blocks = DefaultFig5Blocks
	}
	env := NewEnv()
	defer env.Close()

	local, err := env.LocalFS()
	if err != nil {
		return nil, err
	}
	parrotLocalFS, err := env.LocalFS()
	if err != nil {
		return nil, err
	}
	parrot := env.AdapterOn(parrotLocalFS, true)

	cfsClient, _, err := env.StartChirp("cfs.sim", netsim.GigE)
	if err != nil {
		return nil, err
	}
	cfs := env.AdapterOn(cfsClient, true)

	nfs, err := env.StartNFS("nfs.sim", netsim.GigE)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{}
	for _, block := range blocks {
		row := Fig5Row{BlockSize: block}
		if row.UnixMBps, err = measureCopy(local, "/unix.out", block, fig5TotalBytes); err != nil {
			return nil, fmt.Errorf("fig5 unix: %w", err)
		}
		if row.ParrotMBps, err = measureCopy(parrot, "/m/parrot.out", block, fig5TotalBytes); err != nil {
			return nil, fmt.Errorf("fig5 parrot: %w", err)
		}
		if row.CFSMBps, err = measureCopy(cfs, "/m/cfs.out", block, fig5TotalBytes); err != nil {
			return nil, fmt.Errorf("fig5 cfs: %w", err)
		}
		if row.NFSMBps, err = measureCopy(nfs, "/nfs.out", block, fig5TotalBytes); err != nil {
			return nil, fmt.Errorf("fig5 nfs: %w", err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fmtBlock(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Render prints the figure as a table.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: Single Client Bandwidth, 16MB copy by block size (MB/s)\n")
	b.WriteString("paper shape: Unix > Parrot >> Parrot+CFS (most of 1Gb/s) >> Unix+NFS (4KB RPC ceiling)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %10s\n", "BLOCK", "UNIX", "PARROT", "PARROT+CFS", "UNIX+NFS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10.1f %10.1f %12.1f %10.1f\n",
			fmtBlock(row.BlockSize), row.UnixMBps, row.ParrotMBps, row.CFSMBps, row.NFSMBps)
	}
	return b.String()
}
