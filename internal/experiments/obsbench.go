package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"tss/internal/abstraction"
	"tss/internal/adapter"
	"tss/internal/auth"
	"tss/internal/chirp"
	"tss/internal/netsim"
	"tss/internal/obs"
	"tss/internal/vfs"
)

// ObsBenchConfig sizes the observability benchmark.
type ObsBenchConfig struct {
	// Files is the number of files seeded into the stack.
	Files int
	// FileSize is the size of each file in bytes.
	FileSize int
	// Reads is the number of whole-file reads driven through the
	// adapter.
	Reads int
	// Link shapes the client↔server links.
	Link netsim.LinkProfile
	// Quick marks the reduced configuration in the report.
	Quick bool
}

// DefaultObsBench returns the full-size configuration; quick shrinks it
// for a fast pass.
func DefaultObsBench(quick bool) ObsBenchConfig {
	cfg := ObsBenchConfig{
		Files:    32,
		FileSize: 64 << 10,
		Reads:    256,
		Link:     netsim.GigE,
	}
	if quick {
		cfg.Files, cfg.FileSize, cfg.Reads = 8, 16<<10, 64
		cfg.Quick = true
	}
	return cfg
}

// ObsLayerSummary condenses one layer's operation histogram for the
// benchmark report.
type ObsLayerSummary struct {
	Metric string  `json:"metric"` // "<layer>.<op>"
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
}

// ObsBenchReport is the result of the observability benchmark: the
// per-layer latency decomposition of a CFS-over-mirror-over-chirp
// stack, plus the full registry snapshot it was computed from.
type ObsBenchReport struct {
	Name     string            `json:"name"`
	Quick    bool              `json:"quick"`
	Files    int               `json:"files"`
	FileSize int               `json:"file_size"`
	Reads    int               `json:"reads"`
	Layers   []ObsLayerSummary `json:"layers"`
	Metrics  obs.Snapshot      `json:"metrics"`
}

// JSON renders the report for BENCH_chirp.json.
func (r *ObsBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render renders the per-layer decomposition as a table.
func (r *ObsBenchReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability bench: %d files × %d B, %d reads\n", r.Files, r.FileSize, r.Reads)
	fmt.Fprintf(&b, "%-28s %8s %10s %10s %10s\n", "METRIC", "COUNT", "MEAN", "P50", "P99")
	for _, l := range r.Layers {
		fmt.Fprintf(&b, "%-28s %8d %9.1fµs %9.1fµs %9.1fµs\n", l.Metric, l.Count, l.MeanUS, l.P50US, l.P99US)
	}
	return b.String()
}

// RunObsBench drives an instrumented adapter-over-mirror-over-chirp
// stack and reports where each microsecond went: the same read passes
// through the "cfs" (adapter), "mirror", and "chirp" layers, each
// timed separately into one shared registry — the per-layer latency
// decomposition the paper's figures make by hand.
func RunObsBench(cfg ObsBenchConfig) (*ObsBenchReport, error) {
	env := NewEnv()
	defer env.Close()
	reg := obs.NewRegistry()

	// Two replica servers, both instrumented into the shared registry.
	var replicas []vfs.FileSystem
	for i := 0; i < 2; i++ {
		cli, err := startChirpObs(env, fmt.Sprintf("obs-rep%d", i), cfg.Link, reg)
		if err != nil {
			return nil, err
		}
		replicas = append(replicas, obs.Instrument(cli, reg, "chirp"))
	}

	mirror, err := abstraction.NewMirrorOptions(abstraction.MirrorOptions{
		Metrics: reg,
		Layer:   "mirror",
	}, replicas...)
	if err != nil {
		return nil, err
	}

	a := adapter.New(adapter.Config{Metrics: reg})
	if err := a.MountFS("/m", obs.Instrument(mirror, reg, "mirror")); err != nil {
		return nil, err
	}
	cfs := obs.Instrument(a, reg, "cfs")

	// Seed the files through the stack (writes fan out to both
	// replicas), then drive whole-file reads through every layer.
	payload := bytes.Repeat([]byte("tactical-storage "), cfg.FileSize/17+1)[:cfg.FileSize]
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("/m/f%04d", i)
		//lint:ignore copyapi benchmark seeding measures the raw single-stream baseline
		if err := vfs.PutReader(cfs, p, 0o644, int64(cfg.FileSize), bytes.NewReader(payload)); err != nil {
			return nil, fmt.Errorf("seed %s: %w", p, err)
		}
	}
	buf := make([]byte, 32<<10)
	for i := 0; i < cfg.Reads; i++ {
		p := fmt.Sprintf("/m/f%04d", i%cfg.Files)
		f, err := cfs.Open(p, vfs.O_RDONLY, 0)
		if err != nil {
			return nil, err
		}
		var off int64
		for {
			n, err := f.Pread(buf, off)
			if err != nil {
				f.Close()
				return nil, err
			}
			if n == 0 {
				break
			}
			off += int64(n)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	snap := reg.Snapshot()
	rep := &ObsBenchReport{
		Name:     "chirp-observability",
		Quick:    cfg.Quick,
		Files:    cfg.Files,
		FileSize: cfg.FileSize,
		Reads:    cfg.Reads,
		Metrics:  snap,
	}
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		rep.Layers = append(rep.Layers, ObsLayerSummary{
			Metric: name,
			Count:  h.Count,
			MeanUS: float64(h.Mean()) / float64(time.Microsecond),
			P50US:  float64(h.Quantile(0.5)) / float64(time.Microsecond),
			P99US:  float64(h.Quantile(0.99)) / float64(time.Microsecond),
		})
	}
	sort.Slice(rep.Layers, func(i, j int) bool { return rep.Layers[i].Metric < rep.Layers[j].Metric })
	return rep, nil
}

// startChirpObs deploys one Chirp server on the simulated network with
// server- and client-side metrics wired into reg, returning the
// authenticated client.
func startChirpObs(e *Env, name string, prof netsim.LinkProfile, reg *obs.Registry) (*chirp.Client, error) {
	dir, err := e.TempDir()
	if err != nil {
		return nil, err
	}
	srv, err := chirp.NewServer(dir, chirp.ServerConfig{
		Name:      name,
		Owner:     "hostname:bench-client",
		Verifiers: []auth.Verifier{&auth.HostnameVerifier{}},
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	l, err := e.Net.Listen(name)
	if err != nil {
		return nil, err
	}
	go srv.Serve(l)
	e.onClose(func() { l.Close() })
	cli, err := chirp.Dial(chirp.ClientConfig{
		Dial: func() (net.Conn, error) {
			return e.Net.DialFrom("bench-client", name, prof)
		},
		Credentials: []auth.Credential{auth.HostnameCredential{}},
		Timeout:     30 * time.Second,
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	e.onClose(func() { cli.Close() })
	return cli, nil
}
