package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"tss/internal/abstraction"
	"tss/internal/gems"
)

// Figure 9 — Data Preservation in the GEMS distributed shared
// database. The paper enters a 14 GB dataset with a 40 GB budget; the
// replicator fills the budget, then three induced failures (data
// forcibly deleted from 1, 5, and 10 disks) are each detected by the
// auditor and repaired by the replicator. The plotted quantity is
// total stored bytes over time.
//
// Scaled here by 1000x (14 MB / 40 MB / 20 servers) — the dynamics
// under test are those of the auditor/replicator protocol, not of the
// disks.

// Fig9Point is one sample of the preservation timeline.
type Fig9Point struct {
	Step     int
	StoredMB float64
	Event    string // non-empty when something notable happened
}

// Fig9Result is the full timeline.
type Fig9Result struct {
	Points []Fig9Point
	// Final sanity: all records readable at the end.
	AllReadable bool
}

// Fig9Config scales the experiment.
type Fig9Config struct {
	Servers    int
	Records    int
	RecordSize int
	Budget     int64
	// FailureSizes lists the induced failures: how many disks to wipe
	// at each failure point.
	FailureSizes []int
}

// DefaultFig9 is the 1000x-scaled version of the paper's run.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Servers:      20,
		Records:      14,
		RecordSize:   1 << 20, // 14 records x 1 MB = 14 MB "dataset"
		Budget:       40 << 20,
		FailureSizes: []int{1, 5, 10},
	}
}

// RunFig9 executes the preservation timeline.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	env := NewEnv()
	defer env.Close()

	var servers []abstraction.DataServer
	for i := 0; i < cfg.Servers; i++ {
		fs, err := env.LocalFS()
		if err != nil {
			return nil, err
		}
		servers = append(servers, abstraction.DataServer{
			Name: fmt.Sprintf("disk%02d", i),
			FS:   fs,
			Dir:  "/gems",
		})
	}
	db, err := gems.NewDSDB(gems.NewMemIndex(), servers)
	if err != nil {
		return nil, err
	}
	auditor := &gems.Auditor{DB: db, VerifyContent: true}
	replicator := &gems.Replicator{DB: db, BudgetBytes: cfg.Budget}

	res := &Fig9Result{}
	step := 0
	sample := func(event string) error {
		stored, err := db.StoredBytes()
		if err != nil {
			return err
		}
		res.Points = append(res.Points, Fig9Point{
			Step:     step,
			StoredMB: float64(stored) / (1 << 20),
			Event:    event,
		})
		step++
		return nil
	}

	// Ingest the dataset: one copy of each record.
	for i := 0; i < cfg.Records; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, cfg.RecordSize)
		if _, err := db.Put(fmt.Sprintf("dataset/part%02d", i), map[string]string{"set": "fig9"}, payload); err != nil {
			return nil, err
		}
	}
	if err := sample("dataset accepted"); err != nil {
		return nil, err
	}

	// fillBudget replicates step by step, sampling the climb.
	fillBudget := func(label string) error {
		for {
			did, err := replicator.Step()
			if err != nil {
				return err
			}
			if !did {
				break
			}
			if err := sample(""); err != nil {
				return err
			}
		}
		return sample(label)
	}
	if err := fillBudget("budget reached"); err != nil {
		return nil, err
	}

	// Induced failures: forcibly delete all GEMS data on n disks, then
	// audit and repair.
	for _, n := range cfg.FailureSizes {
		for i := 0; i < n; i++ {
			srv := servers[i]
			ents, err := srv.FS.ReadDir("/gems")
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				srv.FS.Unlink("/gems/" + e.Name)
			}
		}
		report, err := auditor.Audit()
		if err != nil {
			return nil, err
		}
		if err := sample(fmt.Sprintf("failure on %d disks: %d replicas lost", n, report.Missing)); err != nil {
			return nil, err
		}
		if err := fillBudget(fmt.Sprintf("repaired after %d-disk failure", n)); err != nil {
			return nil, err
		}
	}

	// Final verification.
	res.AllReadable = true
	recs, err := db.Index().List()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, err := db.Read(rec); err != nil {
			res.AllReadable = false
		}
	}
	return res, nil
}

// Render prints the timeline.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: Data Preservation in the GEMS DSDB (scaled 1000x: 14MB data, 40MB budget, 20 disks)\n")
	b.WriteString("paper shape: replicate to budget; each induced failure dips stored bytes, repair restores them\n")
	fmt.Fprintf(&b, "%-6s %10s  %s\n", "STEP", "STORED", "EVENT")
	for _, p := range r.Points {
		if p.Event == "" {
			continue // only label the interesting points in the table
		}
		fmt.Fprintf(&b, "%-6d %7.1f MB  %s\n", p.Step, p.StoredMB, p.Event)
	}
	fmt.Fprintf(&b, "all records readable at end: %v\n", r.AllReadable)
	return b.String()
}
